// Smart-home deployment walkthrough: train CausalIoT on a month of
// telemetry, persist the model to disk, reload it, and run a live
// monitoring session with k-sequence tracking of anomaly chains — the
// workflow §V's architecture describes, end to end.
//
// Run:  ./build/examples/smart_home_monitoring [seed]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "causaliot/core/evaluation.hpp"
#include "causaliot/core/experiment.hpp"
#include "causaliot/util/log.hpp"

int main(int argc, char** argv) {
  using namespace causaliot;
  util::set_log_level(util::LogLevel::kInfo);
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // ---- 1. Train on a month of ContextAct-style telemetry ---------------
  sim::HomeProfile profile = sim::contextact_profile();
  profile.days = 14.0;
  core::ExperimentConfig config;
  config.seed = seed;
  core::Experiment experiment =
      core::build_experiment(std::move(profile), config);
  std::printf("\n== model ==\n");
  std::printf("tau=%zu, threshold=%.4f, %zu interactions mined\n",
              experiment.model.lag, experiment.model.score_threshold,
              experiment.model.graph.edge_count());

  // ---- 2. Persist and reload the DIG ------------------------------------
  const auto dig_path =
      std::filesystem::temp_directory_path() / "causaliot_example.dig";
  if (!experiment.model.graph.save(dig_path.string()).ok()) {
    std::fprintf(stderr, "failed to save DIG\n");
    return 1;
  }
  auto reloaded = graph::InteractionGraph::load(dig_path.string());
  std::filesystem::remove(dig_path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "failed to reload DIG: %s\n",
                 reloaded.error().to_string().c_str());
    return 1;
  }
  std::printf("DIG round-tripped through %s (%zu edges)\n",
              dig_path.string().c_str(), reloaded.value().edge_count());

  // Print the interaction fan-out of one device, as a user-facing
  // explanation surface.
  const auto stove = experiment.catalog().find("power_stove");
  if (stove.ok()) {
    std::printf("devices directly affected by power_stove:");
    for (telemetry::DeviceId child :
         experiment.model.graph.children(stove.value())) {
      std::printf(" %s", experiment.catalog().info(child).name.c_str());
    }
    std::printf("\n");
  }

  // ---- 3. Live monitoring with chain tracking ----------------------------
  // Simulate a burglar-wandering campaign on a fresh week.
  const preprocess::StateSeries week =
      core::make_fresh_test_series(experiment, 7.0, seed + 1);
  inject::AnomalyInjector injector(experiment.catalog(), experiment.profile,
                                   experiment.sim.ground_truth);
  inject::CollectiveConfig attack;
  attack.anomaly_case = inject::CollectiveCase::kBurglarWandering;
  attack.chain_count = 40;
  attack.k_max = 3;
  attack.seed = seed + 2;
  const inject::InjectionResult stream = injector.inject_collective(
      week.events(), week.snapshot_state(0), attack);

  detect::EventMonitor monitor =
      experiment.model.make_monitor(attack.k_max, stream.initial_state);
  std::size_t alarms = 0;
  std::size_t chain_alarms = 0;
  for (const preprocess::BinaryEvent& event : stream.events) {
    const auto report = monitor.process(event);
    if (!report.has_value()) continue;
    ++alarms;
    if (report->chain_length() > 1) ++chain_alarms;
    if (alarms <= 4) {
      std::printf("ALARM (%zu events%s):", report->chain_length(),
                  report->ended_by_abrupt_event ? ", cut short" : "");
      for (const detect::AnomalyEntry& entry : report->entries) {
        std::printf(" %s=%u(score %.2f)",
                    experiment.catalog().info(entry.event.device).name.c_str(),
                    entry.event.state, entry.score);
      }
      std::printf("\n");
    }
  }
  const core::CollectiveEvaluation eval =
      core::evaluate_collective(experiment.model, stream, attack.k_max);
  std::printf("\n%zu alarms (%zu with tracked chains); detected %.0f%% of "
              "%zu injected burglar chains, fully tracked %.0f%%\n",
              alarms, chain_alarms, 100.0 * eval.detected_fraction(),
              eval.total_chains, 100.0 * eval.tracked_fraction());
  return 0;
}
