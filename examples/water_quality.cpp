// Water-distribution scenario from §IV: quality sensors are deployed
// along a river; readings at a downstream station follow the upstream
// station with a lag, so a DIG profiles the flow network. A pollution
// event shows up as a contextual anomaly at the spill site, and the
// contaminated plume travelling downstream is the collective anomaly the
// k-sequence detector tracks.
//
// Run:  ./build/examples/water_quality [seed]
#include <cstdio>
#include <cstdlib>

#include "causaliot/core/pipeline.hpp"
#include "causaliot/util/rng.hpp"

namespace {

using namespace causaliot;

constexpr std::size_t kStations = 5;

telemetry::DeviceCatalog river_catalog() {
  telemetry::DeviceCatalog catalog;
  for (std::size_t i = 0; i < kStations; ++i) {
    const auto id = catalog.add({"station_" + std::to_string(i),
                                 "river_km_" + std::to_string(10 * i),
                                 telemetry::AttributeType::kGenericSensor,
                                 telemetry::ValueType::kBinary});
    CAUSALIOT_CHECK(id.ok());
  }
  return catalog;
}

// Turbidity episodes (rain, algae) enter at the head station and
// propagate downstream one station per step; episodes clear the same way.
preprocess::StateSeries river_series(std::size_t episodes, util::Rng& rng) {
  preprocess::StateSeries series(kStations,
                                 std::vector<std::uint8_t>(kStations, 0));
  double t = 0.0;
  for (std::size_t e = 0; e < episodes; ++e) {
    t += rng.uniform_real(3600, 14400);
    // Front travels downstream.
    for (std::size_t i = 0; i < kStations; ++i) {
      if (rng.bernoulli(0.95)) {
        series.apply({static_cast<telemetry::DeviceId>(i), 1,
                      t += rng.uniform_real(300, 900)});
      }
    }
    t += rng.uniform_real(1800, 7200);
    // Water clears in the same order.
    for (std::size_t i = 0; i < kStations; ++i) {
      if (series.state(static_cast<telemetry::DeviceId>(i),
                       series.length() - 1) == 1) {
        series.apply({static_cast<telemetry::DeviceId>(i), 0,
                      t += rng.uniform_real(300, 900)});
      }
    }
  }
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace causaliot;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  util::Rng rng(seed);

  const telemetry::DeviceCatalog catalog = river_catalog();
  const preprocess::StateSeries training = river_series(700, rng);
  std::printf("river telemetry: %zu events across %zu stations\n",
              training.event_count(), catalog.size());

  core::PipelineConfig config;
  config.max_lag = 2;
  config.percentile_q = 99.0;
  config.laplace_alpha = 0.1;
  core::Pipeline pipeline(config);
  const core::TrainedModel model = pipeline.train_on_series(training, 2);

  std::printf("\nmined flow network (excluding autocorrelation):\n");
  std::size_t downstream_edges = 0;
  for (telemetry::DeviceId child = 0; child < catalog.size(); ++child) {
    for (const graph::LaggedNode& cause : model.graph.causes(child)) {
      if (cause.device == child) continue;
      std::printf("  %s -> %s (lag %u)\n",
                  catalog.info(cause.device).name.c_str(),
                  catalog.info(child).name.c_str(), cause.lag);
      downstream_edges += cause.device + 1 == child || cause.device + 2 == child;
    }
  }
  std::printf("downstream-direction edges: %zu\n", downstream_edges);

  // A pollution spill at station 2 (mid-river, no upstream cause) is a
  // contextual anomaly; the plume reaching stations 3 and 4 follows the
  // flow interactions and forms the collective anomaly.
  detect::EventMonitor monitor =
      model.make_monitor(/*k_max=*/3, std::vector<std::uint8_t>(kStations, 0));
  std::printf("\nspill at station_2 with clean water upstream...\n");
  double t = 1e9;
  std::optional<detect::AnomalyReport> report;
  for (const preprocess::BinaryEvent event :
       {preprocess::BinaryEvent{2, 1, t += 600},
        preprocess::BinaryEvent{3, 1, t += 600},
        preprocess::BinaryEvent{4, 1, t += 600}}) {
    report = monitor.process(event);
    if (report.has_value()) break;
  }
  if (!report.has_value()) report = monitor.finish();
  if (report.has_value()) {
    std::printf("ALARM: contamination chain of %zu readings:\n",
                report->chain_length());
    for (const detect::AnomalyEntry& entry : report->entries) {
      std::printf("  %s turbid (score %.3f)\n",
                  catalog.info(entry.event.device).name.c_str(), entry.score);
    }
  } else {
    std::printf("no alarm raised (unexpected)\n");
  }
  return report.has_value() ? 0 : 1;
}
