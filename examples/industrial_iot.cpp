// Industrial-IoT scenario from §IV: a smart warehouse where a low
// inventory reading triggers a picking robot, and the robot loads an
// autonomous truck — the interaction chain Sensor -> Robot -> Truck.
//
// This example builds a warehouse trace directly against the public API
// (no smart-home simulator involved), mines the DIG, and detects a
// command-injection attack that starts the robot without a low-inventory
// cause, tracking the unsolicited truck departure it triggers.
//
// Run:  ./build/examples/industrial_iot [seed]
#include <cstdio>
#include <cstdlib>

#include "causaliot/core/pipeline.hpp"
#include "causaliot/util/rng.hpp"

namespace {

using namespace causaliot;

telemetry::DeviceCatalog warehouse_catalog() {
  telemetry::DeviceCatalog catalog;
  const auto add = [&](const char* name, telemetry::AttributeType type) {
    const auto id = catalog.add(
        {name, "warehouse", type, telemetry::ValueType::kBinary});
    CAUSALIOT_CHECK(id.ok());
  };
  add("inventory_low", telemetry::AttributeType::kGenericSensor);
  add("robot_active", telemetry::AttributeType::kGenericActuator);
  add("truck_loading", telemetry::AttributeType::kGenericSensor);
  add("truck_moving", telemetry::AttributeType::kGenericActuator);
  add("dock_door", telemetry::AttributeType::kContactSensor);
  return catalog;
}

// One business cycle: inventory drops -> robot picks -> truck loads ->
// dock opens -> truck departs -> everything resets.
void run_cycle(preprocess::StateSeries& series, double& t, util::Rng& rng) {
  const auto apply = [&](telemetry::DeviceId device, std::uint8_t state,
                         double delay) {
    t += delay;
    series.apply({device, state, t});
  };
  apply(0, 1, rng.uniform_real(600, 4000));  // inventory_low
  apply(1, 1, rng.uniform_real(20, 60));     // robot starts
  apply(2, 1, rng.uniform_real(60, 180));    // truck loading
  apply(1, 0, rng.uniform_real(30, 90));     // robot done
  if (rng.bernoulli(0.9)) {
    apply(4, 1, rng.uniform_real(10, 30));   // dock door opens
    apply(3, 1, rng.uniform_real(10, 30));   // truck departs
    apply(2, 0, rng.uniform_real(5, 15));    // loading flag clears
    apply(0, 0, rng.uniform_real(30, 120));  // inventory restocked
    apply(3, 0, rng.uniform_real(300, 900)); // truck returns
    apply(4, 0, rng.uniform_real(10, 60));   // dock door closes
  } else {
    apply(2, 0, rng.uniform_real(5, 15));
    apply(0, 0, rng.uniform_real(30, 120));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace causaliot;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;
  util::Rng rng(seed);

  const telemetry::DeviceCatalog catalog = warehouse_catalog();
  preprocess::StateSeries series(catalog.size(),
                                 std::vector<std::uint8_t>(catalog.size(), 0));
  double t = 0.0;
  for (int cycle = 0; cycle < 800; ++cycle) run_cycle(series, t, rng);
  std::printf("warehouse trace: %zu events over %.1f days\n",
              series.event_count(), t / 86400.0);

  core::PipelineConfig config;
  config.max_lag = 2;
  config.alpha = 0.001;
  config.percentile_q = 99.0;
  config.laplace_alpha = 0.1;
  core::Pipeline pipeline(config);
  const core::TrainedModel model = pipeline.train_on_series(series, 2);

  std::printf("\nmined interaction chain:\n");
  for (telemetry::DeviceId child = 0; child < catalog.size(); ++child) {
    for (const graph::LaggedNode& cause : model.graph.causes(child)) {
      if (cause.device == child) continue;  // skip autocorrelation
      std::printf("  %s --(lag %u)--> %s\n",
                  catalog.info(cause.device).name.c_str(), cause.lag,
                  catalog.info(child).name.c_str());
    }
  }
  const bool found_chain = model.graph.has_interaction(0, 1) &&
                           model.graph.has_interaction(1, 2);
  std::printf("Sensor -> Robot -> Truck chain mined: %s\n",
              found_chain ? "yes" : "no");

  // Command injection: the robot starts with inventory high — a
  // contextual anomaly — and the workflow it triggers follows.
  detect::EventMonitor monitor =
      model.make_monitor(/*k_max=*/3, model.final_training_state);
  std::printf("\ninjecting robot command at an idle moment...\n");
  const preprocess::BinaryEvent attack{1, 1, t + 50.0};
  auto report = monitor.process(attack);
  // Consequences follow the legitimate workflow.
  if (!report) report = monitor.process({2, 1, t + 120.0});
  if (!report) report = monitor.process({1, 0, t + 150.0});
  if (report.has_value()) {
    std::printf("ALARM: anomaly chain of %zu events:\n",
                report->chain_length());
    for (const detect::AnomalyEntry& entry : report->entries) {
      std::printf("  %s -> %u (score %.3f)\n",
                  catalog.info(entry.event.device).name.c_str(),
                  entry.event.state, entry.score);
    }
  } else {
    std::printf("no alarm raised (unexpected)\n");
  }
  return report.has_value() && found_chain ? 0 : 1;
}
