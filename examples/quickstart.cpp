// Quickstart: the whole CausalIoT pipeline in one file.
//
// 1. Generate a week of smart-home telemetry on the ContextAct-like
//    testbed (stand-in for the paper's real trace).
// 2. Preprocess + mine the Device Interaction Graph with TemporalPC.
// 3. Calibrate the anomaly-score threshold.
// 4. Monitor a runtime stream with an injected ghost-switch attack and
//    print the alarms with their interpretation context.
//
// Run:  ./build/examples/quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "causaliot/core/evaluation.hpp"
#include "causaliot/core/experiment.hpp"
#include "causaliot/util/log.hpp"

int main(int argc, char** argv) {
  using namespace causaliot;
  util::set_log_level(util::LogLevel::kInfo);
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2023;

  // --- train -------------------------------------------------------------
  core::ExperimentConfig config;
  config.seed = seed;
  core::Experiment experiment =
      core::build_experiment(sim::contextact_profile(), config);

  std::printf("\n== trained model ==\n");
  std::printf("devices: %zu, lag tau = %zu\n",
              experiment.catalog().size(), experiment.model.lag);
  std::printf("DIG edges: %zu (device-level ground truth: %zu)\n",
              experiment.model.graph.edge_count(),
              experiment.sim.ground_truth.size());
  std::printf("score threshold (q=99): %.4f\n",
              experiment.model.score_threshold);

  const core::MiningEvaluation mining = core::evaluate_mining(
      experiment.model.graph, experiment.sim.ground_truth);
  std::printf("mining precision %.3f recall %.3f\n", mining.precision,
              mining.recall);

  // --- monitor an attacked stream -----------------------------------------
  inject::AnomalyInjector injector(experiment.catalog(), experiment.profile,
                                   experiment.sim.ground_truth);
  inject::ContextualConfig attack;
  attack.anomaly_case = inject::ContextualCase::kRemoteControl;
  attack.injection_count = 20;
  attack.seed = seed + 1;
  const inject::InjectionResult stream = injector.inject_contextual(
      experiment.test_series.events(),
      experiment.test_series.snapshot_state(0), attack);

  detect::EventMonitor monitor =
      experiment.model.make_monitor(/*k_max=*/1, stream.initial_state);
  std::size_t alarms = 0;
  std::size_t true_alarms = 0;
  for (std::size_t i = 0; i < stream.events.size(); ++i) {
    const auto report = monitor.process(stream.events[i]);
    if (!report.has_value()) continue;
    ++alarms;
    const detect::AnomalyEntry& entry = report->contextual();
    const auto& info = experiment.catalog().info(entry.event.device);
    if (stream.is_injected(i)) ++true_alarms;
    if (alarms <= 5) {
      std::printf("ALARM: %s -> state %u (score %.3f)%s; context:",
                  info.name.c_str(), entry.event.state, entry.score,
                  stream.is_injected(i) ? " [injected]" : "");
      for (std::size_t c = 0; c < entry.causes.size(); ++c) {
        std::printf(" %s@t-%u=%u",
                    experiment.catalog()
                        .info(entry.causes[c].device)
                        .name.c_str(),
                    entry.causes[c].lag, entry.cause_values[c]);
      }
      std::printf("\n");
    }
  }
  std::printf("\n%zu alarms over %zu events; %zu/%zu injected attacks "
              "caught\n",
              alarms, stream.events.size(), true_alarms,
              stream.injected_count);
  return 0;
}
