#include <cstdio>
#include <cstdlib>
#include "causaliot/core/evaluation.hpp"
#include "causaliot/core/experiment.hpp"
#include "causaliot/util/log.hpp"

int main(int argc, char** argv) {
  using namespace causaliot;
  util::set_log_level(util::LogLevel::kInfo);
  core::ExperimentConfig config;
  config.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2023;
  if (argc > 2) config.pipeline.alpha = std::strtod(argv[2], nullptr);
  std::size_t refine_min = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 0;
  auto ex = core::build_experiment(sim::contextact_profile(), config);
  if (refine_min > 0) {
    ex.ground_truth = core::refine_ground_truth(
        ex.sim.ground_truth, ex.pre.sanitized_events, 1, refine_min);
  }
  auto ev = core::evaluate_mining(ex.model.graph, ex.ground_truth, ex.sim.ground_truth);
  auto name = [&](telemetry::DeviceId d){ return ex.catalog().info(d).name.c_str(); };
  std::printf("GT=%zu mined_pairs=%zu TP=%zu FP=%zu FN=%zu P=%.3f R=%.3f\n",
    ex.ground_truth.size(), ev.true_positives+ev.false_positives,
    ev.true_positives, ev.false_positives, ev.false_negatives, ev.precision, ev.recall);
  std::printf("GT by source: auto=%zu phys=%zu user=%zu self=%zu\n",
    ex.ground_truth.count_by_source(sim::InteractionSource::kAutomation),
    ex.ground_truth.count_by_source(sim::InteractionSource::kPhysicalChannel),
    ex.ground_truth.count_by_source(sim::InteractionSource::kUserActivity),
    ex.ground_truth.count_by_source(sim::InteractionSource::kAutocorrelation));
  std::printf("identified by source: auto=%zu phys=%zu user=%zu self=%zu\n",
    ev.identified_by_source[2], ev.identified_by_source[1],
    ev.identified_by_source[0], ev.identified_by_source[3]);
  std::printf("-- missed:\n");
  for (auto& [c, h] : ev.missed_pairs) std::printf("  %s -> %s\n", name(c), name(h));
  std::printf("-- false positives ([oracle] = accepted by generator oracle):\n");
  std::size_t oracle_ok = 0;
  for (auto& [c, h] : ev.false_positive_pairs) {
    const bool acc = ex.sim.ground_truth.contains(c, h);
    oracle_ok += acc;
    std::printf("  %s -> %s%s\n", name(c), name(h), acc ? " [oracle]" : "");
  }
  std::printf("  (%zu of %zu FPs oracle-accepted)\n", oracle_ok, ev.false_positive_pairs.size());
  std::printf("-- per-device: flips in training series, jenks threshold:\n");
  for (telemetry::DeviceId d = 0; d < ex.catalog().size(); ++d) {
    auto col = ex.train_series.device_states(d);
    std::size_t flips = 0;
    for (std::size_t j = 1; j < col.size(); ++j) flips += col[j] != col[j-1];
    const auto& dm = ex.model.discretization.device_model(d);
    std::printf("  %-20s flips=%-5zu jenks=%s%.1f mean=%.1f sd=%.1f\n", name(d), flips,
                dm.jenks_threshold ? "" : "(none)",
                dm.jenks_threshold.value_or(0.0), dm.training_mean, dm.training_stddev);
  }
  std::printf("-- removal records for self-edges and physical edges:\n");
  for (const auto& r : ex.model.mining_diagnostics.removals) {
    const bool self_edge = r.cause.device == r.child;
    const bool phys = ex.catalog().info(r.child).attribute == telemetry::AttributeType::kBrightnessSensor;
    if (!self_edge && !phys) continue;
    if (self_edge && r.cause.device != r.child) continue;
    // only show interesting ones
    if (!(self_edge || phys)) continue;
    if (self_edge || phys) {
      if (!(r.cause.device == r.child || phys)) continue;
    }
    if (!(r.cause.device == r.child) && !phys) continue;
    if ((r.cause.device == r.child) || phys) {
      std::printf("  %s(l%u) -> %s removed at |C|=%zu p=%.4f sep={", name(r.cause.device), r.cause.lag, name(r.child), r.condition_size, r.p_value);
      for (auto& sp : r.separating_set) std::printf(" %s(l%u)", name(sp.device), sp.lag);
      std::printf(" }\n");
    }
  }
  std::printf("-- removal records for automation GT pairs:\n");
  for (const auto& r : ex.model.mining_diagnostics.removals) {
    bool is_auto = false;
    for (const auto& g : ex.sim.ground_truth.interactions())
      if (g.source == sim::InteractionSource::kAutomation &&
          g.cause == r.cause.device && g.child == r.child) is_auto = true;
    if (!is_auto) continue;
    std::printf("  %s(l%u) -> %s removed at |C|=%zu p=%.5f sep={", name(r.cause.device), r.cause.lag, name(r.child), r.condition_size, r.p_value);
    for (auto& sp : r.separating_set) std::printf(" %s(l%u)", name(sp.device), sp.lag);
    std::printf(" }\n");
  }
  std::printf("rule fires:");
  for (size_t i = 0; i < ex.sim.rule_fire_counts.size(); ++i)
    std::printf(" R%zu=%zu", i+1, ex.sim.rule_fire_counts[i]);
  std::printf("\nsanitized=%zu train=%zu test=%zu\n",
    ex.pre.sanitized_events.size(), ex.train_series.event_count(), ex.test_series.event_count());
  return 0;
}
