#include <cstdio>
#include <cstdlib>
#include <map>
#include "causaliot/core/evaluation.hpp"
#include "causaliot/core/experiment.hpp"
#include "causaliot/inject/injector.hpp"

int main(int argc, char** argv) {
  using namespace causaliot;
  core::ExperimentConfig config;
  config.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2023;
  auto profile = sim::contextact_profile();
  profile.days = argc > 2 ? std::strtod(argv[2], nullptr) : 28.0;
  auto ex = core::build_experiment(std::move(profile), config);
  std::printf("threshold=%.5f train_events=%zu test_events=%zu\n",
              ex.model.score_threshold, ex.train_series.event_count(), ex.test_series.event_count());
  inject::AnomalyInjector injector(ex.catalog(), ex.profile, ex.sim.ground_truth);
  {
    auto monitor = ex.model.make_monitor(1, ex.test_series.snapshot_state(0));
    std::map<std::string,int> fp_by_device; int fp=0;
    for (const auto& ev : ex.test_series.events()) {
      if (monitor.score_event(ev) >= ex.model.score_threshold) {
        fp++; fp_by_device[ex.catalog().info(ev.device).name]++;
      }
    }
    std::printf("baseline (no injection): fp=%d of %zu (%.2f%%)\n  by device:", fp,
                ex.test_series.event_count(), 100.0*fp/ex.test_series.event_count());
    for (auto&[d,n]:fp_by_device) std::printf(" %s=%d", d.c_str(), n);
    std::printf("\n");
  }
  const char* names[] = {"sensor_fault","burglar","remote","malicious_rule"};
  for (int c = 0; c < 4; ++c) {
    inject::ContextualConfig icfg;
    icfg.anomaly_case = static_cast<inject::ContextualCase>(c);
    icfg.injection_count = ex.test_series.event_count() / 3;
    icfg.seed = config.seed + 17 * (c + 1);
    auto stream = injector.inject_contextual(ex.test_series.events(), ex.test_series.snapshot_state(0), icfg);
    auto monitor = ex.model.make_monitor(1, stream.initial_state);
    // histograms of scores
    std::map<int,int> inj_hist, ben_hist;
    std::map<std::string,int> fp_by_device;
    int fp=0, tp=0, fn=0;
    for (size_t i = 0; i < stream.events.size(); ++i) {
      double s = monitor.score_event(stream.events[i]);
      int bucket = s >= 0.999 ? 10 : (int)(s*10);
      bool flagged = s >= ex.model.score_threshold;
      if (stream.is_injected(i)) { inj_hist[bucket]++; if (flagged) tp++; else fn++; }
      else { ben_hist[bucket]++; if (flagged) { fp++; fp_by_device[ex.catalog().info(stream.events[i].device).name]++; } }
    }
    std::printf("\n== %s: injected=%zu tp=%d fn=%d fp=%d\n", names[c], stream.injected_count, tp, fn, fp);
    std::printf("  injected scores:"); for (auto&[b,n]:inj_hist) std::printf(" [%.1f]=%d", b/10.0, n); std::printf("\n");
    std::printf("  benign   scores:"); for (auto&[b,n]:ben_hist) std::printf(" [%.1f]=%d", b/10.0, n); std::printf("\n");
    std::printf("  fp by device:");
    for (auto&[d,n]:fp_by_device) std::printf(" %s=%d", d.c_str(), n);
    std::printf("\n  PR sweep:");
    for (double thr : {0.90, 0.93, 0.95, 0.97, 0.98, 0.99}) {
      auto m2 = ex.model.make_monitor(1, stream.initial_state);
      int tp2=0, fp2=0, fn2=0;
      for (size_t i = 0; i < stream.events.size(); ++i) {
        bool flag = m2.score_event(stream.events[i]) >= thr;
        if (stream.is_injected(i)) { if (flag) tp2++; else fn2++; }
        else if (flag) fp2++;
      }
      std::printf(" thr=%.2f P=%.2f R=%.2f;", thr,
                  tp2+fp2 ? double(tp2)/(tp2+fp2) : 0.0, double(tp2)/(tp2+fn2));
    }
    std::printf("\n");
  }
  return 0;
}
