#!/usr/bin/env sh
# Runs the mining performance benchmarks and records the numbers that the
# perf trajectory tracks (see DESIGN.md "Parallel mining & G² fast path").
#
#   tools/run_bench.sh [build-dir] [out-json]
#
# Defaults: build-dir = build, out-json = BENCH_mining.json (repo root).
# The JSON is google-benchmark's --benchmark_format=json output for the
# TemporalPC mining benchmarks (device sweep, thread sweep, and the G²
# kernel micro-benchmarks).
set -eu

build_dir="${1:-build}"
out_json="${2:-BENCH_mining.json}"
bench_bin="$build_dir/bench/bench_complexity"

if [ ! -x "$bench_bin" ]; then
  echo "error: $bench_bin not built (cmake -B $build_dir -S . && cmake --build $build_dir -j)" >&2
  exit 1
fi

"$bench_bin" \
  --benchmark_filter='BM_TemporalPCMining|BM_GSquareTest' \
  --benchmark_out="$out_json" \
  --benchmark_out_format=json

echo "wrote $out_json"
