#!/usr/bin/env sh
# Runs the performance benchmarks and records the numbers that the perf
# trajectory tracks (see DESIGN.md "Parallel mining & G² fast path",
# "§3c Serving architecture", and "§3f Batched CI testing").
#
#   tools/run_bench.sh [build-dir] [mining-json] [serving-json]
#
# Defaults: build-dir = build, mining-json = BENCH_mining.json,
# serving-json = BENCH_serving.json (repo root). Each JSON is
# google-benchmark's --benchmark_format=json output: the TemporalPC
# mining benchmarks (device sweep, thread sweep, G² kernel and batched-CI
# micro-benchmarks) and the DetectionService throughput sweep.
#
# When the mining JSON already exists (the committed baseline), the new
# file gains a top-level "baseline_delta" section mapping each benchmark
# name to new_real_time / baseline_real_time, and the ratios are printed —
# < 1.0 is a speedup over the committed numbers.
set -eu

build_dir="${1:-build}"
mining_json="${2:-BENCH_mining.json}"
serving_json="${3:-BENCH_serving.json}"
mining_bin="$build_dir/bench/bench_complexity"
serving_bin="$build_dir/bench/bench_serving_throughput"
ingestion_bin="$build_dir/bench/bench_ingestion"
fleet_bin="$build_dir/bench/bench_fleet_memory"

for bench_bin in "$mining_bin" "$serving_bin" "$ingestion_bin" "$fleet_bin"; do
  if [ ! -x "$bench_bin" ]; then
    echo "error: $bench_bin not built (cmake -B $build_dir -S . && cmake --build $build_dir -j)" >&2
    exit 1
  fi
done

baseline_json=""
if [ -f "$mining_json" ]; then
  baseline_json="$(mktemp)"
  cp "$mining_json" "$baseline_json"
fi

# BM_TrainStages carries the per-stage span totals (mine_ns / cpt_ns /
# threshold_ns / tpc_level_ns counters) from the obs tracer. The
# BM_*CI_simd_<backend> variants record the per-backend kernel ratios.
"$mining_bin" \
  --benchmark_filter='BM_TemporalPCMining|BM_GSquareTest|BM_TrainStages|BM_BatchedCI|BM_PerSubsetCI' \
  --benchmark_out="$mining_json" \
  --benchmark_out_format=json

echo "wrote $mining_json"

# Stamp SIMD provenance (chosen backend + the host's vector CPU flags)
# into the JSON, then — when a committed baseline exists AND it ran on
# the same backend — append the baseline_delta section. A baseline from
# a different backend (or one predating provenance) is skipped: a
# scalar-vs-avx512 ratio measures the hardware, not the change.
python3 - "$mining_json" ${baseline_json:+"$baseline_json"} <<'PY'
import json
import re
import sys

new_path = sys.argv[1]
baseline_path = sys.argv[2] if len(sys.argv) > 2 else None
with open(new_path) as f:
    fresh = json.load(f)

backend = fresh.get("context", {}).get("simd_backend", "unknown")
cpu_flags = []
try:
    with open("/proc/cpuinfo") as f:
        for line in f:
            if line.startswith(("flags", "Features")):
                cpu_flags = sorted(
                    t for t in line.split(":", 1)[1].split()
                    if re.match(r"^(avx|popcnt|asimd|neon)", t))
                break
except OSError:
    pass
fresh["simd"] = {"backend": backend, "host_cpu_flags": cpu_flags}
print("simd backend: %s (host flags: %s)" % (backend, " ".join(cpu_flags)))

if baseline_path:
    with open(baseline_path) as f:
        baseline = json.load(f)
    old_backend = baseline.get("simd", {}).get("backend") or \
        baseline.get("context", {}).get("simd_backend")
    if old_backend is not None and old_backend != backend:
        print("baseline_delta: skipped — baseline ran on backend '%s', "
              "this run on '%s'" % (old_backend, backend))
    else:
        old_times = {
            b["name"]: b["real_time"]
            for b in baseline.get("benchmarks", [])
            if b.get("run_type", "iteration") == "iteration"
        }
        delta = {}
        for bench in fresh.get("benchmarks", []):
            if bench.get("run_type", "iteration") != "iteration":
                continue
            name = bench["name"]
            if name in old_times and old_times[name] > 0:
                delta[name] = bench["real_time"] / old_times[name]
        fresh["baseline_delta"] = delta
        if delta:
            print("baseline_delta (new/old real_time; < 1.0 is faster):")
            for name in sorted(delta):
                print("  %-40s %.3f" % (name, delta[name]))
        else:
            print("baseline_delta: no overlapping benchmarks with the "
                  "baseline")

with open(new_path, "w") as f:
    json.dump(fresh, f, indent=1)
    f.write("\n")
PY
rm -f "${baseline_json:-}" 2>/dev/null || true

"$serving_bin" \
  --benchmark_out="$serving_json" \
  --benchmark_out_format=json

# The network ingestion plane (loopback TCP JSONL soak + parse floor +
# churn soak) rides in the serving JSON as a top-level "ingestion"
# section, so one file tracks the whole serving-path perf trajectory.
ingestion_json="$(mktemp)"
"$ingestion_bin" \
  --benchmark_out="$ingestion_json" \
  --benchmark_out_format=json

# Fleet-scale model dedup (shared skeleton + COW deltas vs private
# copies): the residency and throughput numbers ride in the serving JSON
# as a top-level "fleet" section with a summary the perf trajectory can
# assert on (dedup_ratio >= 5, throughput parity, exact accounting).
fleet_json="$(mktemp)"
"$fleet_bin" \
  --benchmark_out="$fleet_json" \
  --benchmark_out_format=json

python3 - "$serving_json" "$ingestion_json" "$fleet_json" <<'PY'
import json
import sys

serving_path, ingestion_path, fleet_path = sys.argv[1:4]
with open(serving_path) as f:
    serving = json.load(f)
with open(ingestion_path) as f:
    ingestion = json.load(f)
with open(fleet_path) as f:
    fleet = json.load(f)

serving["ingestion"] = {
    "context": ingestion.get("context", {}),
    "benchmarks": ingestion.get("benchmarks", []),
}

fleet_benchmarks = [
    b for b in fleet.get("benchmarks", [])
    if b.get("run_type", "iteration") == "iteration"
]
summary = {}
for bench in fleet_benchmarks:
    mode = "shared" if bench.get("shared") else "private"
    if bench["name"].startswith("BM_FleetResidency"):
        summary[mode + "_resident_bytes"] = bench.get("resident_bytes")
        summary[mode + "_bytes_per_tenant"] = bench.get("bytes_per_tenant")
        if bench.get("shared"):
            summary["dedup_ratio"] = bench.get("dedup_ratio")
        summary.setdefault("accounting_exact", True)
        summary["accounting_exact"] = (
            summary["accounting_exact"]
            and bench.get("accounting_exact") == 1.0)
    elif bench["name"].startswith("BM_FleetThroughput"):
        summary[mode + "_events_per_second"] = bench.get("items_per_second")
serving["fleet"] = {"benchmarks": fleet_benchmarks, "summary": summary}
if summary:
    print("fleet model dedup (10k tenants, one template):")
    for key in sorted(summary):
        print("  %-32s %s" % (key, summary[key]))

# The root-cause localization plane pays per *alarm*, not per event: the
# summary section records the attribution walk's unit cost so the perf
# trajectory can check the alarm-path overhead stays microseconds-scale
# while BM_ServeThroughput/BM_SessionProcess pin the no-alarm hot path.
root_cause = [
    b for b in serving.get("benchmarks", [])
    if b["name"].startswith("BM_RootCauseAttribution")
    and b.get("run_type", "iteration") == "iteration"
]
if root_cause:
    bench = root_cause[0]
    serving["root_cause"] = {
        "attribution_ns": bench["real_time"],
        "attributions_per_second": bench.get("items_per_second"),
        "fixture_reports": bench.get("reports"),
    }
    print("  %-40s %.0f ns/attribution" %
          ("BM_RootCauseAttribution", bench["real_time"]))
events_per_second = {
    b["name"]: b.get("items_per_second")
    for b in ingestion.get("benchmarks", [])
    if b.get("run_type", "iteration") == "iteration"
}
for name in sorted(events_per_second):
    rate = events_per_second[name]
    if rate:
        print("  %-40s %.0f events/s" % (name, rate))

with open(serving_path, "w") as f:
    json.dump(serving, f, indent=1)
    f.write("\n")
PY
rm -f "$ingestion_json" "$fleet_json"

echo "wrote $serving_json (with ingestion and fleet sections)"
