#!/usr/bin/env sh
# Runs the performance benchmarks and records the numbers that the perf
# trajectory tracks (see DESIGN.md "Parallel mining & G² fast path",
# "§3c Serving architecture", and "§3f Batched CI testing").
#
#   tools/run_bench.sh [build-dir] [mining-json] [serving-json]
#
# Defaults: build-dir = build, mining-json = BENCH_mining.json,
# serving-json = BENCH_serving.json (repo root). Each JSON is
# google-benchmark's --benchmark_format=json output: the TemporalPC
# mining benchmarks (device sweep, thread sweep, G² kernel and batched-CI
# micro-benchmarks) and the DetectionService throughput sweep.
#
# When the mining JSON already exists (the committed baseline), the new
# file gains a top-level "baseline_delta" section mapping each benchmark
# name to new_real_time / baseline_real_time, and the ratios are printed —
# < 1.0 is a speedup over the committed numbers.
set -eu

build_dir="${1:-build}"
mining_json="${2:-BENCH_mining.json}"
serving_json="${3:-BENCH_serving.json}"
mining_bin="$build_dir/bench/bench_complexity"
serving_bin="$build_dir/bench/bench_serving_throughput"

for bench_bin in "$mining_bin" "$serving_bin"; do
  if [ ! -x "$bench_bin" ]; then
    echo "error: $bench_bin not built (cmake -B $build_dir -S . && cmake --build $build_dir -j)" >&2
    exit 1
  fi
done

baseline_json=""
if [ -f "$mining_json" ]; then
  baseline_json="$(mktemp)"
  cp "$mining_json" "$baseline_json"
fi

# BM_TrainStages carries the per-stage span totals (mine_ns / cpt_ns /
# threshold_ns / tpc_level_ns counters) from the obs tracer.
"$mining_bin" \
  --benchmark_filter='BM_TemporalPCMining|BM_GSquareTest|BM_TrainStages|BM_BatchedCI|BM_PerSubsetCI' \
  --benchmark_out="$mining_json" \
  --benchmark_out_format=json

echo "wrote $mining_json"

if [ -n "$baseline_json" ]; then
  python3 - "$baseline_json" "$mining_json" <<'PY'
import json
import sys

baseline_path, new_path = sys.argv[1], sys.argv[2]
with open(baseline_path) as f:
    baseline = json.load(f)
with open(new_path) as f:
    fresh = json.load(f)

old_times = {
    b["name"]: b["real_time"]
    for b in baseline.get("benchmarks", [])
    if b.get("run_type", "iteration") == "iteration"
}
delta = {}
for bench in fresh.get("benchmarks", []):
    if bench.get("run_type", "iteration") != "iteration":
        continue
    name = bench["name"]
    if name in old_times and old_times[name] > 0:
        delta[name] = bench["real_time"] / old_times[name]

fresh["baseline_delta"] = delta
with open(new_path, "w") as f:
    json.dump(fresh, f, indent=1)
    f.write("\n")

if delta:
    print("baseline_delta (new/old real_time; < 1.0 is faster):")
    for name in sorted(delta):
        print("  %-40s %.3f" % (name, delta[name]))
else:
    print("baseline_delta: no overlapping benchmarks with the baseline")
PY
  rm -f "$baseline_json"
fi

"$serving_bin" \
  --benchmark_out="$serving_json" \
  --benchmark_out_format=json

echo "wrote $serving_json"
