#!/usr/bin/env sh
# Runs the performance benchmarks and records the numbers that the perf
# trajectory tracks (see DESIGN.md "Parallel mining & G² fast path" and
# "§3c Serving architecture").
#
#   tools/run_bench.sh [build-dir] [mining-json] [serving-json]
#
# Defaults: build-dir = build, mining-json = BENCH_mining.json,
# serving-json = BENCH_serving.json (repo root). Each JSON is
# google-benchmark's --benchmark_format=json output: the TemporalPC
# mining benchmarks (device sweep, thread sweep, G² kernel micro-
# benchmarks) and the DetectionService throughput sweep respectively.
set -eu

build_dir="${1:-build}"
mining_json="${2:-BENCH_mining.json}"
serving_json="${3:-BENCH_serving.json}"
mining_bin="$build_dir/bench/bench_complexity"
serving_bin="$build_dir/bench/bench_serving_throughput"

for bench_bin in "$mining_bin" "$serving_bin"; do
  if [ ! -x "$bench_bin" ]; then
    echo "error: $bench_bin not built (cmake -B $build_dir -S . && cmake --build $build_dir -j)" >&2
    exit 1
  fi
done

# BM_TrainStages carries the per-stage span totals (mine_ns / cpt_ns /
# threshold_ns / tpc_level_ns counters) from the obs tracer.
"$mining_bin" \
  --benchmark_filter='BM_TemporalPCMining|BM_GSquareTest|BM_TrainStages' \
  --benchmark_out="$mining_json" \
  --benchmark_out_format=json

echo "wrote $mining_json"

"$serving_bin" \
  --benchmark_out="$serving_json" \
  --benchmark_out_format=json

echo "wrote $serving_json"
