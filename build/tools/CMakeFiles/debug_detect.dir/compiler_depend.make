# Empty compiler generated dependencies file for debug_detect.
# This may be replaced when dependencies are built.
