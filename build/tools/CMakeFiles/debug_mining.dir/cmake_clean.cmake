file(REMOVE_RECURSE
  "CMakeFiles/debug_mining.dir/debug_mining.cpp.o"
  "CMakeFiles/debug_mining.dir/debug_mining.cpp.o.d"
  "debug_mining"
  "debug_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
