# Empty dependencies file for debug_mining.
# This may be replaced when dependencies are built.
