file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_collective.dir/bench_table5_collective.cpp.o"
  "CMakeFiles/bench_table5_collective.dir/bench_table5_collective.cpp.o.d"
  "bench_table5_collective"
  "bench_table5_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
