# Empty compiler generated dependencies file for bench_fig5_baselines.
# This may be replaced when dependencies are built.
