# Empty dependencies file for bench_table4_contextual.
# This may be replaced when dependencies are built.
