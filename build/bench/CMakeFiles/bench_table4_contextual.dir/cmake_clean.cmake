file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_contextual.dir/bench_table4_contextual.cpp.o"
  "CMakeFiles/bench_table4_contextual.dir/bench_table4_contextual.cpp.o.d"
  "bench_table4_contextual"
  "bench_table4_contextual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_contextual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
