# Empty dependencies file for bench_mining_accuracy.
# This may be replaced when dependencies are built.
