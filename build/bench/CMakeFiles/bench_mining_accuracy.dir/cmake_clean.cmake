file(REMOVE_RECURSE
  "CMakeFiles/bench_mining_accuracy.dir/bench_mining_accuracy.cpp.o"
  "CMakeFiles/bench_mining_accuracy.dir/bench_mining_accuracy.cpp.o.d"
  "bench_mining_accuracy"
  "bench_mining_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mining_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
