file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_interactions.dir/bench_table3_interactions.cpp.o"
  "CMakeFiles/bench_table3_interactions.dir/bench_table3_interactions.cpp.o.d"
  "bench_table3_interactions"
  "bench_table3_interactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_interactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
