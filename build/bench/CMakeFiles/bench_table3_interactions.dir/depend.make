# Empty dependencies file for bench_table3_interactions.
# This may be replaced when dependencies are built.
