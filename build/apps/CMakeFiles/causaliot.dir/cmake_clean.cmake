file(REMOVE_RECURSE
  "CMakeFiles/causaliot.dir/causaliot.cpp.o"
  "CMakeFiles/causaliot.dir/causaliot.cpp.o.d"
  "causaliot"
  "causaliot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causaliot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
