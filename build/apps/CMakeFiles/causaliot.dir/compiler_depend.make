# Empty compiler generated dependencies file for causaliot.
# This may be replaced when dependencies are built.
