file(REMOVE_RECURSE
  "CMakeFiles/test_telemetry_jsonl.dir/test_telemetry_jsonl.cpp.o"
  "CMakeFiles/test_telemetry_jsonl.dir/test_telemetry_jsonl.cpp.o.d"
  "test_telemetry_jsonl"
  "test_telemetry_jsonl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_telemetry_jsonl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
