# Empty dependencies file for test_telemetry_jsonl.
# This may be replaced when dependencies are built.
