# Empty compiler generated dependencies file for test_stats_cmh.
# This may be replaced when dependencies are built.
