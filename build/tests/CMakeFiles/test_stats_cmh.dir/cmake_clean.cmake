file(REMOVE_RECURSE
  "CMakeFiles/test_stats_cmh.dir/test_stats_cmh.cpp.o"
  "CMakeFiles/test_stats_cmh.dir/test_stats_cmh.cpp.o.d"
  "test_stats_cmh"
  "test_stats_cmh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_cmh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
