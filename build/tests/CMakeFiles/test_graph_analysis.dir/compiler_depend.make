# Empty compiler generated dependencies file for test_graph_analysis.
# This may be replaced when dependencies are built.
