file(REMOVE_RECURSE
  "CMakeFiles/test_stats_jenks.dir/test_stats_jenks.cpp.o"
  "CMakeFiles/test_stats_jenks.dir/test_stats_jenks.cpp.o.d"
  "test_stats_jenks"
  "test_stats_jenks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_jenks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
