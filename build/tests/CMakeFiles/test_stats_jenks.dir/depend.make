# Empty dependencies file for test_stats_jenks.
# This may be replaced when dependencies are built.
