
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_util_strings.cpp" "tests/CMakeFiles/test_util_strings.dir/test_util_strings.cpp.o" "gcc" "tests/CMakeFiles/test_util_strings.dir/test_util_strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/causaliot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/causaliot_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/causaliot_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/mining/CMakeFiles/causaliot_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/causaliot_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/inject/CMakeFiles/causaliot_inject.dir/DependInfo.cmake"
  "/root/repo/build/src/preprocess/CMakeFiles/causaliot_preprocess.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/causaliot_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/causaliot_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/causaliot_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/causaliot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
