file(REMOVE_RECURSE
  "CMakeFiles/test_sim_dynamics.dir/test_sim_dynamics.cpp.o"
  "CMakeFiles/test_sim_dynamics.dir/test_sim_dynamics.cpp.o.d"
  "test_sim_dynamics"
  "test_sim_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
