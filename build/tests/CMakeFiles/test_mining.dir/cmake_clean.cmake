file(REMOVE_RECURSE
  "CMakeFiles/test_mining.dir/test_mining.cpp.o"
  "CMakeFiles/test_mining.dir/test_mining.cpp.o.d"
  "test_mining"
  "test_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
