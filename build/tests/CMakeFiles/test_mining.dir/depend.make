# Empty dependencies file for test_mining.
# This may be replaced when dependencies are built.
