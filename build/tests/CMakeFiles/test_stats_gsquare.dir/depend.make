# Empty dependencies file for test_stats_gsquare.
# This may be replaced when dependencies are built.
