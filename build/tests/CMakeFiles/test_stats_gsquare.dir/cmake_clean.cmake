file(REMOVE_RECURSE
  "CMakeFiles/test_stats_gsquare.dir/test_stats_gsquare.cpp.o"
  "CMakeFiles/test_stats_gsquare.dir/test_stats_gsquare.cpp.o.d"
  "test_stats_gsquare"
  "test_stats_gsquare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_gsquare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
