file(REMOVE_RECURSE
  "CMakeFiles/test_stats_special.dir/test_stats_special.cpp.o"
  "CMakeFiles/test_stats_special.dir/test_stats_special.cpp.o.d"
  "test_stats_special"
  "test_stats_special.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_special.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
