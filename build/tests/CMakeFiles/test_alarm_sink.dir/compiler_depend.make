# Empty compiler generated dependencies file for test_alarm_sink.
# This may be replaced when dependencies are built.
