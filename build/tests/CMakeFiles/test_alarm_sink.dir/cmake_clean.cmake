file(REMOVE_RECURSE
  "CMakeFiles/test_alarm_sink.dir/test_alarm_sink.cpp.o"
  "CMakeFiles/test_alarm_sink.dir/test_alarm_sink.cpp.o.d"
  "test_alarm_sink"
  "test_alarm_sink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alarm_sink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
