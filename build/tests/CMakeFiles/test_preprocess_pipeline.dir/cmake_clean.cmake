file(REMOVE_RECURSE
  "CMakeFiles/test_preprocess_pipeline.dir/test_preprocess_pipeline.cpp.o"
  "CMakeFiles/test_preprocess_pipeline.dir/test_preprocess_pipeline.cpp.o.d"
  "test_preprocess_pipeline"
  "test_preprocess_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preprocess_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
