# Empty compiler generated dependencies file for test_preprocess_pipeline.
# This may be replaced when dependencies are built.
