file(REMOVE_RECURSE
  "CMakeFiles/test_preprocess_series.dir/test_preprocess_series.cpp.o"
  "CMakeFiles/test_preprocess_series.dir/test_preprocess_series.cpp.o.d"
  "test_preprocess_series"
  "test_preprocess_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preprocess_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
