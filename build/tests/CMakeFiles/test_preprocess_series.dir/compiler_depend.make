# Empty compiler generated dependencies file for test_preprocess_series.
# This may be replaced when dependencies are built.
