# Empty dependencies file for causaliot_mining.
# This may be replaced when dependencies are built.
