file(REMOVE_RECURSE
  "CMakeFiles/causaliot_mining.dir/temporal_pc.cpp.o"
  "CMakeFiles/causaliot_mining.dir/temporal_pc.cpp.o.d"
  "libcausaliot_mining.a"
  "libcausaliot_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causaliot_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
