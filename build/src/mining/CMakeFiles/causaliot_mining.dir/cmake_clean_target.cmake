file(REMOVE_RECURSE
  "libcausaliot_mining.a"
)
