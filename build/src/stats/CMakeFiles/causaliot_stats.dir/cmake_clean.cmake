file(REMOVE_RECURSE
  "CMakeFiles/causaliot_stats.dir/cmh.cpp.o"
  "CMakeFiles/causaliot_stats.dir/cmh.cpp.o.d"
  "CMakeFiles/causaliot_stats.dir/descriptive.cpp.o"
  "CMakeFiles/causaliot_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/causaliot_stats.dir/gsquare.cpp.o"
  "CMakeFiles/causaliot_stats.dir/gsquare.cpp.o.d"
  "CMakeFiles/causaliot_stats.dir/jenks.cpp.o"
  "CMakeFiles/causaliot_stats.dir/jenks.cpp.o.d"
  "CMakeFiles/causaliot_stats.dir/metrics.cpp.o"
  "CMakeFiles/causaliot_stats.dir/metrics.cpp.o.d"
  "CMakeFiles/causaliot_stats.dir/special_functions.cpp.o"
  "CMakeFiles/causaliot_stats.dir/special_functions.cpp.o.d"
  "libcausaliot_stats.a"
  "libcausaliot_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causaliot_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
