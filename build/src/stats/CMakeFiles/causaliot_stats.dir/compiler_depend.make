# Empty compiler generated dependencies file for causaliot_stats.
# This may be replaced when dependencies are built.
