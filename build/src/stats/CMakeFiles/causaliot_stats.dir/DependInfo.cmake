
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/cmh.cpp" "src/stats/CMakeFiles/causaliot_stats.dir/cmh.cpp.o" "gcc" "src/stats/CMakeFiles/causaliot_stats.dir/cmh.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/causaliot_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/causaliot_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/gsquare.cpp" "src/stats/CMakeFiles/causaliot_stats.dir/gsquare.cpp.o" "gcc" "src/stats/CMakeFiles/causaliot_stats.dir/gsquare.cpp.o.d"
  "/root/repo/src/stats/jenks.cpp" "src/stats/CMakeFiles/causaliot_stats.dir/jenks.cpp.o" "gcc" "src/stats/CMakeFiles/causaliot_stats.dir/jenks.cpp.o.d"
  "/root/repo/src/stats/metrics.cpp" "src/stats/CMakeFiles/causaliot_stats.dir/metrics.cpp.o" "gcc" "src/stats/CMakeFiles/causaliot_stats.dir/metrics.cpp.o.d"
  "/root/repo/src/stats/special_functions.cpp" "src/stats/CMakeFiles/causaliot_stats.dir/special_functions.cpp.o" "gcc" "src/stats/CMakeFiles/causaliot_stats.dir/special_functions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/causaliot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
