file(REMOVE_RECURSE
  "libcausaliot_stats.a"
)
