file(REMOVE_RECURSE
  "libcausaliot_core.a"
)
