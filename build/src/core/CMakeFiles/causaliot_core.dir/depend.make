# Empty dependencies file for causaliot_core.
# This may be replaced when dependencies are built.
