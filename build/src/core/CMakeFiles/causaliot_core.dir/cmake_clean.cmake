file(REMOVE_RECURSE
  "CMakeFiles/causaliot_core.dir/evaluation.cpp.o"
  "CMakeFiles/causaliot_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/causaliot_core.dir/experiment.cpp.o"
  "CMakeFiles/causaliot_core.dir/experiment.cpp.o.d"
  "CMakeFiles/causaliot_core.dir/pipeline.cpp.o"
  "CMakeFiles/causaliot_core.dir/pipeline.cpp.o.d"
  "libcausaliot_core.a"
  "libcausaliot_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causaliot_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
