file(REMOVE_RECURSE
  "CMakeFiles/causaliot_graph.dir/analysis.cpp.o"
  "CMakeFiles/causaliot_graph.dir/analysis.cpp.o.d"
  "CMakeFiles/causaliot_graph.dir/cpt.cpp.o"
  "CMakeFiles/causaliot_graph.dir/cpt.cpp.o.d"
  "CMakeFiles/causaliot_graph.dir/dig.cpp.o"
  "CMakeFiles/causaliot_graph.dir/dig.cpp.o.d"
  "libcausaliot_graph.a"
  "libcausaliot_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causaliot_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
