# Empty compiler generated dependencies file for causaliot_graph.
# This may be replaced when dependencies are built.
