file(REMOVE_RECURSE
  "libcausaliot_graph.a"
)
