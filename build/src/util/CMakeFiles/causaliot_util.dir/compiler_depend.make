# Empty compiler generated dependencies file for causaliot_util.
# This may be replaced when dependencies are built.
