file(REMOVE_RECURSE
  "libcausaliot_util.a"
)
