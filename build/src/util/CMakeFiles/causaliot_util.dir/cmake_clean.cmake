file(REMOVE_RECURSE
  "CMakeFiles/causaliot_util.dir/csv.cpp.o"
  "CMakeFiles/causaliot_util.dir/csv.cpp.o.d"
  "CMakeFiles/causaliot_util.dir/log.cpp.o"
  "CMakeFiles/causaliot_util.dir/log.cpp.o.d"
  "CMakeFiles/causaliot_util.dir/result.cpp.o"
  "CMakeFiles/causaliot_util.dir/result.cpp.o.d"
  "CMakeFiles/causaliot_util.dir/rng.cpp.o"
  "CMakeFiles/causaliot_util.dir/rng.cpp.o.d"
  "CMakeFiles/causaliot_util.dir/strings.cpp.o"
  "CMakeFiles/causaliot_util.dir/strings.cpp.o.d"
  "libcausaliot_util.a"
  "libcausaliot_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causaliot_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
