file(REMOVE_RECURSE
  "CMakeFiles/causaliot_telemetry.dir/device.cpp.o"
  "CMakeFiles/causaliot_telemetry.dir/device.cpp.o.d"
  "CMakeFiles/causaliot_telemetry.dir/event.cpp.o"
  "CMakeFiles/causaliot_telemetry.dir/event.cpp.o.d"
  "CMakeFiles/causaliot_telemetry.dir/jsonl.cpp.o"
  "CMakeFiles/causaliot_telemetry.dir/jsonl.cpp.o.d"
  "libcausaliot_telemetry.a"
  "libcausaliot_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causaliot_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
