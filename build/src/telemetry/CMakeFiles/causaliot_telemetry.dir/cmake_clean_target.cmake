file(REMOVE_RECURSE
  "libcausaliot_telemetry.a"
)
