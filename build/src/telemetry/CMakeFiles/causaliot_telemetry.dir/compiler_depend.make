# Empty compiler generated dependencies file for causaliot_telemetry.
# This may be replaced when dependencies are built.
