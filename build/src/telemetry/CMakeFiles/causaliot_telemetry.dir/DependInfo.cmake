
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/device.cpp" "src/telemetry/CMakeFiles/causaliot_telemetry.dir/device.cpp.o" "gcc" "src/telemetry/CMakeFiles/causaliot_telemetry.dir/device.cpp.o.d"
  "/root/repo/src/telemetry/event.cpp" "src/telemetry/CMakeFiles/causaliot_telemetry.dir/event.cpp.o" "gcc" "src/telemetry/CMakeFiles/causaliot_telemetry.dir/event.cpp.o.d"
  "/root/repo/src/telemetry/jsonl.cpp" "src/telemetry/CMakeFiles/causaliot_telemetry.dir/jsonl.cpp.o" "gcc" "src/telemetry/CMakeFiles/causaliot_telemetry.dir/jsonl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/causaliot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
