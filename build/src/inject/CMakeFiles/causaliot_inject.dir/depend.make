# Empty dependencies file for causaliot_inject.
# This may be replaced when dependencies are built.
