file(REMOVE_RECURSE
  "libcausaliot_inject.a"
)
