file(REMOVE_RECURSE
  "CMakeFiles/causaliot_inject.dir/injector.cpp.o"
  "CMakeFiles/causaliot_inject.dir/injector.cpp.o.d"
  "libcausaliot_inject.a"
  "libcausaliot_inject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causaliot_inject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
