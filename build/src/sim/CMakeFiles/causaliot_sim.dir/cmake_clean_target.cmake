file(REMOVE_RECURSE
  "libcausaliot_sim.a"
)
