# Empty dependencies file for causaliot_sim.
# This may be replaced when dependencies are built.
