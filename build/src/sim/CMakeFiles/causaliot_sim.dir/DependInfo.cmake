
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/automation.cpp" "src/sim/CMakeFiles/causaliot_sim.dir/automation.cpp.o" "gcc" "src/sim/CMakeFiles/causaliot_sim.dir/automation.cpp.o.d"
  "/root/repo/src/sim/ground_truth.cpp" "src/sim/CMakeFiles/causaliot_sim.dir/ground_truth.cpp.o" "gcc" "src/sim/CMakeFiles/causaliot_sim.dir/ground_truth.cpp.o.d"
  "/root/repo/src/sim/physical.cpp" "src/sim/CMakeFiles/causaliot_sim.dir/physical.cpp.o" "gcc" "src/sim/CMakeFiles/causaliot_sim.dir/physical.cpp.o.d"
  "/root/repo/src/sim/profiles.cpp" "src/sim/CMakeFiles/causaliot_sim.dir/profiles.cpp.o" "gcc" "src/sim/CMakeFiles/causaliot_sim.dir/profiles.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/causaliot_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/causaliot_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/telemetry/CMakeFiles/causaliot_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/causaliot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
