file(REMOVE_RECURSE
  "CMakeFiles/causaliot_sim.dir/automation.cpp.o"
  "CMakeFiles/causaliot_sim.dir/automation.cpp.o.d"
  "CMakeFiles/causaliot_sim.dir/ground_truth.cpp.o"
  "CMakeFiles/causaliot_sim.dir/ground_truth.cpp.o.d"
  "CMakeFiles/causaliot_sim.dir/physical.cpp.o"
  "CMakeFiles/causaliot_sim.dir/physical.cpp.o.d"
  "CMakeFiles/causaliot_sim.dir/profiles.cpp.o"
  "CMakeFiles/causaliot_sim.dir/profiles.cpp.o.d"
  "CMakeFiles/causaliot_sim.dir/simulator.cpp.o"
  "CMakeFiles/causaliot_sim.dir/simulator.cpp.o.d"
  "libcausaliot_sim.a"
  "libcausaliot_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causaliot_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
