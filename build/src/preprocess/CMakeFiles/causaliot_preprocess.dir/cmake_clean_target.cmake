file(REMOVE_RECURSE
  "libcausaliot_preprocess.a"
)
