file(REMOVE_RECURSE
  "CMakeFiles/causaliot_preprocess.dir/discretize.cpp.o"
  "CMakeFiles/causaliot_preprocess.dir/discretize.cpp.o.d"
  "CMakeFiles/causaliot_preprocess.dir/preprocessor.cpp.o"
  "CMakeFiles/causaliot_preprocess.dir/preprocessor.cpp.o.d"
  "CMakeFiles/causaliot_preprocess.dir/series.cpp.o"
  "CMakeFiles/causaliot_preprocess.dir/series.cpp.o.d"
  "libcausaliot_preprocess.a"
  "libcausaliot_preprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causaliot_preprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
