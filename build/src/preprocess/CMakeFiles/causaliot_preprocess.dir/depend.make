# Empty dependencies file for causaliot_preprocess.
# This may be replaced when dependencies are built.
