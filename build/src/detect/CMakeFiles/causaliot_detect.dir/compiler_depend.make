# Empty compiler generated dependencies file for causaliot_detect.
# This may be replaced when dependencies are built.
