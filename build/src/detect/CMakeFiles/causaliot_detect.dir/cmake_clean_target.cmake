file(REMOVE_RECURSE
  "libcausaliot_detect.a"
)
