
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/alarm_sink.cpp" "src/detect/CMakeFiles/causaliot_detect.dir/alarm_sink.cpp.o" "gcc" "src/detect/CMakeFiles/causaliot_detect.dir/alarm_sink.cpp.o.d"
  "/root/repo/src/detect/explanation.cpp" "src/detect/CMakeFiles/causaliot_detect.dir/explanation.cpp.o" "gcc" "src/detect/CMakeFiles/causaliot_detect.dir/explanation.cpp.o.d"
  "/root/repo/src/detect/monitor.cpp" "src/detect/CMakeFiles/causaliot_detect.dir/monitor.cpp.o" "gcc" "src/detect/CMakeFiles/causaliot_detect.dir/monitor.cpp.o.d"
  "/root/repo/src/detect/phantom_state_machine.cpp" "src/detect/CMakeFiles/causaliot_detect.dir/phantom_state_machine.cpp.o" "gcc" "src/detect/CMakeFiles/causaliot_detect.dir/phantom_state_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/causaliot_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/preprocess/CMakeFiles/causaliot_preprocess.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/causaliot_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/causaliot_util.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/causaliot_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
