file(REMOVE_RECURSE
  "CMakeFiles/causaliot_detect.dir/alarm_sink.cpp.o"
  "CMakeFiles/causaliot_detect.dir/alarm_sink.cpp.o.d"
  "CMakeFiles/causaliot_detect.dir/explanation.cpp.o"
  "CMakeFiles/causaliot_detect.dir/explanation.cpp.o.d"
  "CMakeFiles/causaliot_detect.dir/monitor.cpp.o"
  "CMakeFiles/causaliot_detect.dir/monitor.cpp.o.d"
  "CMakeFiles/causaliot_detect.dir/phantom_state_machine.cpp.o"
  "CMakeFiles/causaliot_detect.dir/phantom_state_machine.cpp.o.d"
  "libcausaliot_detect.a"
  "libcausaliot_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causaliot_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
