# Empty dependencies file for causaliot_baselines.
# This may be replaced when dependencies are built.
