file(REMOVE_RECURSE
  "CMakeFiles/causaliot_baselines.dir/hawatcher.cpp.o"
  "CMakeFiles/causaliot_baselines.dir/hawatcher.cpp.o.d"
  "CMakeFiles/causaliot_baselines.dir/markov.cpp.o"
  "CMakeFiles/causaliot_baselines.dir/markov.cpp.o.d"
  "CMakeFiles/causaliot_baselines.dir/ocsvm.cpp.o"
  "CMakeFiles/causaliot_baselines.dir/ocsvm.cpp.o.d"
  "libcausaliot_baselines.a"
  "libcausaliot_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causaliot_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
