file(REMOVE_RECURSE
  "libcausaliot_baselines.a"
)
