# Empty dependencies file for water_quality.
# This may be replaced when dependencies are built.
