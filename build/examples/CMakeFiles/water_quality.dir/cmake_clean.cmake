file(REMOVE_RECURSE
  "CMakeFiles/water_quality.dir/water_quality.cpp.o"
  "CMakeFiles/water_quality.dir/water_quality.cpp.o.d"
  "water_quality"
  "water_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/water_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
