# Empty dependencies file for industrial_iot.
# This may be replaced when dependencies are built.
