#include "causaliot/graph/dig.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "causaliot/util/strings.hpp"

namespace causaliot::graph {

InteractionGraph::InteractionGraph(std::size_t device_count,
                                   std::size_t max_lag)
    : max_lag_(max_lag), cpts_(device_count) {
  CAUSALIOT_CHECK_MSG(max_lag >= 1, "max_lag must be >= 1");
}

void InteractionGraph::set_causes(telemetry::DeviceId child,
                                  std::vector<LaggedNode> causes) {
  CAUSALIOT_CHECK(child < cpts_.size());
  for (const LaggedNode& cause : causes) {
    CAUSALIOT_CHECK_MSG(cause.device < cpts_.size(),
                        "cause device out of range");
    CAUSALIOT_CHECK_MSG(cause.lag >= 1 && cause.lag <= max_lag_,
                        "cause lag out of range");
  }
  std::sort(causes.begin(), causes.end());
  CAUSALIOT_CHECK_MSG(
      std::adjacent_find(causes.begin(), causes.end()) == causes.end(),
      "duplicate cause");
  cpts_[child] = Cpt(std::move(causes));
}

const std::vector<LaggedNode>& InteractionGraph::causes(
    telemetry::DeviceId child) const {
  CAUSALIOT_CHECK(child < cpts_.size());
  return cpts_[child].causes();
}

const Cpt& InteractionGraph::cpt(telemetry::DeviceId child) const {
  CAUSALIOT_CHECK(child < cpts_.size());
  return cpts_[child];
}

Cpt& InteractionGraph::cpt(telemetry::DeviceId child) {
  CAUSALIOT_CHECK(child < cpts_.size());
  return cpts_[child];
}

std::vector<Edge> InteractionGraph::edges() const {
  std::vector<Edge> all;
  for (telemetry::DeviceId child = 0; child < cpts_.size(); ++child) {
    for (const LaggedNode& cause : cpts_[child].causes()) {
      all.push_back({cause, child});
    }
  }
  return all;
}

std::size_t InteractionGraph::edge_count() const {
  std::size_t count = 0;
  for (const Cpt& cpt : cpts_) count += cpt.cause_count();
  return count;
}

bool InteractionGraph::has_edge(telemetry::DeviceId cause_device,
                                std::uint32_t lag,
                                telemetry::DeviceId child) const {
  CAUSALIOT_CHECK(child < cpts_.size());
  const LaggedNode target{cause_device, lag};
  const auto& causes = cpts_[child].causes();
  return std::find(causes.begin(), causes.end(), target) != causes.end();
}

bool InteractionGraph::has_interaction(telemetry::DeviceId cause_device,
                                       telemetry::DeviceId child) const {
  CAUSALIOT_CHECK(child < cpts_.size());
  const auto& causes = cpts_[child].causes();
  return std::any_of(causes.begin(), causes.end(),
                     [&](const LaggedNode& c) {
                       return c.device == cause_device;
                     });
}

std::vector<telemetry::DeviceId> InteractionGraph::children(
    telemetry::DeviceId device) const {
  std::vector<telemetry::DeviceId> out;
  for (telemetry::DeviceId child = 0; child < cpts_.size(); ++child) {
    if (has_interaction(device, child)) out.push_back(child);
  }
  return out;
}

std::string InteractionGraph::to_dot(
    const telemetry::DeviceCatalog& catalog) const {
  CAUSALIOT_CHECK(catalog.size() == cpts_.size());
  std::ostringstream out;
  out << "digraph DIG {\n  rankdir=LR;\n  node [shape=box];\n";
  for (telemetry::DeviceId id = 0; id < cpts_.size(); ++id) {
    out << "  d" << id << " [label=\"" << catalog.info(id).name << "\"];\n";
  }
  for (const Edge& edge : edges()) {
    out << "  d" << edge.cause.device << " -> d" << edge.child
        << " [label=\"lag " << edge.cause.lag << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

util::Status InteractionGraph::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return util::Error::io_error("cannot open " + path);
  out << "dig v1 " << cpts_.size() << ' ' << max_lag_ << '\n';
  for (telemetry::DeviceId child = 0; child < cpts_.size(); ++child) {
    const Cpt& cpt = cpts_[child];
    out << "child " << child << ' ' << cpt.cause_count() << '\n';
    for (const LaggedNode& cause : cpt.causes()) {
      out << "  cause " << cause.device << ' ' << cause.lag << '\n';
    }
    // Sort entries for a byte-stable file.
    std::vector<std::pair<std::uint64_t, std::array<double, 2>>> entries(
        cpt.counts().begin(), cpt.counts().end());
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out << "  entries " << entries.size() << '\n';
    for (const auto& [key, counts] : entries) {
      out << "    " << key << ' ' << counts[0] << ' ' << counts[1] << '\n';
    }
  }
  if (!out) return util::Error::io_error("write failed: " + path);
  return util::Status::ok_status();
}

util::Result<InteractionGraph> InteractionGraph::load(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Error::io_error("cannot open " + path);
  std::string tag;
  std::string version;
  std::size_t device_count = 0;
  std::size_t max_lag = 0;
  if (!(in >> tag >> version >> device_count >> max_lag) || tag != "dig" ||
      version != "v1") {
    return util::Error::parse_error("bad DIG header in " + path);
  }
  InteractionGraph graph(device_count, max_lag);
  for (std::size_t i = 0; i < device_count; ++i) {
    std::size_t child = 0;
    std::size_t cause_count = 0;
    if (!(in >> tag >> child >> cause_count) || tag != "child" ||
        child >= device_count) {
      return util::Error::parse_error("bad child record");
    }
    std::vector<LaggedNode> causes;
    for (std::size_t c = 0; c < cause_count; ++c) {
      LaggedNode node;
      if (!(in >> tag >> node.device >> node.lag) || tag != "cause") {
        return util::Error::parse_error("bad cause record");
      }
      causes.push_back(node);
    }
    graph.set_causes(static_cast<telemetry::DeviceId>(child),
                     std::move(causes));
    std::size_t entry_count = 0;
    if (!(in >> tag >> entry_count) || tag != "entries") {
      return util::Error::parse_error("bad entries record");
    }
    for (std::size_t e = 0; e < entry_count; ++e) {
      std::uint64_t key = 0;
      double count0 = 0.0;
      double count1 = 0.0;
      if (!(in >> key >> count0 >> count1)) {
        return util::Error::parse_error("bad CPT entry");
      }
      graph.cpt(static_cast<telemetry::DeviceId>(child))
          .set_counts(key, count0, count1);
    }
  }
  return graph;
}

}  // namespace causaliot::graph
