#include "causaliot/graph/dig.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "causaliot/util/strings.hpp"

namespace causaliot::graph {

InteractionGraph::InteractionGraph(std::size_t device_count,
                                   std::size_t max_lag)
    : max_lag_(max_lag), dense_(device_count) {
  CAUSALIOT_CHECK_MSG(max_lag >= 1, "max_lag must be >= 1");
}

InteractionGraph::InteractionGraph(const InteractionGraph& other)
    : max_lag_(other.max_lag_),
      dense_(other.dense_),
      skeleton_(other.skeleton_),
      base_(other.base_) {
  // The skeleton and base stay shared (copying a tenant's graph is the
  // cheap personalization path); only the delta is deep-copied.
  delta_.resize(other.delta_.size());
  for (std::size_t i = 0; i < other.delta_.size(); ++i) {
    if (other.delta_[i] != nullptr) {
      delta_[i] = std::make_unique<Cpt>(*other.delta_[i]);
    }
  }
}

InteractionGraph& InteractionGraph::operator=(const InteractionGraph& other) {
  if (this == &other) return *this;
  InteractionGraph copy(other);
  *this = std::move(copy);
  return *this;
}

InteractionGraph InteractionGraph::from_template(SkeletonRef skeleton,
                                                 CptPayloadRef base) {
  CAUSALIOT_CHECK_MSG(skeleton != nullptr && base != nullptr,
                      "from_template needs a skeleton and a base payload");
  CAUSALIOT_CHECK_MSG(base->size() == skeleton->device_count(),
                      "base payload / skeleton device-count mismatch");
  for (telemetry::DeviceId child = 0; child < base->size(); ++child) {
    CAUSALIOT_CHECK_MSG((*base)[child].causes() == skeleton->causes(child),
                        "base CPT layout disagrees with skeleton");
  }
  InteractionGraph graph;
  graph.skeleton_ = std::move(skeleton);
  graph.base_ = std::move(base);
  graph.delta_.resize(graph.skeleton_->device_count());
  return graph;
}

void InteractionGraph::set_causes(telemetry::DeviceId child,
                                  std::vector<LaggedNode> causes) {
  CAUSALIOT_CHECK_MSG(skeleton_ == nullptr,
                      "cannot restructure a template-shared graph; "
                      "clone_private() first");
  CAUSALIOT_CHECK(child < dense_.size());
  for (const LaggedNode& cause : causes) {
    CAUSALIOT_CHECK_MSG(cause.device < dense_.size(),
                        "cause device out of range");
    CAUSALIOT_CHECK_MSG(cause.lag >= 1 && cause.lag <= max_lag_,
                        "cause lag out of range");
  }
  std::sort(causes.begin(), causes.end());
  CAUSALIOT_CHECK_MSG(
      std::adjacent_find(causes.begin(), causes.end()) == causes.end(),
      "duplicate cause");
  dense_[child] = Cpt(std::move(causes));
}

const std::vector<LaggedNode>& InteractionGraph::causes(
    telemetry::DeviceId child) const {
  if (skeleton_ != nullptr) return skeleton_->causes(child);
  CAUSALIOT_CHECK(child < dense_.size());
  return dense_[child].causes();
}

const Cpt& InteractionGraph::cpt(telemetry::DeviceId child) const {
  if (skeleton_ != nullptr) {
    CAUSALIOT_CHECK(child < delta_.size());
    const Cpt* overridden = delta_[child].get();
    return overridden != nullptr ? *overridden : (*base_)[child];
  }
  CAUSALIOT_CHECK(child < dense_.size());
  return dense_[child];
}

Cpt& InteractionGraph::cpt(telemetry::DeviceId child) {
  if (skeleton_ != nullptr) {
    CAUSALIOT_CHECK(child < delta_.size());
    if (delta_[child] == nullptr) {
      delta_[child] = std::make_unique<Cpt>((*base_)[child]);
    }
    return *delta_[child];
  }
  CAUSALIOT_CHECK(child < dense_.size());
  return dense_[child];
}

std::vector<Edge> InteractionGraph::edges() const {
  std::vector<Edge> all;
  for (telemetry::DeviceId child = 0; child < device_count(); ++child) {
    for (const LaggedNode& cause : causes(child)) {
      all.push_back({cause, child});
    }
  }
  return all;
}

std::size_t InteractionGraph::edge_count() const {
  if (skeleton_ != nullptr) return skeleton_->edge_count();
  std::size_t count = 0;
  for (const Cpt& cpt : dense_) count += cpt.cause_count();
  return count;
}

bool InteractionGraph::has_edge(telemetry::DeviceId cause_device,
                                std::uint32_t lag,
                                telemetry::DeviceId child) const {
  const LaggedNode target{cause_device, lag};
  const auto& child_causes = causes(child);
  return std::find(child_causes.begin(), child_causes.end(), target) !=
         child_causes.end();
}

bool InteractionGraph::has_interaction(telemetry::DeviceId cause_device,
                                       telemetry::DeviceId child) const {
  const auto& child_causes = causes(child);
  return std::any_of(child_causes.begin(), child_causes.end(),
                     [&](const LaggedNode& c) {
                       return c.device == cause_device;
                     });
}

std::vector<telemetry::DeviceId> InteractionGraph::children(
    telemetry::DeviceId device) const {
  std::vector<telemetry::DeviceId> out;
  for (telemetry::DeviceId child = 0; child < device_count(); ++child) {
    if (has_interaction(device, child)) out.push_back(child);
  }
  return out;
}

std::size_t InteractionGraph::delta_count() const {
  std::size_t count = 0;
  for (const std::unique_ptr<Cpt>& entry : delta_) {
    if (entry != nullptr) ++count;
  }
  return count;
}

const Cpt* InteractionGraph::delta_cpt(telemetry::DeviceId child) const {
  if (skeleton_ == nullptr) return nullptr;
  CAUSALIOT_CHECK(child < delta_.size());
  return delta_[child].get();
}

SkeletonRef InteractionGraph::freeze_skeleton() const {
  if (skeleton_ != nullptr) return skeleton_;
  std::vector<std::vector<LaggedNode>> all_causes;
  all_causes.reserve(dense_.size());
  for (const Cpt& cpt : dense_) all_causes.push_back(cpt.causes());
  return std::make_shared<const Skeleton>(max_lag_, std::move(all_causes));
}

CptPayloadRef InteractionGraph::freeze_cpts() const {
  auto payload = std::make_shared<CptPayload>();
  payload->reserve(device_count());
  for (telemetry::DeviceId child = 0; child < device_count(); ++child) {
    payload->push_back(cpt(child));
  }
  return payload;
}

InteractionGraph InteractionGraph::clone_private() const {
  if (skeleton_ == nullptr) return *this;
  InteractionGraph out(device_count(), max_lag());
  for (telemetry::DeviceId child = 0; child < device_count(); ++child) {
    out.dense_[child] = cpt(child);
  }
  return out;
}

std::string InteractionGraph::to_dot(
    const telemetry::DeviceCatalog& catalog) const {
  CAUSALIOT_CHECK(catalog.size() == device_count());
  std::ostringstream out;
  out << "digraph DIG {\n  rankdir=LR;\n  node [shape=box];\n";
  for (telemetry::DeviceId id = 0; id < device_count(); ++id) {
    out << "  d" << id << " [label=\"" << catalog.info(id).name << "\"];\n";
  }
  for (const Edge& edge : edges()) {
    out << "  d" << edge.cause.device << " -> d" << edge.child
        << " [label=\"lag " << edge.cause.lag << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

util::Status InteractionGraph::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return util::Error::io_error("cannot open " + path);
  out << "dig v1 " << device_count() << ' ' << max_lag() << '\n';
  for (telemetry::DeviceId child = 0; child < device_count(); ++child) {
    const Cpt& cpt = this->cpt(child);
    out << "child " << child << ' ' << cpt.cause_count() << '\n';
    for (const LaggedNode& cause : cpt.causes()) {
      out << "  cause " << cause.device << ' ' << cause.lag << '\n';
    }
    // Sort entries for a byte-stable file.
    std::vector<std::pair<std::uint64_t, std::array<double, 2>>> entries(
        cpt.counts().begin(), cpt.counts().end());
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out << "  entries " << entries.size() << '\n';
    for (const auto& [key, counts] : entries) {
      out << "    " << key << ' ' << counts[0] << ' ' << counts[1] << '\n';
    }
  }
  if (!out) return util::Error::io_error("write failed: " + path);
  return util::Status::ok_status();
}

util::Result<InteractionGraph> InteractionGraph::load(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Error::io_error("cannot open " + path);
  std::string tag;
  std::string version;
  std::size_t device_count = 0;
  std::size_t max_lag = 0;
  if (!(in >> tag >> version >> device_count >> max_lag) || tag != "dig" ||
      version != "v1") {
    return util::Error::parse_error("bad DIG header in " + path);
  }
  InteractionGraph graph(device_count, max_lag);
  for (std::size_t i = 0; i < device_count; ++i) {
    std::size_t child = 0;
    std::size_t cause_count = 0;
    if (!(in >> tag >> child >> cause_count) || tag != "child" ||
        child >= device_count) {
      return util::Error::parse_error("bad child record");
    }
    std::vector<LaggedNode> causes;
    for (std::size_t c = 0; c < cause_count; ++c) {
      LaggedNode node;
      if (!(in >> tag >> node.device >> node.lag) || tag != "cause") {
        return util::Error::parse_error("bad cause record");
      }
      causes.push_back(node);
    }
    graph.set_causes(static_cast<telemetry::DeviceId>(child),
                     std::move(causes));
    std::size_t entry_count = 0;
    if (!(in >> tag >> entry_count) || tag != "entries") {
      return util::Error::parse_error("bad entries record");
    }
    for (std::size_t e = 0; e < entry_count; ++e) {
      std::uint64_t key = 0;
      double count0 = 0.0;
      double count1 = 0.0;
      if (!(in >> key >> count0 >> count1)) {
        return util::Error::parse_error("bad CPT entry");
      }
      graph.cpt(static_cast<telemetry::DeviceId>(child))
          .set_counts(key, count0, count1);
    }
  }
  return graph;
}

}  // namespace causaliot::graph
