#include "causaliot/graph/analysis.hpp"

#include <algorithm>
#include <set>

#include "causaliot/util/strings.hpp"

namespace causaliot::graph {

GraphSummary summarize(const InteractionGraph& graph) {
  GraphSummary summary;
  summary.device_count = graph.device_count();
  summary.edge_count = graph.edge_count();

  std::set<std::pair<telemetry::DeviceId, telemetry::DeviceId>> pairs;
  std::size_t degree_total = 0;
  for (telemetry::DeviceId child = 0; child < graph.device_count(); ++child) {
    const auto& causes = graph.causes(child);
    degree_total += causes.size();
    summary.max_in_degree = std::max(summary.max_in_degree, causes.size());
    if (causes.empty()) ++summary.orphan_count;
    for (const LaggedNode& cause : causes) {
      pairs.insert({cause.device, child});
    }
    summary.cpt_assignment_count += graph.cpt(child).assignment_count();
  }
  const MemoryFootprint footprint = memory_footprint(graph);
  summary.skeleton_bytes = footprint.skeleton_bytes;
  summary.cpt_bytes = footprint.base_cpt_bytes + footprint.delta_cpt_bytes;
  summary.interaction_count = pairs.size();
  summary.self_loop_count = static_cast<std::size_t>(
      std::count_if(pairs.begin(), pairs.end(),
                    [](const auto& pair) { return pair.first == pair.second; }));
  summary.mean_in_degree =
      graph.device_count() == 0
          ? 0.0
          : static_cast<double>(degree_total) /
                static_cast<double>(graph.device_count());
  return summary;
}

GraphDiff diff(const InteractionGraph& before, const InteractionGraph& after) {
  CAUSALIOT_CHECK_MSG(before.device_count() == after.device_count(),
                      "diff requires identical device sets");
  const auto key = [](const Edge& edge) {
    return std::tuple(edge.cause.device, edge.cause.lag, edge.child);
  };
  const auto edge_less = [&](const Edge& a, const Edge& b) {
    return key(a) < key(b);
  };
  std::vector<Edge> old_edges = before.edges();
  std::vector<Edge> new_edges = after.edges();
  std::sort(old_edges.begin(), old_edges.end(), edge_less);
  std::sort(new_edges.begin(), new_edges.end(), edge_less);

  GraphDiff result;
  std::set_difference(new_edges.begin(), new_edges.end(), old_edges.begin(),
                      old_edges.end(), std::back_inserter(result.added),
                      edge_less);
  std::set_difference(old_edges.begin(), old_edges.end(), new_edges.begin(),
                      new_edges.end(), std::back_inserter(result.removed),
                      edge_less);
  std::vector<Edge> shared;
  std::set_intersection(old_edges.begin(), old_edges.end(),
                        new_edges.begin(), new_edges.end(),
                        std::back_inserter(shared), edge_less);
  const std::size_t union_size =
      shared.size() + result.added.size() + result.removed.size();
  result.edge_jaccard =
      union_size == 0 ? 1.0
                      : static_cast<double>(shared.size()) /
                            static_cast<double>(union_size);
  return result;
}

MemoryFootprint memory_footprint(const InteractionGraph& graph) {
  MemoryFootprint footprint;
  footprint.shared = graph.is_shared();
  if (footprint.shared) {
    footprint.skeleton_bytes = graph.skeleton()->approx_bytes();
    for (const Cpt& cpt : *graph.base()) {
      footprint.base_cpt_bytes += cpt.approx_bytes();
    }
    // The delta's fixed cost is its slot vector (one pointer per
    // device); each personalized child adds its full table copy.
    footprint.delta_cpt_bytes =
        graph.device_count() * sizeof(std::unique_ptr<Cpt>);
    for (telemetry::DeviceId child = 0; child < graph.device_count();
         ++child) {
      if (const Cpt* overridden = graph.delta_cpt(child)) {
        footprint.delta_cpt_bytes += overridden->approx_bytes();
      }
    }
    return footprint;
  }
  // Private mode: the per-child Cpt owns both the structure (its cause
  // vector) and the counts; split them so the skeleton-vs-CPT accounting
  // is comparable across modes.
  for (telemetry::DeviceId child = 0; child < graph.device_count();
       ++child) {
    const Cpt& cpt = graph.cpt(child);
    const std::size_t structure =
        sizeof(Cpt) + cpt.causes().capacity() * sizeof(LaggedNode);
    footprint.skeleton_bytes += structure;
    footprint.base_cpt_bytes += cpt.approx_bytes() - structure;
  }
  return footprint;
}

std::string describe_diff(const GraphDiff& diff) {
  if (diff.identical()) return "no structural drift";
  return util::format("drift: +%zu edges, -%zu edges, jaccard %.2f",
                      diff.added.size(), diff.removed.size(),
                      diff.edge_jaccard);
}

}  // namespace causaliot::graph
