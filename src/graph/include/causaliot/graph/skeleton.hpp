// The immutable structural half of a DIG, split out for fleet-scale
// model sharing.
//
// A home's InteractionGraph is two very different kinds of state: the
// *structure* (device inventory, lagged edge set, per-child cause lists
// — which also fixes every CPT's key layout, since Cpt::pack packs cause
// values in canonical cause order) and the *behaviour* (the CPT counts).
// Homes with identical device inventories share the former exactly and
// differ only in the latter, so the structure is frozen into a Skeleton:
// an immutable, content-hashed object that any number of tenants
// reference through a SkeletonRef while carrying their own CPT payload
// (a shared base plus a sparse copy-on-write delta — see
// InteractionGraph::from_template).
//
// The content hash is FNV-1a over (device_count, max_lag, per-child
// cause lists in canonical order); serve::TemplateRegistry interns
// skeletons by it (with a deep-equality check against collisions), so N
// templates mined from the same inventory resolve to one Skeleton in
// memory.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "causaliot/graph/cpt.hpp"
#include "causaliot/telemetry/device.hpp"

namespace causaliot::graph {

class Skeleton {
 public:
  /// `causes[child]` must be in canonical (sorted, duplicate-free) order
  /// with every device < causes.size() and every lag in [1, max_lag];
  /// CHECKed. max_lag must be >= 1 unless the skeleton is empty.
  Skeleton(std::size_t max_lag,
           std::vector<std::vector<LaggedNode>> causes);

  std::size_t device_count() const { return causes_.size(); }
  std::size_t max_lag() const { return max_lag_; }
  const std::vector<LaggedNode>& causes(telemetry::DeviceId child) const;
  std::size_t edge_count() const { return edge_count_; }

  /// FNV-1a over the full structure; equal structures hash equal, and
  /// the registry backs the hash with operator== so a collision can
  /// never alias two different inventories.
  std::uint64_t content_hash() const { return hash_; }

  friend bool operator==(const Skeleton& a, const Skeleton& b) {
    return a.max_lag_ == b.max_lag_ && a.causes_ == b.causes_;
  }

  /// Estimated heap + object bytes (memory_footprint's skeleton half).
  std::size_t approx_bytes() const;

 private:
  std::size_t max_lag_ = 0;
  std::vector<std::vector<LaggedNode>> causes_;
  std::size_t edge_count_ = 0;
  std::uint64_t hash_ = 0;
};

/// Shared immutable skeleton handle: N tenants with the same inventory
/// hold N refs to one Skeleton.
using SkeletonRef = std::shared_ptr<const Skeleton>;

/// Shared immutable CPT payload: the template's base tables, indexed by
/// child device. Tenants overlay a sparse copy-on-write delta on top.
using CptPayload = std::vector<Cpt>;
using CptPayloadRef = std::shared_ptr<const CptPayload>;

}  // namespace causaliot::graph
