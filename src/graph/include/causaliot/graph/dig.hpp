// The Device Interaction Graph (Definition 1).
//
// Under the tau-th-order Markov and stationarity assumptions the DIG is
// fully described by, for each device i, the set of lagged causes
// Ca(S_i^t) with lags in [1, tau] plus a CPT over those causes. Edges are
// always oriented lagged -> present (the cause precedes the effect).
//
// Storage comes in two modes:
//
//   * Private (the default, and all a miner ever builds): the graph owns
//     one Cpt per device, causes included — exactly the original layout.
//   * Template-shared (from_template): the structure lives in an
//     immutable, content-hashed Skeleton and the CPT counts in an
//     immutable shared base payload, both held by shared_ptr; the graph
//     itself owns only a sparse copy-on-write delta. Reads consult the
//     delta first and fall through to the base; the first mutable
//     cpt(child) access copies that child's base table into the delta
//     (update_cpts therefore personalizes a tenant without ever touching
//     the shared base). N tenants instantiated from one template thus
//     pay full model bytes once plus delta bytes each.
//
// Concurrency contract for the shared mode: the delta slot vector is
// sized at construction, so concurrent copy-on-write faults on
// *different* children are safe (estimate_cpts / update_cpts parallelize
// per child); two threads mutating the same child's table race exactly
// as they always would on a private graph. The skeleton and base are
// never written through this class.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "causaliot/graph/cpt.hpp"
#include "causaliot/graph/skeleton.hpp"
#include "causaliot/telemetry/device.hpp"
#include "causaliot/util/result.hpp"

namespace causaliot::graph {

/// A directed interaction edge: cause (lagged) -> child (present).
struct Edge {
  LaggedNode cause;
  telemetry::DeviceId child = telemetry::kInvalidDevice;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class InteractionGraph {
 public:
  InteractionGraph() = default;
  InteractionGraph(std::size_t device_count, std::size_t max_lag);

  InteractionGraph(const InteractionGraph& other);
  InteractionGraph& operator=(const InteractionGraph& other);
  InteractionGraph(InteractionGraph&&) = default;
  InteractionGraph& operator=(InteractionGraph&&) = default;

  /// Shared-mode construction: structure from `skeleton`, counts from
  /// `base`, an empty copy-on-write delta. `base` must have one Cpt per
  /// skeleton device whose causes match the skeleton's (the layout the
  /// template publisher froze); CHECKed.
  static InteractionGraph from_template(SkeletonRef skeleton,
                                        CptPayloadRef base);

  std::size_t device_count() const {
    return skeleton_ != nullptr ? skeleton_->device_count() : dense_.size();
  }
  std::size_t max_lag() const {
    return skeleton_ != nullptr ? skeleton_->max_lag() : max_lag_;
  }

  /// Installs the cause set (any order; canonicalized) for `child`,
  /// resetting its CPT. All lags must be in [1, max_lag]. Private-mode
  /// only: a template-shared graph's structure is frozen (CHECK) —
  /// clone_private() first to restructure.
  void set_causes(telemetry::DeviceId child, std::vector<LaggedNode> causes);

  const std::vector<LaggedNode>& causes(telemetry::DeviceId child) const;
  const Cpt& cpt(telemetry::DeviceId child) const;
  /// Mutable table access — in shared mode, the copy-on-write point: the
  /// child's base table is copied into this graph's private delta on
  /// first access and returned from the delta ever after.
  Cpt& cpt(telemetry::DeviceId child);

  /// All edges, grouped by child.
  std::vector<Edge> edges() const;
  std::size_t edge_count() const;

  /// True if `cause_device` at lag `lag` is a cause of `child`.
  bool has_edge(telemetry::DeviceId cause_device, std::uint32_t lag,
                telemetry::DeviceId child) const;

  /// True if `cause_device` is a cause of `child` at *any* lag — the
  /// device-level interaction relation used for ground-truth matching.
  bool has_interaction(telemetry::DeviceId cause_device,
                       telemetry::DeviceId child) const;

  /// Devices that have `device` among their causes (at any lag): the
  /// devices a state change of `device` can directly affect. Used for
  /// collective-anomaly chain tracking diagnostics.
  std::vector<telemetry::DeviceId> children(telemetry::DeviceId device) const;

  // --- structure-sharing introspection ---

  /// True when this graph shares a template's skeleton + base payload.
  bool is_shared() const { return skeleton_ != nullptr; }
  /// The shared structure / base payload; null for private graphs. The
  /// pointer identities key the serving plane's dedup accounting.
  const SkeletonRef& skeleton() const { return skeleton_; }
  const CptPayloadRef& base() const { return base_; }
  /// Children whose tables have been copy-on-write personalized.
  std::size_t delta_count() const;
  /// The delta's table for `child`, or nullptr while it still reads
  /// through to the shared base (always nullptr for private graphs).
  const Cpt* delta_cpt(telemetry::DeviceId child) const;

  /// Freezes this graph's structure into an immutable Skeleton (shared
  /// graphs return their existing ref — no copy).
  SkeletonRef freeze_skeleton() const;
  /// Materializes the effective per-child tables (base overlaid with any
  /// delta) into an immutable payload — what a template publisher pairs
  /// with freeze_skeleton().
  CptPayloadRef freeze_cpts() const;
  /// Deep copy into private mode (the sharing escape hatch).
  InteractionGraph clone_private() const;

  /// Graphviz DOT rendering with device names from `catalog`.
  std::string to_dot(const telemetry::DeviceCatalog& catalog) const;

  /// Plain-text serialization (stable across runs; a shared graph saves
  /// its effective tables, so load() always yields a private graph).
  util::Status save(const std::string& path) const;
  static util::Result<InteractionGraph> load(const std::string& path);

 private:
  // Private mode: max_lag_ + dense_ (one owning Cpt per device).
  std::size_t max_lag_ = 0;
  std::vector<Cpt> dense_;
  // Shared mode: immutable structure + base counts, sparse COW delta.
  // delta_ is sized to device_count at construction; slots are written
  // at most once (per child) by the copy-on-write fault.
  SkeletonRef skeleton_;
  CptPayloadRef base_;
  std::vector<std::unique_ptr<Cpt>> delta_;
};

}  // namespace causaliot::graph
