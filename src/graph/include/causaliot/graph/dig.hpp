// The Device Interaction Graph (Definition 1).
//
// Under the tau-th-order Markov and stationarity assumptions the DIG is
// fully described by, for each device i, the set of lagged causes
// Ca(S_i^t) with lags in [1, tau] plus a CPT over those causes. Edges are
// always oriented lagged -> present (the cause precedes the effect).
#pragma once

#include <string>
#include <vector>

#include "causaliot/graph/cpt.hpp"
#include "causaliot/telemetry/device.hpp"
#include "causaliot/util/result.hpp"

namespace causaliot::graph {

/// A directed interaction edge: cause (lagged) -> child (present).
struct Edge {
  LaggedNode cause;
  telemetry::DeviceId child = telemetry::kInvalidDevice;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class InteractionGraph {
 public:
  InteractionGraph() = default;
  InteractionGraph(std::size_t device_count, std::size_t max_lag);

  std::size_t device_count() const { return cpts_.size(); }
  std::size_t max_lag() const { return max_lag_; }

  /// Installs the cause set (any order; canonicalized) for `child`,
  /// resetting its CPT. All lags must be in [1, max_lag].
  void set_causes(telemetry::DeviceId child, std::vector<LaggedNode> causes);

  const std::vector<LaggedNode>& causes(telemetry::DeviceId child) const;
  const Cpt& cpt(telemetry::DeviceId child) const;
  Cpt& cpt(telemetry::DeviceId child);

  /// All edges, grouped by child.
  std::vector<Edge> edges() const;
  std::size_t edge_count() const;

  /// True if `cause_device` at lag `lag` is a cause of `child`.
  bool has_edge(telemetry::DeviceId cause_device, std::uint32_t lag,
                telemetry::DeviceId child) const;

  /// True if `cause_device` is a cause of `child` at *any* lag — the
  /// device-level interaction relation used for ground-truth matching.
  bool has_interaction(telemetry::DeviceId cause_device,
                       telemetry::DeviceId child) const;

  /// Devices that have `device` among their causes (at any lag): the
  /// devices a state change of `device` can directly affect. Used for
  /// collective-anomaly chain tracking diagnostics.
  std::vector<telemetry::DeviceId> children(telemetry::DeviceId device) const;

  /// Graphviz DOT rendering with device names from `catalog`.
  std::string to_dot(const telemetry::DeviceCatalog& catalog) const;

  /// Plain-text serialization (stable across runs).
  util::Status save(const std::string& path) const;
  static util::Result<InteractionGraph> load(const std::string& path);

 private:
  std::size_t max_lag_ = 0;
  std::vector<Cpt> cpts_;  // indexed by child device
};

}  // namespace causaliot::graph
