// Conditional probability tables for DIG nodes.
//
// After TemporalPC fixes the causes Ca(S_i^t) of each present-time device
// state, the CPT stores P(S_i^t = s | Ca = ca) estimated by maximum
// likelihood over the training snapshots (§V-B). Cause assignments are
// bit-packed (all states are binary), so a table is a hash map from the
// packed assignment to a pair of counts.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "causaliot/telemetry/device.hpp"
#include "causaliot/util/bitkey.hpp"

namespace causaliot::graph {

/// A time-lagged variable S_device^{t-lag}. Causes always have lag >= 1
/// (the cause precedes the effect); the child is implicitly at lag 0.
struct LaggedNode {
  telemetry::DeviceId device = telemetry::kInvalidDevice;
  std::uint32_t lag = 1;

  friend bool operator==(const LaggedNode&, const LaggedNode&) = default;
  /// Canonical CPT-key order: by lag, then device.
  friend auto operator<=>(const LaggedNode& a, const LaggedNode& b) {
    if (a.lag != b.lag) return a.lag <=> b.lag;
    return a.device <=> b.device;
  }
};

class Cpt {
 public:
  Cpt() = default;
  /// `causes` must be in canonical (sorted) order; CHECKed.
  explicit Cpt(std::vector<LaggedNode> causes);

  const std::vector<LaggedNode>& causes() const { return causes_; }
  std::size_t cause_count() const { return causes_.size(); }

  /// Packs per-cause values (aligned with causes()) into a table key.
  util::BitKey pack(const std::vector<std::uint8_t>& cause_values) const;

  /// Records one training observation.
  void observe(util::BitKey assignment, std::uint8_t child_state);

  /// P(child = state | assignment) with optional Laplace smoothing alpha.
  /// With alpha == 0 an unseen assignment yields 0.0 — maximally anomalous
  /// under Eq. (1), which is the paper's MLE behaviour.
  double probability(util::BitKey assignment, std::uint8_t child_state,
                     double laplace_alpha = 0.0) const;

  /// Training observations recorded under this assignment.
  double support(util::BitKey assignment) const;

  /// Number of distinct assignments observed.
  std::size_t assignment_count() const { return counts_.size(); }

  /// All observed assignments with their counts (for serialization and
  /// diagnostics). Order is unspecified.
  const std::unordered_map<std::uint64_t, std::array<double, 2>>& counts()
      const {
    return counts_;
  }

  /// Restores a serialized entry.
  void set_counts(std::uint64_t raw_key, double count0, double count1);

  /// Multiplies every count by `factor` (exponential forgetting for
  /// online adaptation to behavioural drift). factor in (0, 1].
  void scale(double factor);

  /// Estimated resident bytes of this table: the object, the cause
  /// vector, and the count map's buckets + nodes. An estimate (allocator
  /// overhead and libstdc++ node layout are approximated), but a
  /// consistent one — the model-memory accounting that drives the
  /// serve_model_* gauges compares only numbers produced by this
  /// function against each other.
  std::size_t approx_bytes() const;

 private:
  std::vector<LaggedNode> causes_;
  std::unordered_map<std::uint64_t, std::array<double, 2>> counts_;
};

}  // namespace causaliot::graph
