// DIG analysis utilities: degree statistics (the max-degree k that bounds
// TemporalPC's O(n^k) test count, §V-D) and structural diffing between two
// mined graphs — the ops-facing primitive for detecting behavioural drift
// ("the interaction graph is outdated", the paper's main false-alarm
// source) by periodically re-mining and comparing.
#pragma once

#include <string>
#include <vector>

#include "causaliot/graph/dig.hpp"

namespace causaliot::graph {

struct GraphSummary {
  std::size_t device_count = 0;
  std::size_t edge_count = 0;
  /// Device-level interactions (lagged edges collapsed per (cause, child)).
  std::size_t interaction_count = 0;
  std::size_t self_loop_count = 0;
  /// Max in-degree over children (number of lagged causes) — the k in the
  /// paper's O(n^k) complexity bound.
  std::size_t max_in_degree = 0;
  double mean_in_degree = 0.0;
  /// Devices with no causes at all (purely marginal behaviour).
  std::size_t orphan_count = 0;
  /// Total CPT assignments stored across all devices (model size).
  std::size_t cpt_assignment_count = 0;
  /// Byte accounting (see MemoryFootprint): immutable structure vs.
  /// behaviour tables — the split that fleet-scale template sharing
  /// exploits.
  std::size_t skeleton_bytes = 0;
  std::size_t cpt_bytes = 0;
};

GraphSummary summarize(const InteractionGraph& graph);

/// Estimated resident bytes of one InteractionGraph, split along the
/// sharing boundary. For a template-shared graph the skeleton and base
/// are reference-held (shared == true): the graph uniquely owns only its
/// delta, and N tenants of one template pay skeleton + base once.
/// Estimates follow Cpt::approx_bytes / Skeleton::approx_bytes — they
/// are compared against each other (dedup ratios, gauge deltas), never
/// against an allocator's ground truth.
struct MemoryFootprint {
  /// Structure: cause lists (+ the Skeleton object in shared mode).
  std::size_t skeleton_bytes = 0;
  /// The base behaviour tables (shared payload, or the private tables).
  std::size_t base_cpt_bytes = 0;
  /// Copy-on-write overlay uniquely owned by this graph (slot vector +
  /// personalized tables); always 0 for private graphs.
  std::size_t delta_cpt_bytes = 0;
  /// True when skeleton_bytes/base_cpt_bytes live behind shared refs.
  bool shared = false;

  /// Bytes this graph uniquely owns (a shared graph's marginal cost).
  std::size_t unique_bytes() const {
    return shared ? delta_cpt_bytes
                  : skeleton_bytes + base_cpt_bytes + delta_cpt_bytes;
  }
  /// Full model bytes — what a private copy of this model would cost.
  std::size_t total_bytes() const {
    return skeleton_bytes + base_cpt_bytes + delta_cpt_bytes;
  }
};

MemoryFootprint memory_footprint(const InteractionGraph& graph);

/// Structural difference between two DIGs over the same device set.
struct GraphDiff {
  /// Lagged edges present in `after` but not `before`.
  std::vector<Edge> added;
  /// Lagged edges present in `before` but not `after`.
  std::vector<Edge> removed;
  /// Jaccard similarity of the lagged edge sets (1 = identical).
  double edge_jaccard = 1.0;

  bool identical() const { return added.empty() && removed.empty(); }
};

/// CHECKs if the two graphs disagree on device count.
GraphDiff diff(const InteractionGraph& before, const InteractionGraph& after);

/// One-line rendering of a diff for logs:
/// "drift: +3 edges, -1 edge, jaccard 0.87".
std::string describe_diff(const GraphDiff& diff);

}  // namespace causaliot::graph
