// DIG analysis utilities: degree statistics (the max-degree k that bounds
// TemporalPC's O(n^k) test count, §V-D) and structural diffing between two
// mined graphs — the ops-facing primitive for detecting behavioural drift
// ("the interaction graph is outdated", the paper's main false-alarm
// source) by periodically re-mining and comparing.
#pragma once

#include <string>
#include <vector>

#include "causaliot/graph/dig.hpp"

namespace causaliot::graph {

struct GraphSummary {
  std::size_t device_count = 0;
  std::size_t edge_count = 0;
  /// Device-level interactions (lagged edges collapsed per (cause, child)).
  std::size_t interaction_count = 0;
  std::size_t self_loop_count = 0;
  /// Max in-degree over children (number of lagged causes) — the k in the
  /// paper's O(n^k) complexity bound.
  std::size_t max_in_degree = 0;
  double mean_in_degree = 0.0;
  /// Devices with no causes at all (purely marginal behaviour).
  std::size_t orphan_count = 0;
  /// Total CPT assignments stored across all devices (model size).
  std::size_t cpt_assignment_count = 0;
};

GraphSummary summarize(const InteractionGraph& graph);

/// Structural difference between two DIGs over the same device set.
struct GraphDiff {
  /// Lagged edges present in `after` but not `before`.
  std::vector<Edge> added;
  /// Lagged edges present in `before` but not `after`.
  std::vector<Edge> removed;
  /// Jaccard similarity of the lagged edge sets (1 = identical).
  double edge_jaccard = 1.0;

  bool identical() const { return added.empty() && removed.empty(); }
};

/// CHECKs if the two graphs disagree on device count.
GraphDiff diff(const InteractionGraph& before, const InteractionGraph& after);

/// One-line rendering of a diff for logs:
/// "drift: +3 edges, -1 edge, jaccard 0.87".
std::string describe_diff(const GraphDiff& diff);

}  // namespace causaliot::graph
