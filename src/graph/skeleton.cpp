#include "causaliot/graph/skeleton.hpp"

#include <algorithm>

#include "causaliot/util/check.hpp"

namespace causaliot::graph {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& hash, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (value >> shift) & 0xffULL;
    hash *= kFnvPrime;
  }
}

}  // namespace

Skeleton::Skeleton(std::size_t max_lag,
                   std::vector<std::vector<LaggedNode>> causes)
    : max_lag_(max_lag), causes_(std::move(causes)) {
  CAUSALIOT_CHECK_MSG(causes_.empty() || max_lag_ >= 1,
                      "max_lag must be >= 1");
  std::uint64_t hash = kFnvOffset;
  fnv_mix(hash, causes_.size());
  fnv_mix(hash, max_lag_);
  for (const std::vector<LaggedNode>& child_causes : causes_) {
    CAUSALIOT_CHECK_MSG(std::is_sorted(child_causes.begin(),
                                       child_causes.end()),
                        "skeleton causes must be canonical");
    CAUSALIOT_CHECK_MSG(std::adjacent_find(child_causes.begin(),
                                           child_causes.end()) ==
                            child_causes.end(),
                        "duplicate cause");
    fnv_mix(hash, child_causes.size());
    for (const LaggedNode& cause : child_causes) {
      CAUSALIOT_CHECK_MSG(cause.device < causes_.size(),
                          "cause device out of range");
      CAUSALIOT_CHECK_MSG(cause.lag >= 1 && cause.lag <= max_lag_,
                          "cause lag out of range");
      fnv_mix(hash, cause.device);
      fnv_mix(hash, cause.lag);
    }
    edge_count_ += child_causes.size();
  }
  hash_ = hash;
}

const std::vector<LaggedNode>& Skeleton::causes(
    telemetry::DeviceId child) const {
  CAUSALIOT_CHECK(child < causes_.size());
  return causes_[child];
}

std::size_t Skeleton::approx_bytes() const {
  std::size_t bytes = sizeof(Skeleton) +
                      causes_.capacity() * sizeof(std::vector<LaggedNode>);
  for (const std::vector<LaggedNode>& child_causes : causes_) {
    bytes += child_causes.capacity() * sizeof(LaggedNode);
  }
  return bytes;
}

}  // namespace causaliot::graph
