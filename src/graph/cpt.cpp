#include "causaliot/graph/cpt.hpp"

#include <algorithm>

namespace causaliot::graph {

Cpt::Cpt(std::vector<LaggedNode> causes) : causes_(std::move(causes)) {
  CAUSALIOT_CHECK_MSG(std::is_sorted(causes_.begin(), causes_.end()),
                      "CPT causes must be in canonical order");
  CAUSALIOT_CHECK_MSG(causes_.size() <= 64, "too many causes for BitKey");
}

util::BitKey Cpt::pack(const std::vector<std::uint8_t>& cause_values) const {
  CAUSALIOT_CHECK_MSG(cause_values.size() == causes_.size(),
                      "cause value count mismatch");
  util::BitKey key;
  for (std::size_t i = 0; i < cause_values.size(); ++i) {
    CAUSALIOT_CHECK(cause_values[i] <= 1);
    key.set(i, cause_values[i] != 0);
  }
  return key;
}

void Cpt::observe(util::BitKey assignment, std::uint8_t child_state) {
  CAUSALIOT_CHECK(child_state <= 1);
  counts_[assignment.raw()][child_state] += 1.0;
}

double Cpt::probability(util::BitKey assignment, std::uint8_t child_state,
                        double laplace_alpha) const {
  CAUSALIOT_CHECK(child_state <= 1);
  const auto it = counts_.find(assignment.raw());
  const double count0 = it != counts_.end() ? it->second[0] : 0.0;
  const double count1 = it != counts_.end() ? it->second[1] : 0.0;
  const double numerator =
      (child_state == 0 ? count0 : count1) + laplace_alpha;
  const double denominator = count0 + count1 + 2.0 * laplace_alpha;
  if (denominator <= 0.0) return 0.0;  // unseen context, pure MLE
  return numerator / denominator;
}

double Cpt::support(util::BitKey assignment) const {
  const auto it = counts_.find(assignment.raw());
  if (it == counts_.end()) return 0.0;
  return it->second[0] + it->second[1];
}

void Cpt::scale(double factor) {
  CAUSALIOT_CHECK(factor > 0.0 && factor <= 1.0);
  for (auto& [key, counts] : counts_) {
    counts[0] *= factor;
    counts[1] *= factor;
  }
}

std::size_t Cpt::approx_bytes() const {
  // One hash node per assignment: the pair payload plus a next pointer
  // and the allocator's bookkeeping word.
  constexpr std::size_t kNodeOverhead = 2 * sizeof(void*);
  return sizeof(Cpt) + causes_.capacity() * sizeof(LaggedNode) +
         counts_.bucket_count() * sizeof(void*) +
         counts_.size() *
             (sizeof(std::pair<const std::uint64_t, std::array<double, 2>>) +
              kNodeOverhead);
}

void Cpt::set_counts(std::uint64_t raw_key, double count0, double count1) {
  CAUSALIOT_CHECK(count0 >= 0.0 && count1 >= 0.0);
  counts_[raw_key] = {count0, count1};
}

}  // namespace causaliot::graph
