#include "causaliot/preprocess/series.hpp"

namespace causaliot::preprocess {

StateSeries::StateSeries(std::size_t device_count,
                         std::vector<std::uint8_t> initial_state)
    : device_count_(device_count), length_(1) {
  CAUSALIOT_CHECK_MSG(initial_state.size() == device_count,
                      "initial state size mismatch");
  states_.resize(device_count);
  for (std::size_t i = 0; i < device_count; ++i) {
    CAUSALIOT_CHECK_MSG(initial_state[i] <= 1, "non-binary initial state");
    states_[i].push_back(initial_state[i]);
  }
}

void StateSeries::apply(const BinaryEvent& event) {
  CAUSALIOT_CHECK_MSG(event.device < device_count_,
                      "event device out of range");
  CAUSALIOT_CHECK_MSG(event.state <= 1, "non-binary event state");
  for (std::size_t i = 0; i < device_count_; ++i) {
    const std::uint8_t previous = states_[i].back();
    states_[i].push_back(i == event.device ? event.state : previous);
  }
  events_.push_back(event);
  ++length_;
}

std::uint8_t StateSeries::state(telemetry::DeviceId device,
                                std::size_t time) const {
  CAUSALIOT_CHECK(device < device_count_);
  CAUSALIOT_CHECK(time < length_);
  return states_[device][time];
}

std::span<const std::uint8_t> StateSeries::device_states(
    telemetry::DeviceId device) const {
  CAUSALIOT_CHECK(device < device_count_);
  return states_[device];
}

const BinaryEvent& StateSeries::event_at(std::size_t time) const {
  CAUSALIOT_CHECK_MSG(time >= 1 && time < length_, "no event at time 0");
  return events_[time - 1];
}

std::vector<std::uint8_t> StateSeries::snapshot_state(std::size_t time) const {
  CAUSALIOT_CHECK(time < length_);
  std::vector<std::uint8_t> out(device_count_);
  for (std::size_t i = 0; i < device_count_; ++i) out[i] = states_[i][time];
  return out;
}

std::span<const std::uint8_t> StateSeries::lagged_column(
    telemetry::DeviceId device, std::size_t lag,
    std::size_t first_snapshot) const {
  CAUSALIOT_CHECK(device < device_count_);
  CAUSALIOT_CHECK(lag <= first_snapshot);
  CAUSALIOT_CHECK(first_snapshot < length_);
  const std::size_t count = length_ - first_snapshot;
  return std::span<const std::uint8_t>(states_[device])
      .subspan(first_snapshot - lag, count);
}

std::pair<StateSeries, StateSeries> StateSeries::split(
    std::size_t split_event) const {
  CAUSALIOT_CHECK(split_event > 0 && split_event <= events_.size());
  StateSeries head(device_count_, snapshot_state(0));
  for (std::size_t j = 0; j < split_event; ++j) head.apply(events_[j]);
  StateSeries tail(device_count_, snapshot_state(split_event));
  for (std::size_t j = split_event; j < events_.size(); ++j) {
    tail.apply(events_[j]);
  }
  return {std::move(head), std::move(tail)};
}

StateSeries build_series(std::size_t device_count,
                         std::span<const BinaryEvent> events) {
  StateSeries series(device_count,
                     std::vector<std::uint8_t>(device_count, 0));
  for (const BinaryEvent& event : events) series.apply(event);
  return series;
}

}  // namespace causaliot::preprocess
