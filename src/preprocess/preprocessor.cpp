#include "causaliot/preprocess/preprocessor.hpp"

#include <algorithm>
#include <cmath>

#include "causaliot/obs/trace.hpp"

namespace causaliot::preprocess {

std::vector<BinaryEvent> Preprocessor::sanitize(
    const telemetry::EventLog& log, const DiscretizationModel& model,
    const std::vector<std::uint8_t>& initial_state,
    std::size_t* dropped_duplicates, std::size_t* dropped_extremes) const {
  CAUSALIOT_CHECK_MSG(initial_state.size() == log.catalog().size(),
                      "initial state size mismatch");
  std::vector<std::uint8_t> current = initial_state;
  std::vector<BinaryEvent> sanitized;
  sanitized.reserve(log.size());
  std::size_t duplicates = 0;
  std::size_t extremes = 0;

  for (const telemetry::DeviceEvent& event : log.events()) {
    if (config_.filter_extreme_values &&
        model.is_extreme(event.device, event.value, config_.sigma_k)) {
      ++extremes;
      continue;
    }
    const std::uint8_t state =
        model.discretize(event.device, event.value, current[event.device]);
    if (config_.filter_duplicate_states && state == current[event.device]) {
      ++duplicates;
      continue;
    }
    current[event.device] = state;
    sanitized.push_back({event.device, state, event.timestamp});
  }

  if (dropped_duplicates != nullptr) *dropped_duplicates = duplicates;
  if (dropped_extremes != nullptr) *dropped_extremes = extremes;
  return sanitized;
}

std::size_t Preprocessor::select_lag(double mean_inter_event_seconds) const {
  if (mean_inter_event_seconds <= 0.0) return config_.min_lag;
  const double raw =
      std::round(config_.max_feedback_seconds / mean_inter_event_seconds);
  const auto lag = static_cast<std::size_t>(std::max(raw, 1.0));
  return std::clamp(lag, config_.min_lag, config_.max_lag);
}

std::vector<BinaryEvent> Preprocessor::discretize_runtime(
    const telemetry::EventLog& log, const DiscretizationModel& model,
    double from_timestamp) const {
  std::vector<BinaryEvent> out;
  std::vector<std::uint8_t> current(log.catalog().size(), 0);
  for (const telemetry::DeviceEvent& event : log.events()) {
    if (config_.filter_extreme_values &&
        model.is_extreme(event.device, event.value, config_.sigma_k)) {
      continue;
    }
    const std::uint8_t state =
        model.discretize(event.device, event.value, current[event.device]);
    current[event.device] = state;
    if (event.timestamp < from_timestamp) continue;
    out.push_back({event.device, state, event.timestamp});
  }
  return out;
}

PreprocessResult Preprocessor::run(const telemetry::EventLog& log) const {
  const std::size_t n = log.catalog().size();
  DiscretizationModel model = [&] {
    obs::Span span("preprocess.fit", "preprocess");
    return DiscretizationModel::fit(log);
  }();

  std::size_t duplicates = 0;
  std::size_t extremes = 0;
  std::vector<BinaryEvent> sanitized = [&] {
    obs::Span span("preprocess.sanitize", "preprocess");
    return sanitize(log, model, std::vector<std::uint8_t>(n, 0), &duplicates,
                    &extremes);
  }();

  double mean_gap = 0.0;
  if (sanitized.size() >= 2) {
    mean_gap = (sanitized.back().timestamp - sanitized.front().timestamp) /
               static_cast<double>(sanitized.size() - 1);
  }

  StateSeries series = [&] {
    obs::Span span("preprocess.series", "preprocess");
    return build_series(n, sanitized);
  }();
  PreprocessResult result{std::move(model),
                          std::move(sanitized),
                          std::move(series),
                          select_lag(mean_gap),
                          log.size(),
                          duplicates,
                          extremes,
                          mean_gap};
  return result;
}

}  // namespace causaliot::preprocess
