#include "causaliot/preprocess/discretize.hpp"

#include <algorithm>

#include "causaliot/stats/descriptive.hpp"
#include "causaliot/stats/jenks.hpp"
#include "causaliot/util/check.hpp"

namespace causaliot::preprocess {

DiscretizationModel DiscretizationModel::fit(const telemetry::EventLog& log) {
  const std::size_t n = log.catalog().size();
  DiscretizationModel model;
  model.models_.resize(n);

  std::vector<std::vector<double>> readings(n);
  for (const telemetry::DeviceEvent& event : log.events()) {
    readings[event.device].push_back(event.value);
  }

  for (telemetry::DeviceId id = 0; id < n; ++id) {
    DeviceModel& dm = model.models_[id];
    dm.value_type = log.catalog().info(id).value_type;
    stats::RunningStats running;
    for (double v : readings[id]) running.add(v);
    dm.training_mean = running.mean();
    dm.training_stddev = running.stddev();
    dm.training_count = running.count();

    if (dm.value_type == telemetry::ValueType::kAmbientNumeric &&
        !readings[id].empty()) {
      // Sanitation precedes type unification (§V-A): extreme glitches must
      // not enter the natural-breaks optimization, or the far-out cluster
      // absorbs one class and the split degenerates.
      std::vector<double> inliers;
      inliers.reserve(readings[id].size());
      for (double v : readings[id]) {
        if (running.within_sigma(v, 3.0)) inliers.push_back(v);
      }
      if (!inliers.empty()) {
        stats::RunningStats inlier_stats;
        for (double v : inliers) inlier_stats.add(v);
        dm.training_mean = inlier_stats.mean();
        dm.training_stddev = inlier_stats.stddev();
        auto threshold = stats::jenks_binary_threshold(inliers);
        if (threshold.ok()) {
          dm.jenks_threshold = threshold.value();
          // Hysteresis margin from the within-class spread on each side
          // of the cut, capped so the band can never bridge the classes.
          stats::RunningStats low;
          stats::RunningStats high;
          for (double v : inliers) {
            (v <= *dm.jenks_threshold ? low : high).add(v);
          }
          if (low.count() > 1 && high.count() > 1) {
            const double spread = std::max(low.stddev(), high.stddev());
            const double separation = high.mean() - low.mean();
            dm.hysteresis_margin =
                std::min(0.75 * spread, 0.25 * separation);
          }
        }
        // else: constant readings — fall back to the mean cut.
      }
    }
  }
  return model;
}

const DiscretizationModel::DeviceModel& DiscretizationModel::device_model(
    telemetry::DeviceId id) const {
  CAUSALIOT_CHECK(id < models_.size());
  return models_[id];
}

std::uint8_t DiscretizationModel::discretize(telemetry::DeviceId id,
                                             double raw_value) const {
  const DeviceModel& dm = device_model(id);
  switch (dm.value_type) {
    case telemetry::ValueType::kBinary:
      return raw_value > 0.5 ? 1 : 0;
    case telemetry::ValueType::kResponsiveNumeric:
      return raw_value > 0.0 ? 1 : 0;
    case telemetry::ValueType::kAmbientNumeric: {
      const double cut = dm.jenks_threshold.value_or(dm.training_mean);
      return raw_value > cut ? 1 : 0;
    }
  }
  return 0;
}

std::uint8_t DiscretizationModel::discretize(
    telemetry::DeviceId id, double raw_value,
    std::uint8_t previous_state) const {
  const DeviceModel& dm = device_model(id);
  if (dm.value_type != telemetry::ValueType::kAmbientNumeric) {
    return discretize(id, raw_value);
  }
  const double cut = dm.jenks_threshold.value_or(dm.training_mean);
  const double margin = dm.hysteresis_margin;
  if (previous_state == 0) return raw_value > cut + margin ? 1 : 0;
  return raw_value < cut - margin ? 0 : 1;
}

bool DiscretizationModel::is_extreme(telemetry::DeviceId id, double raw_value,
                                     double sigma_k) const {
  const DeviceModel& dm = device_model(id);
  if (dm.value_type != telemetry::ValueType::kAmbientNumeric) return false;
  if (dm.training_count < 2) return false;
  const double lo = dm.training_mean - sigma_k * dm.training_stddev;
  const double hi = dm.training_mean + sigma_k * dm.training_stddev;
  return raw_value < lo || raw_value > hi;
}

}  // namespace causaliot::preprocess
