// Event Preprocessor (§V-A): sanitation, type unification, lag selection,
// and system-state series construction.
#pragma once

#include <cstddef>
#include <vector>

#include "causaliot/preprocess/discretize.hpp"
#include "causaliot/preprocess/series.hpp"
#include "causaliot/telemetry/event.hpp"

namespace causaliot::preprocess {

struct PreprocessorConfig {
  /// Three-sigma rule multiplier for ambient extreme-value filtering.
  double sigma_k = 3.0;
  /// Maximum feedback duration d (seconds) used by tau = d / v (§V-A).
  double max_feedback_seconds = 60.0;
  /// Clamp range for the selected lag.
  std::size_t min_lag = 1;
  std::size_t max_lag = 4;
  /// Drop events that repeat the device's current (unified) state.
  bool filter_duplicate_states = true;
  /// Drop ambient readings outside the three-sigma band.
  bool filter_extreme_values = true;
};

struct PreprocessResult {
  DiscretizationModel discretization;
  std::vector<BinaryEvent> sanitized_events;
  StateSeries series;
  /// Selected maximum time lag tau.
  std::size_t lag = 1;
  // --- sanitation diagnostics ---
  std::size_t raw_event_count = 0;
  std::size_t dropped_duplicates = 0;
  std::size_t dropped_extremes = 0;
  double mean_inter_event_seconds = 0.0;
};

class Preprocessor {
 public:
  explicit Preprocessor(PreprocessorConfig config = {}) : config_(config) {}

  const PreprocessorConfig& config() const { return config_; }

  /// Full training-time pipeline: fits the discretization model on `log`,
  /// sanitizes, selects tau, and builds the system-state series.
  PreprocessResult run(const telemetry::EventLog& log) const;

  /// Sanitizes a log against an existing (already fitted) model — the path
  /// used for held-out test traces, which must not influence thresholds.
  /// `initial_state` seeds duplicate detection (pass the training tail
  /// state); its size must equal the catalog size.
  std::vector<BinaryEvent> sanitize(
      const telemetry::EventLog& log, const DiscretizationModel& model,
      const std::vector<std::uint8_t>& initial_state,
      std::size_t* dropped_duplicates = nullptr,
      std::size_t* dropped_extremes = nullptr) const;

  /// tau = clamp(round(d / v)) where v is the mean inter-event gap of the
  /// *sanitized* events. Returns min_lag when v cannot be estimated.
  std::size_t select_lag(double mean_inter_event_seconds) const;

  /// Runtime-path discretization: maps raw events at timestamps >= `from`
  /// to binary events WITHOUT duplicate filtering (the Event Monitor
  /// consumes the live stream as-is; redundant state reports score as
  /// highly likely and keep the phantom state machine fresh). Extreme
  /// ambient readings are still dropped, as the platform's ingestion
  /// pipeline would.
  std::vector<BinaryEvent> discretize_runtime(
      const telemetry::EventLog& log, const DiscretizationModel& model,
      double from_timestamp) const;

 private:
  PreprocessorConfig config_;
};

}  // namespace causaliot::preprocess
