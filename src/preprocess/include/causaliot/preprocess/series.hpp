// System-state time series (§III).
//
// Folding a sanitized binary event stream over an initial system state
// S^0 yields the series (S^0, ..., S^m): at logical time j exactly one
// device changes state (the one reported by event e^j). The series is
// stored column-major — one state vector per *device* — so the lagged
// variable S_i^{t-l} over all snapshots is a zero-copy subspan, which is
// what the miner's conditional-independence tests consume.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "causaliot/telemetry/device.hpp"
#include "causaliot/util/check.hpp"

namespace causaliot::preprocess {

/// A sanitized, discretized event: device `device` reports binary `state`.
struct BinaryEvent {
  telemetry::DeviceId device = telemetry::kInvalidDevice;
  std::uint8_t state = 0;
  double timestamp = 0.0;  // wall-clock, kept for lag selection/diagnostics

  friend bool operator==(const BinaryEvent&, const BinaryEvent&) = default;
};

class StateSeries {
 public:
  /// Empty series (length 0, no devices); useful only as a placeholder to
  /// assign a real series into.
  StateSeries() = default;

  /// Creates a series of length 1 (just S^0 = initial_state).
  StateSeries(std::size_t device_count, std::vector<std::uint8_t> initial_state);

  /// Appends event e^{m+1}, deriving S^{m+1} from S^m.
  void apply(const BinaryEvent& event);

  std::size_t device_count() const { return device_count_; }
  /// Number of system states (m + 1): indices 0..m.
  std::size_t length() const { return length_; }
  /// Number of events applied (m).
  std::size_t event_count() const { return events_.size(); }

  /// State of device i at logical time j.
  std::uint8_t state(telemetry::DeviceId device, std::size_t time) const;

  /// Full state trajectory of one device (length == length()).
  std::span<const std::uint8_t> device_states(telemetry::DeviceId device) const;

  /// The event that produced S^j (j in [1, m]).
  const BinaryEvent& event_at(std::size_t time) const;
  const std::vector<BinaryEvent>& events() const { return events_; }

  /// System state vector S^j (copied; for baselines and the injector).
  std::vector<std::uint8_t> snapshot_state(std::size_t time) const;

  /// Column of the lagged variable S_device^{j-lag} over snapshots
  /// j = first_snapshot..m, as a zero-copy subspan. Requires
  /// lag <= first_snapshot <= m.
  std::span<const std::uint8_t> lagged_column(telemetry::DeviceId device,
                                              std::size_t lag,
                                              std::size_t first_snapshot) const;

  /// Splits at event index `split_event` (0 < split_event <= event_count):
  /// the first part contains events 1..split_event, the second the rest,
  /// with its initial state equal to S^{split_event}.
  std::pair<StateSeries, StateSeries> split(std::size_t split_event) const;

 private:
  std::size_t device_count_ = 0;
  std::size_t length_ = 0;
  std::vector<std::vector<std::uint8_t>> states_;  // [device][time]
  std::vector<BinaryEvent> events_;                // events_[j-1] made S^j
};

/// Builds a series from events with an all-zero (all idle/off) S^0.
StateSeries build_series(std::size_t device_count,
                         std::span<const BinaryEvent> events);

}  // namespace causaliot::preprocess
