// Type unification (§V-A): every device state becomes binary.
//
//   * Binary attributes map value > 0.5 to 1.
//   * Responsive-numeric attributes threshold at zero (Idle/Working).
//   * Ambient-numeric attributes split Low/High at the Jenks natural break
//     learned from the training trace.
//
// The model learned at training time must be applied verbatim to runtime
// events — the monitor and the miner have to agree on what "High" means —
// so it is a value object that can be saved with the DIG.
#pragma once

#include <optional>
#include <vector>

#include "causaliot/telemetry/event.hpp"
#include "causaliot/util/result.hpp"

namespace causaliot::preprocess {

class DiscretizationModel {
 public:
  struct DeviceModel {
    telemetry::ValueType value_type = telemetry::ValueType::kBinary;
    /// Cut point for ambient attributes (value > threshold is High);
    /// unset when the device never produced enough distinct readings,
    /// in which case the training mean is used as a fallback cut.
    std::optional<double> jenks_threshold;
    /// Dead band around the cut for the hysteresis discretizer, scaled by
    /// the within-class spread (never the inter-class distance) and capped
    /// at a quarter of the class separation.
    double hysteresis_margin = 0.0;
    double training_mean = 0.0;
    double training_stddev = 0.0;
    std::size_t training_count = 0;
  };

  /// Learns thresholds and reading statistics from a raw training log.
  static DiscretizationModel fit(const telemetry::EventLog& log);

  std::size_t device_count() const { return models_.size(); }
  const DeviceModel& device_model(telemetry::DeviceId id) const;

  /// Maps a raw reading to the unified binary state.
  std::uint8_t discretize(telemetry::DeviceId id, double raw_value) const;

  /// Hysteresis variant for ambient attributes: flipping away from
  /// `previous_state` requires crossing the cut by a margin proportional
  /// to the training spread, which debounces measurement noise around the
  /// natural break. Non-ambient attributes ignore the margin.
  std::uint8_t discretize(telemetry::DeviceId id, double raw_value,
                          std::uint8_t previous_state) const;

  /// Three-sigma rule (§V-A): true for ambient readings outside
  /// [mean - k*sigma, mean + k*sigma]. Non-ambient values are never
  /// extreme. `sigma_k` is the k (the paper uses 3).
  bool is_extreme(telemetry::DeviceId id, double raw_value,
                  double sigma_k) const;

 private:
  std::vector<DeviceModel> models_;
};

}  // namespace causaliot::preprocess
