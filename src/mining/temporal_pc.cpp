#include "causaliot/mining/temporal_pc.hpp"

#include <algorithm>
#include <optional>

#include "causaliot/mining/cause_set.hpp"
#include "causaliot/obs/trace.hpp"
#include "causaliot/stats/batch_ci.hpp"
#include "causaliot/stats/cmh.hpp"
#include "causaliot/util/check.hpp"
#include "causaliot/util/strings.hpp"

namespace causaliot::mining {

namespace {

obs::Registry& metrics_for(const MinerConfig& config) {
  return config.metrics_registry != nullptr ? *config.metrics_registry
                                            : obs::Registry::global();
}

// Which counting kernel served a level's CI tests.
enum class Kernel : std::uint8_t { kPacked, kByte, kBatched };

// Per-child CI-test tallies, flushed to the registry in one batch after
// the child's Algorithm 1 run so workers never contend on the registry
// mutex mid-level.
struct ChildTally {
  std::vector<std::uint64_t> tests_per_level;
  std::uint64_t packed_tests = 0;
  std::uint64_t byte_tests = 0;
  std::uint64_t batched_tests = 0;
  std::uint64_t batch_passes = 0;

  void note_level(std::size_t level, std::uint64_t tests, Kernel kernel) {
    if (tests == 0) return;
    if (tests_per_level.size() <= level) tests_per_level.resize(level + 1);
    tests_per_level[level] += tests;
    switch (kernel) {
      case Kernel::kPacked: packed_tests += tests; break;
      case Kernel::kByte: byte_tests += tests; break;
      case Kernel::kBatched: batched_tests += tests; break;
    }
  }

  void flush(obs::Registry& registry) const {
    static constexpr const char* kKernelHelp =
        "CI tests dispatched to the bit-packed, per-row, or batched kernel, "
        "by active SIMD backend";
    // The backend label carries the SIMD dispatch choice (scalar/avx2/
    // avx512/neon) so fleet dashboards can tell which kernel ISA actually
    // served the tests — a regression to scalar on a wide host is visible
    // as a label flip, not a silent slowdown.
    const std::string backend(
        stats::simd::backend_name(stats::simd::chosen()));
    for (std::size_t l = 0; l < tests_per_level.size(); ++l) {
      if (tests_per_level[l] == 0) continue;
      registry
          .counter("mining_ci_tests_total", {{"level", std::to_string(l)}},
                   "Conditional-independence tests per conditioning-set size")
          .add(tests_per_level[l]);
    }
    if (packed_tests > 0) {
      registry
          .counter("mining_ci_kernel_hits_total",
                   {{"kernel", "packed"}, {"backend", backend}}, kKernelHelp)
          .add(packed_tests);
    }
    if (byte_tests > 0) {
      registry
          .counter("mining_ci_kernel_hits_total",
                   {{"kernel", "byte"}, {"backend", backend}}, kKernelHelp)
          .add(byte_tests);
    }
    if (batched_tests > 0) {
      registry
          .counter("mining_ci_kernel_hits_total",
                   {{"kernel", "batched"}, {"backend", backend}}, kKernelHelp)
          .add(batched_tests);
    }
    if (batch_passes > 0) {
      registry
          .counter("mining_ci_batch_passes_total", {},
                   "Word passes executed by the batched CI counting kernel")
          .add(batch_passes);
    }
  }
};

// Enumerates all k-combinations of {0, ..., n-1}; calls fn(indices) for
// each. Returns false early if fn returns false ("stop enumeration").
template <typename Fn>
bool for_each_combination(std::size_t n, std::size_t k, Fn&& fn) {
  if (k > n) return true;
  std::vector<std::size_t> indices(k);
  for (std::size_t i = 0; i < k; ++i) indices[i] = i;
  while (true) {
    if (!fn(indices)) return false;
    // Advance to the next combination in lexicographic order.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (indices[i] != i + n - k) {
        ++indices[i];
        for (std::size_t j = i + 1; j < k; ++j) {
          indices[j] = indices[j - 1] + 1;
        }
        break;
      }
      if (i == 0) return true;  // last combination done
    }
    if (k == 0) return true;  // single empty combination
  }
}

// Raw spans plus bit-packed forms of every lagged column the CI tests can
// ask for, all aligned to first_snapshot = tau. Built once per mine() and
// shared read-only across worker threads; index (lag, device) with lag 0
// holding the present-time (child) columns.
struct ColumnCache {
  std::size_t device_count = 0;
  std::vector<std::span<const std::uint8_t>> raw;
  std::vector<stats::PackedColumn> packed;

  ColumnCache(const preprocess::StateSeries& series, std::size_t tau) {
    device_count = series.device_count();
    const std::size_t column_count = device_count * (tau + 1);
    raw.reserve(column_count);
    packed.reserve(column_count);
    for (std::uint32_t lag = 0; lag <= tau; ++lag) {
      for (telemetry::DeviceId device = 0; device < device_count; ++device) {
        raw.push_back(series.lagged_column(device, lag, tau));
        packed.emplace_back(raw.back());
      }
    }
  }

  std::size_t index_of(telemetry::DeviceId device, std::uint32_t lag) const {
    return static_cast<std::size_t>(lag) * device_count + device;
  }
  std::span<const std::uint8_t> raw_of(graph::LaggedNode node) const {
    return raw[index_of(node.device, node.lag)];
  }
  const stats::PackedColumn& packed_of(graph::LaggedNode node) const {
    return packed[index_of(node.device, node.lag)];
  }
};

// One Algorithm 1 run for a single child against a prebuilt column cache,
// reusing `context`'s scratch across every CI test.
std::vector<graph::LaggedNode> discover_causes_cached(
    const MinerConfig& config, const preprocess::StateSeries& series,
    telemetry::DeviceId child, MiningDiagnostics* diagnostics,
    const ColumnCache& cache, stats::CiTestContext& context) {
  const std::size_t n = series.device_count();
  const std::size_t tau = config.max_lag;
  CAUSALIOT_CHECK(child < n);
  CAUSALIOT_CHECK_MSG(series.length() > tau,
                      "series shorter than the maximum lag");

  // Line 5: the preliminary cause set is every lagged state, and every
  // edge is already oriented lagged -> present.
  CauseSet causes(n, tau);
  if (diagnostics != nullptr) diagnostics->candidate_edges += causes.size();

  const auto child_raw = cache.raw_of({child, 0});
  const stats::PackedColumn& child_packed = cache.packed_of({child, 0});
  const stats::GSquareOptions test_options{config.min_samples_per_dof};

  std::vector<graph::LaggedNode> pool;
  std::vector<std::span<const std::uint8_t>> z_columns;
  std::vector<const stats::PackedColumn*> z_packed;
  std::vector<stats::ColumnId> z_ids;
  ChildTally tally;

  // Batched CI counting: one lattice context per Algorithm 1 run, bound
  // to the child's present-time column, so intersection counts memoize
  // across every subset of a level and across levels (a level-l test
  // reuses the quads its sub-subsets counted at levels < l).
  std::optional<stats::BatchCiContext> batch;
  if (config.ci_batching) {
    batch.emplace(std::span<const stats::PackedColumn>(cache.packed),
                  static_cast<stats::ColumnId>(cache.index_of(child, 0)));
  }

  // Lines 6-21: level-wise conditional-independence pruning.
  std::size_t l = 0;
  while (l <= n * tau) {
    // Line 9: terminate once no conditioning set of size l can be formed.
    if (causes.size() < l + 1) break;
    if (l > config.max_condition_size) break;
    // The packed kernel's per-word cost is O(2^l); beyond the crossover it
    // loses to the per-row kernel, so fall back to raw spans. The batched
    // kernel shares the packed kernel's depth cutoff.
    const bool use_packed = l <= stats::kPackedConditioningLimit;
    const bool use_batched = batch.has_value() && use_packed;

    // One span per (child, level): the unit the trace groups mining time
    // by. Constructed only when tracing is on so the serial hot loop never
    // pays for the args string.
    std::optional<obs::Span> level_span;
    if (obs::Tracer::global().enabled()) {
      level_span.emplace(
          "tpc.level",
          util::format("\"child\": %u, \"level\": %zu",
                       static_cast<unsigned>(child), l),
          "mine");
    }
    std::uint64_t level_tests = 0;

    // Iterate over a fixed copy of the current parents. In Algorithm 1's
    // printed form removals take effect immediately; the PC-stable
    // variant defers them to the end of the level so conditioning pools
    // are order-independent.
    const std::vector<graph::LaggedNode> parents_at_level = causes.to_vector();
    std::vector<graph::LaggedNode> deferred_removals;

    // Level 0 tests every candidate's marginal table, so warm them all in
    // multi-key passes (several parents counted per sweep over the words)
    // before the per-parent loop consumes them.
    if (use_batched && l == 0) {
      z_ids.clear();
      for (const graph::LaggedNode& parent : parents_at_level) {
        z_ids.push_back(static_cast<stats::ColumnId>(
            cache.index_of(parent.device, parent.lag)));
      }
      std::optional<obs::Span> batch_span;
      if (obs::Tracer::global().enabled()) {
        batch_span.emplace(
            "tpc.ci_batch",
            util::format("\"child\": %u, \"parents\": %zu",
                         static_cast<unsigned>(child), z_ids.size()),
            "mine");
      }
      batch->prepare_marginals(z_ids);
    }
    for (const graph::LaggedNode& parent : parents_at_level) {
      // The parent may have been removed while testing an earlier one.
      if (!causes.contains(parent)) continue;

      // Candidate conditioning variables: the current causes (or, for
      // PC-stable, the level-start causes) minus the parent.
      pool.clear();
      if (config.stable) {
        for (const graph::LaggedNode& c : parents_at_level) {
          if (!(c == parent)) pool.push_back(c);
        }
      } else {
        causes.for_each([&](graph::LaggedNode c) {
          if (!(c == parent)) pool.push_back(c);
        });
      }
      if (pool.size() < l) continue;

      bool removed = false;
      for_each_combination(pool.size(), l, [&](const std::vector<std::size_t>&
                                                   subset) {
        stats::GSquareResult test;
        if (use_batched) {
          z_ids.clear();
          for (std::size_t index : subset) {
            z_ids.push_back(static_cast<stats::ColumnId>(
                cache.index_of(pool[index].device, pool[index].lag)));
          }
          const auto x_id = static_cast<stats::ColumnId>(
              cache.index_of(parent.device, parent.lag));
          if (config.ci_test == CiTest::kCmh) {
            const stats::CmhResult cmh = stats::cmh_test(*batch, x_id, z_ids);
            test.statistic = cmh.statistic;
            test.p_value = cmh.p_value;
            test.sample_count = cmh.sample_count;
            test.dof = 1.0;
          } else {
            test = stats::g_square_test(*batch, x_id, z_ids, test_options);
          }
        } else if (use_packed) {
          z_packed.clear();
          z_packed.reserve(l);
          for (std::size_t index : subset) {
            z_packed.push_back(&cache.packed_of(pool[index]));
          }
          if (config.ci_test == CiTest::kCmh) {
            const stats::CmhResult cmh = stats::cmh_test(
                cache.packed_of(parent), child_packed, z_packed, context);
            test.statistic = cmh.statistic;
            test.p_value = cmh.p_value;
            test.sample_count = cmh.sample_count;
            test.dof = 1.0;
          } else {
            test = stats::g_square_test(cache.packed_of(parent), child_packed,
                                        z_packed, test_options, context);
          }
        } else {
          z_columns.clear();
          z_columns.reserve(l);
          for (std::size_t index : subset) {
            z_columns.push_back(cache.raw_of(pool[index]));
          }
          if (config.ci_test == CiTest::kCmh) {
            const stats::CmhResult cmh = stats::cmh_test(
                cache.raw_of(parent), child_raw, z_columns, context);
            test.statistic = cmh.statistic;
            test.p_value = cmh.p_value;
            test.sample_count = cmh.sample_count;
            test.dof = 1.0;
          } else {
            test = stats::g_square_test(cache.raw_of(parent), child_raw,
                                        z_columns, test_options, context);
          }
        }
        ++level_tests;
        if (diagnostics != nullptr) ++diagnostics->tests_run;
        // A test skipped for insufficient samples carries no evidence of
        // independence — only a *valid* test may remove the edge.
        if (test.p_value > config.alpha && !test.skipped_insufficient_data) {
          // Independent given this set: remove the edge (Line 16).
          if (diagnostics != nullptr) {
            RemovalRecord record;
            record.cause = parent;
            record.child = child;
            record.condition_size = l;
            record.p_value = test.p_value;
            for (std::size_t index : subset) {
              record.separating_set.push_back(pool[index]);
            }
            diagnostics->removals.push_back(std::move(record));
          }
          removed = true;
          return false;  // stop enumerating subsets for this parent
        }
        return true;
      });
      if (removed) {
        if (config.stable) {
          deferred_removals.push_back(parent);
        } else {
          causes.remove(parent);
        }
      }
    }
    for (const graph::LaggedNode& parent : deferred_removals) {
      causes.remove(parent);
    }
    tally.note_level(l, level_tests,
                     use_batched ? Kernel::kBatched
                                 : use_packed ? Kernel::kPacked : Kernel::kByte);
    ++l;
  }
  if (batch.has_value()) tally.batch_passes = batch->pass_count();
  tally.flush(metrics_for(config));

  // CauseSet iterates lag-major, which is already LaggedNode's canonical
  // order; the sort stays as a belt-and-braces invariant.
  std::vector<graph::LaggedNode> result = causes.to_vector();
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace

std::size_t MiningDiagnostics::removed_marginal() const {
  return static_cast<std::size_t>(
      std::count_if(removals.begin(), removals.end(),
                    [](const RemovalRecord& r) {
                      return r.condition_size == 0;
                    }));
}

std::size_t MiningDiagnostics::removed_conditional() const {
  return removals.size() - removed_marginal();
}

InteractionMiner::InteractionMiner(MinerConfig config) : config_(config) {
  CAUSALIOT_CHECK_MSG(config_.max_lag >= 1, "max_lag must be >= 1");
  CAUSALIOT_CHECK_MSG(config_.alpha > 0.0 && config_.alpha < 1.0,
                      "alpha must be in (0, 1)");
}

std::vector<graph::LaggedNode> InteractionMiner::discover_causes(
    const preprocess::StateSeries& series, telemetry::DeviceId child,
    MiningDiagnostics* diagnostics) const {
  CAUSALIOT_CHECK_MSG(series.length() > config_.max_lag,
                      "series shorter than the maximum lag");
  const ColumnCache cache(series, config_.max_lag);
  stats::CiTestContext context;
  return discover_causes_cached(config_, series, child, diagnostics, cache,
                                context);
}

graph::InteractionGraph InteractionMiner::mine(
    const preprocess::StateSeries& series, MiningDiagnostics* diagnostics,
    util::ThreadPool* pool) const {
  const std::size_t n = series.device_count();
  graph::InteractionGraph graph(n, config_.max_lag);
  CAUSALIOT_CHECK_MSG(series.length() > config_.max_lag,
                      "series shorter than the maximum lag");
  std::optional<obs::Span> columns_span;
  if (obs::Tracer::global().enabled()) {
    columns_span.emplace("mine.columns", "mine");
  }
  const ColumnCache cache(series, config_.max_lag);
  columns_span.reset();

  // Each child's discovery is independent: workers write only their own
  // slot, so any schedule produces the serial result. Diagnostics are
  // collected per child and merged in child order below — the exact
  // sequence the serial loop would have appended.
  std::vector<std::vector<graph::LaggedNode>> causes_per_child(n);
  std::vector<MiningDiagnostics> diagnostics_per_child(
      diagnostics != nullptr ? n : 0);

  std::optional<util::ThreadPool> own_pool;
  if (pool == nullptr && util::resolve_thread_count(config_.threads) > 1) {
    own_pool.emplace(config_.threads);
    pool = &*own_pool;
  }
  util::parallel_for(pool, 0, n, [&](std::size_t child) {
    // Worker attribution: the span lands in the executing thread's buffer,
    // so the trace shows which pool worker mined which child.
    std::optional<obs::Span> child_span;
    if (obs::Tracer::global().enabled()) {
      child_span.emplace("tpc.child", util::format("\"child\": %zu", child),
                         "mine");
    }
    stats::CiTestContext context;
    causes_per_child[child] = discover_causes_cached(
        config_, series, static_cast<telemetry::DeviceId>(child),
        diagnostics != nullptr ? &diagnostics_per_child[child] : nullptr,
        cache, context);
  });

  for (telemetry::DeviceId child = 0; child < n; ++child) {
    graph.set_causes(child, std::move(causes_per_child[child]));
    if (diagnostics != nullptr) {
      MiningDiagnostics& local = diagnostics_per_child[child];
      diagnostics->tests_run += local.tests_run;
      diagnostics->candidate_edges += local.candidate_edges;
      diagnostics->removals.insert(
          diagnostics->removals.end(),
          std::make_move_iterator(local.removals.begin()),
          std::make_move_iterator(local.removals.end()));
    }
  }
  estimate_cpts(series, graph, pool);
  return graph;
}

void InteractionMiner::estimate_cpts(const preprocess::StateSeries& series,
                                     graph::InteractionGraph& graph,
                                     util::ThreadPool* pool) const {
  const std::size_t tau = config_.max_lag;
  CAUSALIOT_CHECK(series.length() > tau);
  CAUSALIOT_CHECK(graph.device_count() == series.device_count());
  obs::Span cpt_span("mine.cpt", "mine");

  std::optional<util::ThreadPool> own_pool;
  if (pool == nullptr && util::resolve_thread_count(config_.threads) > 1) {
    own_pool.emplace(config_.threads);
    pool = &*own_pool;
  }
  // One task per child: each touches only its own Cpt, and within a child
  // the snapshots are walked in serial order, so the counts match the
  // serial pass bit-for-bit under any schedule.
  util::parallel_for(pool, 0, graph.device_count(), [&](std::size_t c) {
    std::optional<obs::Span> child_span;
    if (obs::Tracer::global().enabled()) {
      child_span.emplace("cpt.child", util::format("\"child\": %zu", c),
                         "mine");
    }
    const auto child = static_cast<telemetry::DeviceId>(c);
    graph::Cpt& cpt = graph.cpt(child);
    const std::size_t cause_count = cpt.cause_count();

    // Fast path for a fresh table with a small key space: accumulate
    // integer counts in a dense local array and install each assignment
    // once. Counts are exact integers either way, so the resulting
    // doubles match the per-row observe() path bit for bit — but only
    // from zero; a pre-scaled table (update_cpts) accumulates doubles
    // row by row, whose rounding the batch sum would not reproduce.
    constexpr std::size_t kDenseCptCauseLimit = 10;
    if (cpt.assignment_count() == 0 && cause_count <= kDenseCptCauseLimit) {
      const std::size_t rows = series.length() - tau;
      std::vector<std::span<const std::uint8_t>> columns;
      columns.reserve(cause_count);
      for (const graph::LaggedNode& cause : cpt.causes()) {
        columns.push_back(series.lagged_column(cause.device, cause.lag, tau));
      }
      const auto child_column = series.lagged_column(child, 0, tau);
      // Validate once per column so the gather loop can index unchecked.
      std::uint8_t bad = 0;
      for (std::size_t r = 0; r < rows; ++r) bad |= child_column[r] >> 1;
      for (const auto& column : columns) {
        for (std::size_t r = 0; r < rows; ++r) bad |= column[r] >> 1;
      }
      CAUSALIOT_CHECK_MSG(bad == 0, "non-binary state value");
      std::vector<std::uint64_t> local((std::size_t{2} << cause_count), 0);
      for (std::size_t r = 0; r < rows; ++r) {
        std::uint64_t key = 0;
        for (std::size_t i = 0; i < cause_count; ++i) {
          key |= static_cast<std::uint64_t>(columns[i][r]) << i;
        }
        ++local[key * 2 + child_column[r]];
      }
      for (std::uint64_t key = 0; key * 2 < local.size(); ++key) {
        const std::uint64_t count0 = local[key * 2];
        const std::uint64_t count1 = local[key * 2 + 1];
        if (count0 == 0 && count1 == 0) continue;
        cpt.set_counts(key, static_cast<double>(count0),
                       static_cast<double>(count1));
      }
      return;
    }

    std::vector<std::uint8_t> cause_values;
    for (std::size_t j = tau; j < series.length(); ++j) {
      cause_values.clear();
      for (const graph::LaggedNode& cause : cpt.causes()) {
        cause_values.push_back(series.state(cause.device, j - cause.lag));
      }
      cpt.observe(cpt.pack(cause_values), series.state(child, j));
    }
  });
  metrics_for(config_)
      .counter("mining_cpt_updates_total", {},
               "CPT observations folded in by estimate_cpts / update_cpts")
      .add(static_cast<std::uint64_t>(graph.device_count()) *
           (series.length() - tau));
}

void InteractionMiner::update_cpts(const preprocess::StateSeries& series,
                                   graph::InteractionGraph& graph,
                                   double forget_factor,
                                   util::ThreadPool* pool) const {
  for (telemetry::DeviceId child = 0; child < graph.device_count(); ++child) {
    graph.cpt(child).scale(forget_factor);
  }
  estimate_cpts(series, graph, pool);
}

}  // namespace causaliot::mining
