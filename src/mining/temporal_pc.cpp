#include "causaliot/mining/temporal_pc.hpp"

#include <algorithm>

#include "causaliot/stats/cmh.hpp"
#include "causaliot/util/check.hpp"

namespace causaliot::mining {

namespace {

// Enumerates all k-combinations of {0, ..., n-1}; calls fn(indices) for
// each. Returns false early if fn returns false ("stop enumeration").
template <typename Fn>
bool for_each_combination(std::size_t n, std::size_t k, Fn&& fn) {
  if (k > n) return true;
  std::vector<std::size_t> indices(k);
  for (std::size_t i = 0; i < k; ++i) indices[i] = i;
  while (true) {
    if (!fn(indices)) return false;
    // Advance to the next combination in lexicographic order.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (indices[i] != i + n - k) {
        ++indices[i];
        for (std::size_t j = i + 1; j < k; ++j) {
          indices[j] = indices[j - 1] + 1;
        }
        break;
      }
      if (i == 0) return true;  // last combination done
    }
    if (k == 0) return true;  // single empty combination
  }
}

}  // namespace

std::size_t MiningDiagnostics::removed_marginal() const {
  return static_cast<std::size_t>(
      std::count_if(removals.begin(), removals.end(),
                    [](const RemovalRecord& r) {
                      return r.condition_size == 0;
                    }));
}

std::size_t MiningDiagnostics::removed_conditional() const {
  return removals.size() - removed_marginal();
}

InteractionMiner::InteractionMiner(MinerConfig config) : config_(config) {
  CAUSALIOT_CHECK_MSG(config_.max_lag >= 1, "max_lag must be >= 1");
  CAUSALIOT_CHECK_MSG(config_.alpha > 0.0 && config_.alpha < 1.0,
                      "alpha must be in (0, 1)");
}

std::vector<graph::LaggedNode> InteractionMiner::discover_causes(
    const preprocess::StateSeries& series, telemetry::DeviceId child,
    MiningDiagnostics* diagnostics) const {
  const std::size_t n = series.device_count();
  const std::size_t tau = config_.max_lag;
  CAUSALIOT_CHECK(child < n);
  CAUSALIOT_CHECK_MSG(series.length() > tau,
                      "series shorter than the maximum lag");

  // Line 5: the preliminary cause set is every lagged state, and every
  // edge is already oriented lagged -> present.
  std::vector<graph::LaggedNode> causes;
  causes.reserve(n * tau);
  for (std::uint32_t lag = 1; lag <= tau; ++lag) {
    for (telemetry::DeviceId device = 0; device < n; ++device) {
      causes.push_back({device, lag});
    }
  }
  if (diagnostics != nullptr) diagnostics->candidate_edges += causes.size();

  const auto child_column = series.lagged_column(child, 0, tau);
  const auto column_of = [&](const graph::LaggedNode& node) {
    return series.lagged_column(node.device, node.lag, tau);
  };
  const stats::GSquareOptions test_options{config_.min_samples_per_dof};

  // Lines 6-21: level-wise conditional-independence pruning.
  std::size_t l = 0;
  while (l <= n * tau) {
    // Line 9: terminate once no conditioning set of size l can be formed.
    if (causes.size() < l + 1) break;
    if (l > config_.max_condition_size) break;

    // Iterate over a fixed copy of the current parents. In Algorithm 1's
    // printed form removals take effect immediately; the PC-stable
    // variant defers them to the end of the level so conditioning pools
    // are order-independent.
    const std::vector<graph::LaggedNode> parents_at_level = causes;
    std::vector<graph::LaggedNode> deferred_removals;
    for (const graph::LaggedNode& parent : parents_at_level) {
      // The parent may have been removed while testing an earlier one.
      auto parent_it = std::find(causes.begin(), causes.end(), parent);
      if (parent_it == causes.end()) continue;

      // Candidate conditioning variables: the current causes (or, for
      // PC-stable, the level-start causes) minus the parent.
      const std::vector<graph::LaggedNode>& pool_source =
          config_.stable ? parents_at_level : causes;
      std::vector<graph::LaggedNode> pool;
      pool.reserve(pool_source.size());
      for (const graph::LaggedNode& c : pool_source) {
        if (!(c == parent)) pool.push_back(c);
      }
      if (pool.size() < l) continue;

      const auto parent_column = column_of(parent);
      bool removed = false;
      for_each_combination(pool.size(), l, [&](const std::vector<std::size_t>&
                                                   subset) {
        std::vector<std::span<const std::uint8_t>> z_columns;
        z_columns.reserve(l);
        for (std::size_t index : subset) {
          z_columns.push_back(column_of(pool[index]));
        }
        stats::GSquareResult test;
        if (config_.ci_test == CiTest::kCmh) {
          const stats::CmhResult cmh =
              stats::cmh_test(parent_column, child_column, z_columns);
          test.statistic = cmh.statistic;
          test.p_value = cmh.p_value;
          test.sample_count = cmh.sample_count;
          test.dof = 1.0;
        } else {
          test = stats::g_square_test(parent_column, child_column, z_columns,
                                      test_options);
        }
        if (diagnostics != nullptr) ++diagnostics->tests_run;
        // A test skipped for insufficient samples carries no evidence of
        // independence — only a *valid* test may remove the edge.
        if (test.p_value > config_.alpha && !test.skipped_insufficient_data) {
          // Independent given this set: remove the edge (Line 16).
          if (diagnostics != nullptr) {
            RemovalRecord record;
            record.cause = parent;
            record.child = child;
            record.condition_size = l;
            record.p_value = test.p_value;
            for (std::size_t index : subset) {
              record.separating_set.push_back(pool[index]);
            }
            diagnostics->removals.push_back(std::move(record));
          }
          removed = true;
          return false;  // stop enumerating subsets for this parent
        }
        return true;
      });
      if (removed) {
        if (config_.stable) {
          deferred_removals.push_back(parent);
        } else {
          causes.erase(std::find(causes.begin(), causes.end(), parent));
        }
      }
    }
    for (const graph::LaggedNode& parent : deferred_removals) {
      causes.erase(std::find(causes.begin(), causes.end(), parent));
    }
    ++l;
  }

  std::sort(causes.begin(), causes.end());
  return causes;
}

graph::InteractionGraph InteractionMiner::mine(
    const preprocess::StateSeries& series,
    MiningDiagnostics* diagnostics) const {
  graph::InteractionGraph graph(series.device_count(), config_.max_lag);
  for (telemetry::DeviceId child = 0; child < series.device_count();
       ++child) {
    graph.set_causes(child, discover_causes(series, child, diagnostics));
  }
  estimate_cpts(series, graph);
  return graph;
}

void InteractionMiner::estimate_cpts(const preprocess::StateSeries& series,
                                     graph::InteractionGraph& graph) const {
  const std::size_t tau = config_.max_lag;
  CAUSALIOT_CHECK(series.length() > tau);
  CAUSALIOT_CHECK(graph.device_count() == series.device_count());

  std::vector<std::uint8_t> cause_values;
  for (telemetry::DeviceId child = 0; child < graph.device_count(); ++child) {
    graph::Cpt& cpt = graph.cpt(child);
    for (std::size_t j = tau; j < series.length(); ++j) {
      cause_values.clear();
      for (const graph::LaggedNode& cause : cpt.causes()) {
        cause_values.push_back(series.state(cause.device, j - cause.lag));
      }
      cpt.observe(cpt.pack(cause_values), series.state(child, j));
    }
  }
}

void InteractionMiner::update_cpts(const preprocess::StateSeries& series,
                                   graph::InteractionGraph& graph,
                                   double forget_factor) const {
  for (telemetry::DeviceId child = 0; child < graph.device_count(); ++child) {
    graph.cpt(child).scale(forget_factor);
  }
  estimate_cpts(series, graph);
}

}  // namespace causaliot::mining
