// Indexed candidate-cause set for TemporalPC.
//
// Algorithm 1 starts from the full grid of lagged candidates
// {(device, lag) : device < n, lag in [1, tau]} and only ever *removes*
// members. Keying each node to the dense index (lag - 1) * n + device
// gives O(1) membership tests and removals via an alive-flag array,
// replacing the O(|Ca|) std::find scans the level-wise loop used to run
// per parent (three per tested edge). Iteration order is the canonical
// enumeration order (lag-major, then device) — the exact order the
// original vector preserved across erasures, so skeletons are unchanged.
#pragma once

#include <cstddef>
#include <vector>

#include "causaliot/graph/cpt.hpp"
#include "causaliot/util/check.hpp"

namespace causaliot::mining {

class CauseSet {
 public:
  /// Starts full: every (device, lag) with device < device_count and
  /// lag in [1, max_lag] is a member.
  CauseSet(std::size_t device_count, std::size_t max_lag)
      : device_count_(device_count),
        max_lag_(max_lag),
        alive_(device_count * max_lag, 1),
        size_(device_count * max_lag) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Dense index of `node` in canonical enumeration order.
  std::size_t index_of(graph::LaggedNode node) const {
    CAUSALIOT_CHECK(node.device < device_count_);
    CAUSALIOT_CHECK(node.lag >= 1 && node.lag <= max_lag_);
    return (node.lag - 1) * device_count_ + node.device;
  }

  bool contains(graph::LaggedNode node) const {
    return alive_[index_of(node)] != 0;
  }

  /// Removes `node`; must currently be a member (CHECKed — Algorithm 1
  /// never removes an edge twice).
  void remove(graph::LaggedNode node) {
    std::uint8_t& flag = alive_[index_of(node)];
    CAUSALIOT_CHECK_MSG(flag != 0, "removing a non-member cause");
    flag = 0;
    --size_;
  }

  /// Visits members in canonical (lag-major, then device) order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::size_t index = 0;
    for (std::uint32_t lag = 1; lag <= max_lag_; ++lag) {
      for (telemetry::DeviceId device = 0; device < device_count_; ++device) {
        if (alive_[index++] != 0) fn(graph::LaggedNode{device, lag});
      }
    }
  }

  /// Members in canonical (lag-major, then device) order.
  std::vector<graph::LaggedNode> to_vector() const {
    std::vector<graph::LaggedNode> members;
    members.reserve(size_);
    std::size_t index = 0;
    for (std::uint32_t lag = 1; lag <= max_lag_; ++lag) {
      for (telemetry::DeviceId device = 0; device < device_count_; ++device) {
        if (alive_[index++] != 0) members.push_back({device, lag});
      }
    }
    return members;
  }

 private:
  std::size_t device_count_ = 0;
  std::size_t max_lag_ = 0;
  std::vector<std::uint8_t> alive_;
  std::size_t size_ = 0;
};

}  // namespace causaliot::mining
