// Interaction Miner (§V-B): the TemporalPC algorithm plus MLE CPT
// estimation.
//
// TemporalPC is a PC variant specialized for the temporal setting: the
// candidate causes of a present-time state S_i^t are all lagged states
// S_k^{t-l} (l in [1, tau]), every edge is oriented lagged -> present by
// construction (no Meek rules), and edges are pruned by level-wise
// G-square conditional-independence tests exactly as in Algorithm 1.
#pragma once

#include <cstddef>
#include <vector>

#include "causaliot/graph/dig.hpp"
#include "causaliot/obs/registry.hpp"
#include "causaliot/preprocess/series.hpp"
#include "causaliot/stats/gsquare.hpp"
#include "causaliot/util/thread_pool.hpp"

namespace causaliot::mining {

enum class CiTest : std::uint8_t {
  kGSquare,  // likelihood-ratio test, dof per stratum (the paper's choice)
  kCmh,      // Cochran–Mantel–Haenszel: pooled 1-dof stratified test,
             // more power on sparse strata, direction-consistent effects
};

struct MinerConfig {
  /// Maximum time lag tau (>= 1).
  std::size_t max_lag = 2;
  /// Significance threshold alpha for the G-square p-value: the edge is
  /// removed (variables judged independent) when p > alpha. The paper uses
  /// 0.001 for stringent tests.
  double alpha = 0.001;
  /// Forwarded to the G-square test; 0 disables the small-sample guard.
  double min_samples_per_dof = 0.0;
  /// Optional cap on the conditioning-set size l (scalability escape
  /// hatch, §V-D); the default runs Algorithm 1's natural termination.
  std::size_t max_condition_size = static_cast<std::size_t>(-1);
  /// PC-stable variant (Colombo & Maathuis): removal decisions within one
  /// level are computed against the level-start cause set and applied at
  /// the end of the level, making the skeleton independent of the order
  /// in which parents are tested. Algorithm 1 as printed removes
  /// immediately (the default).
  bool stable = false;
  /// Conditional-independence test statistic.
  CiTest ci_test = CiTest::kGSquare;
  /// Batched multi-subset CI counting (stats::BatchCiContext): memoizes
  /// column-intersection counts across the conditioning subsets of a
  /// level and assembles stratum tables by exact-integer lattice
  /// marginalization, so statistics, p-values, and the final DIG are
  /// bit-identical to the per-subset kernels. Applies at levels the
  /// packed kernel covers (l <= stats::kPackedConditioningLimit); deeper
  /// levels fall back to the per-row kernel either way. Off = always use
  /// the per-subset kernels (--ci-batch=0 escape hatch).
  bool ci_batching = true;
  /// Worker threads for mine(): children are discovered in parallel (each
  /// child's Algorithm 1 run is independent, so the result is identical to
  /// the serial run). 1 = serial; 0 = hardware concurrency.
  std::size_t threads = 1;
  /// Registry receiving mining metrics: CI tests per conditioning level
  /// (mining_ci_tests_total{level}), kernel dispatch with the active SIMD
  /// backend (mining_ci_kernel_hits_total{kernel,backend}), and CPT counts
  /// (mining_cpt_updates_total). nullptr uses obs::Registry::global().
  /// Counters are accumulated locally and flushed once per child, so the
  /// registry mutex never sits on the per-test path.
  obs::Registry* metrics_registry = nullptr;
};

/// Why a candidate edge was removed — the paper distinguishes marginally
/// independent candidates from spurious interactions explained away by a
/// conditioning set (intermediate factor / common cause).
struct RemovalRecord {
  graph::LaggedNode cause;
  telemetry::DeviceId child = telemetry::kInvalidDevice;
  /// Size of the separating set (0 = marginally independent).
  std::size_t condition_size = 0;
  double p_value = 1.0;
  std::vector<graph::LaggedNode> separating_set;
};

struct MiningDiagnostics {
  std::size_t tests_run = 0;
  std::size_t candidate_edges = 0;
  std::vector<RemovalRecord> removals;

  std::size_t removed_marginal() const;
  std::size_t removed_conditional() const;
};

class InteractionMiner {
 public:
  explicit InteractionMiner(MinerConfig config = {});

  const MinerConfig& config() const { return config_; }

  /// Algorithm 1 for a single outcome: returns Ca(S_child^t).
  std::vector<graph::LaggedNode> discover_causes(
      const preprocess::StateSeries& series, telemetry::DeviceId child,
      MiningDiagnostics* diagnostics = nullptr) const;

  /// Full DIG construction: skeleton for every device + CPT estimation.
  /// With config().threads != 1 the per-child discovery runs on a worker
  /// pool; skeleton, CPTs, and diagnostics (merged in child order) are
  /// bit-identical to the serial run. Pass `pool` to reuse an existing
  /// pool across mines (its size then overrides config().threads).
  graph::InteractionGraph mine(const preprocess::StateSeries& series,
                               MiningDiagnostics* diagnostics = nullptr,
                               util::ThreadPool* pool = nullptr) const;

  /// MLE CPT estimation over all snapshots (counts of child state per
  /// cause assignment). Adds on top of any existing counts; mine() calls
  /// it exactly once on fresh tables. Per-child tables are independent
  /// (each worker touches only its child's Cpt), so with a pool — or
  /// config().threads != 1, which spins one up — counts are bit-identical
  /// to the serial pass.
  void estimate_cpts(const preprocess::StateSeries& series,
                     graph::InteractionGraph& graph,
                     util::ThreadPool* pool = nullptr) const;

  /// Online adaptation to behavioural drift (the paper's main source of
  /// false alarms): decays the existing CPT counts by `forget_factor`
  /// and folds in fresh observations from `series`, keeping the skeleton
  /// fixed. forget_factor = 1 keeps all history. Parallelizes like
  /// estimate_cpts.
  void update_cpts(const preprocess::StateSeries& series,
                   graph::InteractionGraph& graph,
                   double forget_factor = 0.9,
                   util::ThreadPool* pool = nullptr) const;

 private:
  MinerConfig config_;
};

}  // namespace causaliot::mining
