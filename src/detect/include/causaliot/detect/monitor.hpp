// Event Monitor (§V-C): anomaly scoring (Eq. 1), the score-threshold
// calculator, and k-sequence anomaly detection (Algorithm 2).
#pragma once

#include <optional>
#include <vector>

#include "causaliot/detect/phantom_state_machine.hpp"
#include "causaliot/graph/dig.hpp"
#include "causaliot/preprocess/series.hpp"
#include "causaliot/util/thread_pool.hpp"

namespace causaliot::detect {

struct MonitorConfig {
  /// Score threshold c (Definition 2); compute with ThresholdCalculator.
  double score_threshold = 0.99;
  /// Maximum anomaly-list length k_max (>= 1). 1 = contextual-only.
  std::size_t k_max = 1;
  /// Laplace smoothing for CPT lookups; 0 is the paper's pure MLE.
  double laplace_alpha = 0.0;
};

/// One event in a reported anomaly list W, with the interpretation context
/// (values of the event's causes) the paper attaches for root-cause hints.
struct AnomalyEntry {
  preprocess::BinaryEvent event;
  /// Ordinal of the event in the monitored stream (0-based).
  std::size_t stream_index = 0;
  double score = 0.0;
  std::vector<graph::LaggedNode> causes;
  std::vector<std::uint8_t> cause_values;
};

/// An alarm raised by Algorithm 2. entries[0] is the contextual anomaly;
/// any further entries are the tracked collective anomaly.
struct AnomalyReport {
  std::vector<AnomalyEntry> entries;
  /// True when tracking stopped because an abrupt high-score event arrived
  /// (as opposed to reaching k_max).
  bool ended_by_abrupt_event = false;

  const AnomalyEntry& contextual() const { return entries.front(); }
  std::size_t chain_length() const { return entries.size(); }
};

/// Computes the per-event anomaly scores of a training series under a DIG —
/// the score distribution from which the q-th percentile threshold is drawn
/// (§V-C, score threshold calculator).
class ThresholdCalculator {
 public:
  /// Scores events e^j for j in [max_lag, m] of `series` under `graph`.
  /// Each event's score depends only on the immutable series and graph
  /// and is written to its own output slot, so with a `pool` the snapshot
  /// range is chunked across workers with bit-identical results.
  static std::vector<double> training_scores(
      const graph::InteractionGraph& graph,
      const preprocess::StateSeries& series, double laplace_alpha = 0.0,
      util::ThreadPool* pool = nullptr);

  /// The q-th percentile (q in [0, 100], paper default 99) of the scores.
  static double threshold_at_percentile(std::vector<double> scores, double q);
};

/// The monitor's full runtime state, decoupled from any particular DIG:
/// the phantom state machine's lagged window, the pending Algorithm 2
/// anomaly list W, and the stream position. A serving session exports it
/// before a hot model swap and seeds a monitor over the new graph with
/// it, so detection continues mid-stream without losing tracked context.
struct MonitorState {
  /// Lagged system states, newest first (index = lag).
  std::vector<std::vector<std::uint8_t>> lagged_states;
  /// Pending anomaly list W (entries carry their own cause copies).
  std::vector<AnomalyEntry> window;
  std::size_t events_processed = 0;
};

class EventMonitor {
 public:
  /// `initial_state` seeds the phantom state machine — pass the final
  /// training-trace system state when monitoring its continuation.
  EventMonitor(const graph::InteractionGraph& graph, MonitorConfig config,
               std::vector<std::uint8_t> initial_state);

  /// Resumes from an exported MonitorState under a (possibly different)
  /// graph. The state window is re-fitted to the new graph's max_lag;
  /// device counts must match.
  EventMonitor(const graph::InteractionGraph& graph, MonitorConfig config,
               MonitorState state);

  /// Snapshot of the runtime state for transplant onto another graph.
  MonitorState export_state() const;

  const MonitorConfig& config() const { return config_; }
  const PhantomStateMachine& state_machine() const { return machine_; }

  /// Anomaly score (Eq. 1) of the event, updating the state machine.
  /// Exposed for threshold sweeps; process() is the full Algorithm 2 step.
  double score_event(const preprocess::BinaryEvent& event);

  /// One Algorithm 2 iteration. Returns a report when an alarm fires.
  std::optional<AnomalyReport> process(const preprocess::BinaryEvent& event);

  /// Flushes a pending (shorter than k_max) anomaly list at end of stream.
  /// Algorithm 2 leaves such a list un-reported; real deployments flush it.
  std::optional<AnomalyReport> finish();

  /// Events processed so far.
  std::size_t events_processed() const { return events_processed_; }

  /// Anomaly score of the most recent score_event()/process() call — the
  /// signal model-health telemetry tracks without re-scoring. 0 before
  /// the first event.
  double last_score() const { return last_score_; }

 private:
  AnomalyEntry make_entry(const preprocess::BinaryEvent& event, double score,
                          std::vector<std::uint8_t> cause_values) const;

  const graph::InteractionGraph& graph_;
  MonitorConfig config_;
  PhantomStateMachine machine_;
  std::vector<AnomalyEntry> window_;  // W in Algorithm 2
  std::size_t events_processed_ = 0;
  double last_score_ = 0.0;
};

}  // namespace causaliot::detect
