// Human-readable anomaly interpretation.
//
// The paper's interpretability claim (§I, §VI-C) is that the interaction
// context — the values of an anomalous event's causes — explains *why* the
// event was flagged and hints at the root cause: "the light turned on, but
// no presence was detected in the bedroom". This module renders
// AnomalyReports into that kind of prose using the device catalog.
#pragma once

#include <string>

#include "causaliot/detect/monitor.hpp"
#include "causaliot/detect/root_cause.hpp"
#include "causaliot/telemetry/device.hpp"

namespace causaliot::detect {

/// One line for a single entry: event, score, and its cause context,
/// e.g. `power_stove -> ON (score 0.998) given pe_bathroom(t-1)=OFF`.
std::string describe_entry(const AnomalyEntry& entry,
                           const telemetry::DeviceCatalog& catalog);

/// Multi-line report: the contextual anomaly first, then the tracked
/// chain, then the ranked root causes and a hint derived from
/// `attribution` (top candidate + walk). Single-entry reports keep the
/// classic context-mismatch hint — the rank-1 fallback.
std::string describe_report(const AnomalyReport& report,
                            const telemetry::DeviceCatalog& catalog,
                            const RootCauseAttribution& attribution);

/// Convenience overload: attributes the report from its recorded entry
/// context alone (no structural DIG walks). Callers holding the scoring
/// graph should attribute_root_cause() themselves and pass it in.
std::string describe_report(const AnomalyReport& report,
                            const telemetry::DeviceCatalog& catalog);

/// The attribution-derived hint alone: the top-ranked candidate and the
/// walk that reached it. Falls back to root_cause_hint for single-entry
/// reports or an empty attribution.
std::string attribution_hint(const AnomalyReport& report,
                             const RootCauseAttribution& attribution,
                             const telemetry::DeviceCatalog& catalog);

/// The root-cause hint alone: which cause values made the event
/// surprising ("no presence was detected, yet the plug activated").
/// Also the provenance `hint` field of the serving alarm JSONL.
std::string root_cause_hint(const AnomalyEntry& entry,
                            const telemetry::DeviceCatalog& catalog);

/// State rendering respecting the attribute class: ON/OFF for actuators,
/// detected/clear for presence, open/closed for contacts, High/Low for
/// ambient sensors, working/idle for responsive meters.
std::string state_label(const telemetry::DeviceInfo& info,
                        std::uint8_t state);

}  // namespace causaliot::detect
