// Alarm aggregation between the Event Monitor and the user's notification
// channel.
//
// A raw Algorithm-2 alarm stream is too chatty for the "notify me at once"
// use case the paper motivates (§I): a glitching sensor or a drifted habit
// can raise the same alarm every few minutes. The sink deduplicates by
// anomaly signature within a cool-down window, grades severity from the
// anomaly score, and keeps counters for an operations dashboard.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "causaliot/detect/monitor.hpp"

namespace causaliot::detect {

enum class AlarmSeverity : std::uint8_t {
  kNotice,    // just over the threshold
  kWarning,   // clearly anomalous
  kCritical,  // (near-)impossible under the learned behaviour
};

struct SinkConfig {
  /// Suppress repeat alarms with the same signature (head device + state)
  /// arriving within this window (seconds of event time).
  double dedup_window_s = 600.0;
  /// Score boundaries for severity grading.
  double warning_score = 0.995;
  double critical_score = 0.9999;
};

struct SunkAlarm {
  AnomalyReport report;
  AlarmSeverity severity = AlarmSeverity::kNotice;
  /// How many identical-signature alarms were suppressed since the last
  /// one that passed through.
  std::size_t suppressed_duplicates = 0;
};

class AlarmSink {
 public:
  explicit AlarmSink(SinkConfig config = {});

  /// Offers an alarm; returns the decorated alarm if it should be
  /// delivered, or nullopt if it was deduplicated.
  std::optional<SunkAlarm> offer(AnomalyReport report);

  std::size_t delivered() const { return delivered_; }
  std::size_t suppressed() const { return suppressed_; }

  /// Alarms delivered per head device (dashboard counter).
  const std::unordered_map<telemetry::DeviceId, std::size_t>&
  delivered_by_device() const {
    return delivered_by_device_;
  }

  AlarmSeverity grade(double score) const;

 private:
  struct Signature {
    double last_delivered_ts = -1e300;
    std::size_t suppressed_since = 0;
  };

  SinkConfig config_;
  std::unordered_map<std::uint64_t, Signature> signatures_;
  std::unordered_map<telemetry::DeviceId, std::size_t> delivered_by_device_;
  std::size_t delivered_ = 0;
  std::size_t suppressed_ = 0;
};

}  // namespace causaliot::detect
