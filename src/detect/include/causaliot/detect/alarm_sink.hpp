// Alarm aggregation between the Event Monitor and the user's notification
// channel.
//
// A raw Algorithm-2 alarm stream is too chatty for the "notify me at once"
// use case the paper motivates (§I): a glitching sensor or a drifted habit
// can raise the same alarm every few minutes. The sink deduplicates by
// anomaly signature within a cool-down window, grades severity from the
// anomaly score, and keeps counters for an operations dashboard.
#pragma once

#include <cstddef>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "causaliot/detect/monitor.hpp"

namespace causaliot::detect {

enum class AlarmSeverity : std::uint8_t {
  kNotice,    // just over the threshold
  kWarning,   // clearly anomalous
  kCritical,  // (near-)impossible under the learned behaviour
};

struct SinkConfig {
  /// Suppress repeat alarms with the same signature (head device + state)
  /// arriving within this window (seconds of event time).
  double dedup_window_s = 600.0;
  /// Score boundaries for severity grading.
  double warning_score = 0.995;
  double critical_score = 0.9999;
};

struct SunkAlarm {
  AnomalyReport report;
  AlarmSeverity severity = AlarmSeverity::kNotice;
  /// How many identical-signature alarms were suppressed since the last
  /// one that passed through.
  std::size_t suppressed_duplicates = 0;
};

/// Thread-safety contract: one sink may be shared by every shard of a
/// serving deployment. offer() and the counter accessors are safe to call
/// concurrently from any thread; each offer is atomic (dedup decision +
/// counter updates happen under one lock), so delivered() + suppressed()
/// always equals the number of completed offers. grade() is pure
/// configuration and needs no lock.
class AlarmSink {
 public:
  explicit AlarmSink(SinkConfig config = {});

  /// Offers an alarm; returns the decorated alarm if it should be
  /// delivered, or nullopt if it was deduplicated.
  std::optional<SunkAlarm> offer(AnomalyReport report);

  std::size_t delivered() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return delivered_;
  }
  std::size_t suppressed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return suppressed_;
  }

  /// Alarms delivered per head device (dashboard counter); a snapshot,
  /// consistent with one atomic point in the offer stream.
  std::unordered_map<telemetry::DeviceId, std::size_t> delivered_by_device()
      const {
    std::lock_guard<std::mutex> lock(mutex_);
    return delivered_by_device_;
  }

  AlarmSeverity grade(double score) const;

 private:
  struct Signature {
    double last_delivered_ts = -1e300;
    std::size_t suppressed_since = 0;
  };

  SinkConfig config_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Signature> signatures_;
  std::unordered_map<telemetry::DeviceId, std::size_t> delivered_by_device_;
  std::size_t delivered_ = 0;
  std::size_t suppressed_ = 0;
};

}  // namespace causaliot::detect
