// Phantom state machine (§V-C).
//
// Maintains the latest graph snapshot G^t = (S^{t-tau}, ..., S^t) as a ring
// buffer of tau+1 system-state vectors. On each incoming event it derives
// S^t from S^{t-1} and slides the window; cause-value queries then read the
// lagged states the DIG's CPTs condition on.
#pragma once

#include <cstdint>
#include <vector>

#include "causaliot/graph/cpt.hpp"
#include "causaliot/preprocess/series.hpp"

namespace causaliot::detect {

class PhantomStateMachine {
 public:
  /// The window is pre-filled with `initial_state` at every lag, matching
  /// a system at rest before the first runtime event.
  PhantomStateMachine(std::size_t device_count, std::size_t max_lag,
                      std::vector<std::uint8_t> initial_state);

  /// Rebuilds a machine from exported lagged states (index = lag, newest
  /// first; see lagged_states()). The new window may be a different size
  /// than the exported one — e.g. a freshly trained model with a larger
  /// tau adopted mid-stream by a serve session: missing older lags are
  /// padded with the oldest exported state, extra ones are dropped.
  PhantomStateMachine(std::size_t device_count, std::size_t max_lag,
                      const std::vector<std::vector<std::uint8_t>>&
                          lagged_newest_first,
                      std::size_t events_seen);

  std::size_t device_count() const { return device_count_; }
  std::size_t max_lag() const { return max_lag_; }

  /// Applies event e^t, deriving and storing S^t.
  void update(const preprocess::BinaryEvent& event);

  /// State of `device` at lag `lag` behind the newest snapshot
  /// (lag 0 = current state S^t). lag <= max_lag.
  std::uint8_t state_at_lag(telemetry::DeviceId device,
                            std::uint32_t lag) const;

  /// Values of the given lagged causes in the current snapshot, aligned
  /// with the input order (PM.Get in Algorithm 2).
  std::vector<std::uint8_t> cause_values(
      const std::vector<graph::LaggedNode>& causes) const;

  /// Copy of the current system state S^t.
  std::vector<std::uint8_t> current_state() const;

  /// The full window, newest first: element l is the state at lag l.
  /// Together with the restoring constructor this lets a serving session
  /// transplant its runtime state onto a freshly swapped-in model.
  std::vector<std::vector<std::uint8_t>> lagged_states() const;

  /// Number of events applied since construction.
  std::size_t events_seen() const { return events_seen_; }

 private:
  std::size_t device_count_;
  std::size_t max_lag_;
  std::size_t head_ = 0;  // ring slot holding the newest state
  std::vector<std::vector<std::uint8_t>> ring_;  // max_lag + 1 slots
  std::size_t events_seen_ = 0;
};

}  // namespace causaliot::detect
