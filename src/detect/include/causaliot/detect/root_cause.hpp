// Root-cause localization for collective anomalies (§I, §VI-C; Assaad et
// al., "Root Cause Identification for Collective Anomalies in Time Series
// given an Acyclic Summary Causal Graph").
//
// When an AnomalyReport closes, the DIG is exactly the summary causal
// graph those authors walk: every entry carries the observed values of
// its lagged causes, and the chain entries follow interaction executions
// forward in time. Walking those executions *backwards* — from each chain
// entry through its recorded cause context toward the originating
// contextual anomaly, then structurally through the DIG where the report
// recorded nothing — visits every device that could have seeded the
// anomaly. Each visit contributes blame weighted by (a) position on the
// causal walk (entries closer to the origin, and devices fewer hops away,
// weigh more), (b) the CPT surprise of the observed cause context at each
// hop, and (c) whether the candidate's own event was itself flagged into
// the report. The result is a deterministic ranked attribution: a pure
// function of (report, graph, config), so serial/parallel runs, hot model
// swaps and tenant churn reproduce it bit-identically as long as the
// report and the scoring snapshot match.
#pragma once

#include <cstdint>
#include <vector>

#include "causaliot/detect/monitor.hpp"
#include "causaliot/graph/dig.hpp"

namespace causaliot::detect {

struct RootCauseConfig {
  /// Maximum backward hops walked from each report entry (>= 1).
  std::size_t max_depth = 3;
  /// Geometric per-hop discount: a device d hops from an entry
  /// contributes decay^d of the entry's weight.
  double depth_decay = 0.5;
  /// Discount for a hop whose recorded cause value *agrees* with the
  /// effect state — agreement is unsurprising context, mismatch (the
  /// "no presence was detected, yet the plug activated" pattern) keeps
  /// full weight.
  double context_match_discount = 0.5;
  /// Weight of a structural hop: an edge walked through the DIG alone,
  /// with no recorded runtime context for the effect device.
  double structural_weight = 0.25;
  /// Multiplier applied to candidates whose own event was flagged into
  /// the report (the head or a tracked chain entry).
  double flagged_boost = 1.5;
  /// Ranked list cap; walks still visit everything within max_depth.
  std::size_t max_candidates = 5;
};

/// One backward edge on a blame walk: `child` is the effect end (later in
/// time), `cause` the lagged-cause end the walk moved to.
struct RootCauseStep {
  telemetry::DeviceId child = telemetry::kInvalidDevice;
  telemetry::DeviceId cause = telemetry::kInvalidDevice;
  std::uint32_t lag = 1;

  friend bool operator==(const RootCauseStep&, const RootCauseStep&) =
      default;
};

struct RootCauseCandidate {
  telemetry::DeviceId device = telemetry::kInvalidDevice;
  /// Accumulated blame over every walk that visited the device, after
  /// the flagged boost. Comparable within one attribution only.
  double score = 0.0;
  /// True when the device raised one of the report's own entries.
  bool flagged = false;
  /// The strongest single walk that reached the device, as edges walked
  /// backwards from a report entry. Empty for a candidate blamed as its
  /// own entry (depth-0 seed).
  std::vector<RootCauseStep> path;
};

struct RootCauseAttribution {
  /// Descending score; ties broken by ascending device id. Non-empty for
  /// any report with at least one entry (the head seeds itself).
  std::vector<RootCauseCandidate> ranked;
  /// Backward edges expanded across all walks (diagnostics; bounded by
  /// max_depth and the epsilon prune even on cyclic graphs).
  std::size_t edges_walked = 0;

  const RootCauseCandidate& top() const { return ranked.front(); }
};

/// Ranks candidate root devices for `report`. `graph` extends walks
/// structurally past devices with no recorded entry; pass nullptr to
/// walk recorded context only (e.g. when the scoring snapshot is gone).
RootCauseAttribution attribute_root_cause(
    const AnomalyReport& report, const graph::InteractionGraph* graph,
    const RootCauseConfig& config = {});

}  // namespace causaliot::detect
