#include "causaliot/detect/monitor.hpp"

#include <algorithm>
#include <optional>

#include "causaliot/obs/trace.hpp"
#include "causaliot/stats/descriptive.hpp"
#include "causaliot/util/strings.hpp"

namespace causaliot::detect {

std::vector<double> ThresholdCalculator::training_scores(
    const graph::InteractionGraph& graph,
    const preprocess::StateSeries& series, double laplace_alpha,
    util::ThreadPool* pool) {
  const std::size_t tau = graph.max_lag();
  CAUSALIOT_CHECK(series.device_count() == graph.device_count());
  CAUSALIOT_CHECK(series.length() > tau);

  const std::size_t count = series.length() - tau;
  std::vector<double> scores(count);
  // Chunked so the per-iteration work amortizes the scheduling cost; each
  // chunk writes only its own slots, so any schedule matches the serial
  // pass bit-for-bit.
  constexpr std::size_t kChunk = 1024;
  const std::size_t chunk_count = (count + kChunk - 1) / kChunk;
  util::parallel_for(pool, 0, chunk_count, [&](std::size_t chunk) {
    // Per-chunk spans attribute calibration work to the pool worker that
    // scored it (the trace's "threshold" rows).
    std::optional<obs::Span> chunk_span;
    if (obs::Tracer::global().enabled()) {
      chunk_span.emplace("threshold.chunk",
                         util::format("\"chunk\": %zu", chunk), "train");
    }
    std::vector<std::uint8_t> cause_values;
    const std::size_t begin = chunk * kChunk;
    const std::size_t end = std::min(begin + kChunk, count);
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t j = tau + i;
      const preprocess::BinaryEvent& event = series.event_at(j);
      const graph::Cpt& cpt = graph.cpt(event.device);
      cause_values.clear();
      for (const graph::LaggedNode& cause : cpt.causes()) {
        cause_values.push_back(series.state(cause.device, j - cause.lag));
      }
      const double likelihood =
          cpt.probability(cpt.pack(cause_values), event.state, laplace_alpha);
      scores[i] = 1.0 - likelihood;
    }
  });
  return scores;
}

double ThresholdCalculator::threshold_at_percentile(std::vector<double> scores,
                                                    double q) {
  CAUSALIOT_CHECK_MSG(!scores.empty(), "no training scores");
  std::sort(scores.begin(), scores.end());
  return stats::percentile_sorted(scores, q);
}

EventMonitor::EventMonitor(const graph::InteractionGraph& graph,
                           MonitorConfig config,
                           std::vector<std::uint8_t> initial_state)
    : graph_(graph),
      config_(config),
      machine_(graph.device_count(), graph.max_lag(),
               std::move(initial_state)) {
  CAUSALIOT_CHECK_MSG(config_.k_max >= 1, "k_max must be >= 1");
  CAUSALIOT_CHECK_MSG(
      config_.score_threshold >= 0.0 && config_.score_threshold <= 1.0,
      "score threshold must be in [0, 1]");
}

EventMonitor::EventMonitor(const graph::InteractionGraph& graph,
                           MonitorConfig config, MonitorState state)
    : graph_(graph),
      config_(config),
      machine_(graph.device_count(), graph.max_lag(), state.lagged_states,
               state.events_processed),
      window_(std::move(state.window)),
      events_processed_(state.events_processed) {
  CAUSALIOT_CHECK_MSG(config_.k_max >= 1, "k_max must be >= 1");
  CAUSALIOT_CHECK_MSG(
      config_.score_threshold >= 0.0 && config_.score_threshold <= 1.0,
      "score threshold must be in [0, 1]");
}

MonitorState EventMonitor::export_state() const {
  MonitorState state;
  state.lagged_states = machine_.lagged_states();
  state.window = window_;
  state.events_processed = events_processed_;
  return state;
}

double EventMonitor::score_event(const preprocess::BinaryEvent& event) {
  machine_.update(event);  // PM.Update(e^t): derive S^t first
  const graph::Cpt& cpt = graph_.cpt(event.device);
  const std::vector<std::uint8_t> cause_values =
      machine_.cause_values(cpt.causes());
  const double likelihood = cpt.probability(cpt.pack(cause_values),
                                            event.state, config_.laplace_alpha);
  last_score_ = 1.0 - likelihood;
  return last_score_;
}

AnomalyEntry EventMonitor::make_entry(
    const preprocess::BinaryEvent& event, double score,
    std::vector<std::uint8_t> cause_values) const {
  AnomalyEntry entry;
  entry.event = event;
  entry.stream_index = events_processed_;
  entry.score = score;
  entry.causes = graph_.cpt(event.device).causes();
  entry.cause_values = std::move(cause_values);
  return entry;
}

std::optional<AnomalyReport> EventMonitor::process(
    const preprocess::BinaryEvent& event) {
  // Lines 3-5 of Algorithm 2.
  machine_.update(event);
  const graph::Cpt& cpt = graph_.cpt(event.device);
  std::vector<std::uint8_t> cause_values = machine_.cause_values(cpt.causes());
  const double likelihood = cpt.probability(cpt.pack(cause_values),
                                            event.state, config_.laplace_alpha);
  const double score = 1.0 - likelihood;
  last_score_ = score;
  const double c = config_.score_threshold;

  // Line 6: append when W is empty and the event is anomalous (contextual
  // anomaly head) or W is non-empty and the event follows the interaction
  // execution (collective member).
  const bool anomalous = score >= c;
  if ((window_.empty() && anomalous) || (!window_.empty() && !anomalous)) {
    window_.push_back(make_entry(event, score, std::move(cause_values)));
  }

  std::optional<AnomalyReport> report;
  // Line 9: flush on reaching k_max, or on an abrupt high-score event
  // arriving mid-tracking.
  // >= (not ==): a MonitorState transplanted from a session with a larger
  // k_max may arrive with an oversized pending window; flush it now.
  const bool full = window_.size() >= config_.k_max;
  const bool abrupt = !window_.empty() && window_.size() < config_.k_max &&
                      anomalous && window_.back().stream_index != events_processed_;
  if (full || abrupt) {
    AnomalyReport out;
    out.entries = std::move(window_);
    out.ended_by_abrupt_event = abrupt;
    window_.clear();
    report = std::move(out);
  }

  ++events_processed_;
  return report;
}

std::optional<AnomalyReport> EventMonitor::finish() {
  if (window_.empty()) return std::nullopt;
  AnomalyReport out;
  out.entries = std::move(window_);
  window_.clear();
  return out;
}

}  // namespace causaliot::detect
