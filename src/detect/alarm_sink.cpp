#include "causaliot/detect/alarm_sink.hpp"

#include "causaliot/util/check.hpp"

namespace causaliot::detect {

AlarmSink::AlarmSink(SinkConfig config) : config_(config) {
  CAUSALIOT_CHECK(config_.dedup_window_s >= 0.0);
}

AlarmSeverity AlarmSink::grade(double score) const {
  if (score >= config_.critical_score) return AlarmSeverity::kCritical;
  if (score >= config_.warning_score) return AlarmSeverity::kWarning;
  return AlarmSeverity::kNotice;
}

std::optional<SunkAlarm> AlarmSink::offer(AnomalyReport report) {
  CAUSALIOT_CHECK_MSG(!report.entries.empty(), "empty anomaly report");
  const AnomalyEntry& head = report.contextual();
  const std::uint64_t signature_key =
      (static_cast<std::uint64_t>(head.event.device) << 1) |
      head.event.state;
  std::lock_guard<std::mutex> lock(mutex_);
  Signature& signature = signatures_[signature_key];

  const double now = head.event.timestamp;
  if (now - signature.last_delivered_ts < config_.dedup_window_s) {
    ++signature.suppressed_since;
    ++suppressed_;
    return std::nullopt;
  }

  SunkAlarm out;
  out.severity = grade(head.score);
  out.suppressed_duplicates = signature.suppressed_since;
  signature.suppressed_since = 0;
  signature.last_delivered_ts = now;
  ++delivered_;
  ++delivered_by_device_[head.event.device];
  out.report = std::move(report);
  return out;
}

}  // namespace causaliot::detect
