#include "causaliot/detect/phantom_state_machine.hpp"

#include <algorithm>

namespace causaliot::detect {

PhantomStateMachine::PhantomStateMachine(std::size_t device_count,
                                         std::size_t max_lag,
                                         std::vector<std::uint8_t> initial_state)
    : device_count_(device_count), max_lag_(max_lag) {
  CAUSALIOT_CHECK_MSG(initial_state.size() == device_count,
                      "initial state size mismatch");
  CAUSALIOT_CHECK_MSG(max_lag >= 1, "max_lag must be >= 1");
  for (std::uint8_t v : initial_state) CAUSALIOT_CHECK(v <= 1);
  ring_.assign(max_lag_ + 1, initial_state);
}

PhantomStateMachine::PhantomStateMachine(
    std::size_t device_count, std::size_t max_lag,
    const std::vector<std::vector<std::uint8_t>>& lagged_newest_first,
    std::size_t events_seen)
    : device_count_(device_count),
      max_lag_(max_lag),
      events_seen_(events_seen) {
  CAUSALIOT_CHECK_MSG(max_lag >= 1, "max_lag must be >= 1");
  CAUSALIOT_CHECK_MSG(!lagged_newest_first.empty(), "no lagged states");
  for (const auto& state : lagged_newest_first) {
    CAUSALIOT_CHECK_MSG(state.size() == device_count,
                        "lagged state size mismatch");
  }
  // ring_[0] holds the oldest retained state; head_ points at the newest.
  ring_.resize(max_lag_ + 1);
  head_ = max_lag_;
  for (std::uint32_t lag = 0; lag <= max_lag_; ++lag) {
    const std::size_t source =
        std::min<std::size_t>(lag, lagged_newest_first.size() - 1);
    ring_[max_lag_ - lag] = lagged_newest_first[source];
  }
}

void PhantomStateMachine::update(const preprocess::BinaryEvent& event) {
  CAUSALIOT_CHECK_MSG(event.device < device_count_,
                      "event device out of range");
  CAUSALIOT_CHECK(event.state <= 1);
  const std::size_t next = (head_ + 1) % ring_.size();
  ring_[next] = ring_[head_];  // S^t starts as S^{t-1} ...
  ring_[next][event.device] = event.state;  // ... with one device changed
  head_ = next;
  ++events_seen_;
}

std::uint8_t PhantomStateMachine::state_at_lag(telemetry::DeviceId device,
                                               std::uint32_t lag) const {
  CAUSALIOT_CHECK(device < device_count_);
  CAUSALIOT_CHECK_MSG(lag <= max_lag_, "lag beyond window");
  const std::size_t slot = (head_ + ring_.size() - lag) % ring_.size();
  return ring_[slot][device];
}

std::vector<std::uint8_t> PhantomStateMachine::cause_values(
    const std::vector<graph::LaggedNode>& causes) const {
  std::vector<std::uint8_t> values;
  values.reserve(causes.size());
  for (const graph::LaggedNode& cause : causes) {
    values.push_back(state_at_lag(cause.device, cause.lag));
  }
  return values;
}

std::vector<std::uint8_t> PhantomStateMachine::current_state() const {
  return ring_[head_];
}

std::vector<std::vector<std::uint8_t>> PhantomStateMachine::lagged_states()
    const {
  std::vector<std::vector<std::uint8_t>> window;
  window.reserve(max_lag_ + 1);
  for (std::uint32_t lag = 0; lag <= max_lag_; ++lag) {
    const std::size_t slot = (head_ + ring_.size() - lag) % ring_.size();
    window.push_back(ring_[slot]);
  }
  return window;
}

}  // namespace causaliot::detect
