#include "causaliot/detect/explanation.hpp"

#include <sstream>

#include "causaliot/util/strings.hpp"

namespace causaliot::detect {

std::string state_label(const telemetry::DeviceInfo& info,
                        std::uint8_t state) {
  using telemetry::AttributeType;
  switch (info.attribute) {
    case AttributeType::kPresenceSensor:
      return state ? "motion" : "clear";
    case AttributeType::kContactSensor:
      return state ? "open" : "closed";
    case AttributeType::kBrightnessSensor:
    case AttributeType::kTemperatureSensor:
      return state ? "High" : "Low";
    case AttributeType::kWaterMeter:
    case AttributeType::kPowerSensor:
    case AttributeType::kDimmer:
      return state ? "working" : "idle";
    case AttributeType::kSwitch:
    case AttributeType::kGenericActuator:
    case AttributeType::kGenericSensor:
      return state ? "ON" : "OFF";
  }
  return state ? "1" : "0";
}

std::string describe_entry(const AnomalyEntry& entry,
                           const telemetry::DeviceCatalog& catalog) {
  const telemetry::DeviceInfo& info = catalog.info(entry.event.device);
  std::ostringstream out;
  out << info.name << " -> " << state_label(info, entry.event.state)
      << util::format(" (score %.3f)", entry.score);
  if (!entry.causes.empty()) {
    out << " given";
    for (std::size_t c = 0; c < entry.causes.size(); ++c) {
      const telemetry::DeviceInfo& cause_info =
          catalog.info(entry.causes[c].device);
      out << (c == 0 ? " " : ", ") << cause_info.name << "(t-"
          << entry.causes[c].lag
          << ")=" << state_label(cause_info, entry.cause_values[c]);
    }
  }
  return out.str();
}

// Root-cause hint: which cause values made the head event surprising? We
// single out causes that are "inactive" while the event is an activation
// (and vice versa) — the pattern behind the paper's examples ("no
// presence was detected, yet the plug activated").
std::string root_cause_hint(const AnomalyEntry& head,
                            const telemetry::DeviceCatalog& catalog) {
  if (head.causes.empty()) {
    return "no learned causes for this device; the event is rare overall";
  }
  std::vector<std::string> quiet;
  for (std::size_t c = 0; c < head.causes.size(); ++c) {
    if (head.cause_values[c] != head.event.state) {
      quiet.push_back(
          std::string(catalog.info(head.causes[c].device).name));
    }
  }
  if (quiet.empty()) {
    return "all causes agree with the event; the transition itself is "
           "rare in this context";
  }
  return "context mismatch with: " + util::join(quiet, ", ") +
         " — check for remote control or sensor fault";
}

std::string attribution_hint(const AnomalyReport& report,
                             const RootCauseAttribution& attribution,
                             const telemetry::DeviceCatalog& catalog) {
  if (report.chain_length() <= 1 || attribution.ranked.empty()) {
    return root_cause_hint(report.contextual(), catalog);
  }
  const RootCauseCandidate& top = attribution.top();
  std::ostringstream out;
  out << "suspected root: " << catalog.info(top.device).name
      << util::format(" (blame %.3f%s)", top.score,
                      top.flagged ? ", flagged in report" : "");
  if (!top.path.empty()) {
    out << " via " << catalog.info(top.path.front().child).name;
    for (const RootCauseStep& step : top.path) {
      out << " <-" << step.lag << "- " << catalog.info(step.cause).name;
    }
  }
  return out.str();
}

std::string describe_report(const AnomalyReport& report,
                            const telemetry::DeviceCatalog& catalog,
                            const RootCauseAttribution& attribution) {
  std::ostringstream out;
  out << "ALARM: contextual anomaly — "
      << describe_entry(report.contextual(), catalog);
  if (report.chain_length() > 1) {
    out << "\n  triggered interaction chain ("
        << report.chain_length() - 1 << " events"
        << (report.ended_by_abrupt_event ? ", interrupted" : "") << "):";
    for (std::size_t i = 1; i < report.entries.size(); ++i) {
      out << "\n    " << describe_entry(report.entries[i], catalog);
    }
    if (!attribution.ranked.empty()) {
      out << "\n  root causes:";
      for (std::size_t i = 0; i < attribution.ranked.size() && i < 3; ++i) {
        const RootCauseCandidate& candidate = attribution.ranked[i];
        out << " " << catalog.info(candidate.device).name
            << util::format("(%.3f%s)", candidate.score,
                            candidate.flagged ? "*" : "");
      }
    }
  }
  out << "\n  hint: " << attribution_hint(report, attribution, catalog);
  return out.str();
}

std::string describe_report(const AnomalyReport& report,
                            const telemetry::DeviceCatalog& catalog) {
  return describe_report(report, catalog,
                         attribute_root_cause(report, nullptr));
}

}  // namespace causaliot::detect
