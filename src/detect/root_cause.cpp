#include "causaliot/detect/root_cause.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace causaliot::detect {
namespace {

// Walk contributions decay geometrically; below this they cannot change
// a ranking at double precision, so the walk prunes. Also the backstop
// that bounds walks on adversarial graphs together with max_depth.
constexpr double kWeightEpsilon = 1e-9;

struct Accumulator {
  double score = 0.0;
  double best_contribution = 0.0;
  std::vector<RootCauseStep> best_path;
};

// Depth-first backward walker. All state is per-call and every container
// iterates in a fixed order (entries in report order, causes in the
// canonical CPT order, candidates in device-id order), so the same
// (report, graph, config) always produces the same attribution.
struct Walker {
  const graph::InteractionGraph* graph;
  const RootCauseConfig& config;
  // Device-id order makes the final tie-broken sort reproducible without
  // relying on hash-map iteration.
  std::map<telemetry::DeviceId, Accumulator> blame;
  // First (closest-to-origin) report entry per device: walking backwards
  // heads toward the originating contextual anomaly, so a device seen
  // again deeper in the chain re-enters the walk through its earliest
  // recorded context.
  std::unordered_map<telemetry::DeviceId, const AnomalyEntry*> first_entry;
  std::size_t edges_walked = 0;
  std::vector<RootCauseStep> path;
  std::vector<telemetry::DeviceId> on_path;  // cycle guard for this walk

  void credit(telemetry::DeviceId device, double contribution) {
    Accumulator& acc = blame[device];
    acc.score += contribution;
    if (contribution > acc.best_contribution) {
      acc.best_contribution = contribution;
      acc.best_path = path;
    }
  }

  bool visiting(telemetry::DeviceId device) const {
    return std::find(on_path.begin(), on_path.end(), device) !=
           on_path.end();
  }

  void expand(telemetry::DeviceId device, double weight, std::size_t depth) {
    if (depth >= config.max_depth || weight < kWeightEpsilon) return;
    const auto it = first_entry.find(device);
    if (it != first_entry.end()) {
      expand_entry(*it->second, weight, depth);
    } else if (graph != nullptr && device < graph->device_count()) {
      expand_structural(device, weight, depth);
    }
  }

  // Hop through an entry's recorded cause context. The entry's score is
  // the CPT surprise of that exact context; a cause whose value agrees
  // with the effect state is unsurprising and is discounted further.
  void expand_entry(const AnomalyEntry& entry, double weight,
                    std::size_t depth) {
    for (std::size_t c = 0; c < entry.causes.size(); ++c) {
      const bool mismatch = entry.cause_values[c] != entry.event.state;
      const double hop =
          config.depth_decay * entry.score *
          (mismatch ? 1.0 : config.context_match_discount);
      step(entry.event.device, entry.causes[c], weight * hop, depth);
    }
  }

  // Hop through the DIG alone: no runtime context was recorded for this
  // device, only the learned edge.
  void expand_structural(telemetry::DeviceId device, double weight,
                         std::size_t depth) {
    for (const graph::LaggedNode& cause : graph->causes(device)) {
      const double hop = config.depth_decay * config.structural_weight;
      step(device, cause, weight * hop, depth);
    }
  }

  void step(telemetry::DeviceId child, const graph::LaggedNode& cause,
            double weight, std::size_t depth) {
    if (weight < kWeightEpsilon) return;
    if (visiting(cause.device)) return;  // cycle-free walks
    ++edges_walked;
    path.push_back({child, cause.device, cause.lag});
    credit(cause.device, weight);
    on_path.push_back(cause.device);
    expand(cause.device, weight, depth + 1);
    on_path.pop_back();
    path.pop_back();
  }
};

}  // namespace

RootCauseAttribution attribute_root_cause(
    const AnomalyReport& report, const graph::InteractionGraph* graph,
    const RootCauseConfig& config) {
  RootCauseAttribution out;
  if (report.entries.empty()) return out;

  Walker walker{graph, config, {}, {}, 0, {}, {}};
  for (const AnomalyEntry& entry : report.entries) {
    walker.first_entry.emplace(entry.event.device, &entry);
  }

  for (std::size_t i = 0; i < report.entries.size(); ++i) {
    const AnomalyEntry& entry = report.entries[i];
    // Position on the causal walk: the head *is* the originating
    // contextual anomaly; each tracked chain entry is one interaction
    // execution further from it.
    const double position_weight = 1.0 / (1.0 + static_cast<double>(i));
    walker.path.clear();
    walker.on_path.assign(1, entry.event.device);
    // The entry's device seeds itself at depth 0, blamed by its own
    // surprise — this keeps the attribution non-empty even for a head
    // with no learned causes.
    walker.credit(entry.event.device, position_weight * entry.score);
    // Expand through *this* entry's recorded context (not first_entry:
    // a device repeated in the chain walks its own context first).
    walker.expand_entry(entry, position_weight, 0);
  }

  out.edges_walked = walker.edges_walked;
  out.ranked.reserve(walker.blame.size());
  for (auto& [device, acc] : walker.blame) {
    RootCauseCandidate candidate;
    candidate.device = device;
    candidate.flagged = walker.first_entry.count(device) > 0;
    candidate.score =
        acc.score * (candidate.flagged ? config.flagged_boost : 1.0);
    candidate.path = std::move(acc.best_path);
    out.ranked.push_back(std::move(candidate));
  }
  // blame iterates in device-id order, so equal scores already sit in
  // tie-break order and stable_sort preserves it.
  std::stable_sort(out.ranked.begin(), out.ranked.end(),
                   [](const RootCauseCandidate& a,
                      const RootCauseCandidate& b) {
                     return a.score > b.score;
                   });
  if (out.ranked.size() > config.max_candidates) {
    out.ranked.resize(config.max_candidates);
  }
  return out;
}

}  // namespace causaliot::detect
