#include "causaliot/core/evaluation.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "causaliot/util/check.hpp"

namespace causaliot::core {

sim::GroundTruth refine_ground_truth(
    const sim::GroundTruth& oracle,
    std::span<const preprocess::BinaryEvent> events, std::size_t window,
    std::size_t min_count) {
  CAUSALIOT_CHECK(window >= 1);
  std::map<std::pair<telemetry::DeviceId, telemetry::DeviceId>, std::size_t>
      adjacency;
  for (std::size_t j = 1; j < events.size(); ++j) {
    const std::size_t lo = j >= window ? j - window : 0;
    for (std::size_t k = lo; k < j; ++k) {
      ++adjacency[{events[k].device, events[j].device}];
    }
  }
  sim::GroundTruth refined;
  for (const sim::GroundTruthInteraction& interaction :
       oracle.interactions()) {
    // Autocorrelation (state persistence) needs no adjacency support: the
    // paper labels one self-interaction per device.
    if (interaction.cause == interaction.child) {
      refined.add(interaction);
      continue;
    }
    const auto it = adjacency.find({interaction.cause, interaction.child});
    if (it != adjacency.end() && it->second >= min_count) {
      refined.add(interaction);
    }
  }
  return refined;
}

MiningEvaluation evaluate_mining(const graph::InteractionGraph& graph,
                                 const sim::GroundTruth& expected,
                                 const sim::GroundTruth& accepted) {
  MiningEvaluation eval;

  // Collapse lagged edges to device-level pairs (including self loops).
  std::set<std::pair<telemetry::DeviceId, telemetry::DeviceId>> mined;
  for (const graph::Edge& edge : graph.edges()) {
    mined.insert({edge.cause.device, edge.child});
  }

  for (const sim::GroundTruthInteraction& gt : expected.interactions()) {
    if (mined.contains({gt.cause, gt.child})) {
      ++eval.true_positives;
      ++eval.identified_by_source[static_cast<std::size_t>(gt.source)];
      ++eval.identified_by_category[static_cast<std::size_t>(gt.category)];
    } else {
      ++eval.false_negatives;
      eval.missed_pairs.emplace_back(gt.cause, gt.child);
    }
  }
  std::size_t accepted_extra = 0;
  for (const auto& pair : mined) {
    if (expected.contains(pair.first, pair.second)) continue;
    if (accepted.contains(pair.first, pair.second)) {
      // Not on the GT list (too rare to label), but the oracle has a
      // story for it — the paper's manual test would accept it.
      ++accepted_extra;
      continue;
    }
    ++eval.false_positives;
    eval.false_positive_pairs.push_back(pair);
  }

  const std::size_t predicted =
      eval.true_positives + accepted_extra + eval.false_positives;
  const std::size_t actual = eval.true_positives + eval.false_negatives;
  eval.precision =
      predicted == 0
          ? 0.0
          : static_cast<double>(eval.true_positives + accepted_extra) /
                static_cast<double>(predicted);
  eval.recall = actual == 0 ? 0.0
                            : static_cast<double>(eval.true_positives) /
                                  static_cast<double>(actual);
  return eval;
}

stats::ConfusionCounts evaluate_event_detector(
    const inject::InjectionResult& stream,
    const std::function<bool(const preprocess::BinaryEvent&)>& is_anomalous) {
  stats::ConfusionCounts counts;
  for (std::size_t i = 0; i < stream.events.size(); ++i) {
    counts.add(is_anomalous(stream.events[i]), stream.is_injected(i));
  }
  return counts;
}

stats::ConfusionCounts evaluate_contextual(
    const TrainedModel& model, const inject::InjectionResult& stream) {
  detect::EventMonitor monitor =
      model.make_monitor(/*k_max=*/1, stream.initial_state);
  return evaluate_event_detector(
      stream, [&](const preprocess::BinaryEvent& event) {
        return monitor.process(event).has_value();
      });
}

stats::ConfusionCounts evaluate_baseline(
    baselines::AnomalyDetector& detector,
    const inject::InjectionResult& stream) {
  detector.reset(stream.initial_state);
  return evaluate_event_detector(stream,
                                 [&](const preprocess::BinaryEvent& event) {
                                   return detector.is_anomalous(event);
                                 });
}

CollectiveEvaluation evaluate_collective(const TrainedModel& model,
                                         const inject::InjectionResult& stream,
                                         std::size_t k_max) {
  CAUSALIOT_CHECK(k_max >= 2);
  detect::EventMonitor monitor = model.make_monitor(k_max,
                                                    stream.initial_state);

  // Stream indices of each injected chain.
  std::map<std::int32_t, std::vector<std::size_t>> chains;
  for (std::size_t i = 0; i < stream.events.size(); ++i) {
    if (stream.chain_id[i] >= 0) chains[stream.chain_id[i]].push_back(i);
  }

  std::vector<detect::AnomalyReport> reports;
  for (const preprocess::BinaryEvent& event : stream.events) {
    if (auto report = monitor.process(event)) {
      reports.push_back(std::move(*report));
    }
  }
  if (auto tail = monitor.finish()) reports.push_back(std::move(*tail));

  CollectiveEvaluation eval;
  eval.total_chains = chains.size();
  eval.alarms_raised = reports.size();

  double total_injected_length = 0.0;
  double total_detected_length = 0.0;
  for (const auto& [id, indices] : chains) {
    total_injected_length += static_cast<double>(indices.size());
    std::size_t best_overlap = 0;
    bool fully = false;
    for (const detect::AnomalyReport& report : reports) {
      std::size_t overlap = 0;
      for (const detect::AnomalyEntry& entry : report.entries) {
        if (std::binary_search(indices.begin(), indices.end(),
                               entry.stream_index)) {
          ++overlap;
        }
      }
      best_overlap = std::max(best_overlap, overlap);
      fully = fully || overlap == indices.size();
    }
    if (best_overlap > 0) {
      ++eval.detected_chains;
      total_detected_length += static_cast<double>(best_overlap);
    }
    if (fully) ++eval.fully_tracked_chains;
  }
  if (eval.total_chains > 0) {
    eval.avg_anomaly_length =
        total_injected_length / static_cast<double>(eval.total_chains);
  }
  if (eval.detected_chains > 0) {
    eval.avg_detection_length =
        total_detected_length / static_cast<double>(eval.detected_chains);
  }
  return eval;
}

LocalizationEvaluation evaluate_localization(
    const TrainedModel& model, const inject::InjectionResult& stream,
    std::size_t k_max, const detect::RootCauseConfig& config) {
  CAUSALIOT_CHECK(k_max >= 1);
  detect::EventMonitor monitor = model.make_monitor(k_max,
                                                    stream.initial_state);

  std::map<std::int32_t, std::vector<std::size_t>> chains;
  for (std::size_t i = 0; i < stream.events.size(); ++i) {
    if (stream.chain_id[i] >= 0) chains[stream.chain_id[i]].push_back(i);
  }

  std::vector<detect::AnomalyReport> reports;
  for (const preprocess::BinaryEvent& event : stream.events) {
    if (auto report = monitor.process(event)) {
      reports.push_back(std::move(*report));
    }
  }
  if (auto tail = monitor.finish()) reports.push_back(std::move(*tail));

  LocalizationEvaluation eval;
  for (const detect::AnomalyReport& report : reports) {
    // Score against the injected chain this alarm overlaps most (first
    // chain id wins a tie — chains are iterated in id order).
    std::size_t best_overlap = 0;
    telemetry::DeviceId true_root = telemetry::kInvalidDevice;
    for (const auto& [id, indices] : chains) {
      std::size_t overlap = 0;
      for (const detect::AnomalyEntry& entry : report.entries) {
        if (std::binary_search(indices.begin(), indices.end(),
                               entry.stream_index)) {
          ++overlap;
        }
      }
      if (overlap > best_overlap) {
        best_overlap = overlap;
        true_root = stream.events[indices.front()].device;
      }
    }
    if (best_overlap == 0) continue;  // alarm on benign traffic
    ++eval.attributed_alarms;
    const detect::RootCauseAttribution attribution =
        detect::attribute_root_cause(report, &model.graph, config);
    for (std::size_t rank = 0;
         rank < attribution.ranked.size() && rank < 3; ++rank) {
      if (attribution.ranked[rank].device != true_root) continue;
      if (rank == 0) ++eval.hit_at_1;
      ++eval.hit_at_3;
      break;
    }
  }
  return eval;
}

}  // namespace causaliot::core
