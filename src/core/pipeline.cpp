#include "causaliot/core/pipeline.hpp"

#include <optional>

#include "causaliot/obs/trace.hpp"
#include "causaliot/stats/simd_backend.hpp"
#include "causaliot/util/check.hpp"
#include "causaliot/util/thread_pool.hpp"

namespace causaliot::core {

detect::EventMonitor TrainedModel::make_monitor(std::size_t k_max) const {
  return make_monitor(k_max, final_training_state);
}

detect::EventMonitor TrainedModel::make_monitor(
    std::size_t k_max, std::vector<std::uint8_t> initial) const {
  detect::MonitorConfig config;
  config.score_threshold = score_threshold;
  config.k_max = k_max;
  config.laplace_alpha = laplace_alpha;
  return detect::EventMonitor(graph, config, std::move(initial));
}

Pipeline::Pipeline(PipelineConfig config) : config_(config) {}

TrainedModel Pipeline::train(const telemetry::EventLog& log) const {
  preprocess::Preprocessor preprocessor(config_.preprocessor);
  preprocess::PreprocessResult pre = [&] {
    obs::Span span("train.preprocess", "train");
    return preprocessor.run(log);
  }();
  const std::size_t lag =
      config_.max_lag > 0 ? config_.max_lag : pre.lag;
  TrainedModel model = train_on_series(pre.series, lag);
  model.discretization = std::move(pre.discretization);
  return model;
}

TrainedModel Pipeline::train_on_series(const preprocess::StateSeries& series,
                                       std::size_t lag) const {
  CAUSALIOT_CHECK_MSG(lag >= 1, "lag must be >= 1");
  CAUSALIOT_CHECK_MSG(series.length() > lag,
                      "training series shorter than the lag");

  if (!config_.simd_backend.empty()) {
    const auto backend = stats::simd::parse_backend(config_.simd_backend);
    CAUSALIOT_CHECK_MSG(backend.has_value(),
                        "unknown PipelineConfig::simd_backend name");
    CAUSALIOT_CHECK_MSG(stats::simd::force_backend(*backend),
                        "PipelineConfig::simd_backend not supported on "
                        "this host/build");
  }

  mining::MinerConfig miner_config;
  miner_config.max_lag = lag;
  miner_config.alpha = config_.alpha;
  miner_config.min_samples_per_dof = config_.min_samples_per_dof;
  miner_config.stable = config_.pc_stable;
  miner_config.ci_test = config_.use_cmh_test ? mining::CiTest::kCmh
                                              : mining::CiTest::kGSquare;
  miner_config.ci_batching = config_.ci_batching;
  miner_config.threads = config_.mining_threads;
  miner_config.metrics_registry = config_.metrics_registry;
  const mining::InteractionMiner miner(miner_config);

  // One pool for the whole training pass: mining, CPT estimation, and
  // threshold calibration all ride it (each is bit-identical to serial).
  std::optional<util::ThreadPool> pool;
  if (util::resolve_thread_count(config_.mining_threads) > 1) {
    pool.emplace(config_.mining_threads);
  }
  util::ThreadPool* pool_ptr = pool ? &*pool : nullptr;

  TrainedModel model;
  model.lag = lag;
  model.laplace_alpha = config_.laplace_alpha;
  {
    obs::Span span("train.mine", "train");
    model.graph = miner.mine(series, &model.mining_diagnostics, pool_ptr);
  }
  {
    obs::Span span("train.threshold", "train");
    model.training_scores = detect::ThresholdCalculator::training_scores(
        model.graph, series, config_.laplace_alpha, pool_ptr);
    model.score_threshold =
        detect::ThresholdCalculator::threshold_at_percentile(
            model.training_scores, config_.percentile_q);
  }
  model.final_training_state = series.snapshot_state(series.length() - 1);
  return model;
}

}  // namespace causaliot::core
