// Evaluation harness: scores mining output against ground truth (§VI-B),
// contextual detection against injected labels (§VI-C / Table IV / Fig. 5),
// and collective detection against injected chains (§VI-D / Table V).
#pragma once

#include <functional>
#include <vector>

#include "causaliot/baselines/detector.hpp"
#include "causaliot/core/pipeline.hpp"
#include "causaliot/detect/root_cause.hpp"
#include "causaliot/graph/dig.hpp"
#include "causaliot/inject/injector.hpp"
#include "causaliot/sim/ground_truth.hpp"
#include "causaliot/stats/metrics.hpp"

namespace causaliot::core {

// ---------------------------------------------------------------- mining

/// Reproduces the paper's ground-truth labelling (§VI-A): candidate
/// interactions are device pairs that appear as neighbouring events
/// (within `window` positions) at least `min_count` times in the
/// preprocessed trace; a candidate becomes ground truth when the generator
/// oracle accepts it (user-activity relation, physical wiring, automation
/// logic, or autocorrelation).
sim::GroundTruth refine_ground_truth(
    const sim::GroundTruth& oracle,
    std::span<const preprocess::BinaryEvent> events, std::size_t window,
    std::size_t min_count);

struct MiningEvaluation {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
  double precision = 0.0;
  double recall = 0.0;
  /// Identified ground-truth interactions per source / per activity
  /// category (Table III rows).
  std::size_t identified_by_source[4] = {0, 0, 0, 0};
  std::size_t identified_by_category[5] = {0, 0, 0, 0, 0};
  /// Device-level pairs the graph asserts but ground truth rejects.
  std::vector<std::pair<telemetry::DeviceId, telemetry::DeviceId>>
      false_positive_pairs;
  std::vector<std::pair<telemetry::DeviceId, telemetry::DeviceId>>
      missed_pairs;
};

/// Compares the mined DIG's device-level interactions (edges collapsed
/// over lags, including self-loops) with ground truth, mirroring the
/// paper's asymmetric labelling: *recall* is measured against `expected`
/// (oracle-accepted pairs that recur as neighbouring events — the GT
/// list), while *precision* treats a mined pair as correct when `accepted`
/// (the full generator oracle — "is there any daily-life activity /
/// channel / rule explaining this pair?") contains it. Pass the same set
/// for both to get the strict symmetric variant.
MiningEvaluation evaluate_mining(const graph::InteractionGraph& graph,
                                 const sim::GroundTruth& expected,
                                 const sim::GroundTruth& accepted);

inline MiningEvaluation evaluate_mining(const graph::InteractionGraph& graph,
                                        const sim::GroundTruth& ground_truth) {
  return evaluate_mining(graph, ground_truth, ground_truth);
}

// ------------------------------------------------------------ contextual

/// Per-event confusion of a detector over an injected stream. The
/// predicate receives each event and must return "flagged anomalous".
stats::ConfusionCounts evaluate_event_detector(
    const inject::InjectionResult& stream,
    const std::function<bool(const preprocess::BinaryEvent&)>& is_anomalous);

/// CausalIoT contextual detection (k_max = 1) over an injected stream.
stats::ConfusionCounts evaluate_contextual(const TrainedModel& model,
                                           const inject::InjectionResult& stream);

/// A Fig.-5 baseline over the same stream (fit must already have run).
stats::ConfusionCounts evaluate_baseline(baselines::AnomalyDetector& detector,
                                         const inject::InjectionResult& stream);

// ------------------------------------------------------------ collective

struct CollectiveEvaluation {
  std::size_t total_chains = 0;
  /// Chains with at least one alarm overlapping them (paper: % detected).
  std::size_t detected_chains = 0;
  /// Chains some single alarm covers completely (paper: % tracked).
  std::size_t fully_tracked_chains = 0;
  double avg_anomaly_length = 0.0;
  /// Average number of chain events captured by the best alarm, over
  /// detected chains (paper: avg. detection length).
  double avg_detection_length = 0.0;
  /// All alarms raised, for diagnostics.
  std::size_t alarms_raised = 0;

  double detected_fraction() const {
    return total_chains == 0 ? 0.0
                             : static_cast<double>(detected_chains) /
                                   static_cast<double>(total_chains);
  }
  double tracked_fraction() const {
    return total_chains == 0 ? 0.0
                             : static_cast<double>(fully_tracked_chains) /
                                   static_cast<double>(total_chains);
  }
};

/// Runs k-sequence detection (k_max) over the injected stream and scores
/// chain detection/tracking per §VI-D.
CollectiveEvaluation evaluate_collective(const TrainedModel& model,
                                         const inject::InjectionResult& stream,
                                         std::size_t k_max);

// ---------------------------------------------------------- localization

/// Ranked root-cause attributions scored against the injector's ground
/// truth. The injector builds every collective chain by propagating from
/// its first injected event, so that event's device is the chain's true
/// root; an attribution "hits" when that device appears at rank 1 (or in
/// the top 3) of the ranked list.
struct LocalizationEvaluation {
  /// Alarms whose entries overlap an injected chain — the scoreable set
  /// (alarms on benign events have no ground-truth root).
  std::size_t attributed_alarms = 0;
  std::size_t hit_at_1 = 0;
  std::size_t hit_at_3 = 0;

  double hit1_fraction() const {
    return attributed_alarms == 0
               ? 0.0
               : static_cast<double>(hit_at_1) /
                     static_cast<double>(attributed_alarms);
  }
  double hit3_fraction() const {
    return attributed_alarms == 0
               ? 0.0
               : static_cast<double>(hit_at_3) /
                     static_cast<double>(attributed_alarms);
  }
};

/// Runs k-sequence detection over the injected stream, attributes every
/// alarm with attribute_root_cause() under the model's DIG, and scores
/// each against the injected chain its entries overlap most.
LocalizationEvaluation evaluate_localization(
    const TrainedModel& model, const inject::InjectionResult& stream,
    std::size_t k_max, const detect::RootCauseConfig& config = {});

}  // namespace causaliot::core
