// One-call experiment wiring shared by benches, examples, and integration
// tests: simulate a testbed -> preprocess -> 80/20 split -> train CausalIoT
// on the training part. The test part and the ground truth stay available
// for injection and scoring.
#pragma once

#include <cstdint>

#include "causaliot/core/pipeline.hpp"
#include "causaliot/sim/simulator.hpp"

namespace causaliot::core {

struct ExperimentConfig {
  std::uint64_t seed = 2023;
  /// Leading fraction of the preprocessed series used for training.
  double train_fraction = 0.8;
  PipelineConfig pipeline;

  ExperimentConfig() {
    // The paper's evaluation settings: tau = 2, alpha = 0.001, q = 99.
    pipeline.max_lag = 2;
    pipeline.alpha = 0.001;
    pipeline.percentile_q = 99.0;
    // Guard high-dimension G-square tests with few samples; Tetrad-style
    // heuristic that keeps TemporalPC honest on short traces.
    pipeline.min_samples_per_dof = 10.0;
    // A fractional pseudo-count of Laplace smoothing: real-world traces carry
    // enough noise that MLE probabilities are never exactly 0/1; our
    // synthetic trace is crisper, so an unseen cause assignment under
    // pure MLE scores 1.0 and every event in a polluted context raises a
    // false alarm. See bench_ablation_params for the MLE comparison.
    pipeline.laplace_alpha = 0.1;
  }
};

struct Experiment {
  sim::HomeProfile profile;
  sim::SimulationResult sim;
  /// Paper-methodology ground truth: the generator oracle intersected with
  /// device pairs that actually appear as neighbouring events (§VI-A).
  sim::GroundTruth ground_truth;
  preprocess::PreprocessResult pre;
  preprocess::StateSeries train_series;
  preprocess::StateSeries test_series;
  /// Raw (un-sanitized, discretized) runtime stream covering the test
  /// period — what the Event Monitor actually consumes. Includes
  /// duplicate state reports; starts at the train/test split instant with
  /// initial state test_series.snapshot_state(0).
  std::vector<preprocess::BinaryEvent> test_runtime_events;
  TrainedModel model;

  const telemetry::DeviceCatalog& catalog() const {
    return sim.log.catalog();
  }
};

/// Runs the full wiring. Deterministic given (profile, config).
Experiment build_experiment(sim::HomeProfile profile,
                            const ExperimentConfig& config = {});

/// Simulates an *independent* trace of the same home (fresh seed, given
/// duration) and sanitizes it with the experiment's already-fitted
/// discretization model — a held-out test stream of arbitrary length,
/// justified by the stationarity assumption (§III). Starts from the
/// all-idle state.
preprocess::StateSeries make_fresh_test_series(const Experiment& experiment,
                                               double days,
                                               std::uint64_t seed);

}  // namespace causaliot::core
