// CausalIoT public facade.
//
// Wires the full system of Fig. 3: Event Preprocessor -> Interaction Miner
// -> Event Monitor. Train once on a logged event trace, then spawn
// EventMonitor sessions over runtime streams.
//
//   causaliot::core::Pipeline pipeline({});
//   auto model = pipeline.train(log);
//   auto monitor = model.make_monitor(/*k_max=*/3);
//   for (const auto& event : runtime_events)
//     if (auto alarm = monitor.process(event)) report(*alarm);
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "causaliot/detect/monitor.hpp"
#include "causaliot/graph/dig.hpp"
#include "causaliot/mining/temporal_pc.hpp"
#include "causaliot/preprocess/preprocessor.hpp"
#include "causaliot/telemetry/event.hpp"

namespace causaliot::core {

struct PipelineConfig {
  preprocess::PreprocessorConfig preprocessor;
  /// Maximum time lag tau; 0 selects it automatically (tau = d / v, §V-A).
  std::size_t max_lag = 0;
  /// TemporalPC significance threshold (paper: 0.001).
  double alpha = 0.001;
  /// Small-sample guard for the G-square test (0 = off).
  double min_samples_per_dof = 0.0;
  /// Score-threshold percentile q over training scores (paper: 99).
  double percentile_q = 99.0;
  /// CPT Laplace smoothing at detection time (0 = paper's pure MLE).
  double laplace_alpha = 0.0;
  /// Use the order-independent PC-stable skeleton variant.
  bool pc_stable = false;
  /// Use the CMH conditional-independence test instead of G-square.
  bool use_cmh_test = false;
  /// Batched multi-subset CI counting during mining (bit-identical
  /// results; --ci-batch=0 escape hatch to the per-subset kernels).
  bool ci_batching = true;
  /// Worker threads for mining (1 = serial, 0 = hardware concurrency).
  /// Results are identical to the serial run regardless of the value.
  std::size_t mining_threads = 1;
  /// Registry receiving mining metrics (forwarded to MinerConfig);
  /// nullptr uses obs::Registry::global().
  obs::Registry* metrics_registry = nullptr;
  /// SIMD kernel backend override for the CI counting hot path: empty
  /// keeps the startup choice (capability probe, or CAUSALIOT_SIMD);
  /// otherwise "scalar" | "avx2" | "avx512" | "neon". Every backend is
  /// bit-identical, so this only moves throughput, never results.
  /// Unknown or uncompiled/unsupported names fail train() with a check.
  std::string simd_backend;
};

/// Everything learned at training time. Owns the DIG; monitors created by
/// make_monitor() reference it and must not outlive the model.
struct TrainedModel {
  preprocess::DiscretizationModel discretization;
  graph::InteractionGraph graph;
  double score_threshold = 1.0;
  std::size_t lag = 1;
  /// Final training-trace system state: the natural monitor seed.
  std::vector<std::uint8_t> final_training_state;
  mining::MiningDiagnostics mining_diagnostics;
  /// Anomaly-score distribution over the training events.
  std::vector<double> training_scores;

  detect::EventMonitor make_monitor(std::size_t k_max = 1) const;
  detect::EventMonitor make_monitor(std::size_t k_max,
                                    std::vector<std::uint8_t> initial) const;

  double laplace_alpha = 0.0;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config = {});

  const PipelineConfig& config() const { return config_; }

  /// Full training from a raw event log: preprocess, select tau, mine the
  /// DIG, estimate CPTs, and calibrate the score threshold.
  TrainedModel train(const telemetry::EventLog& log) const;

  /// Training from an already-built binary series (benches split a
  /// preprocessed trace into train/test and call this on the train part).
  /// `lag` must be >= 1; the preprocessor's lag selection is bypassed.
  TrainedModel train_on_series(const preprocess::StateSeries& series,
                               std::size_t lag) const;

 private:
  PipelineConfig config_;
};

}  // namespace causaliot::core
