#include "causaliot/core/experiment.hpp"

#include "causaliot/core/evaluation.hpp"

#include <cmath>

#include "causaliot/util/check.hpp"
#include "causaliot/util/log.hpp"
#include "causaliot/util/strings.hpp"

namespace causaliot::core {

Experiment build_experiment(sim::HomeProfile profile,
                            const ExperimentConfig& config) {
  CAUSALIOT_CHECK_MSG(
      config.train_fraction > 0.0 && config.train_fraction < 1.0,
      "train_fraction must be in (0, 1)");

  Experiment experiment;
  experiment.profile = profile;

  sim::SmartHomeSimulator simulator(std::move(profile), config.seed);
  experiment.sim = simulator.run();
  util::log_info(util::format(
      "simulated %zu raw events (%zu user, %zu periodic, %zu automation)",
      experiment.sim.log.size(), experiment.sim.user_events,
      experiment.sim.periodic_events, experiment.sim.automation_events));

  preprocess::Preprocessor preprocessor(config.pipeline.preprocessor);
  experiment.pre = preprocessor.run(experiment.sim.log);
  util::log_info(util::format(
      "preprocessed to %zu events (dropped %zu duplicates, %zu extremes), "
      "auto-lag %zu",
      experiment.pre.sanitized_events.size(),
      experiment.pre.dropped_duplicates, experiment.pre.dropped_extremes,
      experiment.pre.lag));

  const std::size_t total_events = experiment.pre.series.event_count();
  CAUSALIOT_CHECK_MSG(total_events >= 10, "trace too short to split");
  const auto split_event = static_cast<std::size_t>(
      std::floor(static_cast<double>(total_events) * config.train_fraction));
  auto [train, test] = experiment.pre.series.split(split_event);
  experiment.train_series = std::move(train);
  experiment.test_series = std::move(test);
  // The runtime monitor sees the live stream (duplicates included), not
  // the sanitized one; cut it at the wall-clock instant of the split.
  const double split_time =
      experiment.pre.sanitized_events[split_event - 1].timestamp;
  experiment.test_runtime_events = preprocessor.discretize_runtime(
      experiment.sim.log, experiment.pre.discretization,
      std::nextafter(split_time, 1e300));

  // Paper methodology (§VI-A): ground-truth candidates are the device
  // pairs observed as directly neighbouring events; the generator oracle
  // then accepts or rejects each candidate.
  experiment.ground_truth = refine_ground_truth(
      experiment.sim.ground_truth, experiment.pre.sanitized_events,
      /*window=*/1, /*min_count=*/15);

  Pipeline pipeline(config.pipeline);
  const std::size_t lag = config.pipeline.max_lag > 0
                              ? config.pipeline.max_lag
                              : experiment.pre.lag;
  experiment.model = pipeline.train_on_series(experiment.train_series, lag);
  experiment.model.discretization = experiment.pre.discretization;
  util::log_info(util::format(
      "mined DIG: %zu edges, %zu CI tests, threshold %.4f",
      experiment.model.graph.edge_count(),
      experiment.model.mining_diagnostics.tests_run,
      experiment.model.score_threshold));
  return experiment;
}

preprocess::StateSeries make_fresh_test_series(const Experiment& experiment,
                                               double days,
                                               std::uint64_t seed) {
  sim::HomeProfile profile = experiment.profile;
  profile.days = days;
  sim::SmartHomeSimulator simulator(std::move(profile), seed);
  sim::SimulationResult fresh = simulator.run();

  preprocess::Preprocessor preprocessor;  // default sanitation config
  const std::size_t n = experiment.catalog().size();
  std::vector<preprocess::BinaryEvent> sanitized = preprocessor.sanitize(
      fresh.log, experiment.pre.discretization,
      std::vector<std::uint8_t>(n, 0));
  return preprocess::build_series(n, sanitized);
}

}  // namespace causaliot::core
