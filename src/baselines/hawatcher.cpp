#include "causaliot/baselines/hawatcher.hpp"

#include "causaliot/util/check.hpp"

namespace causaliot::baselines {

namespace {

using telemetry::AttributeType;

bool is_controllable(AttributeType type) {
  return type == AttributeType::kSwitch || type == AttributeType::kDimmer ||
         type == AttributeType::kPowerSensor ||
         type == AttributeType::kWaterMeter ||
         type == AttributeType::kGenericActuator;
}

}  // namespace

HaWatcherDetector::HaWatcherDetector(const telemetry::DeviceCatalog& catalog,
                                     HaWatcherConfig config)
    : catalog_(catalog), config_(config) {}

bool HaWatcherDetector::passes_background_knowledge(
    telemetry::DeviceId a, telemetry::DeviceId b) const {
  const telemetry::DeviceInfo& info_a = catalog_.info(a);
  const telemetry::DeviceInfo& info_b = catalog_.info(b);
  // Spatial constraint: correlated devices must share a room.
  if (info_a.room != info_b.room) return false;
  // Functionality ontology: user presence explains device operation (and
  // vice versa), and door contacts relate to presence. Sensor-to-sensor
  // and channel relations (power -> brightness) are not in the ontology.
  const AttributeType ta = info_a.attribute;
  const AttributeType tb = info_b.attribute;
  const bool a_presence = ta == AttributeType::kPresenceSensor;
  const bool b_presence = tb == AttributeType::kPresenceSensor;
  const bool a_contact = ta == AttributeType::kContactSensor;
  const bool b_contact = tb == AttributeType::kContactSensor;
  if (a_presence && is_controllable(tb)) return true;
  if (b_presence && is_controllable(ta)) return true;
  if (a_contact && b_presence) return true;
  if (a_presence && b_contact) return true;
  if (a_contact && is_controllable(tb)) return true;
  if (b_contact && is_controllable(ta)) return true;
  return false;
}

void HaWatcherDetector::fit(const preprocess::StateSeries& training) {
  const std::size_t n = training.device_count();
  rules_.clear();
  rejected_by_bk_ = 0;

  // counts[a][b].cell[s_a][s_b]: occurrences of device b being in state
  // s_b right after an event (a, s_a).
  struct Cell {
    std::size_t cell[2][2] = {{0, 0}, {0, 0}};
  };
  std::vector<Cell> counts(n * n);
  for (std::size_t j = 1; j < training.length(); ++j) {
    const preprocess::BinaryEvent& event = training.event_at(j);
    for (telemetry::DeviceId b = 0; b < n; ++b) {
      if (b == event.device) continue;
      counts[event.device * n + b]
          .cell[event.state][training.state(b, j)] += 1;
    }
  }

  for (telemetry::DeviceId a = 0; a < n; ++a) {
    for (telemetry::DeviceId b = 0; b < n; ++b) {
      if (a == b) continue;
      for (std::uint8_t sa = 0; sa <= 1; ++sa) {
        const Cell& cell = counts[a * n + b];
        const std::size_t support = cell.cell[sa][0] + cell.cell[sa][1];
        if (support < config_.min_support) continue;
        for (std::uint8_t sb = 0; sb <= 1; ++sb) {
          const double confidence = static_cast<double>(cell.cell[sa][sb]) /
                                    static_cast<double>(support);
          if (confidence < config_.min_confidence) continue;
          if (config_.use_background_knowledge &&
              !passes_background_knowledge(a, b)) {
            ++rejected_by_bk_;
            continue;
          }
          rules_.push_back({a, sa, b, sb, confidence, support});
        }
      }
    }
  }
}

void HaWatcherDetector::reset(std::vector<std::uint8_t> initial_state) {
  current_ = std::move(initial_state);
}

bool HaWatcherDetector::is_anomalous(const preprocess::BinaryEvent& event) {
  CAUSALIOT_CHECK(event.device < current_.size());
  // Event-to-state semantics: a rule constrains the snapshot at the moment
  // its antecedent event fires, not every snapshot in which the antecedent
  // state merely holds (the latter would flag nearly everything).
  bool violated = false;
  for (const Rule& rule : rules_) {
    if (rule.antecedent == event.device &&
        rule.antecedent_state == event.state &&
        current_[rule.consequent] != rule.consequent_state) {
      violated = true;
      break;
    }
  }
  current_[event.device] = event.state;
  return violated;
}

}  // namespace causaliot::baselines
