#include "causaliot/baselines/markov.hpp"

#include "causaliot/util/check.hpp"
#include "causaliot/util/rng.hpp"

namespace causaliot::baselines {

MarkovDetector::MarkovDetector(std::size_t order) : order_(order) {
  CAUSALIOT_CHECK_MSG(order >= 1, "Markov order must be >= 1");
}

std::uint64_t MarkovDetector::pack(const std::vector<std::uint8_t>& state) {
  CAUSALIOT_CHECK_MSG(state.size() <= 64, "state too wide to pack");
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < state.size(); ++i) {
    bits |= static_cast<std::uint64_t>(state[i] & 1U) << i;
  }
  return bits;
}

std::uint64_t MarkovDetector::digest(const std::deque<std::uint64_t>& history,
                                     std::uint64_t next) {
  std::uint64_t mix = 0x9E3779B97F4A7C15ULL;
  for (std::uint64_t packed : history) {
    std::uint64_t x = mix ^ packed;
    mix = util::splitmix64(x);
  }
  std::uint64_t x = mix ^ next;
  return util::splitmix64(x);
}

void MarkovDetector::fit(const preprocess::StateSeries& training) {
  device_count_ = training.device_count();
  transitions_.clear();
  histories_.clear();
  CAUSALIOT_CHECK_MSG(training.length() > order_, "series shorter than order");

  std::deque<std::uint64_t> history;
  for (std::size_t j = 0; j < training.length(); ++j) {
    const std::uint64_t packed = pack(training.snapshot_state(j));
    if (history.size() == order_) {
      const std::uint64_t empty_next = 0;
      histories_.insert(digest(history, empty_next) ^ 0xABCDULL);
      transitions_.insert(digest(history, packed));
    }
    history.push_back(packed);
    if (history.size() > order_) history.pop_front();
  }
}

void MarkovDetector::reset(std::vector<std::uint8_t> initial_state) {
  CAUSALIOT_CHECK(initial_state.size() == device_count_);
  current_ = std::move(initial_state);
  window_.clear();
  // Seed the history window with the initial state at every position, as
  // a system at rest would produce.
  for (std::size_t i = 0; i < order_; ++i) window_.push_back(pack(current_));
}

bool MarkovDetector::is_anomalous(const preprocess::BinaryEvent& event) {
  CAUSALIOT_CHECK(event.device < device_count_);
  current_[event.device] = event.state;
  const std::uint64_t next = pack(current_);
  const bool unseen = !transitions_.contains(digest(window_, next));
  window_.push_back(next);
  window_.pop_front();
  return unseen;
}

}  // namespace causaliot::baselines
