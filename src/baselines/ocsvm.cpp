#include "causaliot/baselines/ocsvm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "causaliot/util/check.hpp"
#include "causaliot/util/rng.hpp"

namespace causaliot::baselines {

OcsvmDetector::OcsvmDetector(OcsvmConfig config) : config_(config) {
  CAUSALIOT_CHECK_MSG(config_.nu > 0.0 && config_.nu <= 1.0,
                      "nu must be in (0, 1]");
}

double OcsvmDetector::kernel(const std::vector<std::uint8_t>& a,
                             const std::vector<std::uint8_t>& b) const {
  // For binary vectors the squared distance is the Hamming distance.
  std::size_t hamming = 0;
  for (std::size_t i = 0; i < a.size(); ++i) hamming += a[i] != b[i];
  return std::exp(-gamma_ * static_cast<double>(hamming));
}

void OcsvmDetector::fit(const preprocess::StateSeries& training) {
  device_count_ = training.device_count();
  gamma_ = config_.gamma > 0.0
               ? config_.gamma
               : 1.0 / static_cast<double>(std::max<std::size_t>(
                           device_count_, 1));

  // Collect snapshot state vectors, uniformly subsampled to the cap.
  util::Rng rng(config_.seed);
  const std::size_t total = training.length();
  const std::size_t take = std::min(total, config_.max_training_vectors);
  std::vector<std::size_t> picks = rng.sample_indices(total, take);
  vectors_.clear();
  vectors_.reserve(take);
  for (std::size_t index : picks) {
    vectors_.push_back(training.snapshot_state(index));
  }
  const std::size_t l = vectors_.size();
  CAUSALIOT_CHECK_MSG(l >= 2, "too few training vectors");

  // Dense kernel matrix (l is capped, so this stays small).
  std::vector<double> q(l * l);
  for (std::size_t i = 0; i < l; ++i) {
    for (std::size_t j = i; j < l; ++j) {
      const double k = kernel(vectors_[i], vectors_[j]);
      q[i * l + j] = k;
      q[j * l + i] = k;
    }
  }

  // Feasible start: the first floor(nu*l) coefficients at the upper bound,
  // the remainder on the next one (libsvm's initialization).
  const double upper = 1.0 / (config_.nu * static_cast<double>(l));
  alpha_.assign(l, 0.0);
  double remaining = 1.0;
  for (std::size_t i = 0; i < l && remaining > 0.0; ++i) {
    alpha_[i] = std::min(upper, remaining);
    remaining -= alpha_[i];
  }

  // Gradient of the dual objective: g_i = sum_j alpha_j K_ij.
  std::vector<double> grad(l, 0.0);
  for (std::size_t i = 0; i < l; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < l; ++j) sum += alpha_[j] * q[i * l + j];
    grad[i] = sum;
  }

  // Pairwise SMO: move weight from the most-violating high-gradient
  // coefficient to the lowest-gradient one.
  for (std::size_t iter = 0; iter < config_.max_smo_iterations; ++iter) {
    std::size_t up = l;    // candidate to increase (alpha < upper)
    std::size_t down = l;  // candidate to decrease (alpha > 0)
    double min_grad = std::numeric_limits<double>::infinity();
    double max_grad = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < l; ++i) {
      if (alpha_[i] < upper - 1e-12 && grad[i] < min_grad) {
        min_grad = grad[i];
        up = i;
      }
      if (alpha_[i] > 1e-12 && grad[i] > max_grad) {
        max_grad = grad[i];
        down = i;
      }
    }
    if (up == l || down == l || max_grad - min_grad < config_.tolerance) {
      break;
    }
    const double curvature =
        q[up * l + up] + q[down * l + down] - 2.0 * q[up * l + down];
    double step = curvature > 1e-12 ? (max_grad - min_grad) / curvature
                                    : upper;
    step = std::min({step, upper - alpha_[up], alpha_[down]});
    if (step <= 0.0) break;
    alpha_[up] += step;
    alpha_[down] -= step;
    for (std::size_t i = 0; i < l; ++i) {
      grad[i] += step * (q[i * l + up] - q[i * l + down]);
    }
  }

  // rho = decision offset, averaged over free support vectors (fall back
  // to all support vectors if none are strictly inside the box).
  double rho_sum = 0.0;
  std::size_t rho_count = 0;
  for (std::size_t i = 0; i < l; ++i) {
    if (alpha_[i] > 1e-10 && alpha_[i] < upper - 1e-10) {
      rho_sum += grad[i];
      ++rho_count;
    }
  }
  if (rho_count == 0) {
    for (std::size_t i = 0; i < l; ++i) {
      if (alpha_[i] > 1e-10) {
        rho_sum += grad[i];
        ++rho_count;
      }
    }
  }
  CAUSALIOT_CHECK_MSG(rho_count > 0, "OCSVM produced no support vectors");
  rho_ = rho_sum / static_cast<double>(rho_count);

  // Drop non-support vectors for fast inference.
  std::vector<std::vector<std::uint8_t>> sv;
  std::vector<double> sv_alpha;
  for (std::size_t i = 0; i < l; ++i) {
    if (alpha_[i] > 1e-10) {
      sv.push_back(std::move(vectors_[i]));
      sv_alpha.push_back(alpha_[i]);
    }
  }
  vectors_ = std::move(sv);
  alpha_ = std::move(sv_alpha);
}

double OcsvmDetector::decision_value(
    const std::vector<std::uint8_t>& state) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < vectors_.size(); ++i) {
    sum += alpha_[i] * kernel(vectors_[i], state);
  }
  return sum - rho_;
}

std::size_t OcsvmDetector::support_vector_count() const {
  return vectors_.size();
}

void OcsvmDetector::reset(std::vector<std::uint8_t> initial_state) {
  CAUSALIOT_CHECK(initial_state.size() == device_count_);
  current_ = std::move(initial_state);
}

bool OcsvmDetector::is_anomalous(const preprocess::BinaryEvent& event) {
  CAUSALIOT_CHECK(event.device < device_count_);
  current_[event.device] = event.state;
  return decision_value(current_) < 0.0;
}

}  // namespace causaliot::baselines
