// One-class SVM baseline (classic machine learning, Fig. 5).
//
// Schölkopf's nu-OCSVM with an RBF kernel over system-state vectors,
// trained from scratch with an SMO-style pairwise coordinate solver on the
// dual:
//
//   min 1/2 a' Q a   s.t.  0 <= a_i <= 1/(nu*l),  sum a_i = 1
//
// Decision f(x) = sum_i a_i K(x_i, x) - rho; x is anomalous when f(x) < 0.
// Training subsamples the snapshot set so the kernel matrix stays dense in
// memory — standard practice, and the paper's point stands either way: the
// boundary over raw state vectors is too coarse, producing heavy false
// positives.
#pragma once

#include "causaliot/baselines/detector.hpp"

namespace causaliot::baselines {

struct OcsvmConfig {
  /// nu bounds the fraction of training outliers / support vectors. The
  /// paper's OCSVM flags aggressively (~56% average false positives with
  /// decent recall); a loose boundary reproduces that operating point.
  double nu = 0.25;
  /// RBF width; <= 0 selects 1 / device_count.
  double gamma = 0.0;
  /// Max training vectors (uniform subsample above this).
  std::size_t max_training_vectors = 1500;
  std::size_t max_smo_iterations = 200000;
  double tolerance = 1e-4;
  std::uint64_t seed = 7;
};

class OcsvmDetector final : public AnomalyDetector {
 public:
  explicit OcsvmDetector(OcsvmConfig config = {});

  void fit(const preprocess::StateSeries& training) override;
  void reset(std::vector<std::uint8_t> initial_state) override;
  bool is_anomalous(const preprocess::BinaryEvent& event) override;
  std::string_view name() const override { return "ocsvm"; }

  /// Decision value for a raw state vector (for tests/diagnostics).
  double decision_value(const std::vector<std::uint8_t>& state) const;
  std::size_t support_vector_count() const;

 private:
  double kernel(const std::vector<std::uint8_t>& a,
                const std::vector<std::uint8_t>& b) const;

  OcsvmConfig config_;
  double gamma_ = 0.1;
  std::size_t device_count_ = 0;
  std::vector<std::vector<std::uint8_t>> vectors_;
  std::vector<double> alpha_;
  double rho_ = 0.0;
  std::vector<std::uint8_t> current_;
};

}  // namespace causaliot::baselines
