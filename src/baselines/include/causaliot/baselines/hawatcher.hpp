// HAWatcher-style semantics-aware rule baseline (data mining, Fig. 5).
//
// Re-implements the mechanism the paper compares against: high-confidence
// event-to-state correlations are mined from training data, then *gated by
// background knowledge* — a rule is kept only when the two devices share an
// installation room (spatial constraint) and their attribute pair is in a
// hand-written functionality ontology. The gate is exactly what the paper
// blames for HAWatcher's low accuracy: it rejects cross-room movement
// interactions (PE_kitchen -> PE_dining) and channel interactions
// (P_stove -> B_kitchen) that do profile normal behaviour.
#pragma once

#include <vector>

#include "causaliot/baselines/detector.hpp"
#include "causaliot/telemetry/device.hpp"

namespace causaliot::baselines {

struct HaWatcherConfig {
  /// Minimum conditional probability for a mined correlation.
  double min_confidence = 0.95;
  /// Minimum occurrences of the antecedent event.
  std::size_t min_support = 20;
  /// Apply the background-knowledge gate (spatial + functionality). The
  /// ablation bench disables it to isolate its cost.
  bool use_background_knowledge = true;
};

class HaWatcherDetector final : public AnomalyDetector {
 public:
  /// An event-to-state rule: when device `antecedent` reports state
  /// `antecedent_state`, device `consequent` is expected to be in state
  /// `consequent_state`.
  struct Rule {
    telemetry::DeviceId antecedent;
    std::uint8_t antecedent_state;
    telemetry::DeviceId consequent;
    std::uint8_t consequent_state;
    double confidence;
    std::size_t support;
  };

  HaWatcherDetector(const telemetry::DeviceCatalog& catalog,
                    HaWatcherConfig config = {});

  void fit(const preprocess::StateSeries& training) override;
  void reset(std::vector<std::uint8_t> initial_state) override;
  bool is_anomalous(const preprocess::BinaryEvent& event) override;
  std::string_view name() const override { return "hawatcher"; }

  const std::vector<Rule>& rules() const { return rules_; }
  std::size_t rejected_by_background_knowledge() const {
    return rejected_by_bk_;
  }

 private:
  bool passes_background_knowledge(telemetry::DeviceId a,
                                   telemetry::DeviceId b) const;

  const telemetry::DeviceCatalog& catalog_;
  HaWatcherConfig config_;
  std::vector<Rule> rules_;
  std::size_t rejected_by_bk_ = 0;
  std::vector<std::uint8_t> current_;
};

}  // namespace causaliot::baselines
