// k-th-order Markov-chain baseline (stochastic learning, Fig. 5).
//
// Estimates the likelihood of the current system state given the k
// preceding system states; a runtime event implying a transition never
// observed in training is reported anomalous (the formulation in [21],
// [22] as summarized in §VI-C). Because it keys on exact state-history
// tuples, disordered events (periodic ambient reports interleaving with
// user actions) produce unseen histories — the false-alarm mechanism the
// paper observes.
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "causaliot/baselines/detector.hpp"

namespace causaliot::baselines {

class MarkovDetector final : public AnomalyDetector {
 public:
  /// `order` is k; the paper sets k = tau.
  explicit MarkovDetector(std::size_t order);

  void fit(const preprocess::StateSeries& training) override;
  void reset(std::vector<std::uint8_t> initial_state) override;
  bool is_anomalous(const preprocess::BinaryEvent& event) override;
  std::string_view name() const override { return "markov"; }

  /// Distinct (history, next-state) transitions learned.
  std::size_t transition_count() const { return transitions_.size(); }

 private:
  /// Order-sensitive 64-bit digest of a packed-state sequence.
  static std::uint64_t digest(const std::deque<std::uint64_t>& history,
                              std::uint64_t next);
  static std::uint64_t pack(const std::vector<std::uint8_t>& state);

  std::size_t order_;
  std::size_t device_count_ = 0;
  std::unordered_set<std::uint64_t> transitions_;
  std::unordered_set<std::uint64_t> histories_;
  std::deque<std::uint64_t> window_;  // last `order_` packed states
  std::vector<std::uint8_t> current_;
};

}  // namespace causaliot::baselines
