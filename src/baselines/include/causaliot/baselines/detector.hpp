// Common interface for the Figure-5 baseline detectors.
//
// Each baseline is trained on the same preprocessed training series as
// CausalIoT and then consumes the same runtime binary-event stream,
// flagging events as anomalous. Keeping the interface event-by-event makes
// the comparison fair: every detector sees identical information.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "causaliot/preprocess/series.hpp"

namespace causaliot::baselines {

class AnomalyDetector {
 public:
  virtual ~AnomalyDetector() = default;

  /// Learns the normal-behaviour model from the training series.
  virtual void fit(const preprocess::StateSeries& training) = 0;

  /// Starts a monitoring session from the given system state (typically
  /// the training-trace tail). Must be called after fit().
  virtual void reset(std::vector<std::uint8_t> initial_state) = 0;

  /// Consumes one runtime event; returns true if flagged anomalous.
  virtual bool is_anomalous(const preprocess::BinaryEvent& event) = 0;

  virtual std::string_view name() const = 0;
};

}  // namespace causaliot::baselines
