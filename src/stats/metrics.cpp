#include "causaliot/stats/metrics.hpp"

#include "causaliot/util/strings.hpp"

namespace causaliot::stats {

void ConfusionCounts::add(bool predicted_positive, bool actually_positive) {
  if (predicted_positive && actually_positive) {
    ++true_positives;
  } else if (predicted_positive && !actually_positive) {
    ++false_positives;
  } else if (!predicted_positive && actually_positive) {
    ++false_negatives;
  } else {
    ++true_negatives;
  }
}

double ConfusionCounts::precision() const {
  const std::size_t denom = true_positives + false_positives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double ConfusionCounts::recall() const {
  const std::size_t denom = true_positives + false_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double ConfusionCounts::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionCounts::accuracy() const {
  const std::size_t n = total();
  return n == 0 ? 0.0
                : static_cast<double>(true_positives + true_negatives) /
                      static_cast<double>(n);
}

double ConfusionCounts::false_positive_rate() const {
  const std::size_t denom = false_positives + true_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(false_positives) /
                          static_cast<double>(denom);
}

std::string ConfusionCounts::summary() const {
  return util::format("P=%.3f R=%.3f F1=%.3f Acc=%.3f", precision(), recall(),
                      f1(), accuracy());
}

}  // namespace causaliot::stats
