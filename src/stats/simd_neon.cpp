// NEON (AArch64 ASIMD) backend: 128-bit AND + CNT per-byte popcount
// widened with pairwise adds (VADDLP) into 64-bit lane accumulators. Each
// kSimdWordStride stripe (8 words) is four 16-byte vectors; buffers
// follow the facade contract so the loads are aligned and tail-free.
// ASIMD is architecturally baseline on AArch64, so the probe only has to
// confirm the HWCAP bit on Linux.
#include <arm_neon.h>

#include "simd_kernels_internal.hpp"

namespace causaliot::stats::simd::detail {

namespace {

// popcount of one 128-bit vector as a two-lane 64-bit partial sum.
inline uint64x2_t popcnt_lanes(uint8x16_t v) {
  return vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v))));
}

inline uint8x16_t load_u8(const std::uint64_t* p) {
  return vreinterpretq_u8_u64(vld1q_u64(p));
}

std::uint64_t neon_and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words) {
  uint64x2_t acc = vdupq_n_u64(0);
  for (std::size_t w = 0; w < words; w += 2) {
    const uint8x16_t m = vandq_u8(load_u8(a + w), load_u8(b + w));
    acc = vaddq_u64(acc, popcnt_lanes(m));
  }
  return vaddvq_u64(acc);
}

void neon_marginal_pass(const std::uint64_t* const* cols, std::size_t k,
                        const std::uint64_t* y, std::size_t words,
                        std::uint64_t* p, std::uint64_t* p_y) {
  uint64x2_t acc_p[kMarginalPassMaxColumns];
  uint64x2_t acc_py[kMarginalPassMaxColumns];
  for (std::size_t i = 0; i < k; ++i) {
    acc_p[i] = vdupq_n_u64(0);
    acc_py[i] = vdupq_n_u64(0);
  }
  for (std::size_t w = 0; w < words; w += 2) {
    const uint8x16_t vy = load_u8(y + w);
    for (std::size_t i = 0; i < k; ++i) {
      const uint8x16_t vc = load_u8(cols[i] + w);
      acc_p[i] = vaddq_u64(acc_p[i], popcnt_lanes(vc));
      acc_py[i] = vaddq_u64(acc_py[i], popcnt_lanes(vandq_u8(vc, vy)));
    }
  }
  for (std::size_t i = 0; i < k; ++i) {
    p[i] = vaddvq_u64(acc_p[i]);
    p_y[i] = vaddvq_u64(acc_py[i]);
  }
}

void neon_masked_pass(const std::uint64_t* prefix, const std::uint64_t* last,
                      const std::uint64_t* y, std::uint64_t* mask_out,
                      std::size_t words, std::uint64_t* p, std::uint64_t* p_y) {
  uint64x2_t acc_p = vdupq_n_u64(0);
  uint64x2_t acc_py = vdupq_n_u64(0);
  for (std::size_t w = 0; w < words; w += 2) {
    const uint8x16_t m = vandq_u8(load_u8(prefix + w), load_u8(last + w));
    if (mask_out != nullptr) {
      vst1q_u64(mask_out + w, vreinterpretq_u64_u8(m));
    }
    acc_p = vaddq_u64(acc_p, popcnt_lanes(m));
    acc_py =
        vaddq_u64(acc_py, popcnt_lanes(vandq_u8(m, load_u8(y + w))));
  }
  *p = vaddvq_u64(acc_p);
  *p_y = vaddvq_u64(acc_py);
}

}  // namespace

const Kernels& neon_kernels() {
  static constexpr Kernels kTable{neon_and_popcount, neon_marginal_pass,
                                  neon_masked_pass};
  return kTable;
}

}  // namespace causaliot::stats::simd::detail
