#include "causaliot/stats/gsquare.hpp"

#include <cmath>

#include "causaliot/stats/special_functions.hpp"
#include "causaliot/util/check.hpp"
#include "ci_from_counts.hpp"

namespace causaliot::stats {

namespace internal {

// Computes the statistic from stratum-major 2x2 counts
// (counts[key * 4 + x * 2 + y], see CiTestContext::count_strata). Counts
// are exact integers, so this matches the historical per-row double
// accumulation bit for bit.
GSquareResult g_square_from_counts(const StratumCounts& strata,
                                   std::size_t sample_count) {
  GSquareResult result;
  result.sample_count = sample_count;

  double statistic = 0.0;
  double dof = 0.0;
  for_each_stratum(strata, [&](const std::uint64_t* cells) {
    double cell[2][2];
    for (int xv = 0; xv < 2; ++xv) {
      for (int yv = 0; yv < 2; ++yv) {
        cell[xv][yv] = static_cast<double>(
            cells[static_cast<std::size_t>(xv) * 2 +
                  static_cast<std::size_t>(yv)]);
      }
    }
    const double row_total[2] = {cell[0][0] + cell[0][1],
                                 cell[1][0] + cell[1][1]};
    const double col_total[2] = {cell[0][0] + cell[1][0],
                                 cell[0][1] + cell[1][1]};
    const double total = row_total[0] + row_total[1];
    if (total <= 0.0) return;
    // Adjusted dof: only rows/columns with non-zero marginals contribute.
    const int live_rows =
        (row_total[0] > 0.0 ? 1 : 0) + (row_total[1] > 0.0 ? 1 : 0);
    const int live_cols =
        (col_total[0] > 0.0 ? 1 : 0) + (col_total[1] > 0.0 ? 1 : 0);
    dof += static_cast<double>((live_rows - 1) * (live_cols - 1));
    for (int xv = 0; xv < 2; ++xv) {
      for (int yv = 0; yv < 2; ++yv) {
        const double observed = cell[xv][yv];
        if (observed <= 0.0) continue;  // 0 * ln(0) term is 0 in the limit.
        const double expected = row_total[xv] * col_total[yv] / total;
        statistic += 2.0 * observed * std::log(observed / expected);
      }
    }
  });
  // Rounding can leave a tiny negative statistic for perfectly independent
  // tables; clamp.
  if (statistic < 0.0) statistic = 0.0;

  result.statistic = statistic;
  result.dof = dof;
  result.p_value = dof > 0.0 ? chi_squared_sf(statistic, dof) : 1.0;
  return result;
}

// Shared preamble: empty-sample and small-sample-guard early outs. Returns
// true when `result` is already final.
bool g_square_preamble(std::size_t n, std::size_t conditioning_count,
                       const GSquareOptions& options, GSquareResult& result) {
  result.sample_count = n;
  if (n == 0) return true;
  const double nominal_dof =
      std::ldexp(1.0, static_cast<int>(conditioning_count));
  if (options.min_samples_per_dof > 0.0 &&
      static_cast<double>(n) < options.min_samples_per_dof * nominal_dof) {
    result.skipped_insufficient_data = true;
    return true;
  }
  return false;
}

}  // namespace internal

GSquareResult g_square_test(std::span<const std::uint8_t> x,
                            std::span<const std::uint8_t> y,
                            std::span<const std::span<const std::uint8_t>> z,
                            const GSquareOptions& options,
                            CiTestContext& context) {
  const std::size_t n = x.size();
  CAUSALIOT_CHECK_MSG(y.size() == n, "column length mismatch");
  CAUSALIOT_CHECK_MSG(z.size() <= 20, "conditioning set too large");
  for (const auto& column : z) {
    CAUSALIOT_CHECK_MSG(column.size() == n, "column length mismatch");
  }

  GSquareResult result;
  if (internal::g_square_preamble(n, z.size(), options, result)) return result;
  return internal::g_square_from_counts(context.count_strata(x, y, z), n);
}

GSquareResult g_square_test(const PackedColumn& x, const PackedColumn& y,
                            std::span<const PackedColumn* const> z,
                            const GSquareOptions& options,
                            CiTestContext& context) {
  const std::size_t n = x.size();
  CAUSALIOT_CHECK_MSG(y.size() == n, "column length mismatch");
  for (const PackedColumn* column : z) {
    CAUSALIOT_CHECK_MSG(column->size() == n, "column length mismatch");
  }

  GSquareResult result;
  if (internal::g_square_preamble(n, z.size(), options, result)) return result;
  return internal::g_square_from_counts(context.count_strata(x, y, z), n);
}

GSquareResult g_square_test(std::span<const std::uint8_t> x,
                            std::span<const std::uint8_t> y,
                            std::span<const std::span<const std::uint8_t>> z,
                            const GSquareOptions& options) {
  CiTestContext context;
  return g_square_test(x, y, z, options, context);
}

GSquareResult g_square_test(std::span<const std::uint8_t> x,
                            std::span<const std::uint8_t> y,
                            const GSquareOptions& options) {
  return g_square_test(x, y, {}, options);
}

}  // namespace causaliot::stats
