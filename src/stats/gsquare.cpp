#include "causaliot/stats/gsquare.hpp"

#include <cmath>

#include "causaliot/stats/special_functions.hpp"
#include "causaliot/util/check.hpp"

namespace causaliot::stats {

namespace {

// Counts for one stratum of the conditioning set: a 2x2 table over (x, y).
struct Stratum {
  // cell[x][y]
  double cell[2][2] = {{0.0, 0.0}, {0.0, 0.0}};

  double row_total(int x) const { return cell[x][0] + cell[x][1]; }
  double col_total(int y) const { return cell[0][y] + cell[1][y]; }
  double total() const { return row_total(0) + row_total(1); }
};

}  // namespace

GSquareResult g_square_test(std::span<const std::uint8_t> x,
                            std::span<const std::uint8_t> y,
                            std::span<const std::span<const std::uint8_t>> z,
                            const GSquareOptions& options) {
  const std::size_t n = x.size();
  CAUSALIOT_CHECK_MSG(y.size() == n, "column length mismatch");
  CAUSALIOT_CHECK_MSG(z.size() <= 20, "conditioning set too large");
  for (const auto& column : z) {
    CAUSALIOT_CHECK_MSG(column.size() == n, "column length mismatch");
  }

  GSquareResult result;
  result.sample_count = n;
  if (n == 0) return result;

  const double nominal_dof = std::ldexp(1.0, static_cast<int>(z.size()));
  if (options.min_samples_per_dof > 0.0 &&
      static_cast<double>(n) < options.min_samples_per_dof * nominal_dof) {
    result.skipped_insufficient_data = true;
    return result;
  }

  // Bucket samples into strata. With |Z| <= 20 a dense vector of 2^|Z|
  // strata is at most 1M entries of 32 bytes; |Z| in practice is <= 5.
  const std::size_t stratum_count = std::size_t{1} << z.size();
  std::vector<Stratum> strata(stratum_count);
  for (std::size_t row = 0; row < n; ++row) {
    std::size_t key = 0;
    for (std::size_t j = 0; j < z.size(); ++j) {
      CAUSALIOT_CHECK_MSG(z[j][row] <= 1, "non-binary conditioning value");
      key |= static_cast<std::size_t>(z[j][row]) << j;
    }
    CAUSALIOT_CHECK_MSG(x[row] <= 1 && y[row] <= 1, "non-binary test value");
    strata[key].cell[x[row]][y[row]] += 1.0;
  }

  double statistic = 0.0;
  double dof = 0.0;
  for (const Stratum& s : strata) {
    const double total = s.total();
    if (total <= 0.0) continue;
    // Adjusted dof: only rows/columns with non-zero marginals contribute.
    const int live_rows = (s.row_total(0) > 0.0 ? 1 : 0) +
                          (s.row_total(1) > 0.0 ? 1 : 0);
    const int live_cols = (s.col_total(0) > 0.0 ? 1 : 0) +
                          (s.col_total(1) > 0.0 ? 1 : 0);
    dof += static_cast<double>((live_rows - 1) * (live_cols - 1));
    for (int xv = 0; xv < 2; ++xv) {
      for (int yv = 0; yv < 2; ++yv) {
        const double observed = s.cell[xv][yv];
        if (observed <= 0.0) continue;  // 0 * ln(0) term is 0 in the limit.
        const double expected = s.row_total(xv) * s.col_total(yv) / total;
        statistic += 2.0 * observed * std::log(observed / expected);
      }
    }
  }
  // Rounding can leave a tiny negative statistic for perfectly independent
  // tables; clamp.
  if (statistic < 0.0) statistic = 0.0;

  result.statistic = statistic;
  result.dof = dof;
  result.p_value = dof > 0.0 ? chi_squared_sf(statistic, dof) : 1.0;
  return result;
}

GSquareResult g_square_test(std::span<const std::uint8_t> x,
                            std::span<const std::uint8_t> y,
                            const GSquareOptions& options) {
  return g_square_test(x, y, {}, options);
}

}  // namespace causaliot::stats
