#include "causaliot/stats/ci_context.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "causaliot/util/check.hpp"

namespace causaliot::stats {

namespace {

// Gathers the low bit of each of 8 consecutive 0/1 bytes into the low 8
// bits of the result: bit i of ((v * kGather) >> 56) is byte i of v. The
// shifted partial products never collide (8i - 7j has a unique solution
// per target bit), so no carries corrupt the gathered byte.
constexpr std::uint64_t kGather = 0x0102040810204080ULL;
constexpr std::uint64_t kLowBits = 0x0101010101010101ULL;

}  // namespace

PackedColumn::PackedColumn(std::span<const std::uint8_t> column)
    : size_(column.size()), words_((column.size() + 63) / 64) {
  // 8 rows per step: load a uint64 of bytes, validate them in one mask
  // test, and gather their low bits with a multiply instead of a per-row
  // shift-or loop. The byte-order of the load matters: byte i must land
  // at bits 8i, which holds only on little-endian hosts.
  const std::size_t full =
      std::endian::native == std::endian::little ? size_ / 8 : 0;
  for (std::size_t chunk = 0; chunk < full; ++chunk) {
    std::uint64_t v;
    std::memcpy(&v, column.data() + chunk * 8, 8);
    CAUSALIOT_CHECK_MSG((v & ~kLowBits) == 0, "non-binary column value");
    words_[chunk / 8] |= ((v * kGather) >> 56) << (chunk % 8 * 8);
  }
  for (std::size_t row = full * 8; row < size_; ++row) {
    CAUSALIOT_CHECK_MSG(column[row] <= 1, "non-binary column value");
    words_[row / 64] |=
        static_cast<std::uint64_t>(column[row]) << (row % 64);
  }
}

StratumCounts CiTestContext::count_strata(
    std::span<const std::uint8_t> x, std::span<const std::uint8_t> y,
    std::span<const std::span<const std::uint8_t>> z) {
  const std::size_t n = x.size();
  const std::size_t stratum_count = std::size_t{1} << z.size();

  if (stratum_count <= kDenseStrataLimit) {
    // Dense: the full clear is a small bounded memset.
    counts_.assign(stratum_count * 4, 0);
    for (std::size_t row = 0; row < n; ++row) {
      std::size_t key = 0;
      for (std::size_t j = 0; j < z.size(); ++j) {
        CAUSALIOT_CHECK_MSG(z[j][row] <= 1, "non-binary conditioning value");
        key |= static_cast<std::size_t>(z[j][row]) << j;
      }
      CAUSALIOT_CHECK_MSG(x[row] <= 1 && y[row] <= 1, "non-binary test value");
      ++counts_[key * 4 + static_cast<std::size_t>(x[row]) * 2 + y[row]];
    }
    return {{counts_.data(), stratum_count * 4}, {}, true};
  }

  // Sparse: never clear the table. A key's cells are zeroed the first
  // time the key is seen this call (stamps_ carries the call epoch), so
  // setup cost is O(touched keys), not O(2^|Z|). Stale entries for other
  // keys remain in counts_ — the StratumCounts contract hides them.
  if (counts_.size() < stratum_count * 4) counts_.resize(stratum_count * 4);
  if (stamps_.size() < stratum_count) stamps_.resize(stratum_count, 0);
  ++epoch_;
  touched_.clear();
  for (std::size_t row = 0; row < n; ++row) {
    std::size_t key = 0;
    for (std::size_t j = 0; j < z.size(); ++j) {
      CAUSALIOT_CHECK_MSG(z[j][row] <= 1, "non-binary conditioning value");
      key |= static_cast<std::size_t>(z[j][row]) << j;
    }
    CAUSALIOT_CHECK_MSG(x[row] <= 1 && y[row] <= 1, "non-binary test value");
    if (stamps_[key] != epoch_) {
      stamps_[key] = epoch_;
      counts_[key * 4 + 0] = counts_[key * 4 + 1] = 0;
      counts_[key * 4 + 2] = counts_[key * 4 + 3] = 0;
      touched_.push_back(static_cast<std::uint32_t>(key));
    }
    ++counts_[key * 4 + static_cast<std::size_t>(x[row]) * 2 + y[row]];
  }
  // Rows arrive in stream order; the result contract is ascending keys
  // (the order the dense iteration would visit them).
  std::sort(touched_.begin(), touched_.end());
  return {{counts_.data(), counts_.size()}, touched_, false};
}

StratumCounts CiTestContext::count_strata(
    const PackedColumn& x, const PackedColumn& y,
    std::span<const PackedColumn* const> z) {
  const std::size_t n = x.size();
  const std::size_t l = z.size();
  const std::size_t stratum_count = std::size_t{1} << l;
  counts_.assign(stratum_count * 4, 0);

  const std::uint64_t* x_words = x.padded_words().data();
  const std::uint64_t* y_words = y.padded_words().data();
  const std::uint64_t* z_words[kPackedConditioningLimit] = {};
  CAUSALIOT_CHECK_MSG(l <= kPackedConditioningLimit,
                      "conditioning set too large for the packed kernel");
  for (std::size_t j = 0; j < l; ++j) z_words[j] = z[j]->padded_words().data();

  // Column storage is zero-padded to the SIMD stride, so every pass
  // sweeps whole padded words with no ragged-tail branch. The padding
  // rows read as all-zero — stratum key 0, cell (0, 0) — and are
  // subtracted back out after counting.
  const std::size_t padded = x.padded_words().size();
  const std::uint64_t pad_rows = padded * 64 - n;

  if (l == 0) {
    // Marginal table via the SIMD facade: one fused sweep yields
    // P(x) and P(x & y), one more yields P(y); the four cells follow by
    // exact integer arithmetic, so the result is bit-identical to
    // counting each cell directly.
    const simd::Kernels& kernels = simd::kernels();
    const std::uint64_t* cols[1] = {x_words};
    std::uint64_t p_x = 0;
    std::uint64_t p_xy = 0;
    kernels.marginal_pass(cols, 1, y_words, padded, &p_x, &p_xy);
    const std::uint64_t p_y = kernels.and_popcount(y_words, y_words, padded);
    counts_[0] = n - p_x - p_y + p_xy;
    counts_[1] = p_y - p_xy;
    counts_[2] = p_x - p_xy;
    counts_[3] = p_xy;
    return {{counts_.data(), 4}, {}, true};
  }

  for (std::size_t w = 0; w < padded; ++w) {
    const std::uint64_t xw = x_words[w];
    const std::uint64_t yw = y_words[w];
    for (std::size_t key = 0; key < stratum_count; ++key) {
      std::uint64_t stratum_mask = ~std::uint64_t{0};
      for (std::size_t j = 0; j < l; ++j) {
        const std::uint64_t zw = z_words[j][w];
        stratum_mask &= (key >> j & 1U) != 0 ? zw : ~zw;
      }
      if (stratum_mask == 0) continue;
      counts_[key * 4 + 0] +=
          static_cast<std::uint64_t>(std::popcount(stratum_mask & ~xw & ~yw));
      counts_[key * 4 + 1] +=
          static_cast<std::uint64_t>(std::popcount(stratum_mask & ~xw & yw));
      counts_[key * 4 + 2] +=
          static_cast<std::uint64_t>(std::popcount(stratum_mask & xw & ~yw));
      counts_[key * 4 + 3] +=
          static_cast<std::uint64_t>(std::popcount(stratum_mask & xw & yw));
    }
  }
  counts_[0] -= pad_rows;
  return {{counts_.data(), stratum_count * 4}, {}, true};
}

}  // namespace causaliot::stats
