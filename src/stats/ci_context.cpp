#include "causaliot/stats/ci_context.hpp"

#include <bit>

#include "causaliot/util/check.hpp"

namespace causaliot::stats {

PackedColumn::PackedColumn(std::span<const std::uint8_t> column)
    : size_(column.size()), words_((column.size() + 63) / 64, 0) {
  for (std::size_t row = 0; row < size_; ++row) {
    CAUSALIOT_CHECK_MSG(column[row] <= 1, "non-binary column value");
    words_[row / 64] |=
        static_cast<std::uint64_t>(column[row]) << (row % 64);
  }
}

std::span<const std::uint64_t> CiTestContext::count_strata(
    std::span<const std::uint8_t> x, std::span<const std::uint8_t> y,
    std::span<const std::span<const std::uint8_t>> z) {
  const std::size_t n = x.size();
  const std::size_t stratum_count = std::size_t{1} << z.size();
  counts_.assign(stratum_count * 4, 0);
  for (std::size_t row = 0; row < n; ++row) {
    std::size_t key = 0;
    for (std::size_t j = 0; j < z.size(); ++j) {
      CAUSALIOT_CHECK_MSG(z[j][row] <= 1, "non-binary conditioning value");
      key |= static_cast<std::size_t>(z[j][row]) << j;
    }
    CAUSALIOT_CHECK_MSG(x[row] <= 1 && y[row] <= 1, "non-binary test value");
    ++counts_[key * 4 + static_cast<std::size_t>(x[row]) * 2 + y[row]];
  }
  return {counts_.data(), stratum_count * 4};
}

std::span<const std::uint64_t> CiTestContext::count_strata(
    const PackedColumn& x, const PackedColumn& y,
    std::span<const PackedColumn* const> z) {
  const std::size_t n = x.size();
  const std::size_t l = z.size();
  const std::size_t stratum_count = std::size_t{1} << l;
  counts_.assign(stratum_count * 4, 0);

  const std::uint64_t* x_words = x.words().data();
  const std::uint64_t* y_words = y.words().data();
  const std::uint64_t* z_words[kPackedConditioningLimit] = {};
  CAUSALIOT_CHECK_MSG(l <= kPackedConditioningLimit,
                      "conditioning set too large for the packed kernel");
  for (std::size_t j = 0; j < l; ++j) z_words[j] = z[j]->words().data();

  const std::size_t word_count = (n + 63) / 64;
  for (std::size_t w = 0; w < word_count; ++w) {
    // Rows past n sit as zero padding in every column; mask them out so
    // they don't count toward stratum 0 / cell (0, 0).
    const std::uint64_t valid =
        (w + 1 == word_count && n % 64 != 0)
            ? (std::uint64_t{1} << (n % 64)) - 1
            : ~std::uint64_t{0};
    const std::uint64_t xw = x_words[w];
    const std::uint64_t yw = y_words[w];
    for (std::size_t key = 0; key < stratum_count; ++key) {
      std::uint64_t stratum_mask = valid;
      for (std::size_t j = 0; j < l; ++j) {
        const std::uint64_t zw = z_words[j][w];
        stratum_mask &= (key >> j & 1U) != 0 ? zw : ~zw;
      }
      if (stratum_mask == 0) continue;
      counts_[key * 4 + 0] +=
          static_cast<std::uint64_t>(std::popcount(stratum_mask & ~xw & ~yw));
      counts_[key * 4 + 1] +=
          static_cast<std::uint64_t>(std::popcount(stratum_mask & ~xw & yw));
      counts_[key * 4 + 2] +=
          static_cast<std::uint64_t>(std::popcount(stratum_mask & xw & ~yw));
      counts_[key * 4 + 3] +=
          static_cast<std::uint64_t>(std::popcount(stratum_mask & xw & yw));
    }
  }
  return {counts_.data(), stratum_count * 4};
}

}  // namespace causaliot::stats
