// AVX2 backend: 256-bit AND + VPSHUFB nibble-LUT popcount (Muła's
// algorithm). Each 32-byte vector is split into low/high nibbles, both
// looked up in an in-register 16-entry popcount table, and the byte sums
// are folded into per-lane 64-bit accumulators with VPSADBW — no scalar
// POPCNT on the critical path and no cross-lane work until the final
// horizontal reduction. Buffers follow the facade contract (64-byte
// aligned, word count a multiple of kSimdWordStride = 8 words = two
// vectors), so every loop body runs exactly two aligned loads per column
// with no tail.
//
// This translation unit is compiled with -mavx2 and must contain nothing
// that executes before the runtime CPU probe admits the backend.
#include <immintrin.h>

#include "simd_kernels_internal.hpp"

namespace causaliot::stats::simd::detail {

namespace {

// Per-byte popcounts of a 256-bit vector.
inline __m256i popcnt_bytes(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

// Byte popcounts widened to four 64-bit lane sums (each <= 64, so the
// epi64 accumulators never overflow for any realistic column length).
inline __m256i popcnt_lanes(__m256i v) {
  return _mm256_sad_epu8(popcnt_bytes(v), _mm256_setzero_si256());
}

inline std::uint64_t reduce_lanes(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(sum)) +
         static_cast<std::uint64_t>(
             _mm_cvtsi128_si64(_mm_unpackhi_epi64(sum, sum)));
}

std::uint64_t avx2_and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words) {
  __m256i acc = _mm256_setzero_si256();
  for (std::size_t w = 0; w < words; w += 4) {
    const __m256i va =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(b + w));
    acc = _mm256_add_epi64(acc, popcnt_lanes(_mm256_and_si256(va, vb)));
  }
  return reduce_lanes(acc);
}

void avx2_marginal_pass(const std::uint64_t* const* cols, std::size_t k,
                        const std::uint64_t* y, std::size_t words,
                        std::uint64_t* p, std::uint64_t* p_y) {
  __m256i acc_p[kMarginalPassMaxColumns];
  __m256i acc_py[kMarginalPassMaxColumns];
  for (std::size_t i = 0; i < k; ++i) {
    acc_p[i] = _mm256_setzero_si256();
    acc_py[i] = _mm256_setzero_si256();
  }
  for (std::size_t w = 0; w < words; w += 4) {
    const __m256i vy =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(y + w));
    for (std::size_t i = 0; i < k; ++i) {
      const __m256i vc =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(cols[i] + w));
      acc_p[i] = _mm256_add_epi64(acc_p[i], popcnt_lanes(vc));
      acc_py[i] =
          _mm256_add_epi64(acc_py[i], popcnt_lanes(_mm256_and_si256(vc, vy)));
    }
  }
  for (std::size_t i = 0; i < k; ++i) {
    p[i] = reduce_lanes(acc_p[i]);
    p_y[i] = reduce_lanes(acc_py[i]);
  }
}

void avx2_masked_pass(const std::uint64_t* prefix, const std::uint64_t* last,
                      const std::uint64_t* y, std::uint64_t* mask_out,
                      std::size_t words, std::uint64_t* p, std::uint64_t* p_y) {
  __m256i acc_p = _mm256_setzero_si256();
  __m256i acc_py = _mm256_setzero_si256();
  for (std::size_t w = 0; w < words; w += 4) {
    const __m256i vp =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(prefix + w));
    const __m256i vl =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(last + w));
    const __m256i vy =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(y + w));
    const __m256i m = _mm256_and_si256(vp, vl);
    if (mask_out != nullptr) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(mask_out + w), m);
    }
    acc_p = _mm256_add_epi64(acc_p, popcnt_lanes(m));
    acc_py = _mm256_add_epi64(acc_py, popcnt_lanes(_mm256_and_si256(m, vy)));
  }
  *p = reduce_lanes(acc_p);
  *p_y = reduce_lanes(acc_py);
}

}  // namespace

const Kernels& avx2_kernels() {
  static constexpr Kernels kTable{avx2_and_popcount, avx2_marginal_pass,
                                  avx2_masked_pass};
  return kTable;
}

}  // namespace causaliot::stats::simd::detail
