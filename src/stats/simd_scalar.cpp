// Scalar reference implementation of the SIMD kernel facade: plain
// uint64 AND + std::popcount, one word per step. Always compiled, always
// supported — the fallback every other backend must match bit for bit,
// and the backend CAUSALIOT_SIMD=scalar pins for debugging.
#include <bit>

#include "simd_kernels_internal.hpp"

namespace causaliot::stats::simd::detail {

namespace {

std::uint64_t scalar_and_popcount(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t words) {
  std::uint64_t total = 0;
  for (std::size_t w = 0; w < words; ++w) {
    total += static_cast<std::uint64_t>(std::popcount(a[w] & b[w]));
  }
  return total;
}

void scalar_marginal_pass(const std::uint64_t* const* cols, std::size_t k,
                          const std::uint64_t* y, std::size_t words,
                          std::uint64_t* p, std::uint64_t* p_y) {
  for (std::size_t i = 0; i < k; ++i) {
    p[i] = 0;
    p_y[i] = 0;
  }
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t yw = y[w];
    for (std::size_t i = 0; i < k; ++i) {
      const std::uint64_t m = cols[i][w];
      p[i] += static_cast<std::uint64_t>(std::popcount(m));
      p_y[i] += static_cast<std::uint64_t>(std::popcount(m & yw));
    }
  }
}

void scalar_masked_pass(const std::uint64_t* prefix, const std::uint64_t* last,
                        const std::uint64_t* y, std::uint64_t* mask_out,
                        std::size_t words, std::uint64_t* p,
                        std::uint64_t* p_y) {
  std::uint64_t total = 0;
  std::uint64_t total_y = 0;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t m = prefix[w] & last[w];
    if (mask_out != nullptr) mask_out[w] = m;
    total += static_cast<std::uint64_t>(std::popcount(m));
    total_y += static_cast<std::uint64_t>(std::popcount(m & y[w]));
  }
  *p = total;
  *p_y = total_y;
}

}  // namespace

const Kernels& scalar_kernels() {
  static constexpr Kernels kTable{scalar_and_popcount, scalar_marginal_pass,
                                  scalar_masked_pass};
  return kTable;
}

}  // namespace causaliot::stats::simd::detail
