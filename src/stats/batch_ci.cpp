#include "causaliot/stats/batch_ci.hpp"

#include <algorithm>

#include "causaliot/util/check.hpp"
#include "ci_from_counts.hpp"

namespace causaliot::stats {

// All word passes below go through the capability-dispatched SIMD facade
// (stats/simd_backend.hpp). Parents per prepare_marginals pass therefore
// match the kernel contract's kMarginalPassMaxColumns: enough accumulator
// pairs to hide the popcount latency chain, few enough to stay in
// registers on every backend.

BatchCiContext::BatchCiContext(std::span<const PackedColumn> universe,
                               ColumnId y)
    : universe_(universe), y_(y) {
  CAUSALIOT_CHECK_MSG(!universe.empty(), "empty column universe");
  CAUSALIOT_CHECK_MSG(y < universe.size(), "y column out of range");
  n_ = universe[y].size();
  padded_words_ = universe_[y].padded_words().size();
  for (const PackedColumn& column : universe_) {
    CAUSALIOT_CHECK_MSG(column.size() == n_, "column length mismatch");
  }
  singles_.resize(universe_.size());
  pairs_.resize(universe_.size());
  const std::uint64_t* y_words = universe_[y_].padded_words().data();
  p_y_ = simd::kernels().and_popcount(y_words, y_words, padded_words_);
  passes_ = 1;
}

void BatchCiContext::reset_cache() {
  std::fill(singles_.begin(), singles_.end(), Entry{});
  std::fill(pairs_.begin(), pairs_.end(), nullptr);
  higher_.clear();
}

BatchCiContext::Entry& BatchCiContext::locate(std::span<const ColumnId> ids) {
  if (ids.size() == 1) return singles_[ids[0]];
  if (ids.size() == 2) {
    auto& row = pairs_[ids[0]];
    if (!row) row = std::make_unique<std::vector<Entry>>(universe_.size());
    return (*row)[ids[1]];
  }
  key_.assign(ids.begin(), ids.end());
  return higher_[key_];
}

void BatchCiContext::fill_single(ColumnId id, Entry& entry) {
  const std::uint64_t* words = universe_[id].padded_words().data();
  const std::uint64_t* y_words = universe_[y_].padded_words().data();
  const std::uint64_t* cols[1] = {words};
  simd::kernels().marginal_pass(cols, 1, y_words, padded_words_, &entry.p,
                                &entry.p_y);
  entry.state = 1;
  ++passes_;
}

void BatchCiContext::fill_from_mask(std::span<const std::uint64_t> prefix_mask,
                                    const std::uint64_t* last_words,
                                    Entry& entry, bool store_mask) {
  const std::uint64_t* y_words = universe_[y_].padded_words().data();
  if (store_mask && entry.mask.size() != padded_words_) {
    entry.mask = AlignedWords(padded_words_);
  }
  simd::kernels().masked_pass(prefix_mask.data(), last_words, y_words,
                              store_mask ? entry.mask.data() : nullptr,
                              padded_words_, &entry.p, &entry.p_y);
  entry.state = store_mask ? 2 : 1;
  ++passes_;
}

const BatchCiContext::Entry& BatchCiContext::ensure_counts(
    std::span<const ColumnId> ids) {
  if (ids.size() == 1) {
    Entry& entry = singles_[ids[0]];
    if (entry.state == 0) fill_single(ids[0], entry);
    return entry;
  }
  // Build the prefix mask before locating the target: ensure_mask may
  // insert into the containers locate reads from.
  std::span<const std::uint64_t> prefix_mask;
  {
    Entry& entry = locate(ids);
    if (entry.state != 0) return entry;
  }
  prefix_mask = ensure_mask(ids.first(ids.size() - 1));
  Entry& entry = locate(ids);
  fill_from_mask(prefix_mask, universe_[ids.back()].padded_words().data(),
                 entry,
                 /*store_mask=*/false);
  return entry;
}

std::span<const std::uint64_t> BatchCiContext::ensure_mask(
    std::span<const ColumnId> ids) {
  if (ids.size() == 1) return universe_[ids[0]].padded_words();
  {
    Entry& entry = locate(ids);
    if (entry.state == 2) return {entry.mask.data(), entry.mask.size()};
  }
  const std::span<const std::uint64_t> prefix_mask =
      ensure_mask(ids.first(ids.size() - 1));
  Entry& entry = locate(ids);
  fill_from_mask(prefix_mask, universe_[ids.back()].padded_words().data(),
                 entry,
                 /*store_mask=*/true);
  return {entry.mask.data(), entry.mask.size()};
}

void BatchCiContext::prepare_marginals(std::span<const ColumnId> xs) {
  pending_.clear();
  for (const ColumnId x : xs) {
    CAUSALIOT_CHECK_MSG(x < universe_.size(), "column id out of range");
    if (singles_[x].state == 0) pending_.push_back(x);
  }
  const std::uint64_t* y_words = universe_[y_].padded_words().data();
  constexpr std::size_t kBatch = simd::kMarginalPassMaxColumns;
  for (std::size_t base = 0; base < pending_.size(); base += kBatch) {
    const std::size_t k = std::min(kBatch, pending_.size() - base);
    const std::uint64_t* cols[kBatch] = {};
    std::uint64_t p[kBatch] = {};
    std::uint64_t p_y[kBatch] = {};
    for (std::size_t i = 0; i < k; ++i) {
      cols[i] = universe_[pending_[base + i]].padded_words().data();
    }
    simd::kernels().marginal_pass(cols, k, y_words, padded_words_, p, p_y);
    for (std::size_t i = 0; i < k; ++i) {
      Entry& entry = singles_[pending_[base + i]];
      entry.p = p[i];
      entry.p_y = p_y[i];
      entry.state = 1;
    }
    ++passes_;
  }
}

std::span<const std::uint64_t> BatchCiContext::count_strata(
    ColumnId x, std::span<const ColumnId> z) {
  const std::size_t l = z.size();
  CAUSALIOT_CHECK_MSG(l <= kPackedConditioningLimit,
                      "conditioning set too large for the batched kernel");
  CAUSALIOT_CHECK_MSG(x < universe_.size(), "column id out of range");
  for (const ColumnId id : z) {
    CAUSALIOT_CHECK_MSG(id < universe_.size(), "column id out of range");
    CAUSALIOT_CHECK_MSG(id != x, "conditioning set contains x");
  }

  const std::size_t stratum_count = std::size_t{1} << l;
  table_.resize(stratum_count * 4);

  // Superset pass: table_[t] gets the quad of lattice term T =
  // {z[j] : bit j of t}, expressed as 2x2 cells of (x, y) within the rows
  // where all of T is 1. Unsigned wrap-around in the subtractions is
  // fine — every final cell is an exact non-negative count.
  for (std::size_t t = 0; t < stratum_count; ++t) {
    std::uint64_t p_t;
    std::uint64_t p_ty;
    std::uint64_t p_tx;
    std::uint64_t p_txy;
    if (t == 0) {
      const ColumnId x_ids[1] = {x};
      const Entry& ex = ensure_counts(x_ids);
      p_t = n_;
      p_ty = p_y_;
      p_tx = ex.p;
      p_txy = ex.p_y;
    } else {
      t_ids_.clear();
      for (std::size_t j = 0; j < l; ++j) {
        if ((t >> j & 1U) != 0) t_ids_.push_back(z[j]);
      }
      std::sort(t_ids_.begin(), t_ids_.end());
      CAUSALIOT_CHECK_MSG(
          std::adjacent_find(t_ids_.begin(), t_ids_.end()) == t_ids_.end(),
          "duplicate conditioning column");
      u_ids_.assign(t_ids_.begin(), t_ids_.end());
      u_ids_.insert(std::upper_bound(u_ids_.begin(), u_ids_.end(), x), x);
      const Entry& et = ensure_counts(t_ids_);
      const Entry& eu = ensure_counts(u_ids_);
      p_t = et.p;
      p_ty = et.p_y;
      p_tx = eu.p;
      p_txy = eu.p_y;
    }
    const std::uint64_t c01 = p_ty - p_txy;
    table_[t * 4 + 0] = (p_t - p_tx) - c01;
    table_[t * 4 + 1] = c01;
    table_[t * 4 + 2] = p_tx - p_txy;
    table_[t * 4 + 3] = p_txy;
  }

  // Möbius inversion over the lattice turns superset quads into exact
  // per-stratum counts in place: after processing bit j, table_[t] counts
  // rows matching T on every processed coordinate instead of dominating
  // it.
  for (std::size_t j = 0; j < l; ++j) {
    const std::size_t bit = std::size_t{1} << j;
    for (std::size_t t = 0; t < stratum_count; ++t) {
      if ((t & bit) != 0) continue;
      for (std::size_t c = 0; c < 4; ++c) {
        table_[t * 4 + c] -= table_[(t | bit) * 4 + c];
      }
    }
  }
  return table_;
}

GSquareResult g_square_test(BatchCiContext& batch, ColumnId x,
                            std::span<const ColumnId> z,
                            const GSquareOptions& options) {
  GSquareResult result;
  if (internal::g_square_preamble(batch.sample_count(), z.size(), options,
                                  result)) {
    return result;
  }
  const std::span<const std::uint64_t> counts = batch.count_strata(x, z);
  return internal::g_square_from_counts({counts, {}, true},
                                        batch.sample_count());
}

CmhResult cmh_test(BatchCiContext& batch, ColumnId x,
                   std::span<const ColumnId> z) {
  if (batch.sample_count() == 0) return {};
  const std::span<const std::uint64_t> counts = batch.count_strata(x, z);
  return internal::cmh_from_counts({counts, {}, true}, batch.sample_count());
}

}  // namespace causaliot::stats
