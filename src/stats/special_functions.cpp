#include "causaliot/stats/special_functions.hpp"

#include <cmath>
#include <limits>

#include "causaliot/util/check.hpp"

#if defined(__GLIBC__)
// Declared by <math.h> only under feature-test macros that strict -std
// hides; the symbol itself is always exported.
extern "C" double lgamma_r(double, int*);
#endif

namespace causaliot::stats {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;
constexpr double kTiny = 1e-300;

// std::lgamma writes the process-global `signgam` — a data race once CI
// tests run on the miner's worker threads. lgamma_r returns the identical
// value without the global write (the sign is always +1 here: a > 0).
double log_gamma(double a) {
#if defined(__GLIBC__)
  int sign = 0;
  return lgamma_r(a, &sign);
#else
  return std::lgamma(a);
#endif
}

// Series representation of P(a, x); converges quickly for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

// Modified Lentz continued fraction for Q(a, x); for x >= a + 1.
double gamma_q_continued_fraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  CAUSALIOT_CHECK(a > 0.0);
  CAUSALIOT_CHECK(x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  CAUSALIOT_CHECK(a > 0.0);
  CAUSALIOT_CHECK(x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_continued_fraction(a, x);
}

double chi_squared_sf(double statistic, double dof) {
  CAUSALIOT_CHECK(dof > 0.0);
  if (statistic <= 0.0) return 1.0;
  return regularized_gamma_q(dof / 2.0, statistic / 2.0);
}

double chi_squared_quantile(double probability, double dof) {
  CAUSALIOT_CHECK(probability > 0.0 && probability < 1.0);
  CAUSALIOT_CHECK(dof > 0.0);
  // CDF(q) = probability  <=>  SF(q) = 1 - probability. Bisection is slow
  // but exact enough; this is not on any hot path.
  double lo = 0.0;
  double hi = dof + 10.0;
  const double target_sf = 1.0 - probability;
  while (chi_squared_sf(hi, dof) > target_sf) {
    hi *= 2.0;
    if (hi > 1e12) break;
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (chi_squared_sf(mid, dof) > target_sf) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace causaliot::stats
