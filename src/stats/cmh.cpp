#include "causaliot/stats/cmh.hpp"

#include <algorithm>
#include <cmath>

#include "causaliot/stats/special_functions.hpp"
#include "causaliot/util/check.hpp"
#include "ci_from_counts.hpp"

namespace causaliot::stats {

namespace internal {

// Computes the statistic from stratum-major 2x2 counts
// (counts[key * 4 + x * 2 + y], see CiTestContext::count_strata).
CmhResult cmh_from_counts(const StratumCounts& strata,
                          std::size_t sample_count) {
  CmhResult result;
  result.sample_count = sample_count;

  double deviation_sum = 0.0;
  double variance_sum = 0.0;
  for_each_stratum(strata, [&](const std::uint64_t* cells) {
    const double a = static_cast<double>(cells[3]);  // x=1, y=1
    const double b = static_cast<double>(cells[2]);  // x=1, y=0
    const double c = static_cast<double>(cells[1]);  // x=0, y=1
    const double d = static_cast<double>(cells[0]);  // x=0, y=0
    const double total = a + b + c + d;
    if (total < 2.0) return;
    const double row1 = a + b;
    const double col1 = a + c;
    const double row0 = c + d;
    const double col0 = b + d;
    if (row1 == 0.0 || row0 == 0.0 || col1 == 0.0 || col0 == 0.0) return;
    deviation_sum += a - row1 * col1 / total;
    variance_sum += row1 * row0 * col1 * col0 / (total * total * (total - 1));
    ++result.informative_strata;
  });
  if (variance_sum <= 0.0) return result;  // nothing informative

  // Continuity-corrected CMH statistic.
  const double corrected = std::max(0.0, std::fabs(deviation_sum) - 0.5);
  result.statistic = corrected * corrected / variance_sum;
  result.p_value = chi_squared_sf(result.statistic, 1.0);
  return result;
}

}  // namespace internal

CmhResult cmh_test(std::span<const std::uint8_t> x,
                   std::span<const std::uint8_t> y,
                   std::span<const std::span<const std::uint8_t>> z,
                   CiTestContext& context) {
  const std::size_t n = x.size();
  CAUSALIOT_CHECK_MSG(y.size() == n, "column length mismatch");
  CAUSALIOT_CHECK_MSG(z.size() <= 20, "conditioning set too large");
  for (const auto& column : z) {
    CAUSALIOT_CHECK_MSG(column.size() == n, "column length mismatch");
  }
  if (n == 0) {
    CmhResult result;
    return result;
  }
  return internal::cmh_from_counts(context.count_strata(x, y, z), n);
}

CmhResult cmh_test(const PackedColumn& x, const PackedColumn& y,
                   std::span<const PackedColumn* const> z,
                   CiTestContext& context) {
  const std::size_t n = x.size();
  CAUSALIOT_CHECK_MSG(y.size() == n, "column length mismatch");
  for (const PackedColumn* column : z) {
    CAUSALIOT_CHECK_MSG(column->size() == n, "column length mismatch");
  }
  if (n == 0) {
    CmhResult result;
    return result;
  }
  return internal::cmh_from_counts(context.count_strata(x, y, z), n);
}

CmhResult cmh_test(std::span<const std::uint8_t> x,
                   std::span<const std::uint8_t> y,
                   std::span<const std::span<const std::uint8_t>> z) {
  CiTestContext context;
  return cmh_test(x, y, z, context);
}

CmhResult cmh_test(std::span<const std::uint8_t> x,
                   std::span<const std::uint8_t> y) {
  return cmh_test(x, y, {});
}

}  // namespace causaliot::stats
