#include "causaliot/stats/cmh.hpp"

#include <cmath>
#include <vector>

#include "causaliot/stats/special_functions.hpp"
#include "causaliot/util/check.hpp"

namespace causaliot::stats {

CmhResult cmh_test(std::span<const std::uint8_t> x,
                   std::span<const std::uint8_t> y,
                   std::span<const std::span<const std::uint8_t>> z) {
  const std::size_t n = x.size();
  CAUSALIOT_CHECK_MSG(y.size() == n, "column length mismatch");
  CAUSALIOT_CHECK_MSG(z.size() <= 20, "conditioning set too large");
  for (const auto& column : z) {
    CAUSALIOT_CHECK_MSG(column.size() == n, "column length mismatch");
  }

  CmhResult result;
  result.sample_count = n;
  if (n == 0) return result;

  struct Table {
    double a = 0.0;  // x=1, y=1
    double b = 0.0;  // x=1, y=0
    double c = 0.0;  // x=0, y=1
    double d = 0.0;  // x=0, y=0
    double total() const { return a + b + c + d; }
  };
  const std::size_t stratum_count = std::size_t{1} << z.size();
  std::vector<Table> strata(stratum_count);
  for (std::size_t row = 0; row < n; ++row) {
    std::size_t key = 0;
    for (std::size_t j = 0; j < z.size(); ++j) {
      CAUSALIOT_CHECK_MSG(z[j][row] <= 1, "non-binary conditioning value");
      key |= static_cast<std::size_t>(z[j][row]) << j;
    }
    CAUSALIOT_CHECK_MSG(x[row] <= 1 && y[row] <= 1, "non-binary test value");
    Table& table = strata[key];
    if (x[row] == 1) {
      (y[row] == 1 ? table.a : table.b) += 1.0;
    } else {
      (y[row] == 1 ? table.c : table.d) += 1.0;
    }
  }

  double deviation_sum = 0.0;
  double variance_sum = 0.0;
  for (const Table& t : strata) {
    const double total = t.total();
    if (total < 2.0) continue;
    const double row1 = t.a + t.b;
    const double col1 = t.a + t.c;
    const double row0 = t.c + t.d;
    const double col0 = t.b + t.d;
    if (row1 == 0.0 || row0 == 0.0 || col1 == 0.0 || col0 == 0.0) continue;
    deviation_sum += t.a - row1 * col1 / total;
    variance_sum += row1 * row0 * col1 * col0 / (total * total * (total - 1));
    ++result.informative_strata;
  }
  if (variance_sum <= 0.0) return result;  // nothing informative

  // Continuity-corrected CMH statistic.
  const double corrected =
      std::max(0.0, std::fabs(deviation_sum) - 0.5);
  result.statistic = corrected * corrected / variance_sum;
  result.p_value = chi_squared_sf(result.statistic, 1.0);
  return result;
}

CmhResult cmh_test(std::span<const std::uint8_t> x,
                   std::span<const std::uint8_t> y) {
  return cmh_test(x, y, {});
}

}  // namespace causaliot::stats
