// AVX-512 backend: 512-bit AND + the native VPOPCNTDQ per-qword popcount
// (_mm512_popcnt_epi64). One kSimdWordStride stripe (8 words) is exactly
// one vector, so every pass is a straight-line sequence of aligned loads,
// one AND, one popcount, one add per stripe — no nibble LUT, no SAD, no
// tail. Requires AVX512F + AVX512VPOPCNTDQ plus OS ZMM state, all checked
// by the runtime probe before this table is ever installed.
//
// This translation unit is compiled with its own -mavx512* flags and must
// contain nothing that executes before the probe admits the backend.
#include <immintrin.h>

#include "simd_kernels_internal.hpp"

namespace causaliot::stats::simd::detail {

namespace {

// Horizontal sum without _mm512_reduce_add_epi64: GCC's implementation
// of that intrinsic trips -Wuninitialized (via _mm256_undefined_si256)
// under -Werror, and the reduction is off the hot loop anyway.
inline std::uint64_t reduce_lanes(__m512i acc) {
  alignas(64) std::uint64_t lanes[8];
  _mm512_store_si512(lanes, acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] + lanes[5] +
         lanes[6] + lanes[7];
}

std::uint64_t avx512_and_popcount(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t words) {
  __m512i acc = _mm512_setzero_si512();
  for (std::size_t w = 0; w < words; w += 8) {
    const __m512i va = _mm512_load_si512(a + w);
    const __m512i vb = _mm512_load_si512(b + w);
    acc = _mm512_add_epi64(acc,
                           _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
  }
  return reduce_lanes(acc);
}

void avx512_marginal_pass(const std::uint64_t* const* cols, std::size_t k,
                          const std::uint64_t* y, std::size_t words,
                          std::uint64_t* p, std::uint64_t* p_y) {
  __m512i acc_p[kMarginalPassMaxColumns];
  __m512i acc_py[kMarginalPassMaxColumns];
  for (std::size_t i = 0; i < k; ++i) {
    acc_p[i] = _mm512_setzero_si512();
    acc_py[i] = _mm512_setzero_si512();
  }
  for (std::size_t w = 0; w < words; w += 8) {
    const __m512i vy = _mm512_load_si512(y + w);
    for (std::size_t i = 0; i < k; ++i) {
      const __m512i vc = _mm512_load_si512(cols[i] + w);
      acc_p[i] = _mm512_add_epi64(acc_p[i], _mm512_popcnt_epi64(vc));
      acc_py[i] = _mm512_add_epi64(
          acc_py[i], _mm512_popcnt_epi64(_mm512_and_si512(vc, vy)));
    }
  }
  for (std::size_t i = 0; i < k; ++i) {
    p[i] = reduce_lanes(acc_p[i]);
    p_y[i] = reduce_lanes(acc_py[i]);
  }
}

void avx512_masked_pass(const std::uint64_t* prefix, const std::uint64_t* last,
                        const std::uint64_t* y, std::uint64_t* mask_out,
                        std::size_t words, std::uint64_t* p,
                        std::uint64_t* p_y) {
  __m512i acc_p = _mm512_setzero_si512();
  __m512i acc_py = _mm512_setzero_si512();
  for (std::size_t w = 0; w < words; w += 8) {
    const __m512i vp = _mm512_load_si512(prefix + w);
    const __m512i vl = _mm512_load_si512(last + w);
    const __m512i vy = _mm512_load_si512(y + w);
    const __m512i m = _mm512_and_si512(vp, vl);
    if (mask_out != nullptr) _mm512_store_si512(mask_out + w, m);
    acc_p = _mm512_add_epi64(acc_p, _mm512_popcnt_epi64(m));
    acc_py = _mm512_add_epi64(acc_py,
                              _mm512_popcnt_epi64(_mm512_and_si512(m, vy)));
  }
  *p = reduce_lanes(acc_p);
  *p_y = reduce_lanes(acc_py);
}

}  // namespace

const Kernels& avx512_kernels() {
  static constexpr Kernels kTable{avx512_and_popcount, avx512_marginal_pass,
                                  avx512_masked_pass};
  return kTable;
}

}  // namespace causaliot::stats::simd::detail
