#include "causaliot/stats/jenks.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace causaliot::stats {

namespace {

struct WeightedValues {
  std::vector<double> value;   // sorted distinct values
  std::vector<double> weight;  // occurrence counts
};

WeightedValues compress(std::span<const double> values) {
  std::map<double, double> counts;
  for (double v : values) counts[v] += 1.0;
  WeightedValues out;
  out.value.reserve(counts.size());
  out.weight.reserve(counts.size());
  for (const auto& [v, w] : counts) {
    out.value.push_back(v);
    out.weight.push_back(w);
  }
  return out;
}

}  // namespace

util::Result<JenksBreaks> jenks_natural_breaks(std::span<const double> values,
                                               std::size_t class_count) {
  if (class_count < 2) {
    return util::Error::invalid_argument("class_count must be >= 2");
  }
  if (values.empty()) {
    return util::Error::invalid_argument("empty value set");
  }
  const WeightedValues wv = compress(values);
  const std::size_t m = wv.value.size();
  if (m < class_count) {
    return util::Error::failed_precondition(
        "fewer distinct values than classes");
  }

  // Prefix sums for O(1) within-class sum of squared errors.
  std::vector<double> pw(m + 1, 0.0), pwv(m + 1, 0.0), pwv2(m + 1, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    pw[i + 1] = pw[i] + wv.weight[i];
    pwv[i + 1] = pwv[i] + wv.weight[i] * wv.value[i];
    pwv2[i + 1] = pwv2[i] + wv.weight[i] * wv.value[i] * wv.value[i];
  }
  // SSE of the class covering distinct indices [i, j] inclusive.
  const auto sse = [&](std::size_t i, std::size_t j) {
    const double w = pw[j + 1] - pw[i];
    const double s = pwv[j + 1] - pwv[i];
    const double s2 = pwv2[j + 1] - pwv2[i];
    return s2 - s * s / w;
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // cost[c][j]: minimal SSE splitting prefix [0..j] into c+1 classes.
  std::vector<std::vector<double>> cost(class_count,
                                        std::vector<double>(m, kInf));
  std::vector<std::vector<std::size_t>> cut(class_count,
                                            std::vector<std::size_t>(m, 0));
  for (std::size_t j = 0; j < m; ++j) cost[0][j] = sse(0, j);
  for (std::size_t c = 1; c < class_count; ++c) {
    for (std::size_t j = c; j < m; ++j) {
      for (std::size_t i = c; i <= j; ++i) {
        const double candidate = cost[c - 1][i - 1] + sse(i, j);
        if (candidate < cost[c][j]) {
          cost[c][j] = candidate;
          cut[c][j] = i;  // class c starts at distinct index i
        }
      }
    }
  }

  JenksBreaks result;
  result.breaks.resize(class_count - 1);
  std::size_t j = m - 1;
  for (std::size_t c = class_count - 1; c >= 1; --c) {
    const std::size_t start = cut[c][j];
    result.breaks[c - 1] = wv.value[start - 1];  // last value of class c-1
    j = start - 1;
  }

  const double total_sse = sse(0, m - 1);
  result.goodness_of_fit =
      total_sse > 0.0 ? 1.0 - cost[class_count - 1][m - 1] / total_sse : 1.0;
  return result;
}

util::Result<double> jenks_binary_threshold(std::span<const double> values) {
  auto breaks = jenks_natural_breaks(values, 2);
  if (!breaks.ok()) return breaks.error();
  return breaks.value().breaks[0];
}

}  // namespace causaliot::stats
