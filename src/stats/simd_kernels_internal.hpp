// Internal wiring between the SIMD dispatcher (simd_backend.cpp) and the
// per-ISA translation units. Each ISA file is compiled with its own -m
// flags (see src/stats/CMakeLists.txt), so nothing outside its kernel
// bodies may be emitted there: the files include only this header and the
// intrinsics header, and expose exactly one table getter. A backend whose
// CAUSALIOT_SIMD_HAVE_* macro is absent was compiled out; its getter is
// never referenced.
#pragma once

#include "causaliot/stats/simd_backend.hpp"

namespace causaliot::stats::simd::detail {

const Kernels& scalar_kernels();
#if defined(CAUSALIOT_SIMD_HAVE_AVX2)
const Kernels& avx2_kernels();
#endif
#if defined(CAUSALIOT_SIMD_HAVE_AVX512)
const Kernels& avx512_kernels();
#endif
#if defined(CAUSALIOT_SIMD_HAVE_NEON)
const Kernels& neon_kernels();
#endif

}  // namespace causaliot::stats::simd::detail
