// Runtime capability probe + dispatch for the SIMD kernel facade, and
// the AlignedWords storage the kernel contract is built on.
//
// Probe strategy:
//   * x86-64 — CPUID leaf 7 feature bits, gated on OSXSAVE + XGETBV so a
//     kernel is only admitted when the OS actually saves its register
//     state (YMM for AVX2; opmask/ZMM for AVX-512).
//   * AArch64 — ASIMD is architecturally baseline; on Linux the HWCAP bit
//     is checked anyway as a belt-and-braces guard.
//
// The chosen table is published once at program start (an eager
// initializer in this translation unit) into a relaxed atomic pointer,
// so kernels() is a single load + indirect call. CAUSALIOT_SIMD pins a
// backend at startup; force_backend() repoints the table at any time
// (bit-identical backends make the swap race-free in terms of results).
#include "causaliot/stats/simd_backend.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "simd_kernels_internal.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#endif
#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#endif

namespace causaliot::stats {

AlignedWords::AlignedWords(std::size_t words)
    : size_(padded_word_count(words)) {
  if (size_ == 0) return;
  data_ = static_cast<std::uint64_t*>(::operator new(
      size_ * sizeof(std::uint64_t), std::align_val_t{kSimdWordAlign}));
  std::memset(data_, 0, size_ * sizeof(std::uint64_t));
}

AlignedWords::AlignedWords(const AlignedWords& other)
    : AlignedWords(other.size_) {
  if (size_ != 0) std::memcpy(data_, other.data_, size_ * sizeof(std::uint64_t));
}

AlignedWords::AlignedWords(AlignedWords&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

AlignedWords& AlignedWords::operator=(const AlignedWords& other) {
  if (this != &other) *this = AlignedWords(other);
  return *this;
}

AlignedWords& AlignedWords::operator=(AlignedWords&& other) noexcept {
  if (this != &other) {
    this->~AlignedWords();
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

AlignedWords::~AlignedWords() {
  if (data_ != nullptr) {
    ::operator delete(data_, std::align_val_t{kSimdWordAlign});
  }
  data_ = nullptr;
  size_ = 0;
}

namespace simd {

namespace {

#if defined(__x86_64__) || defined(_M_X64)
// XGETBV(0) without -mxsave: only ever executed after the OSXSAVE CPUID
// bit confirmed the instruction exists.
std::uint64_t read_xcr0() {
  std::uint32_t eax = 0;
  std::uint32_t edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0U));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

struct X86Features {
  bool avx2 = false;
  bool avx512_popcnt = false;  // AVX512F + VPOPCNTDQ + OS ZMM state
};

X86Features probe_x86() {
  X86Features features;
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return features;
  // Without OSXSAVE the OS does not context-switch extended state, so no
  // wide backend is safe regardless of what CPUID advertises.
  const bool osxsave = (ecx & (1U << 27)) != 0;
  if (!osxsave) return features;
  const std::uint64_t xcr0 = read_xcr0();
  const bool ymm_state = (xcr0 & 0x6) == 0x6;          // XMM + YMM
  const bool zmm_state = (xcr0 & 0xe6) == 0xe6;        // + opmask, ZMM
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return features;
  features.avx2 = ymm_state && (ebx & (1U << 5)) != 0;
  features.avx512_popcnt = zmm_state && (ebx & (1U << 16)) != 0 &&  // AVX512F
                           (ecx & (1U << 14)) != 0;  // VPOPCNTDQ
  return features;
}
#endif

bool cpu_supports(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
    case Backend::kAvx512: {
#if defined(__x86_64__) || defined(_M_X64)
      static const X86Features features = probe_x86();
      return backend == Backend::kAvx2 ? features.avx2
                                       : features.avx512_popcnt;
#else
      return false;
#endif
    }
    case Backend::kNeon:
#if defined(__aarch64__)
#if defined(__linux__)
      return (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#else
      return true;
#endif
#else
      return false;
#endif
  }
  return false;
}

const Kernels* table_for(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return &detail::scalar_kernels();
    case Backend::kAvx2:
#if defined(CAUSALIOT_SIMD_HAVE_AVX2)
      return &detail::avx2_kernels();
#else
      return nullptr;
#endif
    case Backend::kAvx512:
#if defined(CAUSALIOT_SIMD_HAVE_AVX512)
      return &detail::avx512_kernels();
#else
      return nullptr;
#endif
    case Backend::kNeon:
#if defined(CAUSALIOT_SIMD_HAVE_NEON)
      return &detail::neon_kernels();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

// Published dispatch state. Constant-initialized to the scalar fallback
// so a kernel call from any static initializer that happens to run before
// resolve_startup_backend() is still valid.
std::atomic<const Kernels*> g_kernels{&detail::scalar_kernels()};
std::atomic<Backend> g_backend{Backend::kScalar};

void resolve_startup_backend() {
  Backend pick = auto_backend();
  if (const char* env = std::getenv("CAUSALIOT_SIMD");
      env != nullptr && env[0] != '\0') {
    const std::optional<Backend> requested = parse_backend(env);
    if (!requested.has_value()) {
      std::fprintf(stderr,
                   "warning: CAUSALIOT_SIMD=%s is not a backend name "
                   "(scalar|avx2|avx512|neon); using %s\n",
                   env, std::string(backend_name(pick)).c_str());
    } else if (!backend_supported(*requested)) {
      std::fprintf(stderr,
                   "warning: CAUSALIOT_SIMD=%s is not supported on this "
                   "host (compiled out or missing CPU/OS capability); "
                   "using %s\n",
                   env, std::string(backend_name(pick)).c_str());
    } else {
      pick = *requested;
    }
  }
  g_kernels.store(table_for(pick), std::memory_order_release);
  g_backend.store(pick, std::memory_order_release);
}

// Eager resolution at program start: after this runs, every kernels()
// call is one relaxed pointer load with no initialization branch.
const struct StartupResolver {
  StartupResolver() { resolve_startup_backend(); }
} g_startup_resolver;

}  // namespace

const Kernels& kernels() {
  return *g_kernels.load(std::memory_order_relaxed);
}

Backend chosen() { return g_backend.load(std::memory_order_relaxed); }

std::string_view backend_name(Backend backend) {
  switch (backend) {
    case Backend::kScalar: return "scalar";
    case Backend::kAvx2: return "avx2";
    case Backend::kAvx512: return "avx512";
    case Backend::kNeon: return "neon";
  }
  return "unknown";
}

std::optional<Backend> parse_backend(std::string_view name) {
  if (name == "scalar") return Backend::kScalar;
  if (name == "avx2") return Backend::kAvx2;
  if (name == "avx512") return Backend::kAvx512;
  if (name == "neon") return Backend::kNeon;
  return std::nullopt;
}

bool backend_compiled(Backend backend) {
  return table_for(backend) != nullptr;
}

bool backend_supported(Backend backend) {
  return backend_compiled(backend) && cpu_supports(backend);
}

std::vector<Backend> available_backends() {
  std::vector<Backend> available;
  for (const Backend backend : {Backend::kAvx512, Backend::kAvx2,
                                Backend::kNeon, Backend::kScalar}) {
    if (backend_supported(backend)) available.push_back(backend);
  }
  return available;
}

bool force_backend(Backend backend) {
  if (!backend_supported(backend)) return false;
  g_kernels.store(table_for(backend), std::memory_order_release);
  g_backend.store(backend, std::memory_order_release);
  return true;
}

Backend auto_backend() {
  for (const Backend backend :
       {Backend::kAvx512, Backend::kAvx2, Backend::kNeon}) {
    if (backend_supported(backend)) return backend;
  }
  return Backend::kScalar;
}

}  // namespace simd

}  // namespace causaliot::stats
