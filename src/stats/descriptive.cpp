#include "causaliot/stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "causaliot/util/check.hpp"

namespace causaliot::stats {

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

bool RunningStats::within_sigma(double value, double k) const {
  const double sigma = stddev();
  return value >= mean_ - k * sigma && value <= mean_ + k * sigma;
}

double percentile_sorted(std::span<const double> sorted_values, double q) {
  CAUSALIOT_CHECK(!sorted_values.empty());
  CAUSALIOT_CHECK(q >= 0.0 && q <= 100.0);
  if (sorted_values.size() == 1) return sorted_values[0];
  const double rank =
      q / 100.0 * static_cast<double>(sorted_values.size() - 1);
  const auto lower = static_cast<std::size_t>(rank);
  const double fraction = rank - static_cast<double>(lower);
  if (lower + 1 >= sorted_values.size()) return sorted_values.back();
  return sorted_values[lower] +
         fraction * (sorted_values[lower + 1] - sorted_values[lower]);
}

double percentile(std::span<const double> values, double q) {
  CAUSALIOT_CHECK(!values.empty());
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

}  // namespace causaliot::stats
