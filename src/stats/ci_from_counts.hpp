// Library-private bridge between the counting kernels and the test
// statistics: both the per-subset tests (gsquare.cpp / cmh.cpp) and the
// batched multi-subset kernel (batch_ci.cpp) feed stratum-major count
// tables into the same statistic evaluators, which is what makes the
// batched path bit-identical by construction. Not installed — the public
// API stays the test functions in the headers under include/.
#pragma once

#include <cstdint>
#include <span>

#include "causaliot/stats/ci_context.hpp"
#include "causaliot/stats/cmh.hpp"
#include "causaliot/stats/gsquare.hpp"

namespace causaliot::stats::internal {

/// Visits each populated stratum's 4-cell group in ascending key order —
/// the exact sequence the historical dense loop accumulated in, so
/// floating-point statistics are reproduced bit for bit for both dense
/// and sparse count views (empty strata contribute nothing either way).
template <typename Fn>
void for_each_stratum(const StratumCounts& strata, Fn&& fn) {
  if (strata.dense) {
    for (std::size_t key = 0; key * 4 < strata.counts.size(); ++key) {
      fn(&strata.counts[key * 4]);
    }
  } else {
    for (const std::uint32_t key : strata.keys) {
      fn(&strata.counts[static_cast<std::size_t>(key) * 4]);
    }
  }
}

/// Computes the G-square statistic from stratum counts (see
/// StratumCounts for the cell layout).
GSquareResult g_square_from_counts(const StratumCounts& strata,
                                   std::size_t sample_count);

/// Shared G-square preamble: empty-sample and small-sample-guard early
/// outs. Returns true when `result` is already final.
bool g_square_preamble(std::size_t n, std::size_t conditioning_count,
                       const GSquareOptions& options, GSquareResult& result);

/// Computes the CMH statistic from stratum counts.
CmhResult cmh_from_counts(const StratumCounts& strata,
                          std::size_t sample_count);

}  // namespace causaliot::stats::internal
