// Streaming descriptive statistics and quantiles.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace causaliot::stats {

/// Welford's online algorithm for numerically-stable mean/variance.
/// Used by the preprocessor's three-sigma extreme-value filter.
class RunningStats {
 public:
  void add(double value);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when count < 2.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

  /// True iff value lies within [mean - k*sigma, mean + k*sigma].
  bool within_sigma(double value, double k) const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// The q-th percentile (q in [0, 100]) with linear interpolation between
/// order statistics; the score-threshold calculator (§V-C) uses q = 99.
/// CHECKs on an empty input.
double percentile(std::span<const double> values, double q);

/// Percentile on pre-sorted data (ascending); avoids re-sorting.
double percentile_sorted(std::span<const double> sorted_values, double q);

}  // namespace causaliot::stats
