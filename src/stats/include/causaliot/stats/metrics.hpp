// Binary-classification metrics used across all evaluation benches.
#pragma once

#include <cstddef>
#include <string>

namespace causaliot::stats {

struct ConfusionCounts {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t true_negatives = 0;
  std::size_t false_negatives = 0;

  void add(bool predicted_positive, bool actually_positive);

  std::size_t total() const {
    return true_positives + false_positives + true_negatives +
           false_negatives;
  }

  /// TP / (TP + FP); 0 when there are no predicted positives.
  double precision() const;
  /// TP / (TP + FN); 0 when there are no actual positives.
  double recall() const;
  /// Harmonic mean of precision and recall; 0 when both are 0.
  double f1() const;
  /// (TP + TN) / total; 0 on empty counts.
  double accuracy() const;
  /// FP / (FP + TN); 0 when there are no actual negatives.
  double false_positive_rate() const;

  /// "P=0.952 R=0.968 F1=0.960 Acc=0.978" for bench table rows.
  std::string summary() const;
};

}  // namespace causaliot::stats
