// G-square (likelihood-ratio) conditional-independence test for binary data.
//
// TemporalPC (mining/) asks "is X independent of Y given conditioning set
// Z?" for lagged device states. After type unification every variable is
// binary, so the test reduces to a 2x2 contingency table per stratum of Z
// (at most 2^|Z| strata). The statistic
//
//   G^2 = 2 * sum_z sum_{x,y} n_xyz * ln( n_xyz * n_z / (n_xz * n_yz) )
//
// is asymptotically chi-square with (|X|-1)(|Y|-1)*|Z-strata| degrees of
// freedom under the null. Degrees of freedom are adjusted for strata with
// structurally-zero marginals, matching standard causal-discovery
// implementations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "causaliot/stats/ci_context.hpp"

namespace causaliot::stats {

struct GSquareResult {
  double statistic = 0.0;
  /// Adjusted degrees of freedom (0 when every stratum is degenerate).
  double dof = 0.0;
  /// P(chi2(dof) >= statistic); 1.0 when dof == 0 or the test was skipped
  /// for insufficient data.
  double p_value = 1.0;
  std::size_t sample_count = 0;
  /// True when the heuristic `min_samples_per_dof` guard skipped the test.
  bool skipped_insufficient_data = false;
};

struct GSquareOptions {
  /// If > 0, the test is skipped (treated as independent, p = 1) when
  /// sample_count < min_samples_per_dof * nominal_dof. Tetrad-style guard
  /// against meaningless high-dimension tests; 0 disables.
  double min_samples_per_dof = 0.0;
};

/// Tests x ⟂ y | z over aligned sample columns of 0/1 values.
/// All columns must have identical length; |z| <= 20.
GSquareResult g_square_test(std::span<const std::uint8_t> x,
                            std::span<const std::uint8_t> y,
                            std::span<const std::span<const std::uint8_t>> z,
                            const GSquareOptions& options = {});

/// Hot-path variant: reuses `context`'s scratch instead of allocating a
/// fresh stratum table. One context per thread.
GSquareResult g_square_test(std::span<const std::uint8_t> x,
                            std::span<const std::uint8_t> y,
                            std::span<const std::span<const std::uint8_t>> z,
                            const GSquareOptions& options,
                            CiTestContext& context);

/// Packed-column variant: word-parallel counting kernel, same result bit
/// for bit. |z| <= kPackedConditioningLimit.
GSquareResult g_square_test(const PackedColumn& x, const PackedColumn& y,
                            std::span<const PackedColumn* const> z,
                            const GSquareOptions& options,
                            CiTestContext& context);

/// Convenience overload with no conditioning set (marginal independence).
GSquareResult g_square_test(std::span<const std::uint8_t> x,
                            std::span<const std::uint8_t> y,
                            const GSquareOptions& options = {});

}  // namespace causaliot::stats
