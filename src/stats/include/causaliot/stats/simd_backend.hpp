// Capability-dispatched SIMD backend for the CI-test word loops.
//
// Every conditional-independence test in TemporalPC bottoms out in three
// uint64 word-loop primitives (see stats/ci_context.hpp and
// stats/batch_ci.hpp):
//
//   * and_popcount(a, b)      — popcount of the AND of two columns,
//   * marginal_pass           — the level-0 multi-parent sweep that counts
//                               P(col) and P(col & y) for up to
//                               kMarginalPassMaxColumns parents while the
//                               y loads are shared,
//   * masked_pass             — the BatchCiContext top-set pass: AND a
//                               prefix mask with one more column,
//                               optionally store the result, and count
//                               P(mask) / P(mask & y) in the same sweep.
//
// This header is the stable facade over their per-ISA implementations
// (the HinaCloth sim::query_chosen pattern): the widest backend the CPU
// supports is probed once at startup and published as a single function-
// pointer table, so callers pay one pointer load + indirect call with no
// per-call dispatch branching. Every backend computes exact integer
// popcounts, so all of them are bit-identical by construction — which
// also means swapping the table mid-run (force_backend) can never change
// a statistic.
//
// Selection order: AVX-512 (VPOPCNTDQ) > AVX2 (VPSHUFB nibble-LUT) >
// NEON (CNT + pairwise ADD) > scalar. The CAUSALIOT_SIMD environment
// variable (scalar|avx2|avx512|neon) or force_backend() pins a specific
// backend; an unsupported request is refused (env: warn + keep the auto
// choice, force_backend: return false) so the process always runs a
// kernel set the hardware can execute. Backends whose ISA the compiler
// cannot target are compiled out entirely and report as unavailable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace causaliot::stats {

/// Word-buffer alignment (bytes) and stride (uint64 words) every SIMD
/// kernel may assume: buffers are 64-byte aligned and their word counts
/// are padded up to a multiple of kSimdWordStride with zero words, so a
/// 512-bit load never straddles the end of an allocation and no kernel
/// needs a scalar tail loop. Zero padding is count-neutral for all three
/// primitives (popcounts of padding are 0).
inline constexpr std::size_t kSimdWordAlign = 64;
inline constexpr std::size_t kSimdWordStride = 8;

/// Words rounded up to the padded storage size of the SIMD contract.
constexpr std::size_t padded_word_count(std::size_t words) {
  return (words + kSimdWordStride - 1) / kSimdWordStride * kSimdWordStride;
}

/// A 64-byte-aligned, zero-initialized uint64 buffer whose capacity is
/// padded to a multiple of kSimdWordStride. size() is the *padded* word
/// count; callers track their own logical length. Copies preserve the
/// padding contents (all zero unless a caller wrote into them).
class AlignedWords {
 public:
  AlignedWords() = default;
  /// Allocates padded_word_count(words) zeroed words.
  explicit AlignedWords(std::size_t words);
  AlignedWords(const AlignedWords& other);
  AlignedWords(AlignedWords&& other) noexcept;
  AlignedWords& operator=(const AlignedWords& other);
  AlignedWords& operator=(AlignedWords&& other) noexcept;
  ~AlignedWords();

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint64_t* data() { return data_; }
  const std::uint64_t* data() const { return data_; }
  std::uint64_t& operator[](std::size_t i) { return data_[i]; }
  const std::uint64_t& operator[](std::size_t i) const { return data_[i]; }

 private:
  std::uint64_t* data_ = nullptr;
  std::size_t size_ = 0;
};

namespace simd {

enum class Backend : std::uint8_t { kScalar, kAvx2, kAvx512, kNeon };

/// Parents a single marginal_pass call can count (accumulator pairs the
/// widest kernels keep live in registers per sweep).
inline constexpr std::size_t kMarginalPassMaxColumns = 4;

/// The three word-loop primitives. `words` must be a multiple of
/// kSimdWordStride and every pointer kSimdWordAlign-aligned (AlignedWords
/// and PackedColumn storage guarantee both).
struct Kernels {
  /// Returns popcount(a & b) over `words` words.
  std::uint64_t (*and_popcount)(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words);
  /// For i < k (k <= kMarginalPassMaxColumns):
  ///   p[i] = popcount(cols[i]), p_y[i] = popcount(cols[i] & y),
  /// sharing the y loads across all k columns in one sweep.
  void (*marginal_pass)(const std::uint64_t* const* cols, std::size_t k,
                        const std::uint64_t* y, std::size_t words,
                        std::uint64_t* p, std::uint64_t* p_y);
  /// m[w] = prefix[w] & last[w] per word; stores m into `mask_out` when it
  /// is non-null; accumulates *p = popcount(m), *p_y = popcount(m & y).
  void (*masked_pass)(const std::uint64_t* prefix, const std::uint64_t* last,
                      const std::uint64_t* y, std::uint64_t* mask_out,
                      std::size_t words, std::uint64_t* p, std::uint64_t* p_y);
};

/// The active kernel table: one relaxed pointer load, then indirect calls.
const Kernels& kernels();

/// The backend the active table implements.
Backend chosen();

/// Canonical lowercase name ("scalar", "avx2", "avx512", "neon").
std::string_view backend_name(Backend backend);

/// Inverse of backend_name; nullopt for anything else (the CAUSALIOT_SIMD
/// and --simd parser).
std::optional<Backend> parse_backend(std::string_view name);

/// True when the backend's translation unit was compiled in.
bool backend_compiled(Backend backend);

/// True when the backend is compiled in *and* the host CPU (and OS, for
/// AVX state) can execute it. kScalar is always supported.
bool backend_supported(Backend backend);

/// Every supported backend, widest first (the auto-selection order).
std::vector<Backend> available_backends();

/// Repoints the active table. Returns false (and changes nothing) when
/// the backend is not supported. Safe to call while kernels are in
/// flight: every backend is bit-identical, so any interleaving of old and
/// new tables computes the same counts.
bool force_backend(Backend backend);

/// The backend auto-selection would pick (ignoring any force/env pin).
Backend auto_backend();

}  // namespace simd

}  // namespace causaliot::stats
