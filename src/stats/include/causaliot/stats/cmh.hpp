// Cochran–Mantel–Haenszel conditional-independence test.
//
// The standard stratified 2x2 test: across the strata of the conditioning
// set it compares each table's observed a-cell with its hypergeometric
// expectation,
//
//   CMH = (|sum_z (a_z - E[a_z])| - 1/2)^2 / sum_z Var(a_z),
//
// which is chi-square with 1 dof under the null. Compared to G^2 it keeps
// power when individual strata are sparse (counts pool across strata
// instead of each stratum contributing its own dof), at the cost of only
// detecting effects with a consistent direction. TemporalPC can use it as
// an alternative CI test (MinerConfig::ci_test).
#pragma once

#include <cstdint>
#include <span>

#include "causaliot/stats/gsquare.hpp"

namespace causaliot::stats {

struct CmhResult {
  double statistic = 0.0;
  /// P(chi2(1) >= statistic); 1.0 when no stratum is informative.
  double p_value = 1.0;
  std::size_t sample_count = 0;
  std::size_t informative_strata = 0;
};

/// Tests x ⟂ y | z over aligned binary sample columns. |z| <= 20.
CmhResult cmh_test(std::span<const std::uint8_t> x,
                   std::span<const std::uint8_t> y,
                   std::span<const std::span<const std::uint8_t>> z);

/// Hot-path variant: reuses `context`'s scratch instead of allocating a
/// fresh stratum table. One context per thread.
CmhResult cmh_test(std::span<const std::uint8_t> x,
                   std::span<const std::uint8_t> y,
                   std::span<const std::span<const std::uint8_t>> z,
                   CiTestContext& context);

/// Packed-column variant: word-parallel counting kernel, same result bit
/// for bit. |z| <= kPackedConditioningLimit.
CmhResult cmh_test(const PackedColumn& x, const PackedColumn& y,
                   std::span<const PackedColumn* const> z,
                   CiTestContext& context);

/// Marginal variant (single stratum).
CmhResult cmh_test(std::span<const std::uint8_t> x,
                   std::span<const std::uint8_t> y);

}  // namespace causaliot::stats
