// Special functions needed for p-value computation.
//
// The G-square statistic is asymptotically chi-square distributed, so the
// conditional-independence test needs the chi-square survival function,
// which reduces to the regularized upper incomplete gamma function Q(a, x).
// Implementations follow the classic series / continued-fraction split
// (Numerical Recipes §6.2): the series converges fast for x < a+1, the
// Lentz continued fraction for x >= a+1.
#pragma once

namespace causaliot::stats {

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x) / Gamma(a).
/// Requires a > 0, x >= 0.
double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double regularized_gamma_q(double a, double x);

/// Survival function of the chi-square distribution:
/// P(X >= statistic) for X ~ chi2(dof). dof > 0, statistic >= 0.
double chi_squared_sf(double statistic, double dof);

/// Quantile (inverse CDF) of the chi-square distribution, via bisection on
/// the survival function. Used by tests and the threshold ablation.
double chi_squared_quantile(double probability, double dof);

}  // namespace causaliot::stats
