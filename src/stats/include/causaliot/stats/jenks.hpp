// Fisher–Jenks natural-breaks optimization for 1-D discretization.
//
// The Event Preprocessor (§V-A) unifies ambient-numeric device states
// (brightness, temperature) to binary Low/High by splitting at the natural
// break that minimizes within-class variance. This is the exact
// dynamic-programming formulation (Fisher 1958, Jenks 1967), O(k * n^2)
// over the sorted distinct values — fine for per-device reading sets.
#pragma once

#include <span>
#include <vector>

#include "causaliot/util/result.hpp"

namespace causaliot::stats {

struct JenksBreaks {
  /// Upper bound (inclusive) of each class except the last; size k-1.
  /// A value v belongs to class i where i is the first break with
  /// v <= breaks[i], else the last class.
  std::vector<double> breaks;
  /// Goodness of variance fit in [0, 1]; 1 means perfect separation.
  double goodness_of_fit = 0.0;
};

/// Computes natural breaks for `class_count` >= 2 classes.
/// Fails if values has fewer distinct values than class_count.
util::Result<JenksBreaks> jenks_natural_breaks(std::span<const double> values,
                                               std::size_t class_count);

/// Convenience: the single Low/High cut point (class_count = 2).
util::Result<double> jenks_binary_threshold(std::span<const double> values);

}  // namespace causaliot::stats
