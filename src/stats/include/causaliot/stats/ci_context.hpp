// Shared machinery of the conditional-independence tests: contingency
// counting plus reusable scratch.
//
// Both G-square and CMH reduce to the same first stage — bucket every
// sample row into one of 2^|Z| strata of the conditioning set and count
// the four (x, y) cells per stratum. TemporalPC runs millions of such
// tests per mine, so this stage dominates; the optimizations here:
//
//   * CiTestContext owns the count buffer and reuses it across calls, so
//     a mining run performs O(1) allocations per test instead of
//     allocating a fresh 2^|Z|-entry table each time.
//   * PackedColumn stores a binary column as uint64_t words (bit r of
//     word r/64 = row r, the util/bitkey.hpp convention). For small |Z|
//     the counting kernel then processes 64 rows per step with bitwise
//     AND + popcount instead of a per-row inner loop over Z.
//   * Above kDenseStrataLimit strata the per-row kernel counts sparsely:
//     instead of zero-filling the whole 4·2^|Z| table per call, touched
//     stratum keys are epoch-stamped and zeroed on first touch, so a
//     high-|Z| test pays O(touched) rather than O(2^|Z|) setup.
//
// Counts are exact integers, so both paths produce bit-identical test
// statistics to the original per-row double accumulation. Multi-subset
// batched counting on top of this layer lives in stats/batch_ci.hpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "causaliot/stats/simd_backend.hpp"

namespace causaliot::stats {

/// Largest conditioning-set size for which the packed kernel wins: its
/// per-word cost is O(2^|Z|), the per-row kernel's is O(|Z| * rows), and
/// they cross around |Z| = 6. Callers holding PackedColumns should fall
/// back to the span-based tests above this size.
inline constexpr std::size_t kPackedConditioningLimit = 6;

/// Stratum count at and below which the per-row kernel keeps the dense
/// representation (full table cleared per call — a <= 8 KiB memset).
/// Above it the sparse epoch-stamped path avoids the O(2^|Z|) clear.
inline constexpr std::size_t kDenseStrataLimit = 256;

/// A binary column bit-packed into uint64_t words (bit r of word r/64 =
/// row r); rows beyond size() are zero-padded. Storage follows the SIMD
/// facade contract (stats/simd_backend.hpp): 64-byte aligned and padded
/// to a multiple of kSimdWordStride words, so the wide kernels never need
/// a scalar tail and the scalar kernels never need a ragged-tail branch.
class PackedColumn {
 public:
  PackedColumn() = default;
  /// Packs `column`; every value must be 0 or 1 (CHECKed).
  explicit PackedColumn(std::span<const std::uint8_t> column);

  std::size_t size() const { return size_; }
  /// The logical words, (size() + 63) / 64 of them.
  std::span<const std::uint64_t> words() const {
    return {words_.data(), (size_ + 63) / 64};
  }
  /// The full aligned storage including the zero padding — the span the
  /// SIMD kernels sweep. Its length is a multiple of kSimdWordStride.
  std::span<const std::uint64_t> padded_words() const {
    return {words_.data(), words_.size()};
  }

 private:
  std::size_t size_ = 0;
  AlignedWords words_;
};

/// View over one call's contingency counts, valid until the next call on
/// the producing context. `counts` is the stratum-major table
/// counts[key * 4 + x * 2 + y]. When `dense`, every key in
/// [0, counts.size() / 4) is valid. When sparse (!dense), only the keys
/// listed in `keys` (ascending, each with at least one non-zero cell)
/// hold meaningful values — the rest of the table is stale scratch and
/// must not be read. Iterating `keys` in order visits exactly the strata
/// a dense iteration would have found non-empty, in the same order, so
/// statistics accumulated either way are bit-identical.
struct StratumCounts {
  std::span<const std::uint64_t> counts;
  std::span<const std::uint32_t> keys;
  bool dense = true;
};

/// Reusable scratch for CI tests. Not thread-safe: use one context per
/// thread (the miner keeps one per worker).
class CiTestContext {
 public:
  /// Buckets rows into 2^|z| strata and counts the 2x2 table per stratum.
  /// The returned view is valid until the next call. Column lengths must
  /// match; |z| <= 20 (CHECKed by callers before the buffer is sized).
  StratumCounts count_strata(
      std::span<const std::uint8_t> x, std::span<const std::uint8_t> y,
      std::span<const std::span<const std::uint8_t>> z);

  /// Packed-kernel equivalent: identical counts, word-at-a-time. Always
  /// dense (|z| <= kPackedConditioningLimit implies few strata).
  StratumCounts count_strata(
      const PackedColumn& x, const PackedColumn& y,
      std::span<const PackedColumn* const> z);

 private:
  std::vector<std::uint64_t> counts_;
  // Sparse path: stamps_[key] == epoch_ marks keys already zeroed this
  // call; touched_ lists them for the sorted result view.
  std::vector<std::uint64_t> stamps_;
  std::vector<std::uint32_t> touched_;
  std::uint64_t epoch_ = 0;
};

}  // namespace causaliot::stats
