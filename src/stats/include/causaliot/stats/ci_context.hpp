// Shared machinery of the conditional-independence tests: contingency
// counting plus reusable scratch.
//
// Both G-square and CMH reduce to the same first stage — bucket every
// sample row into one of 2^|Z| strata of the conditioning set and count
// the four (x, y) cells per stratum. TemporalPC runs millions of such
// tests per mine, so this stage dominates; two optimizations live here:
//
//   * CiTestContext owns the count buffer and reuses it across calls, so
//     a mining run performs O(1) allocations per test instead of
//     allocating a fresh 2^|Z|-entry table each time.
//   * PackedColumn stores a binary column as uint64_t words (bit r of
//     word r/64 = row r, the util/bitkey.hpp convention). For small |Z|
//     the counting kernel then processes 64 rows per step with bitwise
//     AND + popcount instead of a per-row inner loop over Z.
//
// Counts are exact integers, so both paths produce bit-identical test
// statistics to the original per-row double accumulation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace causaliot::stats {

/// Largest conditioning-set size for which the packed kernel wins: its
/// per-word cost is O(2^|Z|), the per-row kernel's is O(|Z| * rows), and
/// they cross around |Z| = 6. Callers holding PackedColumns should fall
/// back to the span-based tests above this size.
inline constexpr std::size_t kPackedConditioningLimit = 6;

/// A binary column bit-packed into uint64_t words; rows beyond size() are
/// zero-padded.
class PackedColumn {
 public:
  PackedColumn() = default;
  /// Packs `column`; every value must be 0 or 1 (CHECKed).
  explicit PackedColumn(std::span<const std::uint8_t> column);

  std::size_t size() const { return size_; }
  std::span<const std::uint64_t> words() const { return words_; }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Reusable scratch for CI tests. Not thread-safe: use one context per
/// thread (the miner keeps one per worker).
class CiTestContext {
 public:
  /// Buckets rows into 2^|z| strata and counts the 2x2 table per stratum.
  /// Returned span (valid until the next call) is stratum-major:
  /// counts[key * 4 + x * 2 + y]. Column lengths must match; |z| <= 20
  /// (CHECKed by callers before the 2^|z| buffer is sized).
  std::span<const std::uint64_t> count_strata(
      std::span<const std::uint8_t> x, std::span<const std::uint8_t> y,
      std::span<const std::span<const std::uint8_t>> z);

  /// Packed-kernel equivalent: identical counts, word-at-a-time.
  std::span<const std::uint64_t> count_strata(
      const PackedColumn& x, const PackedColumn& y,
      std::span<const PackedColumn* const> z);

 private:
  std::vector<std::uint64_t> counts_;
};

}  // namespace causaliot::stats
