// Batched multi-subset conditional-independence counting.
//
// TemporalPC's level-l loop tests the same (parent x, child y) pair
// against many conditioning subsets Z drawn from one candidate pool, and
// the per-subset kernel (stats/ci_context.hpp) re-scans every packed
// column for each subset. This context removes the rescans by working in
// the subset lattice instead: every cell of every stratum table is an
// integer combination of plain intersection counts
//
//   P(S) = #rows where all columns in S are 1,
//
// and the 2^|Z| stratum tables follow from the quads
// (P(T), P(T∪{y}), P(T∪{x}), P(T∪{x,y})) for T ⊆ Z by Möbius inversion
// over the lattice — exact integer arithmetic, so the assembled tables
// (and every statistic computed from them) are bit-identical to direct
// counting. The context memoizes P(·) by column set, which is where the
// batching pays off:
//
//   * Lattice marginalization: a level-l test only ever has to count its
//     two top sets Z and Z∪{x} — every strict subset quad was already
//     counted by an earlier level or an earlier subset of the batch, and
//     marginalizing down is table arithmetic, not a column scan.
//   * Multi-key accumulation: prepare_marginals() counts the level-0
//     tables of many parents per pass over the words, keeping one
//     accumulator pair per parent live while the y column loads are
//     shared.
//
// One context per (child, worker): it binds y once and is not
// thread-safe. Memoization spans levels, so a context must live for a
// whole Algorithm 1 run to realize the cross-level sharing.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "causaliot/stats/ci_context.hpp"
#include "causaliot/stats/cmh.hpp"
#include "causaliot/stats/gsquare.hpp"

namespace causaliot::stats {

/// Index of a packed column in the universe a BatchCiContext is bound to.
using ColumnId = std::uint32_t;

class BatchCiContext {
 public:
  /// Binds to a shared universe of equally-sized packed columns and the
  /// outcome column y (the miner's present-time child). The universe must
  /// outlive the context.
  BatchCiContext(std::span<const PackedColumn> universe, ColumnId y);

  std::size_t sample_count() const { return n_; }
  ColumnId y() const { return y_; }

  /// Word-passes executed so far (one full sweep over the packed words of
  /// one intersection, or one multi-key chunk). Monotone; feeds the
  /// mining_ci_batch_passes_total counter.
  std::size_t pass_count() const { return passes_; }

  /// Multi-key marginal sweep: counts the level-0 (empty conditioning
  /// set) tables for every listed parent that is not cached yet,
  /// kMarginalBatch parents per pass over the words. Purely a batching
  /// accelerator — count_strata computes the same values on demand.
  void prepare_marginals(std::span<const ColumnId> xs);

  /// Stratum-major contingency counts for x ⟂ y | {universe[z]...}:
  /// counts[key * 4 + xv * 2 + yv] with key bit j = value of column z[j],
  /// exactly as CiTestContext::count_strata produces. The view is valid
  /// until the next call. |z| <= kPackedConditioningLimit; ids must be
  /// distinct and exclude x.
  std::span<const std::uint64_t> count_strata(ColumnId x,
                                              std::span<const ColumnId> z);

  /// Drops every memoized intersection count (bench/test hook for
  /// measuring cold batches).
  void reset_cache();

 private:
  // Memoized intersection of one column set S: p = P(S),
  // p_y = P(S ∪ {y}); mask holds the AND of S's columns once the set has
  // been extended (state 2) so supersets build from it in one pass. The
  // mask is stored in SIMD-contract storage (aligned + stride-padded, see
  // stats/simd_backend.hpp) because it feeds later kernel passes as an
  // input; its padding stays zero since it is the AND of zero-padded
  // columns.
  struct Entry {
    std::uint8_t state = 0;  // 0 absent, 1 counts ready, 2 counts + mask
    std::uint64_t p = 0;
    std::uint64_t p_y = 0;
    AlignedWords mask;
  };
  struct KeyHash {
    std::size_t operator()(const std::vector<ColumnId>& key) const noexcept {
      std::size_t h = 1469598103934665603ULL;
      for (const ColumnId id : key) {
        h = (h ^ id) * 1099511628211ULL;
      }
      return h;
    }
  };

  Entry& locate(std::span<const ColumnId> ids);
  const Entry& ensure_counts(std::span<const ColumnId> ids);
  std::span<const std::uint64_t> ensure_mask(std::span<const ColumnId> ids);
  void fill_single(ColumnId id, Entry& entry);
  void fill_from_mask(std::span<const std::uint64_t> prefix_mask,
                      const std::uint64_t* last_words, Entry& entry,
                      bool store_mask);

  std::span<const PackedColumn> universe_;
  ColumnId y_ = 0;
  std::size_t n_ = 0;
  std::size_t padded_words_ = 0;  // SIMD-contract sweep length
  std::uint64_t p_y_ = 0;
  std::size_t passes_ = 0;

  std::vector<Entry> singles_;  // by column id
  // |S| == 2, indexed [min][max]; rows allocated on first use.
  std::vector<std::unique_ptr<std::vector<Entry>>> pairs_;
  std::unordered_map<std::vector<ColumnId>, Entry, KeyHash> higher_;

  std::vector<std::uint64_t> table_;      // assembled stratum-major counts
  std::vector<ColumnId> t_ids_;           // scratch: ids of the lattice term
  std::vector<ColumnId> u_ids_;           // scratch: term ids ∪ {x}
  std::vector<ColumnId> key_;             // scratch: map lookup key
  std::vector<ColumnId> pending_;         // scratch: prepare_marginals
};

/// Batched equivalent of the packed-kernel g_square_test: bit-identical
/// statistic, dof, p-value, and skip behaviour. y is the context's bound
/// column.
GSquareResult g_square_test(BatchCiContext& batch, ColumnId x,
                            std::span<const ColumnId> z,
                            const GSquareOptions& options = {});

/// Batched equivalent of the packed-kernel cmh_test.
CmhResult cmh_test(BatchCiContext& batch, ColumnId x,
                   std::span<const ColumnId> z);

}  // namespace causaliot::stats
