// Device model: attribute taxonomy and the device catalog.
//
// Follows the paper's Table I taxonomy. Each device exposes one attribute
// whose raw value type falls into one of three classes (§V-A):
//   * Binary            — ON/OFF actuators and open/closed sensors.
//   * ResponsiveNumeric — zero when idle, positive when in use (water
//                         meters, power sensors, dimmer levels).
//   * AmbientNumeric    — continuous environmental measurement, always
//                         positive (brightness, temperature).
// The preprocessor unifies all three to binary.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "causaliot/util/result.hpp"

namespace causaliot::telemetry {

/// Dense device index; also the variable index in every downstream module.
using DeviceId = std::uint32_t;
inline constexpr DeviceId kInvalidDevice = ~DeviceId{0};

enum class AttributeType : std::uint8_t {
  kSwitch,            // S  — actuator on/off
  kPresenceSensor,    // PE — movement detection
  kContactSensor,     // C  — door/window open/closed
  kDimmer,            // D  — light level (responsive numeric)
  kWaterMeter,        // W  — water flow (responsive numeric)
  kPowerSensor,       // P  — appliance power draw (responsive numeric)
  kBrightnessSensor,  // B  — luminosity (ambient numeric)
  kTemperatureSensor, // T  — ambient numeric (industrial/ablation scenarios)
  kGenericActuator,   // binary actuator outside the smart-home taxonomy
  kGenericSensor,     // binary sensor outside the smart-home taxonomy
};

enum class ValueType : std::uint8_t {
  kBinary,
  kResponsiveNumeric,
  kAmbientNumeric,
};

/// The paper's two-letter abbreviation for an attribute ("PE", "B", ...).
std::string_view attribute_abbreviation(AttributeType type);
std::string_view attribute_name(AttributeType type);

/// Default raw value type of an attribute per Table I.
ValueType default_value_type(AttributeType type);

/// True for attributes bound to an actuator — i.e. eligible to be an
/// automation rule's *action* device (§VI-A excludes brightness/presence).
bool is_actuator(AttributeType type);

struct DeviceInfo {
  std::string name;      // unique, e.g. "dimmer_bathroom"
  std::string room;      // installation location, e.g. "bathroom"
  AttributeType attribute = AttributeType::kGenericSensor;
  ValueType value_type = ValueType::kBinary;
};

/// Registry of deployed devices; assigns dense DeviceIds.
class DeviceCatalog {
 public:
  /// Registers a device; fails on duplicate names.
  util::Result<DeviceId> add(DeviceInfo info);

  std::size_t size() const { return devices_.size(); }
  bool empty() const { return devices_.empty(); }

  const DeviceInfo& info(DeviceId id) const;
  util::Result<DeviceId> find(std::string_view name) const;
  bool contains(std::string_view name) const;

  const std::vector<DeviceInfo>& devices() const { return devices_; }

  /// Devices filtered by attribute type.
  std::vector<DeviceId> devices_of_type(AttributeType type) const;

 private:
  std::vector<DeviceInfo> devices_;
};

}  // namespace causaliot::telemetry
