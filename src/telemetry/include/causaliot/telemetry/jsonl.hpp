// JSON-lines trace ingestion/export.
//
// Commodity platforms (openHAB, SmartThings exports, MQTT bridges) dump
// event logs as one JSON object per line:
//
//   {"timestamp": 12.5, "device": "pe_kitchen", "value": 1}
//
// This is a deliberately minimal parser for flat objects with string and
// number values — no nesting, no arrays — which is exactly the event
// shape; anything else is a parse error, not a silent skip.
#pragma once

#include <string>
#include <string_view>

#include "causaliot/telemetry/event.hpp"
#include "causaliot/util/result.hpp"

namespace causaliot::telemetry {

/// Parses one `{"key": value, ...}` line into an event. Field names:
/// `timestamp` (number), `device` (string, looked up in `catalog`),
/// `value` (number). Unknown extra fields are ignored.
util::Result<DeviceEvent> parse_jsonl_event(std::string_view line,
                                            const DeviceCatalog& catalog);

/// Serializes one event as a JSON line (no trailing newline).
std::string format_jsonl_event(const DeviceEvent& event,
                               const DeviceCatalog& catalog);

/// Reads a whole JSON-lines trace; blank lines are skipped, any malformed
/// line aborts with its line number in the error message.
util::Result<EventLog> load_jsonl(const std::string& path,
                                  DeviceCatalog catalog);

/// Writes the log as JSON lines.
util::Status save_jsonl(const EventLog& log, const std::string& path);

}  // namespace causaliot::telemetry
