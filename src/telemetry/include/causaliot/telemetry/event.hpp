// Device events and event logs.
//
// The platform receives one event per device state report:
//   (timestamp, device, state value)
// matching the paper's event format (§II-A); the installation location
// lives in the DeviceCatalog. Timestamps are wall-clock seconds since the
// trace start; the *logical* time index used by the DIG is the event
// ordinal after preprocessing.
#pragma once

#include <string>
#include <vector>

#include "causaliot/telemetry/device.hpp"
#include "causaliot/util/result.hpp"

namespace causaliot::telemetry {

struct DeviceEvent {
  double timestamp = 0.0;  // seconds since trace start
  DeviceId device = kInvalidDevice;
  double value = 0.0;      // raw value; 0/1 once unified to binary

  friend bool operator==(const DeviceEvent&, const DeviceEvent&) = default;
};

/// An ordered trace of device events over a fixed catalog.
class EventLog {
 public:
  EventLog() = default;
  explicit EventLog(DeviceCatalog catalog) : catalog_(std::move(catalog)) {}

  const DeviceCatalog& catalog() const { return catalog_; }
  DeviceCatalog& catalog() { return catalog_; }

  void append(DeviceEvent event);

  const std::vector<DeviceEvent>& events() const { return events_; }
  std::vector<DeviceEvent>& events() { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Average wall-clock seconds between neighbouring events; used by the
  /// preprocessor's lag selection tau = d / v (§V-A). 0 for < 2 events.
  double mean_inter_event_seconds() const;

  /// True if timestamps are non-decreasing.
  bool is_time_ordered() const;

  /// Stable-sorts events by timestamp.
  void sort_by_time();

  /// Serializes to CSV: header `timestamp,device,value`, devices by name.
  util::Status save_csv(const std::string& path) const;

  /// Loads a CSV produced by save_csv against the given catalog; events
  /// naming unknown devices are an error.
  static util::Result<EventLog> load_csv(const std::string& path,
                                         DeviceCatalog catalog);

 private:
  DeviceCatalog catalog_;
  std::vector<DeviceEvent> events_;
};

}  // namespace causaliot::telemetry
