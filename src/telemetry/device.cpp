#include "causaliot/telemetry/device.hpp"

#include <algorithm>

namespace causaliot::telemetry {

std::string_view attribute_abbreviation(AttributeType type) {
  switch (type) {
    case AttributeType::kSwitch: return "S";
    case AttributeType::kPresenceSensor: return "PE";
    case AttributeType::kContactSensor: return "C";
    case AttributeType::kDimmer: return "D";
    case AttributeType::kWaterMeter: return "W";
    case AttributeType::kPowerSensor: return "P";
    case AttributeType::kBrightnessSensor: return "B";
    case AttributeType::kTemperatureSensor: return "T";
    case AttributeType::kGenericActuator: return "GA";
    case AttributeType::kGenericSensor: return "GS";
  }
  return "?";
}

std::string_view attribute_name(AttributeType type) {
  switch (type) {
    case AttributeType::kSwitch: return "Switch";
    case AttributeType::kPresenceSensor: return "PresenceSensor";
    case AttributeType::kContactSensor: return "ContactSensor";
    case AttributeType::kDimmer: return "Dimmer";
    case AttributeType::kWaterMeter: return "WaterMeter";
    case AttributeType::kPowerSensor: return "PowerSensor";
    case AttributeType::kBrightnessSensor: return "BrightnessSensor";
    case AttributeType::kTemperatureSensor: return "TemperatureSensor";
    case AttributeType::kGenericActuator: return "GenericActuator";
    case AttributeType::kGenericSensor: return "GenericSensor";
  }
  return "?";
}

ValueType default_value_type(AttributeType type) {
  switch (type) {
    case AttributeType::kSwitch:
    case AttributeType::kPresenceSensor:
    case AttributeType::kContactSensor:
    case AttributeType::kGenericActuator:
    case AttributeType::kGenericSensor:
      return ValueType::kBinary;
    case AttributeType::kDimmer:
    case AttributeType::kWaterMeter:
    case AttributeType::kPowerSensor:
      return ValueType::kResponsiveNumeric;
    case AttributeType::kBrightnessSensor:
    case AttributeType::kTemperatureSensor:
      return ValueType::kAmbientNumeric;
  }
  return ValueType::kBinary;
}

bool is_actuator(AttributeType type) {
  switch (type) {
    case AttributeType::kSwitch:
    case AttributeType::kDimmer:
    case AttributeType::kPowerSensor:  // bound to a controllable appliance
    case AttributeType::kGenericActuator:
      return true;
    case AttributeType::kPresenceSensor:
    case AttributeType::kContactSensor:
    case AttributeType::kWaterMeter:
    case AttributeType::kBrightnessSensor:
    case AttributeType::kTemperatureSensor:
    case AttributeType::kGenericSensor:
      return false;
  }
  return false;
}

util::Result<DeviceId> DeviceCatalog::add(DeviceInfo info) {
  if (info.name.empty()) {
    return util::Error::invalid_argument("device name must not be empty");
  }
  if (contains(info.name)) {
    return util::Error::invalid_argument("duplicate device name: " +
                                         info.name);
  }
  devices_.push_back(std::move(info));
  return static_cast<DeviceId>(devices_.size() - 1);
}

const DeviceInfo& DeviceCatalog::info(DeviceId id) const {
  CAUSALIOT_CHECK_MSG(id < devices_.size(), "device id out of range");
  return devices_[id];
}

util::Result<DeviceId> DeviceCatalog::find(std::string_view name) const {
  const auto it =
      std::find_if(devices_.begin(), devices_.end(),
                   [&](const DeviceInfo& d) { return d.name == name; });
  if (it == devices_.end()) {
    return util::Error::not_found("no device named '" + std::string(name) +
                                  "'");
  }
  return static_cast<DeviceId>(it - devices_.begin());
}

bool DeviceCatalog::contains(std::string_view name) const {
  return find(name).ok();
}

std::vector<DeviceId> DeviceCatalog::devices_of_type(
    AttributeType type) const {
  std::vector<DeviceId> out;
  for (DeviceId id = 0; id < devices_.size(); ++id) {
    if (devices_[id].attribute == type) out.push_back(id);
  }
  return out;
}

}  // namespace causaliot::telemetry
