#include "causaliot/telemetry/jsonl.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <variant>

#include "causaliot/util/strings.hpp"

namespace causaliot::telemetry {

namespace {

// Minimal recursive-descent scanner for a flat JSON object of string and
// number values.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string_view text) : text_(text) {}

  using Value = std::variant<double, std::string>;

  util::Result<std::map<std::string, Value>> parse() {
    std::map<std::string, Value> fields;
    skip_whitespace();
    if (!consume('{')) return fail("expected '{'");
    skip_whitespace();
    if (consume('}')) return finish(std::move(fields));
    while (true) {
      skip_whitespace();
      auto key = parse_string();
      if (!key.ok()) return key.error();
      skip_whitespace();
      if (!consume(':')) return fail("expected ':'");
      skip_whitespace();
      if (peek() == '"') {
        auto value = parse_string();
        if (!value.ok()) return value.error();
        fields[key.value()] = std::move(value).value();
      } else {
        auto value = parse_number();
        if (!value.ok()) return value.error();
        fields[key.value()] = value.value();
      }
      skip_whitespace();
      if (consume(',')) continue;
      if (consume('}')) break;
      return fail("expected ',' or '}'");
    }
    return finish(std::move(fields));
  }

 private:
  util::Result<std::map<std::string, Value>> finish(
      std::map<std::string, Value> fields) {
    skip_whitespace();
    if (position_ != text_.size()) return fail("trailing characters");
    return fields;
  }

  util::Error fail(const char* message) const {
    return util::Error::parse_error(
        util::format("%s at offset %zu", message, position_));
  }

  char peek() const {
    return position_ < text_.size() ? text_[position_] : '\0';
  }
  bool consume(char c) {
    if (peek() != c) return false;
    ++position_;
    return true;
  }
  void skip_whitespace() {
    while (position_ < text_.size() &&
           (text_[position_] == ' ' || text_[position_] == '\t')) {
      ++position_;
    }
  }

  util::Result<std::string> parse_string() {
    if (!consume('"')) return fail("expected '\"'");
    std::string out;
    while (position_ < text_.size()) {
      const char c = text_[position_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (position_ >= text_.size()) return fail("dangling escape");
        const char escaped = text_[position_++];
        switch (escaped) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          default: return fail("unsupported escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  util::Result<double> parse_number() {
    const std::size_t start = position_;
    if (peek() == '-') ++position_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0 ||
           peek() == '.' || peek() == 'e' || peek() == 'E' || peek() == '+' ||
           peek() == '-') {
      ++position_;
    }
    const auto parsed =
        util::parse_double(text_.substr(start, position_ - start));
    if (!parsed.ok()) return fail("invalid number");
    return parsed.value();
  }

  std::string_view text_;
  std::size_t position_ = 0;
};

}  // namespace

util::Result<DeviceEvent> parse_jsonl_event(std::string_view line,
                                            const DeviceCatalog& catalog) {
  FlatJsonParser parser(line);
  auto fields = parser.parse();
  if (!fields.ok()) return fields.error();

  const auto timestamp = fields.value().find("timestamp");
  if (timestamp == fields.value().end() ||
      !std::holds_alternative<double>(timestamp->second)) {
    return util::Error::parse_error("missing numeric 'timestamp'");
  }
  const auto device = fields.value().find("device");
  if (device == fields.value().end() ||
      !std::holds_alternative<std::string>(device->second)) {
    return util::Error::parse_error("missing string 'device'");
  }
  const auto value = fields.value().find("value");
  if (value == fields.value().end() ||
      !std::holds_alternative<double>(value->second)) {
    return util::Error::parse_error("missing numeric 'value'");
  }
  const auto id = catalog.find(std::get<std::string>(device->second));
  if (!id.ok()) return id.error();
  return DeviceEvent{std::get<double>(timestamp->second), id.value(),
                     std::get<double>(value->second)};
}

std::string format_jsonl_event(const DeviceEvent& event,
                               const DeviceCatalog& catalog) {
  return util::format(R"({"timestamp": %.3f, "device": "%s", "value": %g})",
                      event.timestamp,
                      catalog.info(event.device).name.c_str(), event.value);
}

util::Result<EventLog> load_jsonl(const std::string& path,
                                  DeviceCatalog catalog) {
  std::ifstream in(path);
  if (!in) return util::Error::io_error("cannot open " + path);
  EventLog log(std::move(catalog));
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (util::trim(line).empty()) continue;
    auto event = parse_jsonl_event(line, log.catalog());
    if (!event.ok()) {
      return util::Error::parse_error(
          util::format("line %zu: %s", line_number,
                       event.error().message.c_str()));
    }
    log.append(event.value());
  }
  return log;
}

util::Status save_jsonl(const EventLog& log, const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Error::io_error("cannot open " + path);
  for (const DeviceEvent& event : log.events()) {
    out << format_jsonl_event(event, log.catalog()) << '\n';
  }
  if (!out) return util::Error::io_error("write failed: " + path);
  return util::Status::ok_status();
}

}  // namespace causaliot::telemetry
