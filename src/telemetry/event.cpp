#include "causaliot/telemetry/event.hpp"

#include <algorithm>

#include "causaliot/util/csv.hpp"
#include "causaliot/util/strings.hpp"

namespace causaliot::telemetry {

void EventLog::append(DeviceEvent event) {
  CAUSALIOT_CHECK_MSG(event.device < catalog_.size(),
                      "event references unknown device");
  events_.push_back(event);
}

double EventLog::mean_inter_event_seconds() const {
  if (events_.size() < 2) return 0.0;
  const double span = events_.back().timestamp - events_.front().timestamp;
  return span / static_cast<double>(events_.size() - 1);
}

bool EventLog::is_time_ordered() const {
  return std::is_sorted(events_.begin(), events_.end(),
                        [](const DeviceEvent& a, const DeviceEvent& b) {
                          return a.timestamp < b.timestamp;
                        });
}

void EventLog::sort_by_time() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const DeviceEvent& a, const DeviceEvent& b) {
                     return a.timestamp < b.timestamp;
                   });
}

util::Status EventLog::save_csv(const std::string& path) const {
  std::vector<util::CsvRow> rows;
  rows.reserve(events_.size());
  for (const DeviceEvent& e : events_) {
    rows.push_back({util::format("%.3f", e.timestamp),
                    catalog_.info(e.device).name,
                    util::format("%.6g", e.value)});
  }
  return util::write_csv_file(path, rows, {"timestamp", "device", "value"});
}

util::Result<EventLog> EventLog::load_csv(const std::string& path,
                                          DeviceCatalog catalog) {
  auto rows = util::read_csv_file(path, /*skip_header=*/true);
  if (!rows.ok()) return rows.error();
  EventLog log(std::move(catalog));
  for (const util::CsvRow& row : rows.value()) {
    if (row.size() != 3) {
      return util::Error::parse_error("expected 3 fields per event row");
    }
    auto ts = util::parse_double(row[0]);
    if (!ts.ok()) return ts.error();
    auto device = log.catalog().find(row[1]);
    if (!device.ok()) return device.error();
    auto value = util::parse_double(row[2]);
    if (!value.ok()) return value.error();
    log.append({ts.value(), device.value(), value.value()});
  }
  return log;
}

}  // namespace causaliot::telemetry
