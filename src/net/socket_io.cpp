#include "causaliot/net/socket_io.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>

#include <cerrno>

namespace causaliot::net {

bool write_all(int fd, std::string_view data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

void set_io_timeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace causaliot::net
