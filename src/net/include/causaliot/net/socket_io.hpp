// Small POSIX socket helpers shared by every server in src/net and the
// planes built on top of it (obs scrape, serve ingest).
//
// These are the hardened primitives the introspection HttpServer grew
// first — full-buffer writes that survive EINTR and signal-free EPIPE,
// and SO_RCVTIMEO/SO_SNDTIMEO as the one slow-client defense every
// connection gets — factored out so the ingest plane inherits the same
// behavior instead of re-deriving it.
#pragma once

#include <cstddef>
#include <string_view>

namespace causaliot::net {

/// Writes the whole buffer; false on error/timeout (the connection is
/// then dropped — the client gave up or stalled past SO_SNDTIMEO).
bool write_all(int fd, std::string_view data);

/// Applies `timeout_ms` as both SO_RCVTIMEO and SO_SNDTIMEO, so a
/// stalled read returns EAGAIN and a stalled write fails instead of
/// wedging a worker forever.
void set_io_timeout(int fd, int timeout_ms);

/// Disables Nagle: both planes write complete responses in one burst.
void set_nodelay(int fd);

}  // namespace causaliot::net
