// Listener / accept-queue / worker-pool skeleton shared by the scrape
// and ingest planes.
//
// This is the socket core factored out of obs::HttpServer: a blocking
// accept loop on its own thread feeds accepted fds into a bounded
// kReject queue drained by a small worker pool, so a slow or stuck
// client can never stall accept and a connection burst degrades to an
// explicit overflow callback (HTTP answers 503, the line protocol
// writes an error line) instead of unbounded memory. The core is
// protocol-agnostic: it owns binding, accepting, queueing, thread
// lifecycle, and graceful shutdown; what happens *on* a connection is
// the handler's business, including closing the fd.
//
// stop() is graceful and idempotent: the listener closes first, queued
// connections are handed to the overflow callback (they can no longer
// be served), then the workers join. The destructor calls stop().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "causaliot/util/bounded_queue.hpp"
#include "causaliot/util/result.hpp"

namespace causaliot::net {

struct SocketServerConfig {
  /// Loopback by default; set "0.0.0.0" explicitly to expose a plane.
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; start() reports the one the kernel chose.
  std::uint16_t port = 0;
  /// Worker threads running the connection handler.
  std::size_t worker_count = 2;
  /// Accepted-but-unserved connections beyond this are handed to the
  /// overflow callback straight from the accept loop.
  std::size_t max_pending_connections = 64;
};

class SocketServer {
 public:
  /// Runs on a worker thread with exclusive ownership of the fd; must
  /// close it. May block for the connection's whole lifetime.
  using ConnectionHandler = std::function<void(int fd)>;
  /// Runs on the accept thread (or during stop()) when the pending
  /// queue is full or closed; owns the fd and must close it after
  /// answering. Keep it fast — it runs inline with accept.
  using OverflowHandler = std::function<void(int fd)>;

  SocketServer(SocketServerConfig config, ConnectionHandler on_connection,
               OverflowHandler on_overflow);
  /// Calls stop().
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and spawns the accept loop + workers. Returns the
  /// bound port or an Error when the address is unavailable.
  util::Result<std::uint16_t> start();

  /// Bound port once start() succeeded; 0 before.
  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  /// True once stop() began: long-lived connection handlers poll this
  /// to wind down persistent connections.
  bool stopping() const { return stopping_.load(std::memory_order_acquire); }

  /// Graceful shutdown: closes the listener, hands queued-but-unserved
  /// connections to the overflow callback, joins all threads.
  /// Idempotent; safe if start() never ran.
  void stop();

  std::uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_overflowed() const {
    return overflowed_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void worker_loop();

  SocketServerConfig config_;
  ConnectionHandler on_connection_;
  OverflowHandler on_overflow_;
  util::BoundedQueue<int> pending_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> overflowed_{0};
  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

}  // namespace causaliot::net
