// Persistent-connection, line-framed TCP server on the SocketServer
// skeleton — the transport for the JSONL ingestion plane.
//
// Framing: UTF-8 lines terminated by '\n' (a trailing '\r' is
// stripped, so CRLF producers work). A connection stays open for any
// number of lines; per-connection ordering is preserved because one
// worker owns the connection for its whole lifetime. The handler
// returns an optional response line — the protocol is deliberately
// quiet on success (an acknowledged-per-line protocol cannot reach
// millions of events/s), so responses are reserved for errors and
// control-verb results. Responses generated while draining one recv
// batch are written back in a single send.
//
// Slow-client defense mirrors the HTTP plane: SO_SNDTIMEO bounds every
// write, and a client that stalls past it is dropped (counted in
// stats().slow_client_drops) rather than wedging a worker. Reads use
// SO_RCVTIMEO only as a poll granularity — an idle persistent
// connection is legal; EAGAIN just re-checks the stopping flag.
//
// stop() is graceful: the listener closes, in-flight connections are
// woken via shutdown(2) and finish the lines already buffered, workers
// join. Lines received before stop() are all delivered to the handler.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>

#include "causaliot/net/socket_server.hpp"
#include "causaliot/util/result.hpp"

namespace causaliot::net {

struct LineServerConfig {
  SocketServerConfig socket;
  /// Lines longer than this (without terminator) poison the connection:
  /// the server answers `oversized_response` and drops it, since the
  /// stream can no longer be framed reliably.
  std::size_t max_line_bytes = 1 << 16;
  /// Read poll granularity and write (slow-client) timeout.
  int io_timeout_ms = 5000;
  /// Written (plus '\n') before dropping an unframeable connection.
  std::string oversized_response = "ERR oversized-line";
  /// Written (plus '\n') to connections refused by the accept queue.
  std::string overload_response = "ERR overloaded";
};

class LineProtocolServer {
 public:
  /// Runs on a worker thread, possibly concurrently across connections
  /// (must be thread-safe). Returns the response line to write back
  /// (without '\n'), or nullopt for the quiet success path.
  using LineHandler =
      std::function<std::optional<std::string>(std::string_view line)>;

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_overflowed = 0;
    std::int64_t connections_active = 0;
    std::uint64_t lines_total = 0;
    std::uint64_t responses_total = 0;
    std::uint64_t slow_client_drops = 0;
    std::uint64_t oversized_drops = 0;
  };

  LineProtocolServer(LineServerConfig config, LineHandler handler);
  ~LineProtocolServer();

  LineProtocolServer(const LineProtocolServer&) = delete;
  LineProtocolServer& operator=(const LineProtocolServer&) = delete;

  util::Result<std::uint16_t> start();
  std::uint16_t port() const { return server_.port(); }
  bool running() const { return server_.running(); }
  /// Graceful shutdown (see file comment). Idempotent.
  void stop();

  Stats stats() const;

 private:
  void serve_connection(int fd);
  void refuse_connection(int fd);
  /// Drains every complete line currently in `buffer`; returns false
  /// when the connection must be dropped (oversized line, dead client).
  bool drain_lines(int fd, std::string& buffer);

  LineServerConfig config_;
  LineHandler handler_;
  net::SocketServer server_;

  // Live connection fds, so stop() can shutdown(2) them to wake workers
  // blocked in recv. close() always happens after erasing under the
  // mutex, so stop() never touches a recycled fd number.
  std::mutex active_mutex_;
  std::unordered_set<int> active_fds_;

  std::atomic<std::int64_t> active_{0};
  std::atomic<std::uint64_t> lines_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> slow_drops_{0};
  std::atomic<std::uint64_t> oversized_drops_{0};
};

}  // namespace causaliot::net
