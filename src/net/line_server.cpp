#include "causaliot/net/line_server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "causaliot/net/socket_io.hpp"

namespace causaliot::net {

LineProtocolServer::LineProtocolServer(LineServerConfig config,
                                       LineHandler handler)
    : config_(std::move(config)),
      handler_(std::move(handler)),
      server_(
          config_.socket, [this](int fd) { serve_connection(fd); },
          [this](int fd) { refuse_connection(fd); }) {}

LineProtocolServer::~LineProtocolServer() { stop(); }

util::Result<std::uint16_t> LineProtocolServer::start() {
  return server_.start();
}

void LineProtocolServer::stop() {
  {
    // Wake workers blocked in recv on a persistent connection; they
    // observe EOF, finish the lines already buffered, and exit.
    std::lock_guard<std::mutex> lock(active_mutex_);
    for (const int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  server_.stop();
}

LineProtocolServer::Stats LineProtocolServer::stats() const {
  Stats out;
  out.connections_accepted = server_.connections_accepted();
  out.connections_overflowed = server_.connections_overflowed();
  out.connections_active = active_.load(std::memory_order_relaxed);
  out.lines_total = lines_.load(std::memory_order_relaxed);
  out.responses_total = responses_.load(std::memory_order_relaxed);
  out.slow_client_drops = slow_drops_.load(std::memory_order_relaxed);
  out.oversized_drops = oversized_drops_.load(std::memory_order_relaxed);
  return out;
}

void LineProtocolServer::refuse_connection(int fd) {
  set_io_timeout(fd, config_.io_timeout_ms);
  write_all(fd, config_.overload_response + "\n");
  ::close(fd);
}

bool LineProtocolServer::drain_lines(int fd, std::string& buffer) {
  std::string responses;
  std::size_t start = 0;
  bool drop = false;
  for (;;) {
    const std::size_t newline = buffer.find('\n', start);
    if (newline == std::string::npos) break;
    std::string_view line(buffer.data() + start, newline - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    start = newline + 1;
    if (line.size() > config_.max_line_bytes) {
      oversized_drops_.fetch_add(1, std::memory_order_relaxed);
      responses += config_.oversized_response;
      responses += '\n';
      drop = true;
      break;
    }
    lines_.fetch_add(1, std::memory_order_relaxed);
    if (std::optional<std::string> response = handler_(line)) {
      responses_.fetch_add(1, std::memory_order_relaxed);
      responses += *response;
      responses += '\n';
    }
  }
  buffer.erase(0, start);
  if (!drop && buffer.size() > config_.max_line_bytes) {
    // The partial line already exceeds the cap with no terminator in
    // sight: the stream cannot be re-framed, poison the connection.
    oversized_drops_.fetch_add(1, std::memory_order_relaxed);
    responses += config_.oversized_response;
    responses += '\n';
    drop = true;
  }
  if (!responses.empty() && !write_all(fd, responses)) {
    slow_drops_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return !drop;
}

void LineProtocolServer::serve_connection(int fd) {
  set_io_timeout(fd, config_.io_timeout_ms);
  set_nodelay(fd);
  {
    std::lock_guard<std::mutex> lock(active_mutex_);
    active_fds_.insert(fd);
  }
  active_.fetch_add(1, std::memory_order_relaxed);

  std::string buffer;
  constexpr std::size_t kChunk = 64 * 1024;
  for (;;) {
    const std::size_t old_size = buffer.size();
    buffer.resize(old_size + kChunk);
    const ssize_t n = ::recv(fd, buffer.data() + old_size, kChunk, 0);
    buffer.resize(old_size + (n > 0 ? static_cast<std::size_t>(n) : 0));
    if (n < 0) {
      if (errno == EINTR) continue;
      if ((errno == EAGAIN || errno == EWOULDBLOCK) && !server_.stopping()) {
        continue;  // idle persistent connection: keep waiting
      }
      break;  // hard error, or winding down
    }
    if (n == 0) {
      // EOF. A final unterminated line is still a line — clients that
      // pipe a file without a trailing newline lose nothing.
      if (!buffer.empty() && buffer.size() <= config_.max_line_bytes) {
        std::string_view tail(buffer);
        if (tail.back() == '\r') tail.remove_suffix(1);
        lines_.fetch_add(1, std::memory_order_relaxed);
        if (std::optional<std::string> response = handler_(tail)) {
          responses_.fetch_add(1, std::memory_order_relaxed);
          if (!write_all(fd, *response + "\n")) {
            slow_drops_.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      break;
    }
    if (!drain_lines(fd, buffer)) break;
  }

  {
    std::lock_guard<std::mutex> lock(active_mutex_);
    active_fds_.erase(fd);
    ::close(fd);
  }
  active_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace causaliot::net
