#include "causaliot/net/socket_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "causaliot/util/check.hpp"
#include "causaliot/util/strings.hpp"

namespace causaliot::net {

SocketServer::SocketServer(SocketServerConfig config,
                           ConnectionHandler on_connection,
                           OverflowHandler on_overflow)
    : config_(std::move(config)),
      on_connection_(std::move(on_connection)),
      on_overflow_(std::move(on_overflow)),
      pending_(config_.max_pending_connections == 0
                   ? 1
                   : config_.max_pending_connections,
               util::OverflowPolicy::kReject) {
  CAUSALIOT_CHECK_MSG(config_.worker_count >= 1,
                      "socket server needs at least one worker");
  CAUSALIOT_CHECK_MSG(static_cast<bool>(on_connection_),
                      "socket server needs a connection handler");
  CAUSALIOT_CHECK_MSG(static_cast<bool>(on_overflow_),
                      "socket server needs an overflow handler");
}

SocketServer::~SocketServer() { stop(); }

util::Result<std::uint16_t> SocketServer::start() {
  CAUSALIOT_CHECK_MSG(!running(), "socket server already started");
  CAUSALIOT_CHECK_MSG(!stopping_.load(), "socket server already stopped");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Error::io_error(
        util::format("socket(): %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &address.sin_addr) !=
      1) {
    ::close(fd);
    return util::Error::invalid_argument("bad bind address '" +
                                         config_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    const std::string message = util::format(
        "cannot listen on %s:%u: %s", config_.bind_address.c_str(),
        static_cast<unsigned>(config_.port), std::strerror(errno));
    ::close(fd);
    return util::Error::io_error(message);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    ::close(fd);
    return util::Error::io_error("getsockname() failed");
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  running_.store(true, std::memory_order_release);

  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(config_.worker_count);
  for (std::size_t i = 0; i < config_.worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return port_;
}

void SocketServer::accept_loop() {
  // poll with a short timeout instead of a bare blocking accept: closing
  // a listening socket from another thread does not reliably wake a
  // blocked accept(2), but it does flip the stopping flag we poll here.
  pollfd watched{};
  watched.fd = listen_fd_;
  watched.events = POLLIN;
  while (!stopping_.load(std::memory_order_acquire)) {
    const int ready = ::poll(&watched, 1, /*timeout_ms=*/50);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 || (watched.revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;  // listener closed or broken
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    if (pending_.push(client) != util::PushResult::kAccepted) {
      // Worker pool saturated (or shutting down): answer here rather
      // than queueing without bound or silently dropping the connection.
      overflowed_.fetch_add(1, std::memory_order_relaxed);
      on_overflow_(client);
    }
  }
}

void SocketServer::worker_loop() {
  while (std::optional<int> fd = pending_.pop()) {
    on_connection_(*fd);
  }
}

void SocketServer::stop() {
  if (stopping_.exchange(true)) {
    // A second caller must still not return before the joins below have
    // finished; the cheap way is to let only the first caller join and
    // make the others wait on running_.
    while (running_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return;
  }
  if (listen_fd_ >= 0) {
    if (acceptor_.joinable()) acceptor_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  pending_.close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // Connections that were queued when the queue closed can no longer be
  // served; refuse them cleanly instead of leaking the fds.
  while (std::optional<int> fd = pending_.try_pop()) {
    overflowed_.fetch_add(1, std::memory_order_relaxed);
    on_overflow_(*fd);
  }
  running_.store(false, std::memory_order_release);
}

}  // namespace causaliot::net
