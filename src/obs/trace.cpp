#include "causaliot/obs/trace.hpp"

#include <chrono>
#include <cinttypes>

#include "causaliot/util/strings.hpp"

namespace causaliot::obs {

namespace {

// Thread-local cache of (tracer-id -> buffer) registrations. A thread
// normally talks to one tracer (the global one), so the linear scan is a
// single compare; test tracers add a second entry at most.
thread_local std::vector<std::pair<std::uint64_t, void*>> tls_buffers;

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Tracer::Tracer() : id_(next_tracer_id()) {}

std::uint64_t Tracer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Tracer::ThreadBuffer::append(Event event) {
  const std::size_t index = committed.load(std::memory_order_relaxed);
  const std::size_t chunk = index / kChunkSize;
  const std::size_t offset = index % kChunkSize;
  if (offset == 0) {
    // New chunk: the only recording-path lock, taken once per kChunkSize
    // events, and only against a concurrent exporter.
    std::lock_guard<std::mutex> lock(chunks_mutex);
    chunks.push_back(std::make_unique<Chunk>());
  }
  (*chunks[chunk])[offset] = std::move(event);
  committed.store(index + 1, std::memory_order_release);
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  for (const auto& [tracer_id, buffer] : tls_buffers) {
    if (tracer_id == id_) return *static_cast<ThreadBuffer*>(buffer);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::make_unique<ThreadBuffer>(
      static_cast<std::uint32_t>(buffers_.size())));
  ThreadBuffer* buffer = buffers_.back().get();
  tls_buffers.emplace_back(id_, buffer);
  return *buffer;
}

void Tracer::record(const char* name, const char* category,
                    std::uint64_t start_ns, std::uint64_t duration_ns,
                    std::string args_json) {
  Event event;
  event.name = name;
  event.category = category;
  event.start_ns = start_ns;
  event.duration_ns = duration_ns;
  event.args_json = std::move(args_json);
  local_buffer().append(std::move(event));
}

std::string Tracer::export_chrome_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Time base: earliest committed span start, so ts starts near 0.
  std::uint64_t base_ns = ~std::uint64_t{0};
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> chunks_lock(buffer->chunks_mutex);
    const std::size_t committed =
        buffer->committed.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < committed; ++i) {
      const Event& event =
          (*buffer->chunks[i / ThreadBuffer::kChunkSize])
              [i % ThreadBuffer::kChunkSize];
      if (event.start_ns < base_ns) base_ns = event.start_ns;
    }
  }
  if (base_ns == ~std::uint64_t{0}) base_ns = 0;

  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> chunks_lock(buffer->chunks_mutex);
    const std::size_t committed =
        buffer->committed.load(std::memory_order_acquire);
    if (committed > 0) {
      if (!first) out += ", ";
      first = false;
      out += util::format(
          "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
          "\"tid\": %u, \"args\": {\"name\": \"thread-%u\"}}",
          buffer->tid, buffer->tid);
    }
    for (std::size_t i = 0; i < committed; ++i) {
      const Event& event =
          (*buffer->chunks[i / ThreadBuffer::kChunkSize])
              [i % ThreadBuffer::kChunkSize];
      if (!first) out += ", ";
      first = false;
      out += util::format(
          "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
          "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u",
          event.name, event.category,
          static_cast<double>(event.start_ns - base_ns) / 1000.0,
          static_cast<double>(event.duration_ns) / 1000.0, buffer->tid);
      if (!event.args_json.empty()) {
        out += ", \"args\": {" + event.args_json + "}";
      }
      out += '}';
    }
  }
  out += "]}";
  return out;
}

std::map<std::string, Tracer::StageTotal> Tracer::stage_totals() const {
  std::map<std::string, StageTotal> totals;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> chunks_lock(buffer->chunks_mutex);
    const std::size_t committed =
        buffer->committed.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < committed; ++i) {
      const Event& event =
          (*buffer->chunks[i / ThreadBuffer::kChunkSize])
              [i % ThreadBuffer::kChunkSize];
      StageTotal& total = totals[event.name];
      ++total.count;
      total.total_ns += event.duration_ns;
    }
  }
  return totals;
}

std::string Tracer::stage_totals_json() const {
  std::string out = "{\"stages\": [";
  bool first = true;
  for (const auto& [name, total] : stage_totals()) {
    if (!first) out += ", ";
    first = false;
    out += util::format(
        "{\"name\": \"%s\", \"count\": %" PRIu64 ", \"total_ns\": %" PRIu64
        "}",
        util::json_escape(name).c_str(), total.count, total.total_ns);
  }
  out += "]}";
  return out;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& buffer : buffers_) {
    count += buffer->committed.load(std::memory_order_acquire);
  }
  return count;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> chunks_lock(buffer->chunks_mutex);
    buffer->committed.store(0, std::memory_order_release);
    buffer->chunks.clear();
  }
}

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();  // never destroyed
  return *instance;
}

Span::Span(const char* name, const char* category, Tracer* tracer)
    : name_(name), category_(category) {
  Tracer& target = tracer != nullptr ? *tracer : Tracer::global();
  if (!target.enabled()) return;
  tracer_ = &target;
  start_ns_ = Tracer::now_ns();
}

Span::Span(const char* name, std::string args_json, const char* category,
           Tracer* tracer)
    : name_(name), category_(category) {
  Tracer& target = tracer != nullptr ? *tracer : Tracer::global();
  if (!target.enabled()) return;
  tracer_ = &target;
  start_ns_ = Tracer::now_ns();
  args_json_ = std::move(args_json);
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  const std::uint64_t end_ns = Tracer::now_ns();
  tracer_->record(name_, category_, start_ns_, end_ns - start_ns_,
                  std::move(args_json_));
}

}  // namespace causaliot::obs
