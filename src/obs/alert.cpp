#include "causaliot/obs/alert.hpp"

#include <algorithm>
#include <charconv>
#include <cinttypes>

#include "causaliot/util/check.hpp"
#include "causaliot/util/strings.hpp"

namespace causaliot::obs {

namespace {

void skip_ws(std::string_view line, std::size_t& i) {
  while (i < line.size() &&
         (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) {
    ++i;
  }
}

bool scan_string(std::string_view line, std::size_t& i,
                 std::string_view& out) {
  const std::size_t begin = ++i;
  while (i < line.size() && line[i] != '"') {
    if (line[i] == '\\') return false;
    ++i;
  }
  if (i >= line.size()) return false;
  out = line.substr(begin, i - begin);
  ++i;  // closing quote
  return true;
}

bool scan_number(std::string_view line, std::size_t& i, double& out) {
  const char* begin = line.data() + i;
  const char* end = line.data() + line.size();
  const auto parsed = std::from_chars(begin, end, out);
  if (parsed.ec != std::errc{}) return false;
  i += static_cast<std::size_t>(parsed.ptr - begin);
  return true;
}

const char* op_name(AlertOp op) {
  switch (op) {
    case AlertOp::kGt: return ">";
    case AlertOp::kGe: return ">=";
    case AlertOp::kLt: return "<";
    case AlertOp::kLe: return "<=";
  }
  return "?";
}

const char* kind_name(AlertKind kind) {
  switch (kind) {
    case AlertKind::kThreshold: return "threshold";
    case AlertKind::kRate: return "rate";
    case AlertKind::kAbsence: return "absence";
  }
  return "?";
}

bool compare(AlertOp op, double value, double bound) {
  switch (op) {
    case AlertOp::kGt: return value > bound;
    case AlertOp::kGe: return value >= bound;
    case AlertOp::kLt: return value < bound;
    case AlertOp::kLe: return value <= bound;
  }
  return false;
}

/// Given the rule's direction, is `candidate` a worse offender than
/// `incumbent`? (Higher is worse for > / >=, lower for < / <=.)
bool worse(AlertOp op, double candidate, double incumbent) {
  switch (op) {
    case AlertOp::kGt:
    case AlertOp::kGe: return candidate > incumbent;
    case AlertOp::kLt:
    case AlertOp::kLe: return candidate < incumbent;
  }
  return false;
}

/// True when the series carries every pair the rule demands.
bool labels_subset(const Labels& wanted, const Labels& have) {
  for (const auto& [key, value] : wanted) {
    const auto it = std::find_if(have.begin(), have.end(), [&](const auto& p) {
      return p.first == key;
    });
    if (it == have.end() || it->second != value) return false;
  }
  return true;
}

std::string render_series(const TimeSeriesStore::SeriesRef& ref) {
  std::string out = ref.name;
  if (ref.labels.empty()) return out;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : ref.labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += value;
    out += '"';
  }
  out += '}';
  return out;
}

util::Error line_error(std::size_t line_number, const std::string& what) {
  return util::Error::parse_error(
      util::format("alert rules line %zu: %s", line_number, what.c_str()));
}

}  // namespace

const char* alert_state_name(AlertState state) {
  switch (state) {
    case AlertState::kInactive: return "inactive";
    case AlertState::kPending: return "pending";
    case AlertState::kFiring: return "firing";
    case AlertState::kResolved: return "resolved";
  }
  return "?";
}

util::Result<std::vector<AlertRule>> parse_alert_rules(std::string_view text) {
  std::vector<AlertRule> rules;
  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t newline = text.find('\n', start);
    const std::string_view line = util::trim(
        text.substr(start, newline == std::string_view::npos
                               ? text.size() - start
                               : newline - start));
    ++line_number;
    start = newline == std::string_view::npos ? text.size() + 1 : newline + 1;
    if (line.empty() || line.front() == '#') continue;

    AlertRule rule;
    bool has_value = false;
    bool has_kind = false;
    std::size_t i = 0;
    skip_ws(line, i);
    if (i >= line.size() || line[i] != '{') {
      return line_error(line_number, "expected a JSON object");
    }
    ++i;
    skip_ws(line, i);
    if (i < line.size() && line[i] == '}') {
      ++i;
    } else {
      while (true) {
        skip_ws(line, i);
        if (i >= line.size() || line[i] != '"') {
          return line_error(line_number, "expected a quoted key");
        }
        std::string_view key;
        if (!scan_string(line, i, key)) {
          return line_error(line_number, "unterminated key");
        }
        skip_ws(line, i);
        if (i >= line.size() || line[i] != ':') {
          return line_error(line_number, "expected ':'");
        }
        ++i;
        skip_ws(line, i);

        const auto want_string = [&](std::string_view& out) {
          return i < line.size() && line[i] == '"' &&
                 scan_string(line, i, out);
        };
        if (key == "name") {
          std::string_view v;
          if (!want_string(v)) {
            return line_error(line_number, "\"name\" must be a string");
          }
          rule.name = std::string(v);
        } else if (key == "metric") {
          std::string_view v;
          if (!want_string(v)) {
            return line_error(line_number, "\"metric\" must be a string");
          }
          rule.metric = std::string(v);
        } else if (key == "labels") {
          std::string_view v;
          if (!want_string(v)) {
            return line_error(line_number, "\"labels\" must be a string");
          }
          for (const std::string& item : util::split(v, ',')) {
            const std::string_view pair = util::trim(item);
            if (pair.empty()) continue;
            const std::size_t eq = pair.find('=');
            if (eq == std::string_view::npos || eq == 0) {
              return line_error(line_number,
                                "\"labels\" entries must look like k=v");
            }
            rule.labels.emplace_back(
                std::string(util::trim(pair.substr(0, eq))),
                std::string(util::trim(pair.substr(eq + 1))));
          }
          std::sort(rule.labels.begin(), rule.labels.end());
        } else if (key == "kind") {
          std::string_view v;
          if (!want_string(v)) {
            return line_error(line_number, "\"kind\" must be a string");
          }
          has_kind = true;
          if (v == "threshold") {
            rule.kind = AlertKind::kThreshold;
          } else if (v == "rate") {
            rule.kind = AlertKind::kRate;
          } else if (v == "absence") {
            rule.kind = AlertKind::kAbsence;
          } else {
            return line_error(line_number,
                              "\"kind\" must be threshold | rate | absence");
          }
        } else if (key == "op") {
          std::string_view v;
          if (!want_string(v)) {
            return line_error(line_number, "\"op\" must be a string");
          }
          if (v == ">") {
            rule.op = AlertOp::kGt;
          } else if (v == ">=") {
            rule.op = AlertOp::kGe;
          } else if (v == "<") {
            rule.op = AlertOp::kLt;
          } else if (v == "<=") {
            rule.op = AlertOp::kLe;
          } else {
            return line_error(line_number, "\"op\" must be > | >= | < | <=");
          }
        } else if (key == "value") {
          if (!scan_number(line, i, rule.value)) {
            return line_error(line_number, "\"value\" must be a number");
          }
          has_value = true;
        } else if (key == "window_seconds") {
          if (!scan_number(line, i, rule.window_seconds)) {
            return line_error(line_number,
                              "\"window_seconds\" must be a number");
          }
        } else if (key == "for_seconds") {
          if (!scan_number(line, i, rule.for_seconds)) {
            return line_error(line_number, "\"for_seconds\" must be a number");
          }
        } else if (key == "stale_seconds") {
          if (!scan_number(line, i, rule.stale_seconds)) {
            return line_error(line_number,
                              "\"stale_seconds\" must be a number");
          }
        } else {
          return line_error(line_number,
                            util::format("unknown key \"%.*s\"",
                                         static_cast<int>(key.size()),
                                         key.data()));
        }
        skip_ws(line, i);
        if (i >= line.size()) {
          return line_error(line_number, "unterminated object");
        }
        if (line[i] == ',') {
          ++i;
          continue;
        }
        if (line[i] == '}') {
          ++i;
          break;
        }
        return line_error(line_number, "expected ',' or '}'");
      }
    }
    skip_ws(line, i);
    if (i != line.size()) {
      return line_error(line_number, "trailing garbage after object");
    }

    if (rule.name.empty()) {
      return line_error(line_number, "\"name\" is required");
    }
    if (rule.metric.empty()) {
      return line_error(line_number, "\"metric\" is required");
    }
    if (!has_kind) rule.kind = AlertKind::kThreshold;
    switch (rule.kind) {
      case AlertKind::kThreshold:
        if (!has_value) {
          return line_error(line_number,
                            "threshold rules require \"value\"");
        }
        break;
      case AlertKind::kRate:
        if (!has_value) {
          return line_error(line_number, "rate rules require \"value\"");
        }
        if (rule.window_seconds <= 0.0) {
          return line_error(line_number,
                            "rate rules require \"window_seconds\" > 0");
        }
        break;
      case AlertKind::kAbsence:
        if (rule.stale_seconds <= 0.0) {
          return line_error(line_number,
                            "absence rules require \"stale_seconds\" > 0");
        }
        break;
    }
    for (const AlertRule& existing : rules) {
      if (existing.name == rule.name) {
        return line_error(line_number,
                          util::format("duplicate rule name \"%s\"",
                                       rule.name.c_str()));
      }
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

AlertEngine::AlertEngine(TimeSeriesStore& store, Registry& registry,
                         std::vector<AlertRule> rules)
    : store_(store) {
  rules_.reserve(rules.size());
  for (AlertRule& rule : rules) {
    for (const Runtime& existing : rules_) {
      CAUSALIOT_CHECK_MSG(existing.rule.name != rule.name,
                          "duplicate alert rule name");
    }
    Runtime rt;
    rt.rule = std::move(rule);
    const std::string& name = rt.rule.name;
    rt.to_pending = &registry.counter(
        "obs_alert_transitions_total", {{"rule", name}, {"to", "pending"}},
        "Alert rule state transitions by destination state");
    rt.to_firing = &registry.counter("obs_alert_transitions_total",
                                     {{"rule", name}, {"to", "firing"}});
    rt.to_resolved = &registry.counter("obs_alert_transitions_total",
                                       {{"rule", name}, {"to", "resolved"}});
    rt.to_inactive = &registry.counter("obs_alert_transitions_total",
                                       {{"rule", name}, {"to", "inactive"}});
    rt.state_gauge = &registry.gauge(
        "obs_alert_state", {{"rule", name}},
        "Current alert rule state (0 inactive, 1 pending, 2 firing, "
        "3 resolved)");
    rules_.push_back(std::move(rt));
  }
  evaluations_ = &registry.counter("obs_alert_evaluations_total", {},
                                   "Alert engine evaluation passes");
  firing_gauge_ =
      &registry.gauge("obs_alerts_firing", {}, "Alert rules currently firing");
}

bool AlertEngine::condition(const Runtime& rt, std::uint64_t now_ns,
                            double& value, std::string& series) const {
  const AlertRule& rule = rt.rule;
  switch (rule.kind) {
    case AlertKind::kThreshold: {
      const auto windows = store_.raw_window(rule.metric, 0, now_ns);
      bool found = false;
      double best = 0.0;
      std::string best_series;
      for (const auto& window : windows) {
        if (window.points.empty()) continue;
        if (!labels_subset(rule.labels, window.ref.labels)) continue;
        const double v = window.points.back().value;
        if (!found || worse(rule.op, v, best)) {
          best = v;
          best_series = render_series(window.ref);
        }
        found = true;
      }
      if (!found) return false;
      value = best;
      series = std::move(best_series);
      return compare(rule.op, best, rule.value);
    }
    case AlertKind::kRate: {
      const auto window_ns =
          static_cast<std::uint64_t>(rule.window_seconds * 1e9);
      const auto windows = store_.raw_window(rule.metric, window_ns, now_ns);
      bool found = false;
      double best = 0.0;
      std::string best_series;
      for (const auto& window : windows) {
        if (window.points.size() < 2) continue;
        if (!labels_subset(rule.labels, window.ref.labels)) continue;
        const auto& first = window.points.front();
        const auto& last = window.points.back();
        if (last.t_ns <= first.t_ns) continue;
        const double dt =
            static_cast<double>(last.t_ns - first.t_ns) / 1e9;
        const double rate = (last.value - first.value) / dt;
        if (!found || worse(rule.op, rate, best)) {
          best = rate;
          best_series = render_series(window.ref);
        }
        found = true;
      }
      if (!found) return false;
      value = best;
      series = std::move(best_series);
      return compare(rule.op, best, rule.value);
    }
    case AlertKind::kAbsence: {
      const auto windows = store_.raw_window(rule.metric, 0, now_ns);
      bool found = false;
      std::uint64_t newest_ns = 0;
      std::string newest_series;
      for (const auto& window : windows) {
        if (window.points.empty()) continue;
        if (!labels_subset(rule.labels, window.ref.labels)) continue;
        const std::uint64_t t = window.points.back().t_ns;
        if (!found || t > newest_ns) {
          newest_ns = t;
          newest_series = render_series(window.ref);
        }
        found = true;
      }
      if (!found) {
        value = 0.0;
        series = rule.metric + " (no matching series)";
        return true;
      }
      const double age_seconds =
          now_ns > newest_ns
              ? static_cast<double>(now_ns - newest_ns) / 1e9
              : 0.0;
      value = age_seconds;
      series = std::move(newest_series);
      return age_seconds > rule.stale_seconds;
    }
  }
  return false;
}

void AlertEngine::transition(Runtime& rt, AlertState to,
                             std::uint64_t now_ns) {
  rt.state = to;
  rt.since_ns = now_ns;
  ++rt.transitions;
  switch (to) {
    case AlertState::kPending: rt.to_pending->increment(); break;
    case AlertState::kFiring: rt.to_firing->increment(); break;
    case AlertState::kResolved: rt.to_resolved->increment(); break;
    case AlertState::kInactive: rt.to_inactive->increment(); break;
  }
  rt.state_gauge->set(static_cast<std::int64_t>(to));
}

void AlertEngine::evaluate(std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  evaluations_->increment();
  std::int64_t firing = 0;
  for (Runtime& rt : rules_) {
    double value = rt.last_value;
    std::string series = rt.series;
    const bool cond = condition(rt, now_ns, value, series);
    rt.last_eval_ns = now_ns;
    rt.last_value = value;
    rt.series = std::move(series);
    const double for_ns = rt.rule.for_seconds * 1e9;
    switch (rt.state) {
      case AlertState::kInactive:
      case AlertState::kResolved:
        if (cond) {
          if (rt.rule.for_seconds <= 0.0) {
            transition(rt, AlertState::kFiring, now_ns);
          } else {
            rt.pending_since_ns = now_ns;
            transition(rt, AlertState::kPending, now_ns);
          }
        }
        break;
      case AlertState::kPending:
        if (!cond) {
          transition(rt, AlertState::kInactive, now_ns);
        } else if (static_cast<double>(now_ns - rt.pending_since_ns) >=
                   for_ns) {
          transition(rt, AlertState::kFiring, now_ns);
        }
        break;
      case AlertState::kFiring:
        if (!cond) transition(rt, AlertState::kResolved, now_ns);
        break;
    }
    if (rt.state == AlertState::kFiring) ++firing;
  }
  firing_gauge_->set(firing);
}

std::size_t AlertEngine::firing_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t firing = 0;
  for (const Runtime& rt : rules_) {
    if (rt.state == AlertState::kFiring) ++firing;
  }
  return firing;
}

std::uint64_t AlertEngine::evaluations() const {
  return evaluations_->value();
}

std::vector<AlertEngine::RuleStatus> AlertEngine::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<RuleStatus> out;
  out.reserve(rules_.size());
  for (const Runtime& rt : rules_) {
    RuleStatus status;
    status.rule = &rt.rule;
    status.state = rt.state;
    status.since_ns = rt.since_ns;
    status.last_eval_ns = rt.last_eval_ns;
    status.last_value = rt.last_value;
    status.series = rt.series;
    status.transitions = rt.transitions;
    out.push_back(std::move(status));
  }
  return out;
}

std::string AlertEngine::to_json(std::uint64_t now_ns) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = util::format(
      "{\"firing\": %zu, \"evaluations\": %" PRIu64 ", \"rules\": [",
      [&] {
        std::size_t firing = 0;
        for (const Runtime& rt : rules_) {
          if (rt.state == AlertState::kFiring) ++firing;
        }
        return firing;
      }(),
      evaluations_->value());
  bool first = true;
  for (const Runtime& rt : rules_) {
    if (!first) out += ", ";
    first = false;
    const double age_seconds =
        rt.since_ns > 0 && now_ns > rt.since_ns
            ? static_cast<double>(now_ns - rt.since_ns) / 1e9
            : 0.0;
    out += util::format(
        "{\"name\": \"%s\", \"metric\": \"%s\", \"kind\": \"%s\", "
        "\"op\": \"%s\", \"value\": %.12g, \"for_seconds\": %.3f, "
        "\"state\": \"%s\", \"state_age_seconds\": %.3f, "
        "\"since_unix_ms\": %lld, \"last_value\": %.12g, "
        "\"series\": \"%s\", \"transitions\": %" PRIu64 "}",
        util::json_escape(rt.rule.name).c_str(),
        util::json_escape(rt.rule.metric).c_str(), kind_name(rt.rule.kind),
        op_name(rt.rule.op), rt.rule.value, rt.rule.for_seconds,
        alert_state_name(rt.state), age_seconds,
        rt.since_ns > 0
            ? static_cast<long long>(store_.to_unix_ms(rt.since_ns))
            : 0LL,
        rt.last_value, util::json_escape(rt.series).c_str(), rt.transitions);
  }
  out += "]}";
  return out;
}

std::string AlertEngine::to_text(std::uint64_t now_ns) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t firing = 0;
  for (const Runtime& rt : rules_) {
    if (rt.state == AlertState::kFiring) ++firing;
  }
  std::string out = util::format(
      "alerts: %zu rules, %zu firing, %" PRIu64 " evaluations\n",
      rules_.size(), firing, evaluations_->value());
  for (const Runtime& rt : rules_) {
    const double age_seconds =
        rt.since_ns > 0 && now_ns > rt.since_ns
            ? static_cast<double>(now_ns - rt.since_ns) / 1e9
            : 0.0;
    std::string condition_text;
    switch (rt.rule.kind) {
      case AlertKind::kThreshold:
        condition_text = util::format("%s %s %.12g", rt.rule.metric.c_str(),
                                      op_name(rt.rule.op), rt.rule.value);
        break;
      case AlertKind::kRate:
        condition_text = util::format(
            "rate(%s, %.0fs) %s %.12g/s", rt.rule.metric.c_str(),
            rt.rule.window_seconds, op_name(rt.rule.op), rt.rule.value);
        break;
      case AlertKind::kAbsence:
        condition_text = util::format("absent(%s) > %.0fs",
                                      rt.rule.metric.c_str(),
                                      rt.rule.stale_seconds);
        break;
    }
    out += util::format(
        "[%-8s] %-24s %s  value=%.12g  series=%s  for %.1fs  "
        "(transitions %" PRIu64 ")\n",
        alert_state_name(rt.state), rt.rule.name.c_str(),
        condition_text.c_str(), rt.last_value, rt.series.c_str(), age_seconds,
        rt.transitions);
  }
  return out;
}

}  // namespace causaliot::obs
