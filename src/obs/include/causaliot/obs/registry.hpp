// Process-wide metric registry.
//
// A Registry owns named, labeled metric instances (Counter / Gauge /
// Histogram) and serializes them to JSON (one compact object, suitable
// for JSONL streaming) and to the Prometheus text exposition format
// (`# HELP` / `# TYPE` + one sample line per instance; histograms are
// exposed as summaries with quantile labels).
//
// Lookup (counter() / gauge() / histogram()) takes the registry mutex;
// the returned reference is stable for the registry's lifetime, so a hot
// path resolves its handles once at setup and afterwards touches only
// the relaxed atomics inside the metric. Requesting the same (name,
// labels) pair again returns the same instance; requesting an existing
// family with a different kind is a programming error and aborts.
//
// Registry::global() is the process-wide default used by the CLI and the
// mining instrumentation; subsystems that need isolation (a
// DetectionService under test, a bench loop) construct their own.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "causaliot/obs/metrics.hpp"

namespace causaliot::obs {

/// Label key/value pairs; canonicalized (sorted by key) at registration,
/// so the same set in any order names the same instance.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// `help` is recorded on first registration of the family and emitted
  /// as the Prometheus `# HELP` line (later calls may omit it).
  Counter& counter(std::string_view name, Labels labels = {},
                   std::string_view help = {});
  Gauge& gauge(std::string_view name, Labels labels = {},
               std::string_view help = {});
  Histogram& histogram(std::string_view name, Labels labels = {},
                       std::string_view help = {});

  /// One compact JSON object:
  ///   {"metrics": [{"name": ..., "labels": {...}, "kind": "counter",
  ///                 "value": 12}, ...]}
  /// Histogram entries carry count/sum/p50/p95/p99/max instead of value.
  ///
  /// Export order is a CONTRACT, not an accident: families appear in
  /// sorted name order and instances within a family in sorted label
  /// order (labels themselves are canonicalized at registration), so
  /// two exports of the same registry state are byte-identical and
  /// snapshot diffs / CI greps stay stable regardless of registration
  /// order. to_prometheus() and visit_scalars() honor the same order.
  std::string to_json() const;

  /// Prometheus text exposition (version 0.0.4): # HELP / # TYPE per
  /// family, label values escaped (\\, \", \n), histograms as summaries.
  /// Same deterministic (sorted name, sorted labels) order as to_json().
  std::string to_prometheus() const;

  /// Visits every counter and gauge instance (histograms are skipped —
  /// they have no single scalar value) in the deterministic exposition
  /// order, passing the current value as a double. The callback runs
  /// under the registry mutex and therefore must not call back into
  /// this registry. This is the sampling hook for TimeSeriesStore.
  using ScalarVisitor = std::function<void(
      const std::string& name, const Labels& labels, MetricKind kind,
      double value)>;
  void visit_scalars(const ScalarVisitor& visit) const;

  /// Families registered so far (diagnostics / tests).
  std::size_t family_count() const;

  /// Drops every registered family. FOR TEST SETUP ONLY: all references
  /// previously returned by counter()/gauge()/histogram() dangle after
  /// this, so it must never run while any other thread (or cached
  /// handle) can still touch the registry. It exists so suites that
  /// assert exact values against the process-global registry are
  /// isolated from whatever earlier tests in the same binary recorded.
  void reset_for_test();

  static Registry& global();

 private:
  struct Instance {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    MetricKind kind = MetricKind::kCounter;
    std::string help;
    std::map<Labels, Instance> instances;
  };

  Instance& resolve(std::string_view name, Labels labels,
                    std::string_view help, MetricKind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Family, std::less<>> families_;
};

}  // namespace causaliot::obs
