// In-process metrics retention: a background sampler that snapshots
// Registry counters and gauges on a fixed interval into per-series ring
// buffers, so the scrape plane can answer "what has this metric done
// over the last N minutes" instead of only "what is it right now".
//
// Two tiers per series:
//
//   raw  one (timestamp, value) point per sampler tick, fixed-capacity
//        ring — the high-resolution recent window;
//   agg  every `downsample_every` raw points fold into one
//        {t_first, t_last, min, max, sum, count} bucket pushed into a
//        second ring — the long-horizon trend tier at 1/K the memory.
//
// Concurrency: the sampler thread is the only writer. Each ring slot is
// a handful of relaxed atomics, and the writer publishes a slot by a
// release store of the sample count (`head`); readers acquire-load the
// head, copy the window, then re-load the head and discard anything the
// writer may have been overwriting in the meantime (the slot holding
// sample `h2 - capacity` is the one the writer touches next, so points
// older than `h2 - capacity + 1` are dropped). Scrape threads therefore
// read consistent windows without ever blocking the sampler — the one
// lock is the series-directory mutex, taken at lookup only.
//
// The store knows nothing about serve: callers inject a pre-sample hook
// (refresh derived gauges — queue depths, model health, watchdog) and a
// post-sample hook (alert evaluation) and the sampler drives both, so
// one tick is refresh -> snapshot -> evaluate, in that order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "causaliot/obs/registry.hpp"

namespace causaliot::obs {

struct TimeSeriesConfig {
  /// Sampler tick interval. 0 is legal for an externally driven store
  /// (tests call sample_at() directly; start() then refuses to spawn).
  std::uint64_t interval_ms = 1000;
  /// Raw-tier points retained per series. Readers see up to
  /// `raw_capacity - 1` points (the slot the writer recycles next is
  /// never trusted).
  std::size_t raw_capacity = 512;
  /// Aggregate-tier buckets retained per series.
  std::size_t agg_capacity = 512;
  /// Raw points folded into one aggregate bucket.
  std::size_t downsample_every = 16;
  /// Metric families to sample: exact names, or prefixes with a trailing
  /// '*' ("serve_*"). Empty samples every counter and gauge — fine for a
  /// handful of tenants, but a million-tenant fleet should select the
  /// aggregate families and leave the per-tenant gauges to /metrics.
  std::vector<std::string> selectors;
};

class TimeSeriesStore {
 public:
  /// One raw sample.
  struct Point {
    std::uint64_t t_ns = 0;  // steady-clock (Tracer::now_ns) time base
    double value = 0.0;
  };
  /// One downsampled bucket.
  struct AggPoint {
    std::uint64_t t_first_ns = 0;
    std::uint64_t t_last_ns = 0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    std::uint64_t count = 0;
  };
  /// Series identity as the registry names it.
  struct SeriesRef {
    std::string name;
    Labels labels;
  };
  struct RawWindow {
    SeriesRef ref;
    std::vector<Point> points;  // oldest first
  };
  struct AggWindow {
    SeriesRef ref;
    std::vector<AggPoint> points;  // oldest first
  };

  TimeSeriesStore(Registry& registry, TimeSeriesConfig config);
  /// Calls stop().
  ~TimeSeriesStore();

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  /// Runs at the top of every tick, before the registry is visited —
  /// the place to refresh scrape-path gauges (queue depth, model
  /// health, watchdog). Set before start(); runs on the sampler thread.
  void set_pre_sample(std::function<void(std::uint64_t now_ns)> hook);
  /// Runs after the tick's samples are published — the alert-evaluation
  /// slot. Set before start(); runs on the sampler thread.
  void set_post_sample(std::function<void(std::uint64_t now_ns)> hook);

  /// Spawns the sampler thread (interval_ms must be > 0).
  void start();
  /// Joins the sampler. Idempotent; safe if start() never ran.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// One synchronous tick at an explicit timestamp: pre-hook, snapshot
  /// every selected registry scalar, post-hook. The deterministic
  /// driver for tests; the sampler thread calls it with the real clock.
  /// Single-threaded with respect to itself (one writer).
  void sample_at(std::uint64_t now_ns);

  /// Ticks taken so far.
  std::uint64_t samples_taken() const {
    return ticks_.load(std::memory_order_acquire);
  }
  /// Series discovered so far.
  std::size_t series_count() const;
  /// Every series key, in deterministic (name, labels) order.
  std::vector<SeriesRef> series_refs() const;

  /// Raw / aggregate points newer than `now_ns - window_ns` for every
  /// series matching `selector` (exact family name, or trailing-'*'
  /// prefix; empty matches everything). window_ns == 0 means the whole
  /// retained ring. Any thread.
  std::vector<RawWindow> raw_window(std::string_view selector,
                                    std::uint64_t window_ns,
                                    std::uint64_t now_ns) const;
  std::vector<AggWindow> agg_window(std::string_view selector,
                                    std::uint64_t window_ns,
                                    std::uint64_t now_ns) const;

  /// The /metrics/history payload: one JSON object covering every series
  /// matched by the comma-separated `selectors` ("" matches all), with
  /// samples newer than `window_seconds` (0 = whole ring) from the given
  /// tier ("raw" | "agg"). Timestamps are wall-clock unix milliseconds
  /// (steady samples mapped through the store's wall anchor).
  std::string history_json(std::string_view selectors, double window_seconds,
                           std::string_view tier, std::uint64_t now_ns) const;

  /// Maps a sample timestamp to wall-clock unix milliseconds.
  std::int64_t to_unix_ms(std::uint64_t t_ns) const;

 private:
  struct RawRing;
  struct AggRing;
  struct Series;

  Series& find_or_create(std::string_view name, const Labels& labels);
  template <typename Fn>
  void for_each_matching(std::string_view selector, Fn&& fn) const;

  Registry& registry_;
  TimeSeriesConfig config_;
  std::function<void(std::uint64_t)> pre_sample_;
  std::function<void(std::uint64_t)> post_sample_;

  /// Guards the series directory (find / insert); ring reads and writes
  /// are lock-free once a Series pointer is held.
  mutable std::mutex index_mutex_;
  /// Key -> series, key = name + '\x1f' + rendered sorted labels. A
  /// std::map keeps iteration (and therefore history JSON) in the same
  /// deterministic order as the registry's exposition.
  std::map<std::string, std::unique_ptr<Series>, std::less<>> index_;

  std::atomic<std::uint64_t> ticks_{0};
  /// Wall-clock anchor captured at construction, for unix-time export.
  std::int64_t wall_anchor_ms_ = 0;
  std::uint64_t mono_anchor_ns_ = 0;

  std::atomic<bool> running_{false};
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool stop_requested_ = false;  // guarded by wake_mutex_
  std::thread sampler_;
};

}  // namespace causaliot::obs
