// Span tracing with Chrome trace-event JSON export (Perfetto-loadable).
//
// A Span is an RAII scope marker: construction captures a steady-clock
// start, destruction appends one complete event to the current thread's
// span buffer. Buffers are per-thread and single-writer: appends write
// the slot, then publish it with a release store of the committed count,
// so the exporter (which reads with acquire) always sees a consistent
// prefix without stopping the writers. The only locks on the recording
// path are (a) first-span-on-a-thread registration and (b) one chunk
// allocation every kChunkSize events — the per-event fast path is
// lock-free.
//
// Tracing is off by default: a disabled tracer reduces Span construction
// to one relaxed load and a branch, which is what keeps instrumentation
// compiled into the serve hot path at < 1 ns when unsampled.
//
//   obs::Tracer::global().set_enabled(true);
//   { obs::Span span("train.mine", "train"); ... }
//   write_file("trace.json", obs::Tracer::global().export_chrome_json());
//
// Load the JSON at https://ui.perfetto.dev (or chrome://tracing).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace causaliot::obs {

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& global();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Steady-clock nanoseconds (the time base every span uses).
  static std::uint64_t now_ns();

  /// Appends one complete event to the calling thread's buffer. `name`
  /// and `category` must be string literals (or otherwise outlive the
  /// tracer); `args_json` is an optional JSON object body, e.g.
  /// `"\"child\": 3, \"level\": 1"` (no surrounding braces). Records
  /// even when disabled — callers gate on enabled() themselves (Span
  /// does this for you).
  void record(const char* name, const char* category,
              std::uint64_t start_ns, std::uint64_t duration_ns,
              std::string args_json = {});

  /// Chrome trace-event JSON: {"traceEvents": [{"name", "cat",
  /// "ph": "X", "ts", "dur", "pid", "tid", "args"}, ...]} with ts/dur in
  /// microseconds, plus thread_name metadata records. Safe to call while
  /// other threads keep recording (their uncommitted tail is skipped).
  std::string export_chrome_json() const;

  struct StageTotal {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  /// Aggregated duration per span name over everything recorded — the
  /// source for the CLI's per-stage timing table and bench counters.
  std::map<std::string, StageTotal> stage_totals() const;

  /// stage_totals() as one compact JSON object — the `/tracez`
  /// introspection payload:
  ///   {"stages": [{"name": ..., "count": N, "total_ns": N}, ...]}
  std::string stage_totals_json() const;

  std::size_t event_count() const;

  /// Drops every recorded event (buffers and thread ids survive, so
  /// thread-local fast paths stay valid). Not safe to call concurrently
  /// with active spans; meant for test setup and bench loops.
  void reset();

 private:
  friend class Span;

  struct Event {
    const char* name = nullptr;
    const char* category = nullptr;
    std::uint64_t start_ns = 0;
    std::uint64_t duration_ns = 0;
    std::string args_json;
  };

  struct ThreadBuffer {
    static constexpr std::size_t kChunkSize = 1024;
    using Chunk = std::array<Event, kChunkSize>;

    explicit ThreadBuffer(std::uint32_t tid_value) : tid(tid_value) {}

    const std::uint32_t tid;
    /// Guards the chunk vector only (append / export); slot writes are
    /// published through `committed`.
    mutable std::mutex chunks_mutex;
    std::vector<std::unique_ptr<Chunk>> chunks;
    std::atomic<std::size_t> committed{0};

    void append(Event event);
  };

  ThreadBuffer& local_buffer();

  mutable std::mutex mutex_;  // buffer registration
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::atomic<bool> enabled_{false};
  /// Process-unique id: thread-local registrations are keyed by it, so a
  /// destroyed tracer's cached buffers can never be revived by a new
  /// tracer landing at the same address.
  const std::uint64_t id_;
};

/// RAII span over the global (or an explicit) tracer. When the tracer is
/// disabled at construction the span is inert: no clock read, no record.
class Span {
 public:
  explicit Span(const char* name, const char* category = "app",
                Tracer* tracer = nullptr);
  Span(const char* name, std::string args_json, const char* category = "app",
       Tracer* tracer = nullptr);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_ = nullptr;  // null when tracing was disabled at entry
  const char* name_;
  const char* category_;
  std::uint64_t start_ns_ = 0;
  std::string args_json_;
};

}  // namespace causaliot::obs
