// Observability metric primitives: relaxed-atomic counters, gauges, and
// power-of-two-bucket histograms.
//
// Everything on a hot path is a single relaxed atomic RMW — the values
// are monotone totals (or last-write-wins gauges), so cross-metric skew
// during a snapshot is acceptable and no ordering is needed. The
// histogram doubles the discipline serve's latency counter pioneered:
// bucket index = bit_width of the sample, so recording is two relaxed
// fetch_adds (bucket + running sum) plus a rarely-contended max CAS, and
// quantiles are answered at snapshot time by walking the cumulative
// distribution. Quantiles are conservative within a factor of two — the
// right trade for counters hit millions of times per second.
//
// Instances are registered in (and owned by) an obs::Registry; the
// returned references are stable for the registry's lifetime, so hot
// paths cache them once and never touch the registry lock again.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace causaliot::obs {

/// Monotone event count. add() is one relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time signed level (queue depth, active sessions, ...).
class Gauge {
 public:
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Power-of-two-bucket distribution of non-negative samples.
class Histogram {
 public:
  /// Doubling buckets from 1; bucket 0 holds only the value 0, bucket i
  /// holds [2^(i-1), 2^i - 1], and the last bucket absorbs everything
  /// from 2^(kBucketCount-2) up.
  static constexpr std::size_t kBucketCount = 48;

  void record(std::uint64_t value) {
    const std::size_t width = std::bit_width(value);  // 0 for value == 0
    const std::size_t index =
        width < kBucketCount ? width : kBucketCount - 1;
    buckets_[index].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    // Keep the true maximum exactly (CAS loop; contention is negligible
    // because the max changes rarely once warm).
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t max = 0;
  };

  /// Quantiles report each bucket's upper bound clamped to the observed
  /// maximum; a quantile landing in the saturated last bucket reports
  /// the true max instead of a fabricated bound.
  Snapshot snapshot() const;

  std::uint64_t bucket_count_at(std::size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace causaliot::obs
