// Query-string access for HttpRequest::query: "a=1&b=two+three" with
// the usual application/x-www-form-urlencoded decoding ('+' is a
// space, %XX is a byte). Header-only — handlers pull the two or three
// parameters they care about and never build a map.
#pragma once

#include <string>
#include <string_view>

namespace causaliot::obs {

namespace query_detail {

inline int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

inline std::string url_decode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < text.size()) {
      const int hi = hex_digit(text[i + 1]);
      const int lo = hex_digit(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
      } else {
        out += c;  // malformed escape passes through verbatim
      }
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace query_detail

/// Decoded value of the first `key=` pair in `query`, or `fallback`
/// when the key is absent. A bare `key` (no '=') yields "".
inline std::string query_param(std::string_view query, std::string_view key,
                               std::string_view fallback = {}) {
  std::size_t start = 0;
  while (start <= query.size()) {
    const std::size_t amp = query.find('&', start);
    const std::string_view pair = query.substr(
        start, amp == std::string_view::npos ? query.size() - start
                                             : amp - start);
    const std::size_t eq = pair.find('=');
    const std::string_view pair_key =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (pair_key == key) {
      return eq == std::string_view::npos
                 ? std::string{}
                 : query_detail::url_decode(pair.substr(eq + 1));
    }
    if (amp == std::string_view::npos) break;
    start = amp + 1;
  }
  return std::string(fallback);
}

}  // namespace causaliot::obs
