// Declarative alerting over the TimeSeriesStore.
//
// Rules are loaded once (from a JSONL file or a built-in set) and
// evaluated on every sampler tick — the TimeSeriesStore's post-sample
// hook is the intended driver, so alerts always see the tick's freshly
// published samples. Three rule kinds:
//
//   threshold  latest raw sample of any matching series compared
//              against a constant (`op` + `value`);
//   rate       per-second change over `window_seconds` — needs at
//              least two raw points inside the window;
//   absence    fires when no matching series exists at all, or the
//              newest sample is older than `stale_seconds` (a stalled
//              sampler or a metric that simply stopped being written).
//
// Each rule runs a pending -> firing -> resolved state machine with
// `for_seconds` hysteresis: the condition must hold continuously for
// that long before the rule fires (for_seconds == 0 fires on the first
// bad tick), and a pending rule whose condition clears falls back to
// inactive without ever firing. Every transition increments
// `obs_alert_transitions_total{rule,to}`, the current state is exported
// as `obs_alert_state{rule}` (0 inactive, 1 pending, 2 firing,
// 3 resolved) plus the `obs_alerts_firing` roll-up, so the alert plane
// is itself observable — and therefore retained by the history store.
//
// Rules file format: JSONL, one flat object per line, '#' comments and
// blank lines ignored:
//
//   {"name": "queue_sat", "metric": "serve_queue_depth",
//    "labels": "shard=0", "kind": "threshold", "op": ">=",
//    "value": 48, "for_seconds": 5}
//   {"name": "reject_spike", "metric": "serve_ingest_rejected_total",
//    "kind": "rate", "op": ">", "value": 5, "window_seconds": 10,
//    "for_seconds": 2}
//   {"name": "no_heartbeat", "metric": "serve_watchdog_shard_heartbeat",
//    "kind": "absence", "stale_seconds": 10}
//
// `labels` is a comma-separated subset match ("k=v,k2=v2"); matching
// series must carry every listed pair but may have more. Empty matches
// any instance of the family.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "causaliot/obs/registry.hpp"
#include "causaliot/obs/time_series.hpp"
#include "causaliot/util/result.hpp"

namespace causaliot::obs {

enum class AlertKind : std::uint8_t { kThreshold, kRate, kAbsence };
enum class AlertOp : std::uint8_t { kGt, kGe, kLt, kLe };
enum class AlertState : std::uint8_t {
  kInactive = 0,
  kPending = 1,
  kFiring = 2,
  kResolved = 3,
};

const char* alert_state_name(AlertState state);

struct AlertRule {
  std::string name;    // unique; the `rule` label on exported metrics
  std::string metric;  // family name, exact
  Labels labels;       // subset match; empty = any instance
  AlertKind kind = AlertKind::kThreshold;
  AlertOp op = AlertOp::kGt;
  double value = 0.0;          // threshold / rate bound
  double window_seconds = 0.0;  // rate lookback (required for kRate)
  double for_seconds = 0.0;     // hysteresis before pending -> firing
  double stale_seconds = 0.0;   // absence staleness (required for kAbsence)
};

/// Parses the JSONL rules format described above. Unknown keys, bad
/// operators, duplicate rule names, and kind/parameter mismatches are
/// reported with their line number.
util::Result<std::vector<AlertRule>> parse_alert_rules(std::string_view text);

class AlertEngine {
 public:
  struct RuleStatus {
    const AlertRule* rule = nullptr;
    AlertState state = AlertState::kInactive;
    std::uint64_t since_ns = 0;      // when the current state was entered
    std::uint64_t last_eval_ns = 0;
    double last_value = 0.0;         // offending (or last observed) value
    std::string series;              // offending series, rendered
    std::uint64_t transitions = 0;
  };

  /// Registers the per-rule metrics eagerly so exposition order is
  /// stable from the first scrape. Rule names must be unique.
  AlertEngine(TimeSeriesStore& store, Registry& registry,
              std::vector<AlertRule> rules);

  AlertEngine(const AlertEngine&) = delete;
  AlertEngine& operator=(const AlertEngine&) = delete;

  /// One evaluation pass over every rule at the given timestamp.
  /// Intended as the store's post-sample hook; safe from any one thread
  /// at a time (internally serialized against status()/to_json()).
  void evaluate(std::uint64_t now_ns);

  std::size_t rule_count() const { return rules_.size(); }
  std::size_t firing_count() const;
  std::uint64_t evaluations() const;

  /// Snapshot of every rule's state (pointer valid for the engine's
  /// lifetime).
  std::vector<RuleStatus> status() const;

  /// The /alertz payloads. `now_ns` dates the "for N s" ages.
  std::string to_json(std::uint64_t now_ns) const;
  std::string to_text(std::uint64_t now_ns) const;

 private:
  struct Runtime {
    AlertRule rule;
    AlertState state = AlertState::kInactive;
    std::uint64_t pending_since_ns = 0;
    std::uint64_t since_ns = 0;
    std::uint64_t last_eval_ns = 0;
    double last_value = 0.0;
    std::string series;
    std::uint64_t transitions = 0;
    Counter* to_pending = nullptr;
    Counter* to_firing = nullptr;
    Counter* to_resolved = nullptr;
    Counter* to_inactive = nullptr;
    Gauge* state_gauge = nullptr;
  };

  /// True (plus offending value/series) if the rule's condition holds
  /// this tick.
  bool condition(const Runtime& rt, std::uint64_t now_ns, double& value,
                 std::string& series) const;
  void transition(Runtime& rt, AlertState to, std::uint64_t now_ns);

  TimeSeriesStore& store_;
  std::vector<Runtime> rules_;
  Counter* evaluations_ = nullptr;
  Gauge* firing_gauge_ = nullptr;

  mutable std::mutex mutex_;
};

}  // namespace causaliot::obs
