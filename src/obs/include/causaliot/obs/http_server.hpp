// Minimal HTTP/1.1 server over the net::SocketServer skeleton.
//
// Born as the scrape plane (GET/HEAD introspection for curl,
// Prometheus, and tests) and extended into a thin ingest surface: the
// listener/accept-queue/worker-pool core now lives in net::SocketServer
// so the HTTP plane and the raw-TCP line plane share one hardened
// socket skeleton, and routes can be registered per method (GET by
// default; POST/DELETE for `POST /ingest` and tenant control) with the
// request body read under a Content-Length cap. Parsing stays
// deliberately narrow — one request per connection
// (`Connection: close`), request line + headers capped in size and
// read under a socket timeout, bodies only where a route asks for
// them; responses always carry correct Content-Type and
// Content-Length.
//
//   obs::HttpServer server({.port = 0});            // 0 = ephemeral
//   server.handle("/metrics", [&](const obs::HttpRequest&) {
//     return obs::HttpResponse::text(registry.to_prometheus(),
//                                    obs::kContentTypePrometheus);
//   });
//   server.handle("POST", "/ingest", [&](const obs::HttpRequest& r) {
//     return ingest(r.body);
//   });
//   auto port = server.start();                     // bound port
//   ...
//   server.stop();                                  // drain + join
//
// stop() is graceful: the listener closes first, queued connections are
// still answered (503), then the workers join. The destructor stops.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "causaliot/net/socket_server.hpp"
#include "causaliot/util/result.hpp"

namespace causaliot::obs {

class Registry;

/// Content-Type values the plane serves.
inline constexpr std::string_view kContentTypeText =
    "text/plain; charset=utf-8";
inline constexpr std::string_view kContentTypeJson = "application/json";
/// Prometheus text exposition format 0.0.4.
inline constexpr std::string_view kContentTypePrometheus =
    "text/plain; version=0.0.4; charset=utf-8";

struct HttpRequest {
  std::string method;  // matches a registered route by the time a handler runs
  std::string path;    // target with any ?query stripped
  std::string query;   // raw query string (no leading '?'), "" when absent
  std::string body;    // request body ("" unless Content-Length was sent)
};

struct HttpResponse {
  int status = 200;
  std::string content_type{kContentTypeText};
  std::string body;

  static HttpResponse text(std::string body,
                           std::string_view content_type = kContentTypeText) {
    HttpResponse out;
    out.content_type = std::string(content_type);
    out.body = std::move(body);
    return out;
  }
  static HttpResponse json(std::string body) {
    return text(std::move(body), kContentTypeJson);
  }
};

/// Runs on a server worker thread; must be thread-safe (two workers may
/// execute the same handler concurrently).
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerConfig {
  /// Loopback by default: these planes are operator surfaces. Set
  /// "0.0.0.0" explicitly to expose one.
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; start() reports the one the kernel chose.
  std::uint16_t port = 0;
  /// Worker threads answering requests.
  std::size_t worker_count = 2;
  /// Accepted-but-unserved connections beyond this are answered 503
  /// directly from the accept loop (bounded memory under a burst).
  std::size_t max_pending_connections = 64;
  /// Request line + headers cap; longer requests get 431.
  std::size_t max_request_bytes = 8192;
  /// Request body cap; a larger Content-Length gets 413 without the
  /// body being read.
  std::size_t max_body_bytes = 4 << 20;
  /// Socket read/write timeout; a client that stalls past it gets 408
  /// (or its connection dropped mid-write).
  int io_timeout_ms = 5000;
  /// When set, the server counts requests into
  /// obs_http_requests_total{code=...} on this registry.
  Registry* registry = nullptr;
};

class HttpServer {
 public:
  explicit HttpServer(HttpServerConfig config = {});
  /// Calls stop().
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers an exact-match GET route (HEAD is answered from it with
  /// the body suppressed). Must be called before start().
  void handle(std::string path, HttpHandler handler);

  /// Registers an exact-match route for an explicit method ("GET",
  /// "POST", "DELETE", ...). Must be called before start().
  void handle(std::string method, std::string path, HttpHandler handler);

  /// Registers a prefix route for an explicit method: any path starting
  /// with `prefix` that has no exact match lands here (longest prefix
  /// wins). For REST-ish targets like DELETE /tenants/{id}.
  void handle_prefix(std::string method, std::string prefix,
                     HttpHandler handler);

  /// Binds, listens, and spawns the accept loop + workers. Returns the
  /// bound port (useful with config.port = 0) or an Error when the
  /// address is unavailable.
  util::Result<std::uint16_t> start();

  /// Bound port once start() succeeded; 0 before.
  std::uint16_t port() const { return server_.port(); }
  bool running() const { return server_.running(); }

  /// Graceful shutdown: closes the listener, answers everything already
  /// accepted, joins all threads. Idempotent; safe if start() never ran.
  void stop();

  /// Requests fully answered (any status) — test/diagnostic visibility.
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void serve_connection(int fd);
  void refuse_connection(int fd, std::string_view reason);
  void count_request(int status);
  /// Route lookup: exact (method, path), then registered prefixes.
  /// nullptr when nothing matches; `path_known` reports whether the
  /// path exists under some *other* method (404 vs 405).
  const HttpHandler* find_route(const std::string& method,
                                const std::string& path,
                                bool& path_known) const;

  HttpServerConfig config_;
  std::map<std::pair<std::string, std::string>, HttpHandler> routes_;
  std::vector<std::pair<std::pair<std::string, std::string>, HttpHandler>>
      prefix_routes_;
  std::atomic<std::uint64_t> requests_served_{0};
  net::SocketServer server_;
};

}  // namespace causaliot::obs
