// Minimal HTTP/1.1 introspection server over POSIX sockets.
//
// The scrape plane for a long-running process: a blocking accept loop on
// its own thread feeds accepted connections into a bounded queue drained
// by a small worker pool, so a slow or stuck client can never stall
// accept and a connection burst degrades to 503s instead of unbounded
// memory. Request parsing is deliberately narrow — GET/HEAD only, one
// request per connection (`Connection: close`), request line + headers
// capped in size and read under a socket timeout — because the only
// clients are curl, Prometheus, and tests. Handlers are looked up in an
// exact-match route table registered before start(); responses always
// carry correct Content-Type and Content-Length.
//
//   obs::HttpServer server({.port = 0});            // 0 = ephemeral
//   server.handle("/metrics", [&](const obs::HttpRequest&) {
//     return obs::HttpResponse::text(registry.to_prometheus(),
//                                    obs::kContentTypePrometheus);
//   });
//   auto port = server.start();                     // bound port
//   ...
//   server.stop();                                  // drain + join
//
// stop() is graceful: the listener closes first, queued connections are
// still answered, then the workers join. The destructor calls stop().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "causaliot/util/bounded_queue.hpp"
#include "causaliot/util/result.hpp"

namespace causaliot::obs {

class Registry;

/// Content-Type values the introspection plane serves.
inline constexpr std::string_view kContentTypeText =
    "text/plain; charset=utf-8";
inline constexpr std::string_view kContentTypeJson = "application/json";
/// Prometheus text exposition format 0.0.4.
inline constexpr std::string_view kContentTypePrometheus =
    "text/plain; version=0.0.4; charset=utf-8";

struct HttpRequest {
  std::string method;  // "GET" or "HEAD" by the time a handler runs
  std::string path;    // target with any ?query stripped
  std::string query;   // raw query string (no leading '?'), "" when absent
};

struct HttpResponse {
  int status = 200;
  std::string content_type{kContentTypeText};
  std::string body;

  static HttpResponse text(std::string body,
                           std::string_view content_type = kContentTypeText) {
    HttpResponse out;
    out.content_type = std::string(content_type);
    out.body = std::move(body);
    return out;
  }
  static HttpResponse json(std::string body) {
    return text(std::move(body), kContentTypeJson);
  }
};

/// Runs on a server worker thread; must be thread-safe (two workers may
/// execute the same handler concurrently).
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerConfig {
  /// Loopback by default: the introspection plane is an operator surface,
  /// not an ingestion one. Set "0.0.0.0" explicitly to expose it.
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; start() reports the one the kernel chose.
  std::uint16_t port = 0;
  /// Worker threads answering requests.
  std::size_t worker_count = 2;
  /// Accepted-but-unserved connections beyond this are answered 503
  /// directly from the accept loop (bounded memory under a burst).
  std::size_t max_pending_connections = 64;
  /// Request line + headers cap; longer requests get 431.
  std::size_t max_request_bytes = 8192;
  /// Socket read/write timeout; a client that stalls past it gets 408
  /// (or its connection dropped mid-write).
  int io_timeout_ms = 5000;
  /// When set, the server counts requests into
  /// obs_http_requests_total{code=...} on this registry.
  Registry* registry = nullptr;
};

class HttpServer {
 public:
  explicit HttpServer(HttpServerConfig config = {});
  /// Calls stop().
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers an exact-match route. Must be called before start().
  void handle(std::string path, HttpHandler handler);

  /// Binds, listens, and spawns the accept loop + workers. Returns the
  /// bound port (useful with config.port = 0) or an Error when the
  /// address is unavailable.
  util::Result<std::uint16_t> start();

  /// Bound port once start() succeeded; 0 before.
  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Graceful shutdown: closes the listener, answers everything already
  /// accepted, joins all threads. Idempotent; safe if start() never ran.
  void stop();

  /// Requests fully answered (any status) — test/diagnostic visibility.
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);
  void count_request(int status);

  HttpServerConfig config_;
  std::map<std::string, HttpHandler, std::less<>> routes_;
  util::BoundedQueue<int> pending_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

}  // namespace causaliot::obs
