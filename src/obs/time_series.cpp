#include "causaliot/obs/time_series.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>

#include "causaliot/obs/trace.hpp"
#include "causaliot/util/check.hpp"
#include "causaliot/util/strings.hpp"

namespace causaliot::obs {

namespace {

/// Exact family name, or trailing-'*' prefix; empty matches everything.
bool selector_matches(std::string_view selector, std::string_view name) {
  if (selector.empty()) return true;
  if (selector.back() == '*') {
    return name.substr(0, selector.size() - 1) ==
           selector.substr(0, selector.size() - 1);
  }
  return name == selector;
}

bool any_selector_matches(const std::vector<std::string_view>& selectors,
                          std::string_view name) {
  if (selectors.empty()) return true;
  return std::any_of(selectors.begin(), selectors.end(),
                     [&](std::string_view s) {
                       return selector_matches(s, name);
                     });
}

std::vector<std::string_view> split_selectors(std::string_view csv) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string_view item = util::trim(
        csv.substr(start, comma == std::string_view::npos ? csv.size() - start
                                                          : comma - start));
    if (!item.empty()) out.push_back(item);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return out;
}

std::string json_labels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += util::json_escape(key);
    out += "\": \"";
    out += util::json_escape(value);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

/// Fixed-capacity single-writer ring of (t, value) points. The writer
/// fills a slot's relaxed atomics, then release-publishes the running
/// sample count; readers copy a window and use a second head load to
/// discard any slot the writer could have been recycling (see the
/// header comment for the off-by-one: the slot holding sample
/// `head - capacity` is the writer's next target, so only the newest
/// `capacity - 1` samples are ever trusted).
struct TimeSeriesStore::RawRing {
  struct Slot {
    std::atomic<std::uint64_t> t{0};
    std::atomic<double> v{0.0};
  };

  explicit RawRing(std::size_t capacity) : slots(capacity) {}

  std::vector<Slot> slots;  // never resized: slot addresses are stable
  std::atomic<std::uint64_t> head{0};

  void push(std::uint64_t t_ns, double value) {  // sampler thread only
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    Slot& slot = slots[h % slots.size()];
    slot.t.store(t_ns, std::memory_order_relaxed);
    slot.v.store(value, std::memory_order_relaxed);
    head.store(h + 1, std::memory_order_release);
  }

  void read(std::vector<Point>& out) const {  // any thread
    out.clear();
    const std::uint64_t cap = slots.size();
    const std::uint64_t h1 = head.load(std::memory_order_acquire);
    const std::uint64_t lo = h1 > cap - 1 ? h1 - (cap - 1) : 0;
    for (std::uint64_t idx = lo; idx < h1; ++idx) {
      const Slot& slot = slots[idx % cap];
      out.push_back({slot.t.load(std::memory_order_relaxed),
                     slot.v.load(std::memory_order_relaxed)});
    }
    const std::uint64_t h2 = head.load(std::memory_order_acquire);
    const std::uint64_t lo2 = h2 > cap - 1 ? h2 - (cap - 1) : 0;
    if (lo2 > lo) {
      const std::size_t drop =
          std::min<std::size_t>(out.size(), static_cast<std::size_t>(lo2 - lo));
      out.erase(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(drop));
    }
  }
};

/// Same publication discipline for downsampled buckets.
struct TimeSeriesStore::AggRing {
  struct Slot {
    std::atomic<std::uint64_t> t_first{0};
    std::atomic<std::uint64_t> t_last{0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
    std::atomic<double> sum{0.0};
    std::atomic<std::uint64_t> count{0};
  };

  explicit AggRing(std::size_t capacity) : slots(capacity) {}

  std::vector<Slot> slots;
  std::atomic<std::uint64_t> head{0};

  void push(const AggPoint& point) {  // sampler thread only
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    Slot& slot = slots[h % slots.size()];
    slot.t_first.store(point.t_first_ns, std::memory_order_relaxed);
    slot.t_last.store(point.t_last_ns, std::memory_order_relaxed);
    slot.min.store(point.min, std::memory_order_relaxed);
    slot.max.store(point.max, std::memory_order_relaxed);
    slot.sum.store(point.sum, std::memory_order_relaxed);
    slot.count.store(point.count, std::memory_order_relaxed);
    head.store(h + 1, std::memory_order_release);
  }

  void read(std::vector<AggPoint>& out) const {  // any thread
    out.clear();
    const std::uint64_t cap = slots.size();
    const std::uint64_t h1 = head.load(std::memory_order_acquire);
    const std::uint64_t lo = h1 > cap - 1 ? h1 - (cap - 1) : 0;
    for (std::uint64_t idx = lo; idx < h1; ++idx) {
      const Slot& slot = slots[idx % cap];
      out.push_back({slot.t_first.load(std::memory_order_relaxed),
                     slot.t_last.load(std::memory_order_relaxed),
                     slot.min.load(std::memory_order_relaxed),
                     slot.max.load(std::memory_order_relaxed),
                     slot.sum.load(std::memory_order_relaxed),
                     slot.count.load(std::memory_order_relaxed)});
    }
    const std::uint64_t h2 = head.load(std::memory_order_acquire);
    const std::uint64_t lo2 = h2 > cap - 1 ? h2 - (cap - 1) : 0;
    if (lo2 > lo) {
      const std::size_t drop =
          std::min<std::size_t>(out.size(), static_cast<std::size_t>(lo2 - lo));
      out.erase(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(drop));
    }
  }
};

struct TimeSeriesStore::Series {
  Series(std::string name_in, Labels labels_in, std::size_t raw_capacity,
         std::size_t agg_capacity)
      : name(std::move(name_in)), labels(std::move(labels_in)),
        raw(raw_capacity), agg(agg_capacity) {}

  const std::string name;
  const Labels labels;
  RawRing raw;
  AggRing agg;
  // Downsample accumulator — sampler-thread state, never shared.
  std::uint64_t acc_count = 0;
  std::uint64_t acc_t_first = 0;
  double acc_min = 0.0;
  double acc_max = 0.0;
  double acc_sum = 0.0;
};

TimeSeriesStore::TimeSeriesStore(Registry& registry, TimeSeriesConfig config)
    : registry_(registry), config_(std::move(config)) {
  CAUSALIOT_CHECK_MSG(config_.raw_capacity >= 2,
                      "raw_capacity must be >= 2 (readers skip one slot)");
  CAUSALIOT_CHECK_MSG(config_.agg_capacity >= 2, "agg_capacity must be >= 2");
  CAUSALIOT_CHECK_MSG(config_.downsample_every >= 1,
                      "downsample_every must be >= 1");
  wall_anchor_ms_ = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
  mono_anchor_ns_ = Tracer::now_ns();
}

TimeSeriesStore::~TimeSeriesStore() { stop(); }

void TimeSeriesStore::set_pre_sample(
    std::function<void(std::uint64_t)> hook) {
  CAUSALIOT_CHECK_MSG(!running(), "set hooks before start()");
  pre_sample_ = std::move(hook);
}

void TimeSeriesStore::set_post_sample(
    std::function<void(std::uint64_t)> hook) {
  CAUSALIOT_CHECK_MSG(!running(), "set hooks before start()");
  post_sample_ = std::move(hook);
}

void TimeSeriesStore::start() {
  CAUSALIOT_CHECK_MSG(config_.interval_ms > 0,
                      "interval_ms == 0 means externally driven; no sampler");
  CAUSALIOT_CHECK_MSG(!running(), "sampler already running");
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_release);
  sampler_ = std::thread([this] {
    const auto interval = std::chrono::milliseconds(config_.interval_ms);
    std::unique_lock<std::mutex> lock(wake_mutex_);
    while (!stop_requested_) {
      lock.unlock();
      sample_at(Tracer::now_ns());
      lock.lock();
      wake_.wait_for(lock, interval, [this] { return stop_requested_; });
    }
  });
}

void TimeSeriesStore::stop() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  running_.store(false, std::memory_order_release);
}

TimeSeriesStore::Series& TimeSeriesStore::find_or_create(
    std::string_view name, const Labels& labels) {
  // Key = name + sorted labels; '\x1f' cannot appear in a metric or
  // label name, so keys cannot collide across families.
  std::string key(name);
  for (const auto& [label_key, label_value] : labels) {
    key += '\x1f';
    key += label_key;
    key += '=';
    key += label_value;
  }
  std::lock_guard<std::mutex> lock(index_mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) return *it->second;
  auto series = std::make_unique<Series>(std::string(name), labels,
                                         config_.raw_capacity,
                                         config_.agg_capacity);
  Series& ref = *series;
  index_.emplace(std::move(key), std::move(series));
  return ref;
}

void TimeSeriesStore::sample_at(std::uint64_t now_ns) {
  if (pre_sample_) pre_sample_(now_ns);
  registry_.visit_scalars([&](const std::string& name, const Labels& labels,
                              MetricKind, double value) {
    bool selected = config_.selectors.empty();
    for (const std::string& selector : config_.selectors) {
      if (selector_matches(selector, name)) {
        selected = true;
        break;
      }
    }
    if (!selected) return;
    Series& series = find_or_create(name, labels);
    series.raw.push(now_ns, value);
    if (series.acc_count == 0) {
      series.acc_t_first = now_ns;
      series.acc_min = value;
      series.acc_max = value;
      series.acc_sum = 0.0;
    }
    series.acc_min = std::min(series.acc_min, value);
    series.acc_max = std::max(series.acc_max, value);
    series.acc_sum += value;
    ++series.acc_count;
    if (series.acc_count >= config_.downsample_every) {
      series.agg.push({series.acc_t_first, now_ns, series.acc_min,
                       series.acc_max, series.acc_sum, series.acc_count});
      series.acc_count = 0;
    }
  });
  ticks_.fetch_add(1, std::memory_order_release);
  if (post_sample_) post_sample_(now_ns);
}

std::size_t TimeSeriesStore::series_count() const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  return index_.size();
}

std::vector<TimeSeriesStore::SeriesRef> TimeSeriesStore::series_refs() const {
  std::vector<SeriesRef> out;
  std::lock_guard<std::mutex> lock(index_mutex_);
  out.reserve(index_.size());
  for (const auto& [key, series] : index_) {
    out.push_back({series->name, series->labels});
  }
  return out;
}

template <typename Fn>
void TimeSeriesStore::for_each_matching(std::string_view selector,
                                        Fn&& fn) const {
  // Collect stable pointers under the lock, read rings outside it.
  std::vector<const Series*> matched;
  {
    std::lock_guard<std::mutex> lock(index_mutex_);
    for (const auto& [key, series] : index_) {
      if (selector_matches(selector, series->name)) {
        matched.push_back(series.get());
      }
    }
  }
  for (const Series* series : matched) fn(*series);
}

std::vector<TimeSeriesStore::RawWindow> TimeSeriesStore::raw_window(
    std::string_view selector, std::uint64_t window_ns,
    std::uint64_t now_ns) const {
  std::vector<RawWindow> out;
  std::vector<Point> scratch;
  for_each_matching(selector, [&](const Series& series) {
    series.raw.read(scratch);
    RawWindow window;
    window.ref = {series.name, series.labels};
    const std::uint64_t cutoff =
        window_ns == 0 || window_ns > now_ns ? 0 : now_ns - window_ns;
    for (const Point& point : scratch) {
      if (point.t_ns >= cutoff) window.points.push_back(point);
    }
    out.push_back(std::move(window));
  });
  return out;
}

std::vector<TimeSeriesStore::AggWindow> TimeSeriesStore::agg_window(
    std::string_view selector, std::uint64_t window_ns,
    std::uint64_t now_ns) const {
  std::vector<AggWindow> out;
  std::vector<AggPoint> scratch;
  for_each_matching(selector, [&](const Series& series) {
    series.agg.read(scratch);
    AggWindow window;
    window.ref = {series.name, series.labels};
    const std::uint64_t cutoff =
        window_ns == 0 || window_ns > now_ns ? 0 : now_ns - window_ns;
    for (const AggPoint& point : scratch) {
      if (point.t_last_ns >= cutoff) window.points.push_back(point);
    }
    out.push_back(std::move(window));
  });
  return out;
}

std::int64_t TimeSeriesStore::to_unix_ms(std::uint64_t t_ns) const {
  return wall_anchor_ms_ +
         (static_cast<std::int64_t>(t_ns) -
          static_cast<std::int64_t>(mono_anchor_ns_)) /
             1'000'000;
}

std::string TimeSeriesStore::history_json(std::string_view selectors,
                                          double window_seconds,
                                          std::string_view tier,
                                          std::uint64_t now_ns) const {
  const bool agg_tier = tier == "agg";
  const std::uint64_t window_ns =
      window_seconds <= 0.0 ? 0
                            : static_cast<std::uint64_t>(window_seconds * 1e9);
  const std::vector<std::string_view> wanted = split_selectors(selectors);

  std::string out = util::format(
      "{\"tier\": \"%s\", \"window_seconds\": %.3f, \"interval_ms\": %" PRIu64
      ", \"series\": [",
      agg_tier ? "agg" : "raw", window_seconds, config_.interval_ms);
  bool first_series = true;
  const auto emit_header = [&](const SeriesRef& ref) {
    if (!first_series) out += ", ";
    first_series = false;
    out += "{\"name\": \"";
    out += util::json_escape(ref.name);
    out += "\", \"labels\": ";
    out += json_labels(ref.labels);
    out += ", \"points\": [";
  };

  // One pass per matched series; the index map keeps (name, labels)
  // order deterministic, matching the registry exposition.
  std::vector<const Series*> matched;
  {
    std::lock_guard<std::mutex> lock(index_mutex_);
    for (const auto& [key, series] : index_) {
      if (any_selector_matches(wanted, series->name)) {
        matched.push_back(series.get());
      }
    }
  }
  const std::uint64_t cutoff =
      window_ns == 0 || window_ns > now_ns ? 0 : now_ns - window_ns;
  if (agg_tier) {
    std::vector<AggPoint> scratch;
    for (const Series* series : matched) {
      series->agg.read(scratch);
      emit_header({series->name, series->labels});
      bool first_point = true;
      for (const AggPoint& point : scratch) {
        if (point.t_last_ns < cutoff) continue;
        if (!first_point) out += ", ";
        first_point = false;
        out += util::format(
            "{\"t_unix_ms\": %lld, \"t_first_unix_ms\": %lld, "
            "\"min\": %.12g, \"max\": %.12g, \"sum\": %.12g, "
            "\"count\": %" PRIu64 ", \"mean\": %.12g}",
            static_cast<long long>(to_unix_ms(point.t_last_ns)),
            static_cast<long long>(to_unix_ms(point.t_first_ns)), point.min,
            point.max, point.sum, point.count,
            point.count > 0 ? point.sum / static_cast<double>(point.count)
                            : 0.0);
      }
      out += "]}";
    }
  } else {
    std::vector<Point> scratch;
    for (const Series* series : matched) {
      series->raw.read(scratch);
      emit_header({series->name, series->labels});
      bool first_point = true;
      for (const Point& point : scratch) {
        if (point.t_ns < cutoff) continue;
        if (!first_point) out += ", ";
        first_point = false;
        out += util::format("{\"t_unix_ms\": %lld, \"value\": %.12g}",
                            static_cast<long long>(to_unix_ms(point.t_ns)),
                            point.value);
      }
      out += "]}";
    }
  }
  out += "]}";
  return out;
}

}  // namespace causaliot::obs
