#include "causaliot/obs/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "causaliot/obs/registry.hpp"
#include "causaliot/util/check.hpp"
#include "causaliot/util/strings.hpp"

namespace causaliot::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

// Serialized response: status line + the three headers every reply
// carries + body. `head_only` suppresses the body but keeps the
// Content-Length of the representation (RFC 9110 §9.3.2).
std::string render(const HttpResponse& response, bool head_only) {
  std::string out = util::format("HTTP/1.1 %d %s\r\n", response.status,
                                 status_text(response.status));
  out += "Content-Type: " + response.content_type + "\r\n";
  out += util::format("Content-Length: %zu\r\n", response.body.size());
  out += "Connection: close\r\n\r\n";
  if (!head_only) out += response.body;
  return out;
}

// Writes the whole buffer; false on error/timeout (connection is dropped,
// nothing to recover — the client gave up or stalled).
bool write_all(int fd, std::string_view data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

void set_io_timeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

struct ReadOutcome {
  /// 0 = got a full head; otherwise the error status to answer with.
  int status = 0;
  std::string head;  // request line + headers, CRLFCRLF excluded
};

// Reads until the blank line ending the header block, the size cap, the
// socket timeout, or EOF. Any request body is ignored (GET/HEAD have
// none; anything else is rejected before a body would matter).
ReadOutcome read_head(int fd, std::size_t max_bytes) {
  std::string buffer;
  char chunk[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return {408, {}};
      return {400, {}};
    }
    if (n == 0) return {400, {}};  // EOF before the head completed
    buffer.append(chunk, static_cast<std::size_t>(n));
    const std::size_t end = buffer.find("\r\n\r\n");
    if (end != std::string::npos) {
      // The cap applies to the head itself, not to how it was chunked:
      // a terminator past the limit is still an oversized head.
      if (end > max_bytes) return {431, {}};
      buffer.resize(end);
      return {0, std::move(buffer)};
    }
    if (buffer.size() > max_bytes) return {431, {}};
  }
}

// Parses "METHOD SP target SP HTTP/1.x" into the request; false on any
// deviation. Header lines after the request line are tolerated but not
// interpreted (no route needs them).
bool parse_request_line(std::string_view head, HttpRequest& request) {
  const std::size_t line_end = head.find("\r\n");
  std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const std::size_t method_end = line.find(' ');
  if (method_end == std::string_view::npos) return false;
  const std::size_t target_end = line.find(' ', method_end + 1);
  if (target_end == std::string_view::npos) return false;
  const std::string_view version = line.substr(target_end + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") return false;
  request.method = std::string(line.substr(0, method_end));
  std::string_view target =
      line.substr(method_end + 1, target_end - method_end - 1);
  if (target.empty() || target.front() != '/') return false;
  const std::size_t query = target.find('?');
  if (query == std::string_view::npos) {
    request.path = std::string(target);
  } else {
    request.path = std::string(target.substr(0, query));
    request.query = std::string(target.substr(query + 1));
  }
  return true;
}

}  // namespace

HttpServer::HttpServer(HttpServerConfig config)
    : config_(std::move(config)),
      pending_(config_.max_pending_connections == 0
                   ? 1
                   : config_.max_pending_connections,
               util::OverflowPolicy::kReject) {
  CAUSALIOT_CHECK_MSG(config_.worker_count >= 1,
                      "http server needs at least one worker");
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, HttpHandler handler) {
  CAUSALIOT_CHECK_MSG(!running(), "routes must be registered before start()");
  CAUSALIOT_CHECK_MSG(!path.empty() && path.front() == '/',
                      "route paths start with '/'");
  routes_[std::move(path)] = std::move(handler);
}

util::Result<std::uint16_t> HttpServer::start() {
  CAUSALIOT_CHECK_MSG(!running(), "http server already started");
  CAUSALIOT_CHECK_MSG(!stopping_.load(), "http server already stopped");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Error::io_error(
        util::format("socket(): %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &address.sin_addr) !=
      1) {
    ::close(fd);
    return util::Error::invalid_argument("bad bind address '" +
                                         config_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    const std::string message = util::format(
        "cannot listen on %s:%u: %s", config_.bind_address.c_str(),
        static_cast<unsigned>(config_.port), std::strerror(errno));
    ::close(fd);
    return util::Error::io_error(message);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    ::close(fd);
    return util::Error::io_error("getsockname() failed");
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  running_.store(true, std::memory_order_release);

  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(config_.worker_count);
  for (std::size_t i = 0; i < config_.worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return port_;
}

void HttpServer::accept_loop() {
  // poll with a short timeout instead of a bare blocking accept: closing
  // a listening socket from another thread does not reliably wake a
  // blocked accept(2), but it does flip the stopping flag we poll here.
  pollfd watched{};
  watched.fd = listen_fd_;
  watched.events = POLLIN;
  while (!stopping_.load(std::memory_order_acquire)) {
    const int ready = ::poll(&watched, 1, /*timeout_ms=*/50);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 || (watched.revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;  // listener closed or broken
    }
    if (pending_.push(client) != util::PushResult::kAccepted) {
      // Worker pool saturated (or shutting down): answer 503 here rather
      // than queueing without bound or silently dropping the connection.
      set_io_timeout(client, config_.io_timeout_ms);
      HttpResponse overloaded;
      overloaded.status = 503;
      overloaded.body = "overloaded\n";
      write_all(client, render(overloaded, /*head_only=*/false));
      count_request(503);
      ::close(client);
    }
  }
}

void HttpServer::worker_loop() {
  while (std::optional<int> fd = pending_.pop()) {
    serve_connection(*fd);
  }
}

void HttpServer::count_request(int status) {
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (config_.registry != nullptr) {
    config_.registry
        ->counter("obs_http_requests_total",
                  {{"code", std::to_string(status)}},
                  "Introspection HTTP requests answered, by status code")
        .increment();
  }
}

void HttpServer::serve_connection(int fd) {
  set_io_timeout(fd, config_.io_timeout_ms);
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));

  HttpResponse response;
  bool head_only = false;
  const ReadOutcome head = read_head(fd, config_.max_request_bytes);
  if (head.status != 0) {
    response.status = head.status;
    response.body = util::format("%s\n", status_text(head.status));
  } else {
    HttpRequest request;
    if (!parse_request_line(head.head, request)) {
      response.status = 400;
      response.body = "malformed request line\n";
    } else if (request.method != "GET" && request.method != "HEAD") {
      response.status = 405;
      response.body = "only GET and HEAD are supported\n";
    } else {
      head_only = request.method == "HEAD";
      const auto route = routes_.find(request.path);
      if (route == routes_.end()) {
        response.status = 404;
        response.body = "no such route: " + request.path + "\n";
      } else {
        response = route->second(request);
      }
    }
  }
  write_all(fd, render(response, head_only));
  count_request(response.status);
  ::close(fd);
}

void HttpServer::stop() {
  if (stopping_.exchange(true)) {
    // A second caller must still not return before the joins below have
    // finished; the cheap way is to let only the first caller join and
    // make the others wait on running_.
    while (running_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return;
  }
  if (listen_fd_ >= 0) {
    if (acceptor_.joinable()) acceptor_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  pending_.close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // Connections that were queued when the queue closed can no longer be
  // served; refuse them cleanly instead of leaking the fds.
  while (std::optional<int> fd = pending_.try_pop()) {
    HttpResponse refused;
    refused.status = 503;
    refused.body = "shutting down\n";
    set_io_timeout(*fd, config_.io_timeout_ms);
    write_all(*fd, render(refused, /*head_only=*/false));
    count_request(503);
    ::close(*fd);
  }
  running_.store(false, std::memory_order_release);
}

}  // namespace causaliot::obs
