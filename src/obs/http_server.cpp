#include "causaliot/obs/http_server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include "causaliot/net/socket_io.hpp"
#include "causaliot/obs/registry.hpp"
#include "causaliot/util/check.hpp"
#include "causaliot/util/strings.hpp"

namespace causaliot::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Content Too Large";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

// Serialized response: status line + the three headers every reply
// carries + body. `head_only` suppresses the body but keeps the
// Content-Length of the representation (RFC 9110 §9.3.2).
std::string render(const HttpResponse& response, bool head_only) {
  std::string out = util::format("HTTP/1.1 %d %s\r\n", response.status,
                                 status_text(response.status));
  out += "Content-Type: " + response.content_type + "\r\n";
  out += util::format("Content-Length: %zu\r\n", response.body.size());
  out += "Connection: close\r\n\r\n";
  if (!head_only) out += response.body;
  return out;
}

struct ReadOutcome {
  /// 0 = got a full head; otherwise the error status to answer with.
  int status = 0;
  std::string head;      // request line + headers, CRLFCRLF excluded
  std::string leftover;  // bytes received past the head (body prefix)
};

// Reads until the blank line ending the header block, the size cap, the
// socket timeout, or EOF. Bytes past the terminator are retained in
// `leftover` — the first chunk of a request body must not be lost to
// the head read.
ReadOutcome read_head(int fd, std::size_t max_bytes) {
  std::string buffer;
  char chunk[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return {408, {}, {}};
      return {400, {}, {}};
    }
    if (n == 0) return {400, {}, {}};  // EOF before the head completed
    buffer.append(chunk, static_cast<std::size_t>(n));
    const std::size_t end = buffer.find("\r\n\r\n");
    if (end != std::string::npos) {
      // The cap applies to the head itself, not to how it was chunked:
      // a terminator past the limit is still an oversized head.
      if (end > max_bytes) return {431, {}, {}};
      ReadOutcome out;
      out.leftover = buffer.substr(end + 4);
      buffer.resize(end);
      out.head = std::move(buffer);
      return out;
    }
    if (buffer.size() > max_bytes) return {431, {}, {}};
  }
}

// Parses "METHOD SP target SP HTTP/1.x" into the request; false on any
// deviation.
bool parse_request_line(std::string_view head, HttpRequest& request) {
  const std::size_t line_end = head.find("\r\n");
  std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const std::size_t method_end = line.find(' ');
  if (method_end == std::string_view::npos) return false;
  const std::size_t target_end = line.find(' ', method_end + 1);
  if (target_end == std::string_view::npos) return false;
  const std::string_view version = line.substr(target_end + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") return false;
  request.method = std::string(line.substr(0, method_end));
  std::string_view target =
      line.substr(method_end + 1, target_end - method_end - 1);
  if (target.empty() || target.front() != '/') return false;
  const std::size_t query = target.find('?');
  if (query == std::string_view::npos) {
    request.path = std::string(target);
  } else {
    request.path = std::string(target.substr(0, query));
    request.query = std::string(target.substr(query + 1));
  }
  return true;
}

// Case-insensitive header lookup in the raw head block; value is
// whitespace-trimmed. False when the header is absent.
bool find_header(std::string_view head, std::string_view name,
                 std::string& value) {
  std::size_t pos = head.find("\r\n");
  while (pos != std::string_view::npos) {
    pos += 2;
    const std::size_t line_end = head.find("\r\n", pos);
    std::string_view line = head.substr(
        pos, line_end == std::string_view::npos ? std::string_view::npos
                                                : line_end - pos);
    const std::size_t colon = line.find(':');
    if (colon != std::string_view::npos && colon == name.size()) {
      bool match = true;
      for (std::size_t i = 0; i < name.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(line[i])) !=
            std::tolower(static_cast<unsigned char>(name[i]))) {
          match = false;
          break;
        }
      }
      if (match) {
        value = std::string(util::trim(line.substr(colon + 1)));
        return true;
      }
    }
    pos = line_end;
  }
  return false;
}

}  // namespace

HttpServer::HttpServer(HttpServerConfig config)
    : config_(std::move(config)),
      server_(
          net::SocketServerConfig{config_.bind_address, config_.port,
                                  config_.worker_count,
                                  config_.max_pending_connections},
          [this](int fd) { serve_connection(fd); },
          [this](int fd) {
            refuse_connection(fd, server_.stopping() ? "shutting down\n"
                                                     : "overloaded\n");
          }) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, HttpHandler handler) {
  handle("GET", std::move(path), std::move(handler));
}

void HttpServer::handle(std::string method, std::string path,
                        HttpHandler handler) {
  CAUSALIOT_CHECK_MSG(!running(), "routes must be registered before start()");
  CAUSALIOT_CHECK_MSG(!path.empty() && path.front() == '/',
                      "route paths start with '/'");
  CAUSALIOT_CHECK_MSG(!method.empty(), "route method must be non-empty");
  routes_[{std::move(method), std::move(path)}] = std::move(handler);
}

void HttpServer::handle_prefix(std::string method, std::string prefix,
                               HttpHandler handler) {
  CAUSALIOT_CHECK_MSG(!running(), "routes must be registered before start()");
  CAUSALIOT_CHECK_MSG(!prefix.empty() && prefix.front() == '/',
                      "route prefixes start with '/'");
  prefix_routes_.push_back(
      {{std::move(method), std::move(prefix)}, std::move(handler)});
}

util::Result<std::uint16_t> HttpServer::start() { return server_.start(); }

void HttpServer::stop() { server_.stop(); }

const HttpHandler* HttpServer::find_route(const std::string& method,
                                          const std::string& path,
                                          bool& path_known) const {
  path_known = false;
  const auto exact = routes_.find({method, path});
  if (exact != routes_.end()) return &exact->second;
  const HttpHandler* best = nullptr;
  std::size_t best_length = 0;
  for (const auto& [key, handler] : prefix_routes_) {
    if (key.first == method && util::starts_with(path, key.second) &&
        key.second.size() >= best_length) {
      best = &handler;
      best_length = key.second.size();
    }
  }
  if (best != nullptr) return best;
  // Distinguish "no such path" (404) from "path exists under another
  // method" (405).
  for (const auto& [key, handler] : routes_) {
    if (key.second == path) {
      path_known = true;
      return nullptr;
    }
  }
  for (const auto& [key, handler] : prefix_routes_) {
    if (util::starts_with(path, key.second)) {
      path_known = true;
      return nullptr;
    }
  }
  return nullptr;
}

void HttpServer::count_request(int status) {
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (config_.registry != nullptr) {
    config_.registry
        ->counter("obs_http_requests_total",
                  {{"code", std::to_string(status)}},
                  "HTTP requests answered, by status code")
        .increment();
  }
}

void HttpServer::refuse_connection(int fd, std::string_view reason) {
  net::set_io_timeout(fd, config_.io_timeout_ms);
  HttpResponse refused;
  refused.status = 503;
  refused.body = std::string(reason);
  net::write_all(fd, render(refused, /*head_only=*/false));
  count_request(503);
  ::close(fd);
}

void HttpServer::serve_connection(int fd) {
  net::set_io_timeout(fd, config_.io_timeout_ms);
  net::set_nodelay(fd);

  HttpResponse response;
  bool head_only = false;
  ReadOutcome head = read_head(fd, config_.max_request_bytes);
  if (head.status != 0) {
    response.status = head.status;
    response.body = util::format("%s\n", status_text(head.status));
  } else {
    HttpRequest request;
    if (!parse_request_line(head.head, request)) {
      response.status = 400;
      response.body = "malformed request line\n";
    } else {
      head_only = request.method == "HEAD";
      // HEAD is answered from the GET route with the body suppressed.
      const std::string lookup = head_only ? "GET" : request.method;
      bool path_known = false;
      const HttpHandler* route = find_route(lookup, request.path, path_known);
      if (route == nullptr) {
        if (path_known) {
          response.status = 405;
          response.body =
              lookup + " not supported for " + request.path + "\n";
        } else {
          response.status = 404;
          response.body = "no such route: " + request.path + "\n";
        }
      } else {
        // Read the declared body (if any) before running the handler.
        std::string length_value;
        bool body_ok = true;
        if (find_header(head.head, "Content-Length", length_value)) {
          const util::Result<std::int64_t> parsed =
              util::parse_int(length_value);
          const std::int64_t declared = parsed.ok() ? parsed.value() : -1;
          if (declared < 0) {
            response.status = 400;
            response.body = "bad Content-Length\n";
            body_ok = false;
          } else if (static_cast<std::size_t>(declared) >
                     config_.max_body_bytes) {
            response.status = 413;
            response.body = "request body too large\n";
            body_ok = false;
          } else {
            std::string expect;
            if (find_header(head.head, "Expect", expect) &&
                expect == "100-continue") {
              net::write_all(fd, "HTTP/1.1 100 Continue\r\n\r\n");
            }
            request.body = std::move(head.leftover);
            const auto target = static_cast<std::size_t>(declared);
            if (request.body.size() > target) request.body.resize(target);
            char chunk[4096];
            while (request.body.size() < target) {
              const ssize_t n = ::recv(
                  fd, chunk,
                  std::min(sizeof(chunk), target - request.body.size()), 0);
              if (n < 0 && errno == EINTR) continue;
              if (n <= 0) {
                response.status =
                    (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                        ? 408
                        : 400;
                response.body =
                    util::format("%s\n", status_text(response.status));
                body_ok = false;
                break;
              }
              request.body.append(chunk, static_cast<std::size_t>(n));
            }
          }
        }
        if (body_ok) response = (*route)(request);
      }
    }
  }
  net::write_all(fd, render(response, head_only));
  count_request(response.status);
  ::close(fd);
}

}  // namespace causaliot::obs
