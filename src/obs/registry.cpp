#include "causaliot/obs/registry.hpp"

#include <algorithm>
#include <cinttypes>

#include "causaliot/util/check.hpp"
#include "causaliot/util/strings.hpp"

namespace causaliot::obs {

namespace {

// Upper bound of histogram bucket `index` (samples with bit_width ==
// index, i.e. [2^(index-1), 2^index - 1]; bucket 0 holds only 0).
std::uint64_t bucket_upper(std::size_t index) {
  if (index == 0) return 0;
  if (index >= 63) return ~std::uint64_t{0};
  return (std::uint64_t{1} << index) - 1;
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

// Prometheus label-value escaping: backslash, double quote, newline.
std::string prometheus_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

// Renders `{k="v",...}` (empty string for no labels). `extra` appends one
// more pair (used for the summary quantile label).
std::string prometheus_labels(const Labels& labels,
                              const std::pair<std::string_view,
                                              std::string_view>* extra) {
  if (labels.empty() && extra == nullptr) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += prometheus_escape(value);
    out += '"';
  }
  if (extra != nullptr) {
    if (!first) out += ',';
    out += extra->first;
    out += "=\"";
    out += prometheus_escape(extra->second);
    out += '"';
  }
  out += '}';
  return out;
}

std::string json_labels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += util::json_escape(key);
    out += "\": \"";
    out += util::json_escape(value);
    out += '"';
  }
  out += '}';
  return out;
}

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto ok_head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!ok_head(name.front())) return false;
  return std::all_of(name.begin(), name.end(), [&](char c) {
    return ok_head(c) || (c >= '0' && c <= '9');
  });
}

}  // namespace

Histogram::Snapshot Histogram::snapshot() const {
  std::array<std::uint64_t, kBucketCount> counts;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  Snapshot out;
  out.count = total;
  out.sum = sum_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  if (total == 0) return out;

  const auto quantile = [&](double q) -> std::uint64_t {
    const auto rank =
        static_cast<std::uint64_t>(q * static_cast<double>(total));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      cumulative += counts[i];
      if (cumulative > rank) {
        // The last bucket is open-ended: its samples may exceed the
        // nominal 2^47-1 bound, so report the observed maximum instead
        // of fabricating one.
        if (i == kBucketCount - 1) return out.max;
        const std::uint64_t upper = bucket_upper(i);
        return upper < out.max ? upper : out.max;
      }
    }
    return out.max;
  };
  out.p50 = quantile(0.50);
  out.p95 = quantile(0.95);
  out.p99 = quantile(0.99);
  return out;
}

Registry::Instance& Registry::resolve(std::string_view name, Labels labels,
                                      std::string_view help,
                                      MetricKind kind) {
  CAUSALIOT_CHECK_MSG(valid_metric_name(name),
                      "metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*");
  for (const auto& [key, value] : labels) {
    CAUSALIOT_CHECK_MSG(valid_metric_name(key), "invalid label key");
    (void)value;  // values are free-form; escaped at exposition time
  }
  std::sort(labels.begin(), labels.end());
  const auto duplicate = std::adjacent_find(
      labels.begin(), labels.end(),
      [](const auto& a, const auto& b) { return a.first == b.first; });
  CAUSALIOT_CHECK_MSG(duplicate == labels.end(), "duplicate label key");
  std::lock_guard<std::mutex> lock(mutex_);
  auto family_it = families_.find(name);
  if (family_it == families_.end()) {
    Family family;
    family.kind = kind;
    family.help = std::string(help);
    family_it = families_.emplace(std::string(name), std::move(family)).first;
  } else {
    CAUSALIOT_CHECK_MSG(family_it->second.kind == kind,
                        "metric family re-registered with a different kind");
    if (family_it->second.help.empty() && !help.empty()) {
      family_it->second.help = std::string(help);
    }
  }
  // Construct the metric while the mutex is still held: two threads
  // first-registering the same (name, labels) must not both see a null
  // pointer and race the unique_ptr assignment.
  Instance& instance = family_it->second.instances[std::move(labels)];
  switch (kind) {
    case MetricKind::kCounter:
      if (!instance.counter) instance.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      if (!instance.gauge) instance.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      if (!instance.histogram) {
        instance.histogram = std::make_unique<Histogram>();
      }
      break;
  }
  return instance;
}

Counter& Registry::counter(std::string_view name, Labels labels,
                           std::string_view help) {
  return *resolve(name, std::move(labels), help, MetricKind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name, Labels labels,
                       std::string_view help) {
  return *resolve(name, std::move(labels), help, MetricKind::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view name, Labels labels,
                               std::string_view help) {
  return *resolve(name, std::move(labels), help, MetricKind::kHistogram)
              .histogram;
}

std::size_t Registry::family_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return families_.size();
}

void Registry::reset_for_test() {
  std::lock_guard<std::mutex> lock(mutex_);
  families_.clear();
}

void Registry::visit_scalars(const ScalarVisitor& visit) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, family] : families_) {
    if (family.kind == MetricKind::kHistogram) continue;
    for (const auto& [labels, instance] : family.instances) {
      const double value =
          family.kind == MetricKind::kCounter
              ? static_cast<double>(instance.counter->value())
              : static_cast<double>(instance.gauge->value());
      visit(name, labels, family.kind, value);
    }
  }
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"metrics\": [";
  bool first = true;
  for (const auto& [name, family] : families_) {
    for (const auto& [labels, instance] : family.instances) {
      if (!first) out += ", ";
      first = false;
      out += "{\"name\": \"";
      out += util::json_escape(name);
      out += "\", \"labels\": ";
      out += json_labels(labels);
      out += ", \"kind\": \"";
      out += kind_name(family.kind);
      out += '"';
      switch (family.kind) {
        case MetricKind::kCounter:
          out += util::format(", \"value\": %" PRIu64,
                              instance.counter->value());
          break;
        case MetricKind::kGauge:
          out += util::format(", \"value\": %" PRId64,
                              instance.gauge->value());
          break;
        case MetricKind::kHistogram: {
          const Histogram::Snapshot s = instance.histogram->snapshot();
          out += util::format(
              ", \"count\": %" PRIu64 ", \"sum\": %" PRIu64
              ", \"p50\": %" PRIu64 ", \"p95\": %" PRIu64 ", \"p99\": %" PRIu64
              ", \"max\": %" PRIu64,
              s.count, s.sum, s.p50, s.p95, s.p99, s.max);
          break;
        }
      }
      out += '}';
    }
  }
  out += "]}";
  return out;
}

std::string Registry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + prometheus_escape(family.help) + "\n";
    }
    out += "# TYPE " + name + " ";
    // Histograms expose precomputed quantiles: a Prometheus summary.
    out += family.kind == MetricKind::kHistogram
               ? "summary"
               : kind_name(family.kind);
    out += '\n';
    for (const auto& [labels, instance] : family.instances) {
      switch (family.kind) {
        case MetricKind::kCounter:
          out += name + prometheus_labels(labels, nullptr) +
                 util::format(" %" PRIu64 "\n", instance.counter->value());
          break;
        case MetricKind::kGauge:
          out += name + prometheus_labels(labels, nullptr) +
                 util::format(" %" PRId64 "\n", instance.gauge->value());
          break;
        case MetricKind::kHistogram: {
          const Histogram::Snapshot s = instance.histogram->snapshot();
          const std::pair<std::string_view, std::string_view> quantiles[] = {
              {"quantile", "0.5"}, {"quantile", "0.95"}, {"quantile", "0.99"}};
          const std::uint64_t values[] = {s.p50, s.p95, s.p99};
          for (std::size_t q = 0; q < 3; ++q) {
            out += name + prometheus_labels(labels, &quantiles[q]) +
                   util::format(" %" PRIu64 "\n", values[q]);
          }
          out += name + "_sum" + prometheus_labels(labels, nullptr) +
                 util::format(" %" PRIu64 "\n", s.sum);
          out += name + "_count" + prometheus_labels(labels, nullptr) +
                 util::format(" %" PRIu64 "\n", s.count);
          break;
        }
      }
    }
  }
  return out;
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // never destroyed
  return *instance;
}

}  // namespace causaliot::obs
