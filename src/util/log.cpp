#include "causaliot/util/log.hpp"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>

#include "causaliot/util/strings.hpp"

namespace causaliot::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

// Monotonic seconds since the first log call — stable across wall-clock
// adjustments, and small enough to read at a glance.
double uptime_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

// Compact per-thread ordinal (assigned on first log from the thread):
// readable where std::thread::id's opaque hash is not.
std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

std::string format_log_line(LogLevel level, std::string_view message,
                            double uptime, std::uint32_t thread) {
  return format("[%10.6f] [t%" PRIu32 "] [%s] %.*s\n", uptime, thread,
                level_name(level), static_cast<int>(message.size()),
                message.data());
}

void log_message(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  // One fwrite per line: concurrent loggers may interleave *lines* but
  // never the bytes within one (POSIX stdio streams lock around each
  // call), unlike the multi-vararg fprintf this replaces.
  const std::string line =
      format_log_line(level, message, uptime_seconds(), thread_ordinal());
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace causaliot::util
