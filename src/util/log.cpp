#include "causaliot/util/log.hpp"

#include <atomic>
#include <cstdio>

namespace causaliot::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace causaliot::util
