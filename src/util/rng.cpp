#include "causaliot/util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace causaliot::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  CAUSALIOT_CHECK(bound > 0);
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CAUSALIOT_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() {
  // 53 random mantissa bits.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  CAUSALIOT_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return mean + stddev * radius * std::cos(angle);
}

double Rng::exponential(double rate) {
  CAUSALIOT_CHECK(rate > 0.0);
  double u = uniform01();
  while (u <= 0.0) u = uniform01();
  return -std::log(u) / rate;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  CAUSALIOT_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CAUSALIOT_CHECK_MSG(w >= 0.0, "negative weight");
    total += w;
  }
  CAUSALIOT_CHECK_MSG(total > 0.0, "all weights zero");
  double point = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    point -= weights[i];
    if (point < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack lands on the last item.
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  CAUSALIOT_CHECK(k <= n);
  // Floyd's algorithm would avoid the O(n) init, but n here is bounded by
  // trace length and this runs once per experiment; keep it simple.
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  shuffle(all);
  all.resize(k);
  std::sort(all.begin(), all.end());
  return all;
}

Rng Rng::split() { return Rng((*this)()); }

}  // namespace causaliot::util
