// Bit-packed assignment keys.
//
// After type unification (see preprocess/) every device state is binary, so
// an assignment of values to a set of up to 64 cause variables packs into a
// single uint64_t: bit i holds the value of the i-th cause in a fixed
// canonical order. CPT lookups and contingency-table strata indexing both
// key on these.
#pragma once

#include <cstdint>

#include "causaliot/util/check.hpp"

namespace causaliot::util {

class BitKey {
 public:
  BitKey() = default;

  /// Sets bit `index` to `value`. index must be < 64.
  void set(std::size_t index, bool value) {
    CAUSALIOT_CHECK(index < 64);
    const std::uint64_t mask = std::uint64_t{1} << index;
    if (value) {
      bits_ |= mask;
    } else {
      bits_ &= ~mask;
    }
  }

  bool get(std::size_t index) const {
    CAUSALIOT_CHECK(index < 64);
    return (bits_ >> index & 1U) != 0;
  }

  std::uint64_t raw() const { return bits_; }

  static BitKey from_raw(std::uint64_t raw) {
    BitKey key;
    key.bits_ = raw;
    return key;
  }

  friend bool operator==(BitKey, BitKey) = default;

 private:
  std::uint64_t bits_ = 0;
};

}  // namespace causaliot::util
