// Fixed-size worker-thread pool plus a blocking parallel_for helper.
//
// The miner's per-child cause discovery (and, later, per-shard workloads)
// are embarrassingly parallel: parallel_for(pool, 0, n, fn) runs fn(i)
// for every i in [begin, end) and blocks until all iterations finished.
// Scheduling is dynamic (a shared atomic cursor), so skewed per-item cost
// — common in TemporalPC, where a well-connected child runs far more CI
// tests than an isolated one — balances automatically.
//
// Design rules:
//   * The calling thread participates in the loop. parallel_for therefore
//     never deadlocks when invoked from inside a pool task (nested
//     parallelism): the caller alone can drain the whole range even if no
//     worker is free.
//   * Exceptions thrown by fn are captured; the first one is rethrown on
//     the calling thread after the range completes or is abandoned.
//     Remaining iterations are skipped once an exception is pending.
//   * A null pool or a single-threaded pool degrades to a plain serial
//     loop — callers need no special casing for threads == 1.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace causaliot::util {

class ThreadPool {
 public:
  /// Spawns `thread_count` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1). The pool is fixed-size for its lifetime.
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; rethrowing / result retrieval is the caller's
  /// business via the returned future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Fire-and-forget task submission.
  void enqueue(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  bool stopping_ = false;
};

/// Resolves a user-facing thread-count option: 0 -> hardware concurrency,
/// otherwise the value itself (minimum 1).
std::size_t resolve_thread_count(std::size_t requested);

namespace detail {

// Type-erased core of parallel_for (implemented in thread_pool.cpp).
void parallel_for_impl(ThreadPool* pool, std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& fn);

}  // namespace detail

/// Runs fn(i) for every i in [begin, end); blocks until all complete.
/// Serial when pool is null or has a single worker. See file comment for
/// the exception and nesting contract.
template <typename Fn>
void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end,
                  Fn&& fn) {
  if (begin >= end) return;
  if (pool == nullptr || pool->thread_count() <= 1 || end - begin == 1) {
    std::exception_ptr first_error;
    for (std::size_t i = begin; i < end; ++i) {
      if (first_error) break;
      try {
        fn(i);
      } catch (...) {
        first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
  detail::parallel_for_impl(pool, begin, end,
                            std::function<void(std::size_t)>(fn));
}

}  // namespace causaliot::util
