// Leveled stderr logger.
//
// Default level is kWarn so library consumers see problems but not chatter;
// benches and examples raise it to kInfo for progress reporting.
#pragma once

#include <string_view>

namespace causaliot::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits "[LEVEL] message\n" to stderr if `level` >= the global level.
void log_message(LogLevel level, std::string_view message);

inline void log_debug(std::string_view msg) {
  log_message(LogLevel::kDebug, msg);
}
inline void log_info(std::string_view msg) { log_message(LogLevel::kInfo, msg); }
inline void log_warn(std::string_view msg) { log_message(LogLevel::kWarn, msg); }
inline void log_error(std::string_view msg) {
  log_message(LogLevel::kError, msg);
}

}  // namespace causaliot::util
