// Leveled stderr logger.
//
// Default level is kWarn so library consumers see problems but not chatter;
// benches and examples raise it to kInfo for progress reporting.
//
// Thread-safe: each message goes out as a single fwrite, so lines from
// concurrent threads never interleave mid-line. Every line is prefixed
// with a monotonic uptime timestamp and a compact per-thread ordinal.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace causaliot::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// The exact bytes log_message emits (including the trailing newline):
/// `[  1.234567] [t0] [WARN] message`. Exposed so tests can pin the
/// format without scraping stderr.
std::string format_log_line(LogLevel level, std::string_view message,
                            double uptime, std::uint32_t thread);

/// Emits "[uptime] [tN] [LEVEL] message\n" to stderr if `level` >= the
/// global level, as one write.
void log_message(LogLevel level, std::string_view message);

inline void log_debug(std::string_view msg) {
  log_message(LogLevel::kDebug, msg);
}
inline void log_info(std::string_view msg) { log_message(LogLevel::kInfo, msg); }
inline void log_warn(std::string_view msg) { log_message(LogLevel::kWarn, msg); }
inline void log_error(std::string_view msg) {
  log_message(LogLevel::kError, msg);
}

}  // namespace causaliot::util
