// Atomic whole-file writes.
#pragma once

#include <string>
#include <string_view>

#include "causaliot/util/result.hpp"

namespace causaliot::util {

/// Writes `content` to `path` atomically: the bytes go to a temporary
/// file in the same directory (same filesystem, so rename(2) is atomic),
/// are fsync'd, and the temp file is renamed over `path`. A concurrent
/// reader — a Prometheus file-sd watcher, a tail on a trace dump —
/// therefore sees either the previous complete document or the new one,
/// never a truncated mix. The temp file is unlinked on any failure.
Status write_file_atomic(const std::string& path, std::string_view content);

}  // namespace causaliot::util
