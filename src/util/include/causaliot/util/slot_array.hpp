// Append-mostly slot directory with lock-free reads.
//
// The serving layer needs a tenant directory that arbitrary submit
// threads read on every event while tenants are added and removed on a
// *running* service. A plain vector reallocates under growth (readers
// chase freed memory); a shared_ptr per lookup costs an atomic refcount
// pair on the hottest path in the system. SlotArray instead keeps a
// fixed top-level table of lazily allocated chunks: get() is two
// acquire loads and never takes a lock, emplace() serializes writers on
// an internal mutex and publishes the fully constructed slot with a
// release store.
//
// Slots are never freed before destruction — removal is expressed by
// the element itself (e.g. an `alive` flag the owner flips), so a
// reader holding a T* can never observe a dangling pointer. That makes
// the directory append-only memory-wise: fine for tenant churn, where
// a tombstoned slot costs bytes, not correctness.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>

#include "causaliot/util/check.hpp"

namespace causaliot::util {

/// kChunkBits selects the chunk size (2^kChunkBits slots per chunk);
/// capacity is kMaxChunks * 2^kChunkBits slots. The defaults give
/// 1M slots at 8 KiB of fixed overhead plus 8 KiB per touched chunk.
template <typename T, std::size_t kChunkBits = 10,
          std::size_t kMaxChunks = 1024>
class SlotArray {
 public:
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kCapacity = kChunkSize * kMaxChunks;

  SlotArray() = default;
  SlotArray(const SlotArray&) = delete;
  SlotArray& operator=(const SlotArray&) = delete;

  ~SlotArray() {
    for (auto& chunk_ptr : chunks_) {
      Chunk* chunk = chunk_ptr.load(std::memory_order_acquire);
      if (chunk == nullptr) continue;
      for (auto& slot : *chunk) {
        delete slot.load(std::memory_order_acquire);
      }
      delete chunk;
    }
  }

  /// Lock-free: the slot's element, or nullptr when index is out of
  /// range or the slot was never filled. The returned pointer stays
  /// valid for the SlotArray's lifetime.
  T* get(std::size_t index) const {
    if (index >= kCapacity) return nullptr;
    const Chunk* chunk =
        chunks_[index >> kChunkBits].load(std::memory_order_acquire);
    if (chunk == nullptr) return nullptr;
    return (*chunk)[index & (kChunkSize - 1)].load(
        std::memory_order_acquire);
  }

  /// Constructs the element at `index` (which must be empty) and
  /// publishes it. Writers serialize on an internal mutex; concurrent
  /// get() calls see either nullptr or the fully constructed element.
  template <typename... Args>
  T& emplace(std::size_t index, Args&&... args) {
    CAUSALIOT_CHECK_MSG(index < kCapacity, "SlotArray index out of range");
    std::lock_guard<std::mutex> lock(grow_mutex_);
    auto& chunk_ptr = chunks_[index >> kChunkBits];
    Chunk* chunk = chunk_ptr.load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new Chunk();
      for (auto& slot : *chunk) {
        slot.store(nullptr, std::memory_order_relaxed);
      }
      chunk_ptr.store(chunk, std::memory_order_release);
    }
    auto& slot = (*chunk)[index & (kChunkSize - 1)];
    CAUSALIOT_CHECK_MSG(slot.load(std::memory_order_relaxed) == nullptr,
                        "SlotArray slot already occupied");
    T* element = new T(std::forward<Args>(args)...);
    slot.store(element, std::memory_order_release);
    return *element;
  }

 private:
  using Chunk = std::array<std::atomic<T*>, kChunkSize>;

  std::array<std::atomic<Chunk*>, kMaxChunks> chunks_{};
  std::mutex grow_mutex_;
};

}  // namespace causaliot::util
