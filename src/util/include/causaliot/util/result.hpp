// Expected-style result type for recoverable errors.
//
// The library does not throw across module boundaries; fallible operations
// return Result<T>, carrying either a value or an Error{code, message}.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "causaliot/util/check.hpp"

namespace causaliot::util {

enum class ErrorCode {
  kInvalidArgument,
  kNotFound,
  kParseError,
  kIoError,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
};

/// Human-readable name of an error code ("invalid_argument", ...).
const char* to_string(ErrorCode code);

struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  static Error invalid_argument(std::string msg) {
    return {ErrorCode::kInvalidArgument, std::move(msg)};
  }
  static Error not_found(std::string msg) {
    return {ErrorCode::kNotFound, std::move(msg)};
  }
  static Error parse_error(std::string msg) {
    return {ErrorCode::kParseError, std::move(msg)};
  }
  static Error io_error(std::string msg) {
    return {ErrorCode::kIoError, std::move(msg)};
  }
  static Error out_of_range(std::string msg) {
    return {ErrorCode::kOutOfRange, std::move(msg)};
  }
  static Error failed_precondition(std::string msg) {
    return {ErrorCode::kFailedPrecondition, std::move(msg)};
  }
  static Error internal(std::string msg) {
    return {ErrorCode::kInternal, std::move(msg)};
  }

  /// "code: message" for logs and test diagnostics.
  std::string to_string() const;
};

/// Either a T or an Error. Accessors CHECK on misuse.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    CAUSALIOT_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(storage_);
  }
  T& value() & {
    CAUSALIOT_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(storage_);
  }
  T&& value() && {
    CAUSALIOT_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(std::move(storage_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    CAUSALIOT_CHECK_MSG(!ok(), "Result::error() on value");
    return std::get<Error>(storage_);
  }

  /// Returns the value or a fallback, never CHECKs.
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> storage_;
};

/// Result specialization for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), has_error_(true) {}  // NOLINT(google-explicit-constructor)

  static Status ok_status() { return Status(); }

  bool ok() const { return !has_error_; }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    CAUSALIOT_CHECK_MSG(has_error_, "Status::error() on OK status");
    return error_;
  }

 private:
  Error error_;
  bool has_error_ = false;
};

}  // namespace causaliot::util
