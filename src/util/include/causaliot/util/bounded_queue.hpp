// Bounded multi-producer queue with an explicit overflow policy.
//
// The serving layer's ingestion path (serve::DetectionService) pushes
// events from arbitrary producer threads into one queue per shard; the
// shard worker is the single consumer. The queue is safe for any number
// of producers and consumers — the MPSC restriction is the service's
// usage, not a queue invariant.
//
// Overflow policy decides what a full queue does to a producer:
//   * kBlock      — wait until the consumer makes room (lossless
//                   backpressure; the producer inherits consumer latency),
//   * kDropOldest — evict the oldest queued item to admit the new one
//                   (bounded staleness; favours fresh events),
//   * kReject     — refuse the new item (caller decides; favours queued
//                   work already accepted).
// Every outcome is counted, so operators can see which policy fired and
// how often (serve::Metrics folds these into its report).
//
// close() ends the stream: producers are turned away (kClosed), while
// consumers drain the remaining items and then observe end-of-stream —
// the graceful shutdown path.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>

#include "causaliot/util/check.hpp"

namespace causaliot::util {

enum class OverflowPolicy : std::uint8_t {
  kBlock,
  kDropOldest,
  kReject,
};

enum class PushResult : std::uint8_t {
  kAccepted,       // enqueued; with kDropOldest possibly at a victim's cost
  kDroppedOldest,  // enqueued, evicting the oldest queued item
  kRejected,       // queue full under kReject; item not enqueued
  kClosed,         // queue closed; item not enqueued
};

template <typename T>
class BoundedQueue {
 public:
  struct Counters {
    std::uint64_t accepted = 0;        // items that entered the queue
    std::uint64_t dropped_oldest = 0;  // victims evicted by kDropOldest
    std::uint64_t rejected = 0;        // pushes refused by kReject
    std::uint64_t closed_rejects = 0;  // pushes refused after close()
    std::uint64_t block_waits = 0;     // pushes that had to sleep (kBlock)
  };

  /// Decides whether kDropOldest may evict a given queued item. Items
  /// the filter refuses (e.g. in-band control messages) are skipped when
  /// hunting for a victim; if nothing is evictable the new item is
  /// admitted anyway (transient overshoot bounded by the number of
  /// non-evictable items in flight).
  using EvictFilter = std::function<bool(const T&)>;

  BoundedQueue(std::size_t capacity, OverflowPolicy policy,
               EvictFilter evictable = {})
      : capacity_(capacity), policy_(policy),
        evictable_(std::move(evictable)) {
    CAUSALIOT_CHECK_MSG(capacity_ >= 1, "queue capacity must be >= 1");
  }

  std::size_t capacity() const { return capacity_; }
  OverflowPolicy policy() const { return policy_; }

  /// Enqueues `item` under the overflow policy. kBlock may sleep; the
  /// other policies never do. Returns what happened (see PushResult).
  PushResult push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_) {
      ++counters_.closed_rejects;
      return PushResult::kClosed;
    }
    if (items_.size() >= capacity_) {
      switch (policy_) {
        case OverflowPolicy::kBlock: {
          ++counters_.block_waits;
          space_available_.wait(lock, [this] {
            return items_.size() < capacity_ || closed_;
          });
          if (closed_) {
            ++counters_.closed_rejects;
            return PushResult::kClosed;
          }
          break;
        }
        case OverflowPolicy::kDropOldest: {
          auto victim = items_.begin();
          if (evictable_) {
            victim = std::find_if(items_.begin(), items_.end(),
                                  [this](const T& queued) {
                                    return evictable_(queued);
                                  });
          }
          if (victim == items_.end()) {
            // Only non-evictable items queued: admit over capacity
            // rather than lose a control message.
            items_.push_back(std::move(item));
            ++counters_.accepted;
            item_available_.notify_one();
            return PushResult::kAccepted;
          }
          items_.erase(victim);
          ++counters_.dropped_oldest;
          items_.push_back(std::move(item));
          ++counters_.accepted;
          item_available_.notify_one();
          return PushResult::kDroppedOldest;
        }
        case OverflowPolicy::kReject: {
          ++counters_.rejected;
          return PushResult::kRejected;
        }
      }
    }
    items_.push_back(std::move(item));
    ++counters_.accepted;
    item_available_.notify_one();
    return PushResult::kAccepted;
  }

  /// Enqueues `item` ignoring capacity and overflow policy: it never
  /// blocks, never evicts, and is refused only after close(). This is
  /// the lane for in-band control messages (tenant add/remove, model
  /// swap) that must not be lost to kReject or stalled by kBlock; data
  /// items must keep using push(). Overshoot past capacity is bounded
  /// by the number of outstanding control messages.
  PushResult push_unbounded(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      ++counters_.closed_rejects;
      return PushResult::kClosed;
    }
    items_.push_back(std::move(item));
    ++counters_.accepted;
    item_available_.notify_one();
    return PushResult::kAccepted;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  /// Returns nullopt only at end-of-stream (close() + fully drained).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    item_available_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    space_available_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt when nothing is queued right now.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    space_available_.notify_one();
    return item;
  }

  /// Stops accepting items. Queued items stay poppable (drain); blocked
  /// producers wake up with kClosed. Idempotent.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    item_available_.notify_all();
    space_available_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  Counters counters() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
  }

 private:
  const std::size_t capacity_;
  const OverflowPolicy policy_;
  const EvictFilter evictable_;

  mutable std::mutex mutex_;
  std::condition_variable item_available_;
  std::condition_variable space_available_;
  std::deque<T> items_;
  Counters counters_;
  bool closed_ = false;
};

}  // namespace causaliot::util
