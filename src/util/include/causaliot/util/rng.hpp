// Deterministic random number generation.
//
// Every stochastic component (simulator, injector, baselines) takes an
// explicit 64-bit seed so each experiment is exactly reproducible. The
// engine is xoshiro256** seeded through SplitMix64, which gives independent
// streams from sequential seeds.
#pragma once

#include <cstdint>
#include <vector>

#include "causaliot/util/check.hpp"

namespace causaliot::util {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xC0FFEEULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Box–Muller (cached spare value).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);

  /// Index drawn according to the (non-negative, not necessarily
  /// normalized) weights. CHECKs if all weights are zero.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const std::size_t j = uniform(i + 1);
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) in increasing order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derives an independent child generator (stream splitting).
  Rng split();

 private:
  std::uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace causaliot::util
