// Minimal CSV reader/writer for event-log (de)serialization.
//
// Supports RFC-4180-style quoting (fields containing the delimiter, quotes,
// or newlines are double-quoted; embedded quotes are doubled). Event logs in
// practice never need quoting, but imported traces may.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "causaliot/util/result.hpp"

namespace causaliot::util {

using CsvRow = std::vector<std::string>;

/// Parses one CSV line (no embedded newlines) into fields.
Result<CsvRow> parse_csv_line(std::string_view line, char delimiter = ',');

/// Formats fields into one CSV line, quoting where required.
std::string format_csv_line(const CsvRow& fields, char delimiter = ',');

/// Reads a whole CSV file. `skip_header` drops the first row.
Result<std::vector<CsvRow>> read_csv_file(const std::string& path,
                                          bool skip_header,
                                          char delimiter = ',');

/// Writes rows to a CSV file, with an optional header row first.
Status write_csv_file(const std::string& path,
                      const std::vector<CsvRow>& rows,
                      const CsvRow& header = {}, char delimiter = ',');

}  // namespace causaliot::util
