// Small string utilities used by CSV parsing and log formatting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "causaliot/util/result.hpp"

namespace causaliot::util {

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Joins items with the given separator.
std::string join(const std::vector<std::string>& items,
                 std::string_view separator);

/// Strict full-string parses (no trailing garbage allowed).
Result<double> parse_double(std::string_view text);
Result<std::int64_t> parse_int(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Escapes `text` for embedding inside a double-quoted JSON string:
/// backslash, quote, and control characters (\n, \t, ... and \u00XX for
/// the rest). Does not add the surrounding quotes.
std::string json_escape(std::string_view text);

}  // namespace causaliot::util
