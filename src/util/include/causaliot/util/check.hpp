// Lightweight runtime-check macros for programming errors.
//
// CAUSALIOT_CHECK fires in all build types: invariant violations in a
// security monitor must never be silently ignored. The macros print the
// failing expression and location, then abort.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace causaliot::util::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg != nullptr ? " — " : "", msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace causaliot::util::detail

#define CAUSALIOT_CHECK(expr)                                              \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::causaliot::util::detail::check_failed(#expr, __FILE__, __LINE__,   \
                                              nullptr);                    \
    }                                                                      \
  } while (false)

#define CAUSALIOT_CHECK_MSG(expr, msg)                                     \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::causaliot::util::detail::check_failed(#expr, __FILE__, __LINE__,   \
                                              (msg));                      \
    }                                                                      \
  } while (false)
