#include "causaliot/util/file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace causaliot::util {

Status write_file_atomic(const std::string& path, std::string_view content) {
  if (path.empty()) {
    return Error::invalid_argument("empty path");
  }
  // Unique per process; two processes targeting the same path still end
  // with one of the two complete documents winning the final rename.
  const std::string temp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Error::io_error("cannot open " + temp + ": " +
                           std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string message =
          "write to " + temp + " failed: " + std::strerror(errno);
      ::close(fd);
      ::unlink(temp.c_str());
      return Error::io_error(message);
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync before rename: otherwise a crash can leave the rename durable
  // but the data not, which is exactly the torn state this exists to
  // prevent.
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(temp.c_str());
    return Error::io_error("cannot sync " + temp);
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    const std::string message =
        "rename " + temp + " -> " + path + " failed: " + std::strerror(errno);
    ::unlink(temp.c_str());
    return Error::io_error(message);
  }
  return Status::ok_status();
}

}  // namespace causaliot::util
