#include "causaliot/util/thread_pool.hpp"

namespace causaliot::util {

ThreadPool::ThreadPool(std::size_t thread_count) {
  const std::size_t count = resolve_thread_count(thread_count);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

namespace detail {

namespace {

// Shared state of one parallel_for call. Helpers submitted to the pool and
// the calling thread all pull indices from `cursor`; the last finisher
// signals `all_done`. shared_ptr-held because helper tasks that were queued
// but never scheduled can still run after the caller returned — they must
// find valid state (and bail immediately: every index is claimed by then,
// so they never touch `fn`, which lives on the caller's stack).
struct LoopState {
  std::size_t end = 0;
  const std::function<void(std::size_t)>* fn = nullptr;

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> abandoned{false};

  std::mutex mutex;
  std::condition_variable all_done;
  std::size_t pending = 0;  // iterations claimed but not yet finished
  std::size_t remaining = 0;  // iterations not yet finished
  std::exception_ptr first_error;

  // Runs iterations until the range is drained or abandoned.
  void drain() {
    while (!abandoned.load(std::memory_order_relaxed)) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) break;
      std::exception_ptr error;
      try {
        (*fn)(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mutex);
      --remaining;
      if (error) {
        if (!first_error) first_error = error;
        abandoned.store(true, std::memory_order_relaxed);
        // Iterations never claimed will not run; account for them so the
        // caller's wait terminates.
        const std::size_t claimed =
            cursor.exchange(end, std::memory_order_relaxed);
        if (claimed < end) remaining -= end - claimed;
      }
      if (remaining == 0) all_done.notify_all();
    }
  }
};

}  // namespace

void parallel_for_impl(ThreadPool* pool, std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& fn) {
  const std::size_t count = end - begin;
  auto state = std::make_shared<LoopState>();
  state->end = count;
  state->fn = &fn;
  state->remaining = count;

  // fn is only dereferenced by threads the caller waits on, but helper
  // *tasks* may outlive this call if they never got scheduled before the
  // range drained — they must touch nothing but the shared state's atomics.
  // Wrap indices so fn sees [begin, end).
  std::function<void(std::size_t)> shifted;
  if (begin != 0) {
    shifted = [&fn, begin](std::size_t i) { fn(begin + i); };
    state->fn = &shifted;
  }

  const std::size_t helpers =
      std::min(count > 0 ? count - 1 : 0, pool->thread_count());
  for (std::size_t h = 0; h < helpers; ++h) {
    pool->enqueue([state] { state->drain(); });
  }

  state->drain();  // the caller participates — see header contract

  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock, [&] { return state->remaining == 0; });
  // remaining == 0 implies every index was claimed and finished, so any
  // late-starting helper sees cursor >= end and exits without touching
  // `fn`/`shifted` (which die with this stack frame). Flag anyway so such
  // helpers take the cheapest exit.
  state->abandoned.store(true, std::memory_order_relaxed);
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace detail

}  // namespace causaliot::util
