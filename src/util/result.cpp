#include "causaliot/util/result.hpp"

namespace causaliot::util {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kIoError: return "io_error";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kFailedPrecondition: return "failed_precondition";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::string out = causaliot::util::to_string(code);
  out += ": ";
  out += message;
  return out;
}

}  // namespace causaliot::util
