#include "causaliot/util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace causaliot::util {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      break;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& items,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(items[i]);
  }
  return out;
}

Result<double> parse_double(std::string_view text) {
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) return Error::parse_error("empty numeric field");
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), value);
  if (ec != std::errc{} || ptr != trimmed.data() + trimmed.size()) {
    return Error::parse_error("invalid double: '" + std::string(trimmed) +
                              "'");
  }
  return value;
}

Result<std::int64_t> parse_int(std::string_view text) {
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) return Error::parse_error("empty integer field");
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), value);
  if (ec != std::errc{} || ptr != trimmed.data() + trimmed.size()) {
    return Error::parse_error("invalid integer: '" + std::string(trimmed) +
                              "'");
  }
  return value;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", static_cast<unsigned char>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace causaliot::util
