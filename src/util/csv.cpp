#include "causaliot/util/csv.hpp"

#include <fstream>

namespace causaliot::util {

Result<CsvRow> parse_csv_line(std::string_view line, char delimiter) {
  CsvRow fields;
  std::string current;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else {
      if (c == '"') {
        if (!current.empty()) {
          return Error::parse_error("quote inside unquoted field");
        }
        in_quotes = true;
      } else if (c == delimiter) {
        fields.push_back(std::move(current));
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    ++i;
  }
  if (in_quotes) return Error::parse_error("unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

std::string format_csv_line(const CsvRow& fields, char delimiter) {
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line.push_back(delimiter);
    const std::string& field = fields[i];
    const bool needs_quoting =
        field.find(delimiter) != std::string::npos ||
        field.find('"') != std::string::npos ||
        field.find('\n') != std::string::npos;
    if (needs_quoting) {
      line.push_back('"');
      for (char c : field) {
        if (c == '"') line.push_back('"');
        line.push_back(c);
      }
      line.push_back('"');
    } else {
      line.append(field);
    }
  }
  return line;
}

Result<std::vector<CsvRow>> read_csv_file(const std::string& path,
                                          bool skip_header, char delimiter) {
  std::ifstream in(path);
  if (!in) return Error::io_error("cannot open " + path);
  std::vector<CsvRow> rows;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (first && skip_header) {
      first = false;
      continue;
    }
    first = false;
    if (line.empty()) continue;
    auto row = parse_csv_line(line, delimiter);
    if (!row.ok()) return row.error();
    rows.push_back(std::move(row).value());
  }
  return rows;
}

Status write_csv_file(const std::string& path, const std::vector<CsvRow>& rows,
                      const CsvRow& header, char delimiter) {
  std::ofstream out(path);
  if (!out) return Error::io_error("cannot open " + path + " for writing");
  if (!header.empty()) out << format_csv_line(header, delimiter) << '\n';
  for (const CsvRow& row : rows) {
    out << format_csv_line(row, delimiter) << '\n';
  }
  if (!out) return Error::io_error("write failed for " + path);
  return Status::ok_status();
}

}  // namespace causaliot::util
