// Anomaly injection framework (§VI-C, §VI-D).
//
// Reproduces the paper's attack-simulation methodology on a held-out test
// event stream: contextual anomalies are spoofed single events inserted at
// random positions (sensor fault / burglar intrusion / remote control /
// malicious automation rule), collective anomalies are a contextual head
// followed by a chain of events that *legitimately follow* the ground-truth
// interaction executions (burglar wandering / actuator manipulation /
// chained automation rules), with chain length bounded by k_max.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "causaliot/preprocess/series.hpp"
#include "causaliot/sim/automation.hpp"
#include "causaliot/sim/ground_truth.hpp"
#include "causaliot/sim/physical.hpp"
#include "causaliot/sim/profile.hpp"
#include "causaliot/util/rng.hpp"

namespace causaliot::inject {

enum class ContextualCase : std::uint8_t {
  kSensorFault,        // fluctuating brightness level
  kBurglarIntrusion,   // unexpected presence / contact-open events
  kRemoteControl,      // ghost actuator operations (flipped states)
  kMaliciousRule,      // hidden rules firing conditional transitions
};

enum class CollectiveCase : std::uint8_t {
  kBurglarWandering,       // presence/contact trail through the house
  kActuatorManipulation,   // actuator chain mimicking a user activity
  kChainedAutomation,      // triggered automation chain (incl. physical)
};

std::string_view to_string(ContextualCase c);
std::string_view to_string(CollectiveCase c);

/// A test stream with injected anomalies. chain_id[i] == -1 marks a benign
/// base event; chain_id[i] >= 0 assigns event i to that anomaly chain
/// (contextual injections are chains of length 1).
struct InjectionResult {
  std::vector<preprocess::BinaryEvent> events;
  std::vector<std::int32_t> chain_id;
  std::vector<std::uint8_t> initial_state;
  std::size_t injected_count = 0;
  std::size_t chain_count = 0;
  /// Number of injected events per chain id.
  std::vector<std::size_t> chain_lengths;

  bool is_injected(std::size_t index) const { return chain_id[index] >= 0; }
};

struct ContextualConfig {
  ContextualCase anomaly_case = ContextualCase::kRemoteControl;
  /// Injection positions for cases 1-3 (the paper uses 5,000).
  std::size_t injection_count = 5000;
  /// Hidden rules and the event budget for the malicious-rule case
  /// (the paper injects 2,000 malicious events).
  std::size_t malicious_rule_count = 12;
  std::size_t malicious_event_cap = 2000;
  std::uint64_t seed = 1;
};

struct CollectiveConfig {
  CollectiveCase anomaly_case = CollectiveCase::kBurglarWandering;
  /// Number of anomaly chains (the paper uses 1,000).
  std::size_t chain_count = 1000;
  /// Maximum chain length; actual lengths are uniform in [2, k_max].
  std::size_t k_max = 3;
  std::uint64_t seed = 1;
};

class AnomalyInjector {
 public:
  /// `profile` supplies the installed rules and physical wiring used to
  /// propagate chained-automation anomalies; `ground_truth` supplies the
  /// interaction fan-out for wandering/actuator chains.
  AnomalyInjector(const telemetry::DeviceCatalog& catalog,
                  const sim::HomeProfile& profile,
                  const sim::GroundTruth& ground_truth);

  /// Injects single-event contextual anomalies into `base`.
  InjectionResult inject_contextual(
      std::span<const preprocess::BinaryEvent> base,
      std::vector<std::uint8_t> initial_state,
      const ContextualConfig& config) const;

  /// Injects contextual heads plus interaction-following chains.
  InjectionResult inject_collective(
      std::span<const preprocess::BinaryEvent> base,
      std::vector<std::uint8_t> initial_state,
      const CollectiveConfig& config) const;

 private:
  struct SpoofedEvent {
    telemetry::DeviceId device;
    std::uint8_t state;
  };

  /// Picks the contextual head event for a case given the current system
  /// state and wall-clock time; returns false when no suitable device
  /// exists right now.
  bool pick_head(ContextualCase anomaly_case,
                 const std::vector<std::uint8_t>& state, double now,
                 util::Rng& rng, SpoofedEvent* out) const;

  /// Physically-expected binary state of a brightness sensor given the
  /// current (binary) device states and clock time; nullopt when the
  /// expectation is ambiguous (weather-dependent borderline).
  std::optional<std::uint8_t> expected_brightness(
      telemetry::DeviceId sensor, const std::vector<std::uint8_t>& state,
      double now) const;

  /// Extends `chain` with followers per the collective case, mutating
  /// `state` as events are appended. Stops at `target_length` events total
  /// or when no follower is available.
  void propagate_chain(CollectiveCase anomaly_case,
                       std::vector<SpoofedEvent>& chain,
                       std::vector<std::uint8_t>& state,
                       std::size_t target_length, util::Rng& rng) const;

  const telemetry::DeviceCatalog& catalog_;
  const sim::GroundTruth& ground_truth_;
  sim::AutomationEngine engine_;
  sim::BrightnessModel physical_;
  double ambient_high_threshold_;
  std::vector<std::pair<telemetry::DeviceId, telemetry::DeviceId>>
      physical_pairs_;
  std::vector<telemetry::DeviceId> brightness_devices_;
  std::vector<telemetry::DeviceId> presence_contact_devices_;
  std::vector<telemetry::DeviceId> actuator_devices_;
};

}  // namespace causaliot::inject
