#include "causaliot/inject/injector.hpp"

#include <algorithm>

#include "causaliot/util/check.hpp"

namespace causaliot::inject {

namespace {

constexpr double kInjectGap = 0.001;  // injected-event timestamp spacing

bool is_presence_or_contact(telemetry::AttributeType type) {
  return type == telemetry::AttributeType::kPresenceSensor ||
         type == telemetry::AttributeType::kContactSensor;
}

}  // namespace

std::string_view to_string(ContextualCase c) {
  switch (c) {
    case ContextualCase::kSensorFault: return "sensor_fault";
    case ContextualCase::kBurglarIntrusion: return "burglar_intrusion";
    case ContextualCase::kRemoteControl: return "remote_control";
    case ContextualCase::kMaliciousRule: return "malicious_rule";
  }
  return "?";
}

std::string_view to_string(CollectiveCase c) {
  switch (c) {
    case CollectiveCase::kBurglarWandering: return "burglar_wandering";
    case CollectiveCase::kActuatorManipulation: return "actuator_manipulation";
    case CollectiveCase::kChainedAutomation: return "chained_automation";
  }
  return "?";
}

AnomalyInjector::AnomalyInjector(const telemetry::DeviceCatalog& catalog,
                                 const sim::HomeProfile& profile,
                                 const sim::GroundTruth& ground_truth)
    : catalog_(catalog),
      ground_truth_(ground_truth),
      engine_(catalog, profile.rules, profile.ambient_high_threshold),
      physical_(profile, catalog),
      ambient_high_threshold_(profile.ambient_high_threshold) {
  physical_pairs_ = physical_.physical_pairs();
  for (telemetry::DeviceId id = 0; id < catalog_.size(); ++id) {
    const telemetry::AttributeType type = catalog_.info(id).attribute;
    if (type == telemetry::AttributeType::kBrightnessSensor) {
      brightness_devices_.push_back(id);
    }
    if (is_presence_or_contact(type)) {
      presence_contact_devices_.push_back(id);
    }
    // Remote control targets user-facing actuators (switches/dimmers);
    // power meters report appliance cycles and are not directly
    // operable over the network.
    if (type == telemetry::AttributeType::kSwitch ||
        type == telemetry::AttributeType::kDimmer ||
        type == telemetry::AttributeType::kGenericActuator) {
      actuator_devices_.push_back(id);
    }
  }
}

std::optional<std::uint8_t> AnomalyInjector::expected_brightness(
    telemetry::DeviceId sensor, const std::vector<std::uint8_t>& state,
    double now) const {
  const std::size_t room = physical_.room_index(catalog_.info(sensor).room);
  // Binary states stand in for raw values: emitters need raw > 0, gates
  // raw > 0.5, both satisfied by 1.0. Weather is unknown to the attacker
  // model; use a mid value and require a clear margin.
  std::vector<double> pseudo_raw(state.begin(), state.end());
  const double lumens = physical_.level(room, now, /*weather=*/0.7,
                                        pseudo_raw);
  if (lumens > 1.8 * ambient_high_threshold_) return 1;
  if (lumens < 0.4 * ambient_high_threshold_) return 0;
  return std::nullopt;
}

bool AnomalyInjector::pick_head(ContextualCase anomaly_case,
                                const std::vector<std::uint8_t>& state,
                                double now, util::Rng& rng,
                                SpoofedEvent* out) const {
  switch (anomaly_case) {
    case ContextualCase::kSensorFault: {
      // A faulty reading contradicts the physical reality: High while the
      // room is clearly dark, or Low while lamps are on / full daylight.
      std::vector<telemetry::DeviceId> shuffled = brightness_devices_;
      rng.shuffle(shuffled);
      for (telemetry::DeviceId device : shuffled) {
        const auto expected = expected_brightness(device, state, now);
        if (!expected.has_value()) continue;
        if (state[device] != *expected) continue;  // already contradicting
        *out = {device, static_cast<std::uint8_t>(1 - *expected)};
        return true;
      }
      return false;
    }
    case ContextualCase::kBurglarIntrusion: {
      // Unexpected presence-on / contact-open events only.
      std::vector<telemetry::DeviceId> idle;
      for (telemetry::DeviceId id : presence_contact_devices_) {
        if (state[id] == 0) idle.push_back(id);
      }
      if (idle.empty()) return false;
      *out = {idle[rng.uniform(idle.size())], 1};
      return true;
    }
    case ContextualCase::kRemoteControl: {
      if (actuator_devices_.empty()) return false;
      const telemetry::DeviceId device =
          actuator_devices_[rng.uniform(actuator_devices_.size())];
      *out = {device, static_cast<std::uint8_t>(1 - state[device])};
      return true;
    }
    case ContextualCase::kMaliciousRule:
      CAUSALIOT_CHECK_MSG(false, "malicious rules use the traversal path");
      return false;
  }
  return false;
}

InjectionResult AnomalyInjector::inject_contextual(
    std::span<const preprocess::BinaryEvent> base,
    std::vector<std::uint8_t> initial_state,
    const ContextualConfig& config) const {
  CAUSALIOT_CHECK(initial_state.size() == catalog_.size());
  util::Rng rng(config.seed);
  InjectionResult result;
  result.initial_state = initial_state;
  result.events.reserve(base.size() + config.injection_count);
  result.chain_id.reserve(base.size() + config.injection_count);

  std::vector<std::uint8_t> state = std::move(initial_state);

  if (config.anomaly_case == ContextualCase::kMaliciousRule) {
    // Hidden rules: random trigger -> actuator-action pairs that are not
    // installed automations. Their conditional executions are injected by
    // traversing the stream, mirroring §VI-A's injection procedure.
    struct HiddenRule {
      telemetry::DeviceId trigger;
      std::uint8_t trigger_state;
      telemetry::DeviceId action;
      std::uint8_t action_state;
    };
    std::vector<HiddenRule> rules;
    // The attacker plants triggers on devices that transition often, so
    // the hidden rules actually execute (the paper injects 2,000 events).
    std::vector<double> flip_weight(catalog_.size(), 0.0);
    {
      std::vector<std::uint8_t> track = state;
      for (const preprocess::BinaryEvent& event : base) {
        if (track[event.device] != event.state) {
          flip_weight[event.device] += 1.0;
        }
        track[event.device] = event.state;
      }
    }
    std::size_t attempts = 0;
    while (rules.size() < config.malicious_rule_count && attempts < 1000) {
      ++attempts;
      const auto trigger =
          static_cast<telemetry::DeviceId>(rng.weighted_index(flip_weight));
      const telemetry::DeviceId action =
          actuator_devices_[rng.uniform(actuator_devices_.size())];
      if (trigger == action) continue;
      bool installed = false;
      for (std::size_t i = 0; i < engine_.rules().size(); ++i) {
        if (engine_.trigger_device(i) == trigger &&
            engine_.action_device(i) == action) {
          installed = true;
          break;
        }
      }
      if (installed) continue;
      rules.push_back({trigger, static_cast<std::uint8_t>(rng.uniform(2)),
                       action, static_cast<std::uint8_t>(rng.uniform(2))});
    }

    for (const preprocess::BinaryEvent& event : base) {
      const bool transitioned = state[event.device] != event.state;
      state[event.device] = event.state;
      result.events.push_back(event);
      result.chain_id.push_back(-1);
      if (!transitioned ||
          result.injected_count >= config.malicious_event_cap) {
        continue;
      }
      for (const HiddenRule& rule : rules) {
        if (rule.trigger != event.device ||
            rule.trigger_state != event.state ||
            state[rule.action] == rule.action_state) {
          continue;
        }
        preprocess::BinaryEvent spoofed{rule.action, rule.action_state,
                                        event.timestamp + kInjectGap};
        state[rule.action] = rule.action_state;
        result.events.push_back(spoofed);
        result.chain_id.push_back(static_cast<std::int32_t>(
            result.chain_count));
        result.chain_lengths.push_back(1);
        ++result.chain_count;
        ++result.injected_count;
        break;  // one hidden-rule firing per position
      }
    }
    return result;
  }

  // Cases 1-3: spoofed events at random positions. Sensor anomalies are
  // transient in the physical world — a PIR ghost trigger resets on its
  // idle timeout and a glitched brightness reading is corrected by the
  // next periodic report — so for sensor devices a benign "return to
  // truth" event follows a couple of positions later. Actuator ghosts
  // persist (the covertly switched device really is in the new state).
  const std::size_t count = std::min(config.injection_count, base.size());
  const std::vector<std::size_t> positions =
      rng.sample_indices(base.size(), count);
  struct PendingReset {
    std::size_t at_index;
    telemetry::DeviceId device;
    std::uint8_t state;
  };
  std::vector<PendingReset> resets;
  std::size_t next_position = 0;
  double last_ts = 0.0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    // Flush sensor resets due at this position.
    for (std::size_t r = 0; r < resets.size();) {
      if (resets[r].at_index <= i) {
        if (state[resets[r].device] != resets[r].state) {
          result.events.push_back(
              {resets[r].device, resets[r].state, last_ts + kInjectGap});
          result.chain_id.push_back(-1);  // sensor physics, not an attack
          state[resets[r].device] = resets[r].state;
        }
        resets[r] = resets.back();
        resets.pop_back();
      } else {
        ++r;
      }
    }
    if (next_position < positions.size() && positions[next_position] == i) {
      ++next_position;
      SpoofedEvent spoofed{};
      const double now = base[i].timestamp;
      if (pick_head(config.anomaly_case, state, now, rng, &spoofed)) {
        result.events.push_back(
            {spoofed.device, spoofed.state, last_ts + kInjectGap});
        result.chain_id.push_back(
            static_cast<std::int32_t>(result.chain_count));
        result.chain_lengths.push_back(1);
        ++result.chain_count;
        ++result.injected_count;
        const std::uint8_t previous = state[spoofed.device];
        state[spoofed.device] = spoofed.state;
        if (config.anomaly_case == ContextualCase::kSensorFault ||
            config.anomaly_case == ContextualCase::kBurglarIntrusion) {
          resets.push_back(
              {i + 1 + rng.uniform(2), spoofed.device, previous});
        }
      }
    }
    state[base[i].device] = base[i].state;
    result.events.push_back(base[i]);
    result.chain_id.push_back(-1);
    last_ts = base[i].timestamp;
  }
  return result;
}

void AnomalyInjector::propagate_chain(CollectiveCase anomaly_case,
                                      std::vector<SpoofedEvent>& chain,
                                      std::vector<std::uint8_t>& state,
                                      std::size_t target_length,
                                      util::Rng& rng) const {
  telemetry::DeviceId last_entered = chain.back().device;  // wandering only
  while (chain.size() < target_length) {
    const SpoofedEvent& last = chain.back();
    SpoofedEvent next{telemetry::kInvalidDevice, 0};

    switch (anomaly_case) {
      case CollectiveCase::kBurglarWandering: {
        if (last.state == 1) {
          // The burglar leaves the room/door he just triggered — the
          // off-event follows the device's autocorrelation interaction.
          next = {last.device, 0};
        } else {
          // Move on: an interaction child of the previously-entered
          // sensor, restricted to presence/contact devices currently idle.
          std::vector<telemetry::DeviceId> candidates;
          for (telemetry::DeviceId child :
               ground_truth_.children_of(last_entered)) {
            if (is_presence_or_contact(catalog_.info(child).attribute) &&
                state[child] == 0) {
              candidates.push_back(child);
            }
          }
          if (candidates.empty()) return;
          next = {candidates[rng.uniform(candidates.size())], 1};
          last_entered = next.device;
        }
        break;
      }

      case CollectiveCase::kActuatorManipulation: {
        // Follow any ground-truth interaction child with a state flip —
        // the camouflage pattern of a user activity.
        std::vector<telemetry::DeviceId> candidates =
            ground_truth_.children_of(last.device);
        std::erase_if(candidates, [&](telemetry::DeviceId child) {
          return catalog_.info(child).attribute ==
                 telemetry::AttributeType::kPresenceSensor;
        });
        if (candidates.empty()) return;
        const telemetry::DeviceId child =
            candidates[rng.uniform(candidates.size())];
        next = {child, static_cast<std::uint8_t>(1 - state[child])};
        break;
      }

      case CollectiveCase::kChainedAutomation: {
        // Platform semantics: installed rules triggered by the last event,
        // plus the physical brightness response of emitters.
        std::vector<SpoofedEvent> candidates;
        for (std::size_t i = 0; i < engine_.rules().size(); ++i) {
          if (engine_.trigger_device(i) == last.device &&
              engine_.rules()[i].trigger_state == last.state &&
              state[engine_.action_device(i)] != engine_.action_state(i)) {
            candidates.push_back(
                {engine_.action_device(i), engine_.action_state(i)});
          }
        }
        for (const auto& [emitter, sensor] : physical_pairs_) {
          if (emitter == last.device && state[sensor] != last.state) {
            candidates.push_back({sensor, last.state});
          }
        }
        if (candidates.empty()) return;
        next = candidates[rng.uniform(candidates.size())];
        break;
      }
    }

    CAUSALIOT_CHECK(next.device != telemetry::kInvalidDevice);
    state[next.device] = next.state;
    chain.push_back(next);
  }
}

InjectionResult AnomalyInjector::inject_collective(
    std::span<const preprocess::BinaryEvent> base,
    std::vector<std::uint8_t> initial_state,
    const CollectiveConfig& config) const {
  CAUSALIOT_CHECK(initial_state.size() == catalog_.size());
  CAUSALIOT_CHECK_MSG(config.k_max >= 2, "collective chains need k_max >= 2");
  util::Rng rng(config.seed);
  InjectionResult result;
  result.initial_state = initial_state;

  // Sample chain positions with enough spacing that chains never overlap.
  const std::size_t spacing = 2 * config.k_max + 2;
  std::vector<std::size_t> positions = rng.sample_indices(
      base.size(), std::min(config.chain_count * 2, base.size()));
  std::vector<std::size_t> spaced;
  for (std::size_t p : positions) {
    if (spaced.empty() || p >= spaced.back() + spacing) spaced.push_back(p);
    if (spaced.size() == config.chain_count) break;
  }

  std::vector<std::uint8_t> state = std::move(initial_state);
  std::size_t next_position = 0;
  double last_ts = 0.0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (next_position < spaced.size() && spaced[next_position] <= i) {
      ++next_position;
      // Contextual head for this case.
      SpoofedEvent head{};
      bool have_head = false;
      switch (config.anomaly_case) {
        case CollectiveCase::kBurglarWandering:
          have_head = pick_head(ContextualCase::kBurglarIntrusion, state,
                                base[i].timestamp, rng, &head);
          break;
        case CollectiveCase::kActuatorManipulation:
          have_head = pick_head(ContextualCase::kRemoteControl, state,
                                base[i].timestamp, rng, &head);
          break;
        case CollectiveCase::kChainedAutomation: {
          // The attacker *selectively* targets a trigger whose automation
          // chain can actually run (§VI-D): candidate heads are scored by
          // a look-ahead propagation and the deepest chain wins.
          std::vector<SpoofedEvent> heads;
          for (std::size_t r = 0; r < engine_.rules().size(); ++r) {
            const telemetry::DeviceId trigger = engine_.trigger_device(r);
            const std::uint8_t trigger_state =
                engine_.rules()[r].trigger_state;
            if (state[trigger] != trigger_state &&
                state[engine_.action_device(r)] != engine_.action_state(r)) {
              heads.push_back({trigger, trigger_state});
            }
          }
          rng.shuffle(heads);
          std::size_t best_depth = 0;
          for (const SpoofedEvent& candidate : heads) {
            std::vector<std::uint8_t> scratch = state;
            std::vector<SpoofedEvent> probe{candidate};
            scratch[candidate.device] = candidate.state;
            util::Rng probe_rng = rng.split();
            propagate_chain(CollectiveCase::kChainedAutomation, probe,
                            scratch, config.k_max, probe_rng);
            if (probe.size() > best_depth) {
              best_depth = probe.size();
              head = candidate;
              have_head = true;
              if (best_depth >= config.k_max) break;
            }
          }
          break;
        }
      }
      if (have_head) {
        std::vector<SpoofedEvent> chain{head};
        state[head.device] = head.state;
        const std::size_t target = static_cast<std::size_t>(
            rng.uniform_int(2, static_cast<std::int64_t>(config.k_max)));
        propagate_chain(config.anomaly_case, chain, state, target, rng);
        if (chain.size() >= 2) {
          for (std::size_t e = 0; e < chain.size(); ++e) {
            result.events.push_back(
                {chain[e].device, chain[e].state,
                 last_ts + kInjectGap * static_cast<double>(e + 1)});
            result.chain_id.push_back(
                static_cast<std::int32_t>(result.chain_count));
          }
          result.chain_lengths.push_back(chain.size());
          ++result.chain_count;
          result.injected_count += chain.size();
        } else {
          // Could not build a chain here; roll back the head.
          state[head.device] = static_cast<std::uint8_t>(1 - head.state);
        }
      }
    }
    state[base[i].device] = base[i].state;
    result.events.push_back(base[i]);
    result.chain_id.push_back(-1);
    last_ts = base[i].timestamp;
  }
  return result;
}

}  // namespace causaliot::inject
