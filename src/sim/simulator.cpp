#include "causaliot/sim/simulator.hpp"

#include <algorithm>
#include <cmath>

namespace causaliot::sim {

namespace {

telemetry::DeviceCatalog build_catalog(const HomeProfile& profile) {
  telemetry::DeviceCatalog catalog;
  for (const telemetry::DeviceInfo& info : profile.devices) {
    auto id = catalog.add(info);
    CAUSALIOT_CHECK_MSG(id.ok(), "invalid device in profile");
  }
  return catalog;
}

}  // namespace

struct SmartHomeSimulator::QueueItem {
  enum class Kind : std::uint8_t {
    kActivityStart,
    kMove,
    kOperate,
    kPeriodic,
    kReactiveReport,
    kAutomationFire,
    kDuplicate,
    kAutoOff,
    kPresenceTimeout,
    kSensorBlip,
    kWeatherTick,
  };

  double time = 0.0;
  std::uint64_t seq = 0;  // FIFO tie-break for equal times
  Kind kind = Kind::kActivityStart;
  std::size_t room = 0;
  telemetry::DeviceId device = telemetry::kInvalidDevice;
  double value = 0.0;
  std::int64_t instance = -1;

  // Min-heap ordering for std::push_heap/pop_heap (which build max-heaps).
  friend bool operator<(const QueueItem& a, const QueueItem& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

SmartHomeSimulator::~SmartHomeSimulator() = default;

SmartHomeSimulator::SmartHomeSimulator(HomeProfile profile,
                                       std::uint64_t seed)
    : profile_(std::move(profile)),
      rng_(seed),
      catalog_(build_catalog(profile_)),
      physical_(profile_, catalog_),
      engine_(catalog_, profile_.rules, profile_.ambient_high_threshold) {
  const std::size_t n = catalog_.size();
  raw_state_.assign(n, 0.0);
  binary_state_.assign(n, 0);

  // Map each room to its presence sensor (if deployed).
  room_presence_.assign(profile_.rooms.size(), std::nullopt);
  for (telemetry::DeviceId id = 0; id < n; ++id) {
    const telemetry::DeviceInfo& info = catalog_.info(id);
    if (info.attribute != telemetry::AttributeType::kPresenceSensor) continue;
    const auto it =
        std::find(profile_.rooms.begin(), profile_.rooms.end(), info.room);
    if (it != profile_.rooms.end()) {
      room_presence_[static_cast<std::size_t>(it - profile_.rooms.begin())] =
          id;
    }
  }

  // Validate scripts early: every referenced room/device must exist.
  for (const ActivityScript& script : profile_.activities) {
    for (const ActivityStep& step : script.steps) {
      if (step.kind == StepKind::kMoveTo) {
        physical_.room_index(step.target);  // CHECKs on unknown room
      } else {
        CAUSALIOT_CHECK_MSG(catalog_.find(step.target).ok(),
                            "script references unknown device");
      }
    }
  }

  room_weather_.assign(profile_.rooms.size(), 1.0);
  last_room_motion_.assign(profile_.rooms.size(), -1e18);

  auto_off_after_.assign(n, 0.0);
  auto_off_jitter_.assign(n, 0.0);
  for (const AutoOff& spec : profile_.auto_offs) {
    auto id = catalog_.find(spec.device);
    CAUSALIOT_CHECK_MSG(id.ok(), "auto-off references unknown device");
    auto_off_after_[id.value()] = spec.after_s;
    auto_off_jitter_[id.value()] = spec.jitter_s;
  }

  // Resident starts asleep in the bedroom (or the first room).
  const auto bedroom =
      std::find(profile_.rooms.begin(), profile_.rooms.end(), "bedroom");
  current_room_ = bedroom != profile_.rooms.end()
                      ? static_cast<std::size_t>(bedroom -
                                                 profile_.rooms.begin())
                      : 0;

  result_.log = telemetry::EventLog(catalog_);
}

void SmartHomeSimulator::schedule(QueueItem item) {
  item.seq = queue_seq_++;
  queue_.push_back(item);
  std::push_heap(queue_.begin(), queue_.end());
}

void SmartHomeSimulator::record_motion(std::size_t room, double time,
                                       std::int64_t instance) {
  last_room_motion_[room] = time;
  const auto pe = room_presence_[room];
  if (!pe.has_value()) return;
  if (binary_state_[*pe] == 0) {
    emit(time, *pe, 1.0, instance, false);
    ++result_.user_events;
    QueueItem timeout;
    timeout.time = time + profile_.presence_timeout_s +
                   rng_.uniform_real(0.0, profile_.presence_timeout_jitter_s);
    timeout.kind = QueueItem::Kind::kPresenceTimeout;
    timeout.room = room;
    schedule(timeout);
  }
}

void SmartHomeSimulator::record_user_pair(std::int64_t instance,
                                          telemetry::DeviceId device) {
  // Pairs are counted over a sliding window of recent user-driven events.
  // This is the *oracle* relation ("users operate these two devices
  // sequentially in daily life", §VI-A): like the paper's human labeller
  // it reads the behaviour stream as a whole, across activity boundaries
  // (finish one routine, start the next). The evaluation later intersects
  // it with pairs that actually recur as directly neighbouring events
  // (core::refine_ground_truth).
  constexpr std::size_t kPairWindow = 8;
  for (telemetry::DeviceId cause : pair_history_) {
    if (cause == device) continue;
    // A human labeller rejects brightness-to-brightness pairs across
    // rooms: separate rooms are separate physical channels.
    if (catalog_.info(cause).attribute ==
            telemetry::AttributeType::kBrightnessSensor &&
        catalog_.info(device).attribute ==
            telemetry::AttributeType::kBrightnessSensor &&
        catalog_.info(cause).room != catalog_.info(device).room) {
      continue;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(cause) << 32) | device;
    PairStats& stats = user_pairs_[key];
    if (stats.count == 0) {
      const bool cause_is_move =
          catalog_.info(cause).attribute ==
          telemetry::AttributeType::kPresenceSensor;
      const bool child_is_move =
          catalog_.info(device).attribute ==
          telemetry::AttributeType::kPresenceSensor;
      if (cause_is_move && child_is_move) {
        stats.category = ActivityCategory::kMoveAfterMove;
      } else if (cause_is_move) {
        stats.category = ActivityCategory::kUseAfterMove;
      } else if (child_is_move) {
        stats.category = ActivityCategory::kMoveAfterUse;
      } else {
        stats.category = ActivityCategory::kUseAfterUse;
      }
    }
    ++stats.count;
  }
  pair_history_.insert(pair_history_.begin(), device);
  if (pair_history_.size() > kPairWindow) pair_history_.resize(kPairWindow);
  last_pair_instance_ = instance;
}

void SmartHomeSimulator::emit(double time, telemetry::DeviceId device,
                              double value, std::int64_t activity_instance,
                              bool is_glitch) {
  result_.log.append({time, device, value});
  if (activity_instance >= 0) record_user_pair(activity_instance, device);
  if (is_glitch) {
    // Transient spike shorter than the platform's debounce window: logged,
    // but no durable state change and no automation reaction.
    ++result_.extreme_events;
    return;
  }

  raw_state_[device] = value;
  const std::uint8_t new_binary = engine_.binary_state(device, value);
  if (new_binary == binary_state_[device]) return;
  binary_state_[device] = new_binary;

  for (const AutomationEngine::Firing& firing :
       engine_.on_state_change(device, new_binary, time, binary_state_)) {
    QueueItem item;
    item.time = firing.fire_at_s;
    item.kind = QueueItem::Kind::kAutomationFire;
    item.device = firing.action_device;
    item.value = firing.action_value;
    schedule(item);
  }

  // Emitter/gate changes propagate through the physical channel: the
  // room's brightness sensor reacts shortly after.
  if (const auto room = physical_.affected_room(device)) {
    if (const auto sensor = physical_.sensor_in_room(*room)) {
      QueueItem item;
      item.time = time + rng_.uniform_real(1.0, 3.0);
      item.kind = QueueItem::Kind::kReactiveReport;
      item.device = *sensor;
      // The sensed brightness change belongs to the same user activity as
      // the device change that caused it — the paper's manual labelling
      // reads such neighbouring events as one sequence.
      item.instance = activity_instance;
      schedule(item);
    }
  }

  if (new_binary == 1 && auto_off_after_[device] > 0.0) {
    QueueItem item;
    item.time = time + auto_off_after_[device] +
                rng_.uniform_real(0.0, auto_off_jitter_[device]);
    item.kind = QueueItem::Kind::kAutoOff;
    item.device = device;
    schedule(item);
  }

  if (rng_.bernoulli(profile_.noise.duplicate_report_probability)) {
    QueueItem item;
    item.time = time + rng_.uniform_real(2.0, 10.0);
    item.kind = QueueItem::Kind::kDuplicate;
    item.device = device;
    schedule(item);
  }
}

void SmartHomeSimulator::start_activity(double now) {
  const double hour = std::fmod(now, 86400.0) / 3600.0;
  if (hour < profile_.wake_hour || hour >= profile_.sleep_hour) {
    // Asleep: resume at the next wake time (with jitter).
    const double day = std::floor(now / 86400.0);
    const double next_day = hour >= profile_.sleep_hour ? day + 1.0 : day;
    QueueItem item;
    item.time = next_day * 86400.0 + profile_.wake_hour * 3600.0 +
                rng_.uniform_real(0.0, 1800.0);
    item.kind = QueueItem::Kind::kActivityStart;
    schedule(item);
    return;
  }

  std::vector<double> weights(profile_.activities.size(), 0.0);
  bool any = false;
  for (std::size_t i = 0; i < profile_.activities.size(); ++i) {
    const ActivityScript& script = profile_.activities[i];
    if (hour >= script.earliest_hour && hour < script.latest_hour) {
      weights[i] = script.weight;
      any = any || script.weight > 0.0;
    }
  }
  double cursor = now;
  if (any) {
    const ActivityScript& script =
        profile_.activities[rng_.weighted_index(weights)];
    const std::int64_t instance = activity_counter_++;
    for (const ActivityStep& step : script.steps) {
      if (!rng_.bernoulli(step.probability)) continue;
      cursor += rng_.uniform_real(step.min_delay_s, step.max_delay_s);
      QueueItem item;
      item.time = cursor;
      item.instance = instance;
      if (step.kind == StepKind::kMoveTo) {
        item.kind = QueueItem::Kind::kMove;
        item.room = physical_.room_index(step.target);
      } else {
        item.kind = QueueItem::Kind::kOperate;
        item.device = catalog_.find(step.target).value();
        item.value = step.value;
      }
      schedule(item);
    }
  }
  QueueItem next;
  next.time = cursor + rng_.exponential(1.0 / profile_.mean_activity_gap_s);
  next.kind = QueueItem::Kind::kActivityStart;
  schedule(next);
}

SimulationResult SmartHomeSimulator::run() {
  CAUSALIOT_CHECK_MSG(!ran_, "run() may only be called once");
  ran_ = true;

  const double end = profile_.days * 86400.0;

  // Initial schedule: weather updates, staggered periodic ambient reports,
  // the resident's first morning, and the sleeping resident's presence.
  {
    QueueItem weather;
    weather.time = 0.0;
    weather.kind = QueueItem::Kind::kWeatherTick;
    schedule(weather);
  }
  for (telemetry::DeviceId id = 0; id < catalog_.size(); ++id) {
    if (catalog_.info(id).value_type ==
        telemetry::ValueType::kAmbientNumeric) {
      QueueItem item;
      item.time = rng_.uniform_real(0.0, profile_.noise.periodic_report_s);
      item.kind = QueueItem::Kind::kPeriodic;
      item.device = id;
      schedule(item);
    }
  }
  if (profile_.noise.presence_blip_per_hour > 0.0) {
    for (std::size_t room = 0; room < profile_.rooms.size(); ++room) {
      if (!room_presence_[room].has_value()) continue;
      QueueItem blip;
      blip.time =
          rng_.exponential(profile_.noise.presence_blip_per_hour / 3600.0);
      blip.kind = QueueItem::Kind::kSensorBlip;
      blip.room = room;
      schedule(blip);
    }
  }
  {
    QueueItem first;
    first.time = profile_.wake_hour * 3600.0 + rng_.uniform_real(0.0, 1800.0);
    first.kind = QueueItem::Kind::kActivityStart;
    schedule(first);
  }

  while (!queue_.empty()) {
    std::pop_heap(queue_.begin(), queue_.end());
    const QueueItem item = queue_.back();
    queue_.pop_back();
    if (item.time > end) continue;  // drop post-horizon items, drain rest

    switch (item.kind) {
      case QueueItem::Kind::kActivityStart:
        start_activity(item.time);
        break;

      case QueueItem::Kind::kMove: {
        if (item.room == current_room_) break;
        current_room_ = item.room;
        record_motion(item.room, item.time + profile_.walk_seconds,
                      item.instance);
        break;
      }

      case QueueItem::Kind::kOperate:
        // Operating a device is motion in the current room.
        record_motion(current_room_, item.time - 0.5, item.instance);
        emit(item.time, item.device, item.value, item.instance, false);
        ++result_.user_events;
        break;

      case QueueItem::Kind::kSensorBlip: {
        // Spurious PIR trigger: the sensor fires with nobody there and the
        // idle timeout resets it later.
        const auto pe = room_presence_[item.room];
        if (pe.has_value() && binary_state_[*pe] == 0) {
          emit(item.time, *pe, 1.0, -1, false);
          QueueItem timeout;
          timeout.time = item.time + profile_.presence_timeout_s +
                         rng_.uniform_real(
                             0.0, profile_.presence_timeout_jitter_s);
          timeout.kind = QueueItem::Kind::kPresenceTimeout;
          timeout.room = item.room;
          schedule(timeout);
        }
        QueueItem next;
        next.time = item.time +
                    rng_.exponential(profile_.noise.presence_blip_per_hour /
                                     3600.0);
        next.kind = QueueItem::Kind::kSensorBlip;
        next.room = item.room;
        schedule(next);
        break;
      }

      case QueueItem::Kind::kPresenceTimeout: {
        const auto pe = room_presence_[item.room];
        if (!pe.has_value() || binary_state_[*pe] == 0) break;
        const double idle = item.time - last_room_motion_[item.room];
        if (idle + 1e-9 >= profile_.presence_timeout_s) {
          // No motion for a full timeout window: the PIR resets.
          emit(item.time, *pe, 0.0, -1, false);
          ++result_.user_events;
        } else {
          QueueItem retry;
          retry.time = last_room_motion_[item.room] +
                       profile_.presence_timeout_s +
                       rng_.uniform_real(0.0,
                                         profile_.presence_timeout_jitter_s);
          retry.kind = QueueItem::Kind::kPresenceTimeout;
          retry.room = item.room;
          schedule(retry);
        }
        break;
      }

      case QueueItem::Kind::kPeriodic:
      case QueueItem::Kind::kReactiveReport: {
        const std::size_t room =
            physical_.room_index(catalog_.info(item.device).room);
        const bool glitch =
            item.kind == QueueItem::Kind::kPeriodic &&
            rng_.bernoulli(profile_.noise.extreme_probability);
        const double reading =
            glitch ? profile_.noise.extreme_magnitude
                   : std::max(0.0,
                              physical_.level(room, item.time,
                                              weather_ * room_weather_[room],
                                              raw_state_) +
                                       rng_.normal(0.0, profile_.noise
                                                            .ambient_noise_stddev));
        emit(item.time, item.device, reading,
             item.kind == QueueItem::Kind::kReactiveReport ? item.instance
                                                           : -1,
             glitch);
        if (item.kind == QueueItem::Kind::kPeriodic) {
          ++result_.periodic_events;
          QueueItem next;
          next.time = item.time + profile_.noise.periodic_report_s +
                      rng_.uniform_real(0.0, profile_.noise.report_jitter_s);
          next.kind = QueueItem::Kind::kPeriodic;
          next.device = item.device;
          schedule(next);
        } else {
          ++result_.reactive_sensor_events;
        }
        break;
      }

      case QueueItem::Kind::kAutomationFire:
        emit(item.time, item.device, item.value, -1, false);
        ++result_.automation_events;
        break;

      case QueueItem::Kind::kAutoOff:
        // End of the appliance's duty cycle — only if still running (a
        // user/script/rule may have turned it off already).
        if (binary_state_[item.device] == 1) {
          emit(item.time, item.device, 0.0, -1, false);
          ++result_.auto_off_events;
        }
        break;

      case QueueItem::Kind::kDuplicate:
        // Redundant re-report of the current state; no instance tag so it
        // cannot pollute user-activity pair statistics.
        emit(item.time, item.device, raw_state_[item.device], -1, false);
        ++result_.duplicate_events;
        break;

      case QueueItem::Kind::kWeatherTick: {
        weather_ = std::clamp(weather_ + rng_.normal(0.0, 0.08), 0.35, 1.0);
        for (double& local : room_weather_) {
          local = std::clamp(local + rng_.normal(0.0, 0.12), 0.55, 1.45);
        }
        QueueItem next;
        next.time = item.time + 3600.0;
        next.kind = QueueItem::Kind::kWeatherTick;
        schedule(next);
        break;
      }
    }
  }

  result_.log.sort_by_time();
  result_.rule_fire_counts = engine_.fire_counts();
  result_.ground_truth = assemble_ground_truth();
  return std::move(result_);
}

GroundTruth SmartHomeSimulator::assemble_ground_truth() const {
  GroundTruth gt;
  // Insertion order fixes the source label for pairs with multiple
  // explanations: automation logic is the strongest, then the physical
  // wiring, then user habits, then autocorrelation.
  for (std::size_t i = 0; i < engine_.rules().size(); ++i) {
    gt.add({engine_.trigger_device(i), engine_.action_device(i),
            InteractionSource::kAutomation, ActivityCategory::kNone});
  }
  for (const auto& [cause, sensor] : physical_.physical_pairs()) {
    // "Change and sense the brightness level": the coupling between an
    // emitter and its room sensor is accepted in both directions.
    gt.add({cause, sensor, InteractionSource::kPhysicalChannel,
            ActivityCategory::kNone});
    gt.add({sensor, cause, InteractionSource::kPhysicalChannel,
            ActivityCategory::kNone});
  }
  for (const auto& [key, stats] : user_pairs_) {
    if (stats.count < profile_.min_pair_occurrences) continue;
    const auto cause = static_cast<telemetry::DeviceId>(key >> 32);
    const auto child = static_cast<telemetry::DeviceId>(key & 0xFFFFFFFFU);
    gt.add({cause, child, InteractionSource::kUserActivity, stats.category});
  }
  for (telemetry::DeviceId id = 0; id < catalog_.size(); ++id) {
    gt.add({id, id, InteractionSource::kAutocorrelation,
            ActivityCategory::kNone});
  }
  return gt;
}

}  // namespace causaliot::sim
