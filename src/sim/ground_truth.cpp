#include "causaliot/sim/ground_truth.hpp"

#include <algorithm>

namespace causaliot::sim {

std::string_view to_string(InteractionSource source) {
  switch (source) {
    case InteractionSource::kUserActivity: return "user_activity";
    case InteractionSource::kPhysicalChannel: return "physical_channel";
    case InteractionSource::kAutomation: return "automation";
    case InteractionSource::kAutocorrelation: return "autocorrelation";
  }
  return "?";
}

std::string_view to_string(ActivityCategory category) {
  switch (category) {
    case ActivityCategory::kNone: return "n/a";
    case ActivityCategory::kUseAfterUse: return "use_after_use";
    case ActivityCategory::kUseAfterMove: return "use_after_move";
    case ActivityCategory::kMoveAfterUse: return "move_after_use";
    case ActivityCategory::kMoveAfterMove: return "move_after_move";
  }
  return "?";
}

bool GroundTruth::add(GroundTruthInteraction interaction) {
  if (contains(interaction.cause, interaction.child)) return false;
  interactions_.push_back(interaction);
  return true;
}

bool GroundTruth::contains(telemetry::DeviceId cause,
                           telemetry::DeviceId child) const {
  return std::any_of(interactions_.begin(), interactions_.end(),
                     [&](const GroundTruthInteraction& i) {
                       return i.cause == cause && i.child == child;
                     });
}

std::size_t GroundTruth::count_by_source(InteractionSource source) const {
  return static_cast<std::size_t>(
      std::count_if(interactions_.begin(), interactions_.end(),
                    [&](const GroundTruthInteraction& i) {
                      return i.source == source;
                    }));
}

std::size_t GroundTruth::count_by_category(ActivityCategory category) const {
  return static_cast<std::size_t>(
      std::count_if(interactions_.begin(), interactions_.end(),
                    [&](const GroundTruthInteraction& i) {
                      return i.category == category;
                    }));
}

std::vector<telemetry::DeviceId> GroundTruth::children_of(
    telemetry::DeviceId cause) const {
  std::vector<telemetry::DeviceId> out;
  for (const GroundTruthInteraction& i : interactions_) {
    if (i.cause == cause && i.child != cause &&
        std::find(out.begin(), out.end(), i.child) == out.end()) {
      out.push_back(i.child);
    }
  }
  return out;
}

}  // namespace causaliot::sim
