#include "causaliot/sim/profile.hpp"

namespace causaliot::sim {

namespace {

using telemetry::AttributeType;
using telemetry::DeviceInfo;
using telemetry::default_value_type;

DeviceInfo device(std::string name, std::string room, AttributeType type) {
  return DeviceInfo{std::move(name), std::move(room), type,
                    default_value_type(type)};
}

ActivityStep move_to(std::string room, double min_delay = 5.0,
                     double max_delay = 40.0, double probability = 1.0) {
  return {StepKind::kMoveTo, std::move(room), 0.0, min_delay, max_delay,
          probability};
}

ActivityStep set_device(std::string name, double value, double min_delay = 5.0,
                        double max_delay = 45.0, double probability = 1.0) {
  return {StepKind::kSetDevice, std::move(name), value, min_delay, max_delay,
          probability};
}

}  // namespace

HomeProfile contextact_profile() {
  HomeProfile p;
  p.name = "contextact";
  p.days = 7.0;
  p.rooms = {"kitchen", "living", "dining", "bathroom", "bedroom", "outside"};
  p.room_daylight_factor = {1.0, 1.2, 0.9, 0.6, 1.0, 0.0};

  // Table I, ContextAct column: 2 switches, 5 presence sensors, 2 contact
  // sensors, 2 dimmers, 1 water meter, 6 power sensors, 4 brightness
  // sensors — 22 devices.
  p.devices = {
      device("switch_player", "living", AttributeType::kSwitch),
      device("switch_curtain", "bedroom", AttributeType::kSwitch),
      device("pe_kitchen", "kitchen", AttributeType::kPresenceSensor),
      device("pe_living", "living", AttributeType::kPresenceSensor),
      device("pe_dining", "dining", AttributeType::kPresenceSensor),
      device("pe_bathroom", "bathroom", AttributeType::kPresenceSensor),
      device("pe_bedroom", "bedroom", AttributeType::kPresenceSensor),
      device("contact_fridge", "kitchen", AttributeType::kContactSensor),
      device("contact_entrance", "living", AttributeType::kContactSensor),
      device("dimmer_kitchen", "kitchen", AttributeType::kDimmer),
      device("dimmer_bathroom", "bathroom", AttributeType::kDimmer),
      device("water_sink", "bathroom", AttributeType::kWaterMeter),
      device("power_stove", "kitchen", AttributeType::kPowerSensor),
      device("power_oven", "kitchen", AttributeType::kPowerSensor),
      device("power_fridge", "kitchen", AttributeType::kPowerSensor),
      device("power_dishwasher", "kitchen", AttributeType::kPowerSensor),
      device("power_heater", "bedroom", AttributeType::kPowerSensor),
      device("power_washer", "bathroom", AttributeType::kPowerSensor),
      device("bright_kitchen", "kitchen", AttributeType::kBrightnessSensor),
      device("bright_living", "living", AttributeType::kBrightnessSensor),
      device("bright_bathroom", "bathroom", AttributeType::kBrightnessSensor),
      device("bright_bedroom", "bedroom", AttributeType::kBrightnessSensor),
  };

  // Physical brightness channel. bright_living has no controllable emitter,
  // so it is driven purely by daylight/weather — the unmeasured common
  // cause behind the paper's brightness false positives.
  p.emitters = {
      {"dimmer_kitchen", "kitchen", 130.0},
      {"dimmer_bathroom", "bathroom", 120.0},
      {"power_stove", "kitchen", 75.0},
      {"power_oven", "kitchen", 65.0},
  };
  p.daylight_gates = {{"switch_curtain", "bedroom", 1.0, 0.10}};
  p.auto_offs = {
      {"power_dishwasher", 2700.0, 900.0},
      {"power_washer", 2400.0, 600.0},
      {"power_stove", 1500.0, 600.0},
      {"power_oven", 2100.0, 600.0},
      {"power_heater", 3000.0, 900.0},
  };

  // Twelve automation rules in the spirit of Table II, including a direct
  // chain (R6 -> R7), a trigger-action chain (R1 -> R10), and a physical
  // chain (R4/R10 -> bright_kitchen High -> R5).
  p.rules = {
      {"R1", "pe_living", 1, "power_dishwasher", 1400.0, 2.0},
      {"R2", "pe_bathroom", 0, "power_stove", 1500.0, 2.0},
      {"R3", "power_heater", 1, "switch_player", 1.0, 2.0},
      {"R4", "contact_fridge", 1, "dimmer_kitchen", 80.0, 2.0},
      {"R5", "bright_kitchen", 1, "dimmer_bathroom", 60.0, 2.0},
      {"R6", "switch_player", 0, "switch_curtain", 0.0, 2.0},
      {"R7", "switch_curtain", 0, "power_heater", 0.0, 2.0},
      {"R8", "pe_bedroom", 1, "switch_player", 1.0, 2.0},
      {"R9", "contact_entrance", 1, "power_heater", 800.0, 2.0},
      {"R10", "power_dishwasher", 1, "dimmer_kitchen", 80.0, 2.0},
      {"R11", "pe_kitchen", 0, "power_oven", 0.0, 2.0},
      {"R12", "water_sink", 1, "power_washer", 500.0, 2.0},
  };

  // Daily-living activity scripts (the user-activity interaction source).
  p.activities = {
      {"morning_routine",
       3.0,
       6.5,
       9.5,
       {
           set_device("switch_curtain", 1.0, 10.0, 60.0),
           move_to("bathroom"),
           set_device("dimmer_bathroom", 70.0, 3.0, 12.0, 0.9),
           set_device("water_sink", 5.0, 5.0, 30.0),
           set_device("water_sink", 0.0, 30.0, 120.0),
           set_device("dimmer_bathroom", 0.0, 3.0, 15.0, 0.9),
           move_to("kitchen"),
       }},
      {"cook_breakfast",
       2.5,
       7.0,
       10.0,
       {
           move_to("kitchen"),
           set_device("contact_fridge", 1.0, 5.0, 20.0),
           set_device("contact_fridge", 0.0, 10.0, 40.0),
           set_device("power_fridge", 130.0, 2.0, 8.0, 0.85),
           set_device("power_stove", 1500.0, 10.0, 40.0),
           set_device("power_stove", 0.0, 180.0, 600.0),
           set_device("power_fridge", 0.0, 5.0, 20.0, 0.85),
           set_device("dimmer_kitchen", 0.0, 5.0, 20.0, 0.92),
           move_to("dining"),
           move_to("kitchen", 300.0, 900.0, 0.85),
       }},
      {"cook_dinner",
       3.0,
       17.5,
       21.0,
       {
           move_to("kitchen"),
           set_device("contact_fridge", 1.0, 5.0, 20.0),
           set_device("contact_fridge", 0.0, 10.0, 40.0),
           set_device("power_oven", 2000.0, 10.0, 60.0),
           set_device("power_stove", 1500.0, 30.0, 120.0),
           set_device("power_stove", 0.0, 300.0, 900.0),
           set_device("power_oven", 0.0, 60.0, 300.0, 0.35),
           set_device("dimmer_kitchen", 0.0, 5.0, 20.0, 0.92),
           move_to("dining"),
           move_to("living", 600.0, 1800.0, 0.9),
       }},
      {"run_dishwasher",
       2.0,
       19.0,
       22.5,
       {
           move_to("kitchen"),
           set_device("power_dishwasher", 1400.0, 10.0, 60.0),
           set_device("power_dishwasher", 0.0, 1200.0, 2400.0),
           set_device("dimmer_kitchen", 0.0, 5.0, 20.0, 0.9),
           move_to("living"),
       }},
      {"bathroom_break",
       4.0,
       6.5,
       23.5,
       {
           move_to("bathroom"),
           set_device("water_sink", 4.0, 10.0, 60.0),
           set_device("water_sink", 0.0, 20.0, 90.0),
           set_device("dimmer_bathroom", 0.0, 4.0, 15.0, 0.9),
           move_to("living", 5.0, 30.0, 0.85),
       }},
      {"listen_music",
       3.0,
       17.0,
       23.0,
       {
           move_to("living"),
           set_device("switch_player", 1.0, 10.0, 60.0),
           set_device("switch_player", 0.0, 1200.0, 3600.0),
           move_to("bedroom", 10.0, 60.0, 0.3),
       }},
      {"laundry",
       1.5,
       9.0,
       18.0,
       {
           move_to("bathroom"),
           set_device("power_washer", 600.0, 10.0, 60.0),
           set_device("power_washer", 0.0, 1800.0, 3600.0),
           move_to("living"),
       }},
      {"leave_home",
       1.5,
       8.0,
       12.0,
       {
           move_to("living"),
           set_device("contact_entrance", 1.0, 10.0, 40.0),
           set_device("contact_entrance", 0.0, 4.0, 10.0),
           move_to("outside", 2.0, 6.0),
       }},
      {"come_home",
       1.5,
       11.0,
       20.0,
       {
           move_to("living"),
           set_device("contact_entrance", 1.0, 2.0, 8.0),
           set_device("contact_entrance", 0.0, 4.0, 10.0),
           move_to("kitchen", 30.0, 120.0, 0.7),
       }},
      {"evening_rest",
       2.0,
       20.0,
       23.5,
       {
           move_to("bedroom"),
           set_device("power_heater", 800.0, 10.0, 60.0, 0.95),
           set_device("switch_player", 1.0, 10.0, 60.0, 0.3),
           move_to("living", 900.0, 2400.0, 0.7),
       }},
      {"go_to_bed",
       3.0,
       22.0,
       23.5,
       {
           move_to("bathroom"),
           set_device("water_sink", 3.0, 10.0, 40.0),
           set_device("water_sink", 0.0, 30.0, 120.0),
           set_device("dimmer_bathroom", 0.0, 4.0, 15.0, 0.9),
           move_to("bedroom"),
           set_device("power_heater", 0.0, 10.0, 50.0, 0.9),
           set_device("switch_player", 0.0, 20.0, 90.0, 0.85),
       }},
      {"kitchen_check",
       2.0,
       20.5,
       23.5,
       {
           move_to("kitchen"),
           set_device("power_stove", 0.0, 5.0, 25.0),
           set_device("power_oven", 0.0, 5.0, 20.0, 0.8),
           set_device("dimmer_kitchen", 0.0, 4.0, 15.0, 0.9),
           move_to("bedroom", 10.0, 60.0),
       }},
      {"bedroom_visit",
       2.0,
       10.0,
       20.0,
       {
           move_to("bedroom"),
           set_device("switch_player", 0.0, 60.0, 600.0, 0.6),
           move_to("living", 60.0, 400.0, 0.9),
       }},
      {"snack",
       1.5,
       13.0,
       17.0,
       {
           move_to("kitchen"),
           set_device("contact_fridge", 1.0, 5.0, 20.0),
           set_device("contact_fridge", 0.0, 8.0, 30.0),
           move_to("living", 20.0, 90.0, 0.9),
       }},
  };

  p.noise.periodic_report_s = 60.0;
  p.daylight_peak_lumens = 60.0;
  p.ambient_high_threshold = 100.0;
  p.noise.report_jitter_s = 20.0;
  p.noise.ambient_noise_stddev = 8.0;
  p.noise.presence_blip_per_hour = 0.01;
  p.noise.extreme_probability = 0.0008;
  p.noise.extreme_magnitude = 2500.0;
  p.noise.duplicate_report_probability = 0.06;
  p.mean_activity_gap_s = 300.0;
  p.min_pair_occurrences = 8;
  return p;
}

HomeProfile casas_profile() {
  HomeProfile p;
  p.name = "casas";
  p.days = 30.0;
  p.rooms = {"kitchen", "living",  "dining",  "bathroom",
             "bedroom", "office",  "hallway", "outside"};
  p.room_daylight_factor = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0};

  // Table I, CASAS column: 7 presence sensors + 1 contact sensor.
  p.devices = {
      device("pe_kitchen", "kitchen", AttributeType::kPresenceSensor),
      device("pe_living", "living", AttributeType::kPresenceSensor),
      device("pe_dining", "dining", AttributeType::kPresenceSensor),
      device("pe_bathroom", "bathroom", AttributeType::kPresenceSensor),
      device("pe_bedroom", "bedroom", AttributeType::kPresenceSensor),
      device("pe_office", "office", AttributeType::kPresenceSensor),
      device("pe_hallway", "hallway", AttributeType::kPresenceSensor),
      device("contact_entrance", "hallway", AttributeType::kContactSensor),
  };

  // Movement-heavy activities; all rooms are reached through the hallway,
  // giving stable Move-after-Move interaction chains.
  p.activities = {
      {"morning",
       3.0,
       6.5,
       9.0,
       {move_to("hallway", 5.0, 20.0), move_to("bathroom"),
        move_to("hallway", 60.0, 300.0), move_to("kitchen"),
        move_to("dining", 120.0, 600.0)}},
      {"work_in_office",
       3.0,
       9.0,
       17.0,
       {move_to("hallway", 5.0, 20.0), move_to("office"),
        move_to("hallway", 1200.0, 3600.0), move_to("kitchen", 5.0, 30.0, 0.6),
        move_to("living", 60.0, 300.0, 0.7)}},
      {"bathroom_break",
       4.0,
       6.5,
       23.5,
       {move_to("hallway", 5.0, 20.0), move_to("bathroom"),
        move_to("hallway", 60.0, 240.0), move_to("living", 5.0, 30.0, 0.6)}},
      {"meals",
       3.0,
       11.0,
       20.5,
       {move_to("hallway", 5.0, 20.0), move_to("kitchen"),
        move_to("dining", 300.0, 1200.0), move_to("living", 300.0, 1500.0)}},
      {"errand",
       1.5,
       9.0,
       18.0,
       {move_to("hallway", 5.0, 30.0),
        set_device("contact_entrance", 1.0, 5.0, 20.0),
        set_device("contact_entrance", 0.0, 4.0, 10.0),
        move_to("outside", 2.0, 6.0)}},
      {"return_home",
       1.5,
       10.0,
       21.0,
       {move_to("hallway", 2.0, 10.0),
        set_device("contact_entrance", 1.0, 2.0, 8.0),
        set_device("contact_entrance", 0.0, 4.0, 10.0),
        move_to("living", 20.0, 90.0)}},
      {"evening",
       2.5,
       19.0,
       23.0,
       {move_to("hallway", 5.0, 20.0), move_to("living"),
        move_to("hallway", 1800.0, 3600.0), move_to("bedroom")}},
      {"night_wandering",
       0.7,
       21.0,
       23.5,
       {move_to("hallway", 5.0, 30.0), move_to("kitchen"),
        move_to("hallway", 60.0, 240.0), move_to("bedroom")}},
  };

  p.noise.periodic_report_s = 3600.0;  // no ambient sensors — irrelevant
  p.noise.duplicate_report_probability = 0.10;
  p.noise.presence_blip_per_hour = 0.02;
  p.mean_activity_gap_s = 180.0;
  p.min_pair_occurrences = 20;
  return p;
}

}  // namespace causaliot::sim
