// Ground-truth device interactions.
//
// The paper labels ground truth by traversing neighbouring events and
// manually accepting device pairs that reflect (1) sequential user
// operation, (2) a shared physical channel, or (3) automation logic. Our
// generator *knows* these relations, so the simulator emits them directly:
// user-activity pairs from adjacent events of the same activity instance,
// physical pairs from the emitter/gate wiring, automation pairs from the
// rule set, and one autocorrelation interaction per device.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "causaliot/telemetry/device.hpp"

namespace causaliot::sim {

enum class InteractionSource : std::uint8_t {
  kUserActivity,
  kPhysicalChannel,
  kAutomation,
  kAutocorrelation,
};

/// Table III's user-activity sub-categories.
enum class ActivityCategory : std::uint8_t {
  kNone,
  kUseAfterUse,
  kUseAfterMove,
  kMoveAfterUse,
  kMoveAfterMove,
};

std::string_view to_string(InteractionSource source);
std::string_view to_string(ActivityCategory category);

struct GroundTruthInteraction {
  telemetry::DeviceId cause = telemetry::kInvalidDevice;
  telemetry::DeviceId child = telemetry::kInvalidDevice;
  InteractionSource source = InteractionSource::kUserActivity;
  ActivityCategory category = ActivityCategory::kNone;

  friend bool operator==(const GroundTruthInteraction&,
                         const GroundTruthInteraction&) = default;
};

class GroundTruth {
 public:
  /// Adds an interaction unless the (cause, child) pair is already present
  /// (the first source label wins). Returns true if inserted.
  bool add(GroundTruthInteraction interaction);

  bool contains(telemetry::DeviceId cause, telemetry::DeviceId child) const;

  const std::vector<GroundTruthInteraction>& interactions() const {
    return interactions_;
  }
  std::size_t size() const { return interactions_.size(); }

  std::size_t count_by_source(InteractionSource source) const;
  std::size_t count_by_category(ActivityCategory category) const;

  /// Devices with an interaction cause -> child (excluding self loops);
  /// the fan-out used by the collective-anomaly chain generator.
  std::vector<telemetry::DeviceId> children_of(telemetry::DeviceId cause) const;

 private:
  std::vector<GroundTruthInteraction> interactions_;
};

}  // namespace causaliot::sim
