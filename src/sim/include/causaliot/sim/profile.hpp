// Smart-home testbed profiles.
//
// The paper evaluates on two real single-resident testbeds (CASAS and
// ContextAct@A4H) whose raw traces are not redistributable; this module
// defines the configuration language for the synthetic testbeds that stand
// in for them (see DESIGN.md §1). A profile fixes the floor plan, the
// device fleet, the resident's daily-living activity scripts, the installed
// automation rules, the physical brightness channel, and the noise model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "causaliot/telemetry/device.hpp"

namespace causaliot::sim {

enum class StepKind : std::uint8_t {
  kMoveTo,     // walk to a room (presence sensors fire)
  kSetDevice,  // operate a device to a raw value
};

struct ActivityStep {
  StepKind kind = StepKind::kSetDevice;
  /// Room name for kMoveTo, device name for kSetDevice.
  std::string target;
  /// Raw value to set (kSetDevice): binary 0/1, dimmer level, watts, ...
  double value = 0.0;
  /// Uniform random delay before the step executes.
  double min_delay_s = 5.0;
  double max_delay_s = 30.0;
  /// Steps with probability < 1 are occasionally skipped (behavioural
  /// stochasticity; also the source of "low occurrence" missed
  /// interactions, §VI-B).
  double probability = 1.0;
};

struct ActivityScript {
  std::string name;
  /// Relative selection weight among eligible scripts.
  double weight = 1.0;
  /// Eligible time-of-day window [earliest_hour, latest_hour).
  double earliest_hour = 0.0;
  double latest_hour = 24.0;
  std::vector<ActivityStep> steps;
};

/// Trigger-action automation rule (§II-A). States are unified binary.
struct AutomationRule {
  std::string id;
  std::string trigger_device;
  std::uint8_t trigger_state = 1;
  std::string action_device;
  /// Raw value the platform writes to the action device.
  double action_value = 1.0;
  double delay_s = 2.0;
};

/// A device that adds light to a room's brightness channel while active
/// (dimmer, stove, oven, ...).
struct Emitter {
  std::string device;
  std::string room;
  double lumens = 80.0;
};

/// An appliance that shuts itself off after a duty cycle (dishwasher,
/// washer, safety-shutoff stove/oven, heater thermostat). Keeps rule
/// action devices toggling so automations re-fire realistically.
struct AutoOff {
  std::string device;
  double after_s = 1800.0;
  double jitter_s = 600.0;
};

/// A device gating how much daylight reaches a room (electric curtain).
struct DaylightGate {
  std::string device;
  std::string room;
  double open_factor = 1.0;
  double closed_factor = 0.12;
};

struct NoiseConfig {
  /// Ambient sensors re-report on this period (the paper's "periodic
  /// brightness report" noise source).
  double periodic_report_s = 120.0;
  double report_jitter_s = 20.0;
  /// Gaussian measurement noise on ambient readings (lumens).
  double ambient_noise_stddev = 3.0;
  /// Probability a periodic ambient report is a wild glitch — exercised by
  /// the preprocessor's three-sigma filter.
  double extreme_probability = 0.0005;
  double extreme_magnitude = 2000.0;
  /// Probability that any device redundantly re-reports its current state
  /// right after a real event (duplicate state reports, §V-A).
  double duplicate_report_probability = 0.05;
  /// PIR false-trigger rate per presence sensor per hour — the "false
  /// positives on motion sensors" every real deployment sees. Blips turn
  /// a sensor on briefly; the normal timeout resets it.
  double presence_blip_per_hour = 0.0;
};

struct HomeProfile {
  std::string name;
  std::vector<std::string> rooms;
  std::vector<telemetry::DeviceInfo> devices;
  std::vector<ActivityScript> activities;
  std::vector<AutomationRule> rules;
  std::vector<Emitter> emitters;
  std::vector<DaylightGate> daylight_gates;
  std::vector<AutoOff> auto_offs;
  NoiseConfig noise;

  /// Simulated trace duration.
  double days = 7.0;
  /// Mean idle gap between activities (exponential).
  double mean_activity_gap_s = 900.0;
  /// Resident's awake window; activities only start inside it.
  double wake_hour = 6.5;
  double sleep_hour = 23.5;
  /// Sim-side Low/High cut for ambient values — what the *platform* uses
  /// when an automation rule triggers on a brightness sensor. (The miner
  /// independently learns its own Jenks threshold.)
  double ambient_high_threshold = 120.0;
  /// Peak clear-sky daylight contribution (lumens) at solar noon.
  double daylight_peak_lumens = 150.0;
  /// Per-room daylight scaling (window size); parallel to `rooms`.
  /// Empty means 1.0 for every room.
  std::vector<double> room_daylight_factor;
  /// Seconds it takes the resident to walk between rooms.
  double walk_seconds = 4.0;
  /// Motion-sensor semantics: a presence sensor reports ON when motion is
  /// detected and auto-resets after this long with no motion (plus
  /// jitter). Real PIR sensors behave this way, which is why ghost
  /// presence in training does not imply a frozen occupied-room state.
  double presence_timeout_s = 150.0;
  double presence_timeout_jitter_s = 60.0;
  /// Minimum occurrences for an adjacent in-activity device pair to count
  /// as a ground-truth user-activity interaction (mirrors the paper's
  /// manual acceptance of recurring neighbouring-event pairs).
  std::size_t min_pair_occurrences = 10;
};

/// ContextAct-like profile: 22 devices over 5 rooms (Table I column 2),
/// rich activity set, 12 automation rules including chained pairs, 7 days.
HomeProfile contextact_profile();

/// CASAS-like profile: 8 devices (7 presence + 1 contact), movement-heavy
/// activities, no automation, 30 days.
HomeProfile casas_profile();

}  // namespace causaliot::sim
