// Discrete-event smart-home simulator.
//
// Generates a device-event trace with the generative structure the paper's
// testbeds exhibit: a single resident executing stochastic daily-living
// activities (user-activity interactions), devices wired to a physical
// brightness channel (physical interactions), a live trigger-action
// automation engine (automation interactions), persistent device states
// (autocorrelation), plus the noise the Event Preprocessor must handle
// (periodic ambient reports, duplicate state reports, extreme glitches).
// The generator also emits the ground-truth interaction set used to score
// interaction mining (§VI-B).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "causaliot/sim/automation.hpp"
#include "causaliot/sim/ground_truth.hpp"
#include "causaliot/sim/physical.hpp"
#include "causaliot/sim/profile.hpp"
#include "causaliot/telemetry/event.hpp"
#include "causaliot/util/rng.hpp"

namespace causaliot::sim {

struct SimulationResult {
  telemetry::EventLog log;
  GroundTruth ground_truth;
  /// Fires per rule, aligned with profile.rules.
  std::vector<std::size_t> rule_fire_counts;
  // Event-class counters (diagnostics / Table I support).
  std::size_t user_events = 0;
  std::size_t periodic_events = 0;
  std::size_t reactive_sensor_events = 0;
  std::size_t automation_events = 0;
  std::size_t duplicate_events = 0;
  std::size_t auto_off_events = 0;
  std::size_t extreme_events = 0;
};

class SmartHomeSimulator {
 public:
  /// CHECKs if the profile is inconsistent (unknown device/room names).
  SmartHomeSimulator(HomeProfile profile, std::uint64_t seed);
  ~SmartHomeSimulator();  // out-of-line: queue_ holds an incomplete type
  SmartHomeSimulator(const SmartHomeSimulator&) = delete;
  SmartHomeSimulator& operator=(const SmartHomeSimulator&) = delete;

  const telemetry::DeviceCatalog& catalog() const { return catalog_; }
  const HomeProfile& profile() const { return profile_; }

  /// Runs the full simulation; call once.
  SimulationResult run();

 private:
  struct QueueItem;

  void schedule(QueueItem item);
  void start_activity(double now);
  void emit(double time, telemetry::DeviceId device, double value,
            std::int64_t activity_instance, bool is_glitch);
  void record_user_pair(std::int64_t instance, telemetry::DeviceId device);
  /// Registers user motion in a room at `time`: re-triggers the room's
  /// presence sensor if it is off and arms/refreshes its reset timeout.
  void record_motion(std::size_t room, double time, std::int64_t instance);
  GroundTruth assemble_ground_truth() const;

  HomeProfile profile_;
  util::Rng rng_;
  telemetry::DeviceCatalog catalog_;
  BrightnessModel physical_;
  AutomationEngine engine_;

  std::vector<double> raw_state_;
  std::vector<std::uint8_t> binary_state_;
  std::vector<std::optional<telemetry::DeviceId>> room_presence_;
  /// Per-device auto-off duty cycle (0 = none), resolved from the profile.
  std::vector<double> auto_off_after_;
  std::vector<double> auto_off_jitter_;
  std::size_t current_room_ = 0;
  /// Wall-clock time of the last user motion per room (presence timeout).
  std::vector<double> last_room_motion_;
  double weather_ = 0.8;
  /// Per-room cloud/shading multiplier so brightness sensors are not a
  /// single deterministic function of global daylight.
  std::vector<double> room_weather_;
  std::int64_t activity_counter_ = 0;
  std::int64_t last_pair_instance_ = -1;
  /// Most-recent-first device history within the current activity
  /// instance, bounded by the pair window (matches the mining lag tau).
  std::vector<telemetry::DeviceId> pair_history_;

  struct PairStats {
    std::size_t count = 0;
    ActivityCategory category = ActivityCategory::kNone;
  };
  std::unordered_map<std::uint64_t, PairStats> user_pairs_;

  // Event queue (min-heap by time, then insertion order).
  std::vector<QueueItem> queue_;
  std::uint64_t queue_seq_ = 0;

  SimulationResult result_;
  bool ran_ = false;
};

}  // namespace causaliot::sim
