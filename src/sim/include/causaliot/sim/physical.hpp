// Physical brightness channel.
//
// Brightness in a room is daylight (clear-sky curve x slowly-varying
// weather factor x per-room window factor x optional curtain gate) plus the
// lumens of every active emitter in the room. Devices that change the
// channel (dimmers, stove, curtain) interact with the room's brightness
// sensor through it — the paper's "physical interaction" source; daylight
// and weather are the *unmeasured common cause* behind its reported
// brightness false positives (§VI-B).
#pragma once

#include <optional>
#include <vector>

#include "causaliot/sim/profile.hpp"
#include "causaliot/telemetry/device.hpp"

namespace causaliot::sim {

/// Clear-sky daylight in lumens at `time_s` seconds since midnight of day
/// zero: a half-sine between 06:00 and 20:00 peaking at `peak_lumens`,
/// zero at night.
double clear_sky_daylight(double time_s, double peak_lumens);

/// Resolved physical model over a device catalog.
class BrightnessModel {
 public:
  BrightnessModel(const HomeProfile& profile,
                  const telemetry::DeviceCatalog& catalog);

  /// Brightness sensor installed in the room, if any.
  std::optional<telemetry::DeviceId> sensor_in_room(
      std::size_t room_index) const;

  /// Room index for a room name; CHECKs on unknown rooms.
  std::size_t room_index(std::string_view room) const;
  std::size_t room_count() const { return room_names_.size(); }
  const std::string& room_name(std::size_t index) const;

  /// True if a state change of `device` can change some room's brightness
  /// (it is an emitter or a daylight gate); the affected room is returned.
  std::optional<std::size_t> affected_room(telemetry::DeviceId device) const;

  /// Physical brightness of a room given the wall-clock time, the current
  /// weather factor in [0, 1], and each device's raw state value.
  double level(std::size_t room_index, double time_s, double weather_factor,
               const std::vector<double>& raw_states) const;

  /// Emitter/gate wiring as ground-truth (cause device, sensor) pairs.
  std::vector<std::pair<telemetry::DeviceId, telemetry::DeviceId>>
  physical_pairs() const;

 private:
  struct ResolvedEmitter {
    telemetry::DeviceId device;
    std::size_t room;
    double lumens;
  };
  struct ResolvedGate {
    telemetry::DeviceId device;
    std::size_t room;
    double open_factor;
    double closed_factor;
  };

  double daylight_peak_;
  std::vector<std::string> room_names_;
  std::vector<double> room_daylight_factor_;
  std::vector<std::optional<telemetry::DeviceId>> room_sensor_;
  std::vector<ResolvedEmitter> emitters_;
  std::vector<ResolvedGate> gates_;
};

}  // namespace causaliot::sim
