// Trigger-action automation engine (§II-A).
//
// The engine mirrors commodity IoT platform semantics: when a device's
// (unified binary) state *transitions to* a rule's trigger state, the rule
// fires after a short platform delay — unless the action device's state
// already satisfies the rule, in which case real platforms skip execution
// (§VI-A). A per-rule cooldown guards against feedback oscillation.
#pragma once

#include <vector>

#include "causaliot/sim/profile.hpp"
#include "causaliot/telemetry/device.hpp"

namespace causaliot::sim {

class AutomationEngine {
 public:
  AutomationEngine(const telemetry::DeviceCatalog& catalog,
                   std::vector<AutomationRule> rules,
                   double ambient_high_threshold,
                   double cooldown_s = 60.0);

  /// Unified binary state of a raw value under *platform* semantics:
  /// binary > 0.5, responsive > 0, ambient > the platform's High cut.
  std::uint8_t binary_state(telemetry::DeviceId device, double raw) const;

  struct Firing {
    std::size_t rule_index = 0;
    telemetry::DeviceId action_device = telemetry::kInvalidDevice;
    double action_value = 0.0;
    double fire_at_s = 0.0;
  };

  /// Reports that `device` transitioned to binary state `new_state` at
  /// time `now_s`; returns the rules that fire. `binary_states` is the
  /// current unified state of every device (used for the already-satisfied
  /// skip). Updates per-rule cooldown bookkeeping.
  std::vector<Firing> on_state_change(
      telemetry::DeviceId device, std::uint8_t new_state, double now_s,
      const std::vector<std::uint8_t>& binary_states);

  const std::vector<AutomationRule>& rules() const { return rules_; }
  telemetry::DeviceId trigger_device(std::size_t rule_index) const;
  telemetry::DeviceId action_device(std::size_t rule_index) const;
  std::uint8_t action_state(std::size_t rule_index) const;

  /// Times each rule fired so far (diagnostics / Table II support).
  const std::vector<std::size_t>& fire_counts() const { return fire_counts_; }

 private:
  const telemetry::DeviceCatalog& catalog_;
  std::vector<AutomationRule> rules_;
  std::vector<telemetry::DeviceId> trigger_ids_;
  std::vector<telemetry::DeviceId> action_ids_;
  double ambient_high_threshold_;
  double cooldown_s_;
  std::vector<double> last_fired_s_;
  std::vector<std::size_t> fire_counts_;
};

}  // namespace causaliot::sim
