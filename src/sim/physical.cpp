#include "causaliot/sim/physical.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "causaliot/util/check.hpp"

namespace causaliot::sim {

double clear_sky_daylight(double time_s, double peak_lumens) {
  constexpr double kSunrise = 6.0 * 3600.0;
  constexpr double kSunset = 20.0 * 3600.0;
  const double day_s = std::fmod(time_s, 86400.0);
  if (day_s < kSunrise || day_s > kSunset) return 0.0;
  const double phase = (day_s - kSunrise) / (kSunset - kSunrise);
  return peak_lumens * std::sin(phase * std::numbers::pi);
}

BrightnessModel::BrightnessModel(const HomeProfile& profile,
                                 const telemetry::DeviceCatalog& catalog)
    : daylight_peak_(profile.daylight_peak_lumens),
      room_names_(profile.rooms) {
  room_daylight_factor_ = profile.room_daylight_factor;
  if (room_daylight_factor_.empty()) {
    room_daylight_factor_.assign(room_names_.size(), 1.0);
  }
  CAUSALIOT_CHECK_MSG(room_daylight_factor_.size() == room_names_.size(),
                      "room_daylight_factor size mismatch");

  room_sensor_.assign(room_names_.size(), std::nullopt);
  for (telemetry::DeviceId id = 0; id < catalog.size(); ++id) {
    const telemetry::DeviceInfo& info = catalog.info(id);
    if (info.attribute != telemetry::AttributeType::kBrightnessSensor) {
      continue;
    }
    const auto it =
        std::find(room_names_.begin(), room_names_.end(), info.room);
    if (it != room_names_.end()) {
      room_sensor_[static_cast<std::size_t>(it - room_names_.begin())] = id;
    }
  }

  for (const Emitter& emitter : profile.emitters) {
    auto device = catalog.find(emitter.device);
    CAUSALIOT_CHECK_MSG(device.ok(), "emitter references unknown device");
    emitters_.push_back(
        {device.value(), room_index(emitter.room), emitter.lumens});
  }
  for (const DaylightGate& gate : profile.daylight_gates) {
    auto device = catalog.find(gate.device);
    CAUSALIOT_CHECK_MSG(device.ok(), "gate references unknown device");
    gates_.push_back({device.value(), room_index(gate.room),
                      gate.open_factor, gate.closed_factor});
  }
}

std::optional<telemetry::DeviceId> BrightnessModel::sensor_in_room(
    std::size_t room_index) const {
  CAUSALIOT_CHECK(room_index < room_sensor_.size());
  return room_sensor_[room_index];
}

std::size_t BrightnessModel::room_index(std::string_view room) const {
  const auto it = std::find(room_names_.begin(), room_names_.end(), room);
  CAUSALIOT_CHECK_MSG(it != room_names_.end(), "unknown room");
  return static_cast<std::size_t>(it - room_names_.begin());
}

const std::string& BrightnessModel::room_name(std::size_t index) const {
  CAUSALIOT_CHECK(index < room_names_.size());
  return room_names_[index];
}

std::optional<std::size_t> BrightnessModel::affected_room(
    telemetry::DeviceId device) const {
  for (const ResolvedEmitter& e : emitters_) {
    if (e.device == device) return e.room;
  }
  for (const ResolvedGate& g : gates_) {
    if (g.device == device) return g.room;
  }
  return std::nullopt;
}

double BrightnessModel::level(std::size_t room_index, double time_s,
                              double weather_factor,
                              const std::vector<double>& raw_states) const {
  CAUSALIOT_CHECK(room_index < room_names_.size());
  double gate_factor = 1.0;
  for (const ResolvedGate& gate : gates_) {
    if (gate.room == room_index) {
      gate_factor *= raw_states[gate.device] > 0.5 ? gate.open_factor
                                                   : gate.closed_factor;
    }
  }
  double lumens = clear_sky_daylight(time_s, daylight_peak_) *
                  weather_factor * room_daylight_factor_[room_index] *
                  gate_factor;
  for (const ResolvedEmitter& emitter : emitters_) {
    if (emitter.room == room_index && raw_states[emitter.device] > 0.0) {
      lumens += emitter.lumens;
    }
  }
  return lumens;
}

std::vector<std::pair<telemetry::DeviceId, telemetry::DeviceId>>
BrightnessModel::physical_pairs() const {
  std::vector<std::pair<telemetry::DeviceId, telemetry::DeviceId>> pairs;
  for (const ResolvedEmitter& emitter : emitters_) {
    if (room_sensor_[emitter.room].has_value()) {
      pairs.emplace_back(emitter.device, *room_sensor_[emitter.room]);
    }
  }
  for (const ResolvedGate& gate : gates_) {
    if (room_sensor_[gate.room].has_value()) {
      pairs.emplace_back(gate.device, *room_sensor_[gate.room]);
    }
  }
  return pairs;
}

}  // namespace causaliot::sim
