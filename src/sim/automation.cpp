#include "causaliot/sim/automation.hpp"

#include <limits>

#include "causaliot/util/check.hpp"

namespace causaliot::sim {

AutomationEngine::AutomationEngine(const telemetry::DeviceCatalog& catalog,
                                   std::vector<AutomationRule> rules,
                                   double ambient_high_threshold,
                                   double cooldown_s)
    : catalog_(catalog),
      rules_(std::move(rules)),
      ambient_high_threshold_(ambient_high_threshold),
      cooldown_s_(cooldown_s) {
  trigger_ids_.reserve(rules_.size());
  action_ids_.reserve(rules_.size());
  for (const AutomationRule& rule : rules_) {
    auto trigger = catalog_.find(rule.trigger_device);
    CAUSALIOT_CHECK_MSG(trigger.ok(), "rule trigger device not in catalog");
    auto action = catalog_.find(rule.action_device);
    CAUSALIOT_CHECK_MSG(action.ok(), "rule action device not in catalog");
    CAUSALIOT_CHECK_MSG(
        telemetry::is_actuator(catalog_.info(action.value()).attribute),
        "rule action device is not an actuator");
    trigger_ids_.push_back(trigger.value());
    action_ids_.push_back(action.value());
  }
  last_fired_s_.assign(rules_.size(),
                       -std::numeric_limits<double>::infinity());
  fire_counts_.assign(rules_.size(), 0);
}

std::uint8_t AutomationEngine::binary_state(telemetry::DeviceId device,
                                            double raw) const {
  switch (catalog_.info(device).value_type) {
    case telemetry::ValueType::kBinary:
      return raw > 0.5 ? 1 : 0;
    case telemetry::ValueType::kResponsiveNumeric:
      return raw > 0.0 ? 1 : 0;
    case telemetry::ValueType::kAmbientNumeric:
      return raw > ambient_high_threshold_ ? 1 : 0;
  }
  return 0;
}

std::vector<AutomationEngine::Firing> AutomationEngine::on_state_change(
    telemetry::DeviceId device, std::uint8_t new_state, double now_s,
    const std::vector<std::uint8_t>& binary_states) {
  std::vector<Firing> firings;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (trigger_ids_[i] != device) continue;
    if (rules_[i].trigger_state != new_state) continue;
    if (now_s - last_fired_s_[i] < cooldown_s_) continue;
    const std::uint8_t target =
        binary_state(action_ids_[i], rules_[i].action_value);
    // Platforms skip the execution when the action device already follows
    // the rule (§VI-A).
    if (binary_states[action_ids_[i]] == target) continue;
    last_fired_s_[i] = now_s;
    ++fire_counts_[i];
    firings.push_back({i, action_ids_[i], rules_[i].action_value,
                       now_s + rules_[i].delay_s});
  }
  return firings;
}

telemetry::DeviceId AutomationEngine::trigger_device(
    std::size_t rule_index) const {
  CAUSALIOT_CHECK(rule_index < trigger_ids_.size());
  return trigger_ids_[rule_index];
}

telemetry::DeviceId AutomationEngine::action_device(
    std::size_t rule_index) const {
  CAUSALIOT_CHECK(rule_index < action_ids_.size());
  return action_ids_[rule_index];
}

std::uint8_t AutomationEngine::action_state(std::size_t rule_index) const {
  CAUSALIOT_CHECK(rule_index < rules_.size());
  return binary_state(action_ids_[rule_index],
                      rules_[rule_index].action_value);
}

}  // namespace causaliot::sim
