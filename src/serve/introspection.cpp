#include "causaliot/serve/introspection.hpp"

#include "causaliot/obs/trace.hpp"
#include "causaliot/stats/simd_backend.hpp"
#include "causaliot/util/strings.hpp"

namespace causaliot::serve {

void attach_introspection(obs::HttpServer& server, DetectionService& service,
                          IntrospectionOptions options) {
  server.handle("/metrics", [&service](const obs::HttpRequest&) {
    return obs::HttpResponse::text(service.prometheus(),
                                   obs::kContentTypePrometheus);
  });
  server.handle("/healthz", [](const obs::HttpRequest&) {
    return obs::HttpResponse::text("ok\n");
  });
  server.handle("/readyz", [&service](const obs::HttpRequest&) {
    if (service.ready()) return obs::HttpResponse::text("ready\n");
    obs::HttpResponse out;
    out.status = 503;
    out.body = "not ready: detection service is not running\n";
    return out;
  });
  server.handle(
      "/statusz", [&service, options](const obs::HttpRequest&) {
        std::string body = service.status_json();
        // Splice the deployment facts into the top-level object: the
        // service knows nothing about its build label or which SIMD
        // kernel backend the capability probe selected, the process does.
        body.insert(
            1, util::format(
                   "\"build\": \"%s\", \"simd_backend\": \"%s\", ",
                   util::json_escape(options.build_label).c_str(),
                   std::string(stats::simd::backend_name(stats::simd::chosen()))
                       .c_str()));
        return obs::HttpResponse::json(std::move(body));
      });
  server.handle("/tracez", [](const obs::HttpRequest&) {
    return obs::HttpResponse::json(
        obs::Tracer::global().stage_totals_json());
  });
}

}  // namespace causaliot::serve
