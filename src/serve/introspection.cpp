#include "causaliot/serve/introspection.hpp"

#include "causaliot/obs/query.hpp"
#include "causaliot/obs/trace.hpp"
#include "causaliot/stats/simd_backend.hpp"
#include "causaliot/util/strings.hpp"

namespace causaliot::serve {

void attach_introspection(obs::HttpServer& server, DetectionService& service,
                          IntrospectionOptions options) {
  server.handle("/metrics", [&service](const obs::HttpRequest&) {
    return obs::HttpResponse::text(service.prometheus(),
                                   obs::kContentTypePrometheus);
  });
  server.handle("/healthz", [](const obs::HttpRequest&) {
    return obs::HttpResponse::text("ok\n");
  });
  server.handle("/readyz", [&service](const obs::HttpRequest&) {
    if (service.ready()) return obs::HttpResponse::text("ready\n");
    obs::HttpResponse out;
    out.status = 503;
    out.body = "not ready: detection service is not running\n";
    return out;
  });
  server.handle(
      "/statusz", [&service, options](const obs::HttpRequest& request) {
        // Per-tenant window (?offset=&limit=): /statusz stays bounded on
        // 10k-home fleets, the default window shows the first 100.
        const std::string offset_text =
            obs::query_param(request.query, "offset", "0");
        const std::string limit_text = obs::query_param(
            request.query, "limit",
            std::to_string(DetectionService::kDefaultTenantWindow));
        const util::Result<std::int64_t> offset =
            util::parse_int(offset_text);
        const util::Result<std::int64_t> limit = util::parse_int(limit_text);
        if (!offset.ok() || *offset < 0 || !limit.ok() || *limit < 0) {
          obs::HttpResponse out;
          out.status = 400;
          out.body = "bad offset/limit: expected non-negative integers\n";
          return out;
        }
        std::string body =
            service.status_json(static_cast<std::size_t>(*offset),
                                static_cast<std::size_t>(*limit));
        // Splice the deployment facts into the top-level object: the
        // service knows nothing about its build label or which SIMD
        // kernel backend the capability probe selected, the process does.
        if (options.watchdog != nullptr) {
          body.insert(1, "\"watchdog\": " +
                             options.watchdog->json(obs::Tracer::now_ns()) +
                             ", ");
        }
        body.insert(
            1, util::format(
                   "\"build\": \"%s\", \"simd_backend\": \"%s\", ",
                   util::json_escape(options.build_label).c_str(),
                   std::string(stats::simd::backend_name(stats::simd::chosen()))
                       .c_str()));
        return obs::HttpResponse::json(std::move(body));
      });
  server.handle("/tracez", [](const obs::HttpRequest&) {
    return obs::HttpResponse::json(
        obs::Tracer::global().stage_totals_json());
  });
  server.handle("/rootcausez", [&service](const obs::HttpRequest& request) {
    const std::string format =
        obs::query_param(request.query, "format", "json");
    if (format != "json" && format != "text") {
      obs::HttpResponse out;
      out.status = 400;
      out.body = "bad format: expected json or text\n";
      return out;
    }
    const std::string tenant = obs::query_param(request.query, "tenant");
    if (format == "text") {
      return obs::HttpResponse::text(service.blame().to_text(tenant));
    }
    return obs::HttpResponse::json(service.blame().to_json(tenant));
  });
  if (options.history != nullptr) {
    obs::TimeSeriesStore* history = options.history;
    server.handle(
        "/metrics/history", [history](const obs::HttpRequest& request) {
          const std::string series =
              obs::query_param(request.query, "series");
          const std::string window_text =
              obs::query_param(request.query, "window", "300");
          const std::string tier =
              obs::query_param(request.query, "tier", "raw");
          const util::Result<double> window =
              util::parse_double(window_text);
          if (!window.ok() || *window < 0.0) {
            obs::HttpResponse out;
            out.status = 400;
            out.body = "bad window: expected non-negative seconds\n";
            return out;
          }
          if (tier != "raw" && tier != "agg") {
            obs::HttpResponse out;
            out.status = 400;
            out.body = "bad tier: expected raw or agg\n";
            return out;
          }
          return obs::HttpResponse::json(history->history_json(
              series, *window, tier, obs::Tracer::now_ns()));
        });
  }
  if (options.alerts != nullptr) {
    obs::AlertEngine* alerts = options.alerts;
    server.handle("/alertz", [alerts](const obs::HttpRequest& request) {
      const std::uint64_t now_ns = obs::Tracer::now_ns();
      if (obs::query_param(request.query, "format", "json") == "text") {
        return obs::HttpResponse::text(alerts->to_text(now_ns));
      }
      return obs::HttpResponse::json(alerts->to_json(now_ns));
    });
  }
}

}  // namespace causaliot::serve
