// Provenance-enriched alarm JSONL.
//
// Every alarm leaving `causaliot serve` is one JSON line that carries
// not just *what* fired but *why*: the interaction context (cause values
// from detect::Explanation), the CPT probability of the observed
// transition, the threshold and margin that tripped Definition 2, the
// full anomaly chain with positions, and the root-cause hint. The
// renderer lives in the library (not the CLI) so test_serve can assert
// the stream field-by-field.
#pragma once

#include <string>

#include "causaliot/serve/service.hpp"
#include "causaliot/telemetry/device.hpp"

namespace causaliot::serve {

/// Severity as a lowercase label ("notice" | "warning" | "critical").
const char* severity_label(detect::AlarmSeverity severity);

/// One compact JSON object (no trailing newline):
///   {"type": "alarm", "tenant": ..., "severity": ..., "device": ...,
///    "state": ..., "score": ..., "threshold": ..., "margin": ...,
///    "probability": ..., "stream_index": ..., "timestamp": ...,
///    "model_version": ..., "suppressed_duplicates": ..., "chain": ...,
///    "interrupted": ..., "context": [{"cause", "lag", "state"}, ...],
///    "entries": [{"position", "device", "state", "score",
///                 "stream_index", "timestamp"}, ...],
///    "root_causes": [{"rank", "device", "score", "flagged",
///                     "path": [{"child", "cause", "lag"}, ...]}, ...],
///    "hint": ...}
/// `margin` is score - threshold (how far past the line), `probability`
/// is 1 - score (the CPT likelihood of the observed transition),
/// `context` lists the head event's cause values — the paper's
/// interpretability payload — and `root_causes` is the ranked blame
/// attribution (detect/root_cause.hpp) computed under the snapshot that
/// scored the alarm.
std::string alarm_to_json(const ServedAlarm& alarm,
                          const telemetry::DeviceCatalog& catalog);

}  // namespace causaliot::serve
