// Standard introspection routes for a running DetectionService.
//
// attach_introspection() registers the whole scrape plane on an
// obs::HttpServer:
//
//   /metrics  Prometheus text of the service registry (queue-depth and
//             model-health gauges refreshed per scrape)
//   /healthz  liveness — 200 as long as the process answers
//   /readyz   200 once start() has spawned every shard (each tenant
//             holds a loaded model snapshot by construction); 503
//             before start() and again once shutdown() begins
//   /statusz  JSON: service summary + per-tenant model health
//   /tracez   JSON: recent span stage totals from the global tracer
//
// Call it between constructing the server and server.start(), and only
// start the server once every tenant is registered — the handlers walk
// the service's tenant tables, which are lock-free because they are
// immutable after registration. The service must outlive the server
// (stop the server first on the way down — the handlers read the
// service from worker threads).
#pragma once

#include <string>

#include "causaliot/obs/http_server.hpp"
#include "causaliot/serve/service.hpp"

namespace causaliot::serve {

struct IntrospectionOptions {
  /// Free-form build/deployment label echoed in /statusz.
  std::string build_label = "causaliot";
};

void attach_introspection(obs::HttpServer& server, DetectionService& service,
                          IntrospectionOptions options = {});

}  // namespace causaliot::serve
