// Standard introspection routes for a running DetectionService.
//
// attach_introspection() registers the whole scrape plane on an
// obs::HttpServer:
//
//   /metrics  Prometheus text of the service registry (queue-depth and
//             model-health gauges refreshed per scrape)
//   /healthz  liveness — 200 as long as the process answers
//   /readyz   200 once start() has spawned every shard (each tenant
//             holds a loaded model snapshot by construction); 503
//             before start() and again once shutdown() begins
//   /statusz  JSON: service summary + per-tenant model health (+ the
//             watchdog's per-shard verdicts when one is attached)
//   /tracez   JSON: recent span stage totals from the global tracer
//
// With the retention/alerting plane attached (all optional):
//
//   /metrics/history?series=a,b*&window=300&tier=raw|agg
//             JSON windows from the obs::TimeSeriesStore ring buffers
//   /alertz   obs::AlertEngine rule states — JSON, or human text with
//             ?format=text
//
// Call it between constructing the server and server.start(), and only
// start the server once every tenant is registered — the handlers walk
// the service's tenant tables, which are lock-free because they are
// immutable after registration. The service must outlive the server
// (stop the server first on the way down — the handlers read the
// service from worker threads).
#pragma once

#include <string>

#include "causaliot/obs/alert.hpp"
#include "causaliot/obs/http_server.hpp"
#include "causaliot/obs/time_series.hpp"
#include "causaliot/serve/service.hpp"
#include "causaliot/serve/watchdog.hpp"

namespace causaliot::serve {

struct IntrospectionOptions {
  /// Free-form build/deployment label echoed in /statusz.
  std::string build_label = "causaliot";
  /// When set, /metrics/history serves this store's ring buffers.
  /// Must outlive the server.
  obs::TimeSeriesStore* history = nullptr;
  /// When set, /alertz serves this engine's rule states. Must outlive
  /// the server.
  obs::AlertEngine* alerts = nullptr;
  /// When set, /statusz gains a "watchdog" object. Must outlive the
  /// server.
  Watchdog* watchdog = nullptr;
};

void attach_introspection(obs::HttpServer& server, DetectionService& service,
                          IntrospectionOptions options = {});

}  // namespace causaliot::serve
