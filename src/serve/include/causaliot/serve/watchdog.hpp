// Serve-side self-monitoring: turns the shard workers' liveness
// evidence (DetectionService::ShardProgress) into registry gauges and
// built-in alert rules, so the process notices its own failure modes —
// a wedged worker, a queue pinned at its high watermark, an ingest
// plane rejecting a spike of traffic, a tenant serving off a stale
// snapshot — before an operator does.
//
// refresh(now_ns) is driven by the TimeSeriesStore's pre-sample hook
// (so every history tick carries fresh watchdog gauges), and the
// default_rules() ride the same AlertEngine as user rules. The stall
// detector distinguishes idle from stuck: a frozen heartbeat only
// counts as a stall while the shard queue is non-empty and has stayed
// frozen for stall_seconds.
//
// Exported gauges (all refreshed per tick, never on the event path):
//   serve_watchdog_shard_heartbeat{shard}       items dequeued so far
//   serve_watchdog_shard_stalled{shard}         0 | 1
//   serve_watchdog_queue_saturation_ppm{shard}  depth/capacity * 1e6
//   serve_watchdog_stalled_shards               roll-up
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "causaliot/obs/alert.hpp"
#include "causaliot/obs/registry.hpp"
#include "causaliot/serve/service.hpp"

namespace causaliot::serve {

struct WatchdogConfig {
  /// A non-empty queue whose worker heartbeat has not advanced for this
  /// long is a stalled shard.
  double stall_seconds = 5.0;
  /// Built-in rule: queue saturation (depth / capacity) at or above
  /// this fraction...
  double queue_saturation = 0.8;
  /// ...sustained for this long fires queue_high_watermark.
  double saturation_for_seconds = 5.0;
  /// Built-in rule: total ingest rejects per second over
  /// reject_window_seconds...
  double reject_rate_per_s = 5.0;
  double reject_window_seconds = 10.0;
  /// ...sustained for this long fires ingest_reject_spike.
  double reject_for_seconds = 2.0;
  /// Built-in rule: any tenant serving a snapshot older than this fires
  /// model_snapshot_stale (default one week).
  double snapshot_age_seconds = 7 * 86400.0;
  /// Built-in rule: any single device collecting rank-1 root-cause
  /// blame faster than this over blame_window_seconds...
  double blame_rate_per_s = 1.0;
  double blame_window_seconds = 30.0;
  /// ...sustained for this long fires root_cause_blame_spike.
  double blame_for_seconds = 5.0;
};

class Watchdog {
 public:
  /// Registers the serve_watchdog_* gauges on the service's registry.
  /// The service must outlive the watchdog.
  Watchdog(DetectionService& service, WatchdogConfig config = {});

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// One evaluation pass: samples every shard's progress, advances the
  /// stall tracking, publishes the gauges. One caller at a time (the
  /// sampler thread); internally serialized against json().
  void refresh(std::uint64_t now_ns);

  /// Shards currently considered stalled (as of the last refresh).
  std::size_t stalled_shards() const;

  /// The /statusz fragment: {"stalled_shards": N, "shards": [...]}.
  std::string json(std::uint64_t now_ns) const;

  /// The built-in ruleset `serve` runs when no --alert-rules file is
  /// given: shard_stalled, queue_high_watermark, ingest_reject_spike,
  /// model_snapshot_stale, root_cause_blame_spike — all over metrics
  /// this watchdog (or the existing serve planes) already export.
  std::vector<obs::AlertRule> default_rules() const;

 private:
  struct ShardTrack {
    std::uint64_t heartbeat = 0;
    /// When the heartbeat was last seen advancing (or first observed).
    std::uint64_t changed_ns = 0;
    std::uint64_t queue_depth = 0;
    std::uint64_t last_item_ns = 0;
    bool stalled = false;
  };

  DetectionService& service_;
  WatchdogConfig config_;
  /// Guards tracks_; refresh() writes, json()/stalled_shards() read.
  mutable std::mutex mutex_;
  std::vector<ShardTrack> tracks_;
  std::vector<obs::Gauge*> heartbeat_gauges_;
  std::vector<obs::Gauge*> stalled_gauges_;
  std::vector<obs::Gauge*> saturation_gauges_;
  obs::Gauge* stalled_total_ = nullptr;
};

}  // namespace causaliot::serve
