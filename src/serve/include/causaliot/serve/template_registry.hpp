// Process-wide model-template store for fleet-scale structure sharing.
//
// Fleet deployments ship homes with identical device inventories, so the
// serving plane should pay for one model skeleton per *inventory*, not
// one per tenant. A ModelTemplate is the immutable published form of a
// trained model — (SkeletonRef, base CPT payload, threshold, smoothing,
// version) — registered under a name that the ingestion plane's
// add_tenant control verb can reference ({"op": "add_tenant",
// "tenant": "home-9", "template": "default"}).
//
// publish() interns skeletons by content hash (backed by deep equality,
// so a hash collision can never alias two inventories): two templates
// mined from the same device inventory resolve to one Skeleton object,
// and every tenant instantiated from either holds a shared_ptr to it.
// The intern pool holds weak references — evicting a template (or
// letting every tenant of it drain away) releases the skeleton as soon
// as the last snapshot drops, which the 25-cycle churn suite pins.
//
// instantiate() builds the shared form a tenant actually serves from:
// an InteractionGraph that reads the template's base tables through a
// sparse copy-on-write delta (update_cpts personalizes the delta, never
// the base — see graph/dig.hpp), wrapped in a ModelSnapshot that
// publishes through the existing ModelSlot unchanged.
// instantiate_private() is the escape hatch (`serve --share-templates
// 0`): a full deep copy with no shared state.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "causaliot/graph/skeleton.hpp"
#include "causaliot/serve/model_snapshot.hpp"

namespace causaliot::serve {

struct ModelTemplate {
  std::string name;
  graph::SkeletonRef skeleton;
  graph::CptPayloadRef base_cpts;
  double score_threshold = 1.0;
  double laplace_alpha = 0.0;
  std::uint64_t version = 0;

  /// Full model bytes (skeleton + base payload) — what one private copy
  /// costs, and the fleet pays once.
  std::size_t approx_bytes() const;
};

/// A tenant-servable snapshot sharing the template's skeleton and base
/// (empty delta). Each call returns a fresh snapshot so per-tenant
/// personalization (copy the graph, update_cpts, republish) never
/// aliases another tenant's delta.
std::shared_ptr<const ModelSnapshot> instantiate(
    const ModelTemplate& tpl);

/// Deep-copied private snapshot (no shared state) — the sharing escape
/// hatch, and the baseline side of bench_fleet_memory.
std::shared_ptr<const ModelSnapshot> instantiate_private(
    const ModelTemplate& tpl);

class TemplateRegistry {
 public:
  TemplateRegistry() = default;
  TemplateRegistry(const TemplateRegistry&) = delete;
  TemplateRegistry& operator=(const TemplateRegistry&) = delete;

  /// Freezes `graph` into a template registered under `name`, interning
  /// its skeleton against every previously published one. A shared-mode
  /// graph re-freezes cheaply (skeleton ref reused, effective tables
  /// materialized once). Returns nullptr when the name is taken.
  std::shared_ptr<const ModelTemplate> publish(std::string name,
                                               const graph::InteractionGraph& graph,
                                               double score_threshold,
                                               double laplace_alpha,
                                               std::uint64_t version);

  /// nullptr when unknown.
  std::shared_ptr<const ModelTemplate> find(std::string_view name) const;

  /// Drops the name. Live tenants keep serving from their refs; the
  /// skeleton/base free once the last snapshot drops. False if unknown.
  bool evict(std::string_view name);

  /// Registered templates.
  std::size_t template_count() const;
  /// Distinct live skeletons the intern pool still tracks (expired weak
  /// entries are swept on the way) — < template_count() when templates
  /// share an inventory.
  std::size_t skeleton_count() const;
  /// Bytes of all registered templates' shared components, distinct
  /// skeletons counted once.
  std::size_t shared_bytes() const;

 private:
  graph::SkeletonRef intern_locked(graph::SkeletonRef skeleton);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const ModelTemplate>>
      by_name_;
  /// content hash -> skeletons with that hash (collision list). Weak:
  /// the pool never keeps a skeleton alive by itself.
  mutable std::unordered_map<std::uint64_t,
                             std::vector<std::weak_ptr<const graph::Skeleton>>>
      interned_;
};

}  // namespace causaliot::serve
