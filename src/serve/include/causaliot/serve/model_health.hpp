// Per-tenant model-health telemetry.
//
// The detector is itself a model that degrades under drift: a home whose
// behaviour moves away from the training distribution shows up first as
// a rising anomaly-score level and alarm rate, and a snapshot that has
// not been refreshed for a long time is a maintenance signal even before
// the scores move. ModelHealth maintains, per tenant:
//
//   * an EWMA of the per-event anomaly score (seeded by the first event),
//   * a rolling window of recent events — alarm rates (all alarms and
//     collective chains) and a decile histogram of scores over roughly
//     the last `window_events` events,
//   * snapshot provenance: active/published model versions, events since
//     the active snapshot was adopted, and its age.
//
// Everything is published as labeled gauges on the service registry
// (refresh()), so the same signals appear in /metrics scrapes, and as
// JSON (tenants_json()) for /statusz.
//
// Concurrency: the per-event path (on_event / on_alarm / on_adopted) is
// called only by the owning shard worker — one writer per tenant — while
// scrape threads read concurrently; all shared fields are therefore
// relaxed atomics, and a scrape racing a window-bucket rotation sees a
// value off by at most one bucket, which is fine for telemetry.
// on_published may come from any thread and touches only its own fields.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "causaliot/obs/registry.hpp"
#include "causaliot/util/slot_array.hpp"

namespace causaliot::serve {

struct HealthConfig {
  /// EWMA smoothing for the per-event anomaly score.
  double ewma_alpha = 0.02;
  /// Rolling-window length in events for alarm rates and the score
  /// histogram. Implemented as kWindowBuckets ring buckets, so coverage
  /// is between (1 - 1/kWindowBuckets) * window_events and window_events.
  std::size_t window_events = 4096;
};

class ModelHealth {
 public:
  /// Score-histogram resolution: deciles of the [0, 1] anomaly score.
  static constexpr std::size_t kScoreBins = 10;
  static constexpr std::size_t kWindowBuckets = 8;

  ModelHealth(obs::Registry& registry, HealthConfig config);

  /// Registers tenant `index` (the service's TenantHandle; assigned
  /// densely, never reused). Callable at any time, including on a live
  /// service: the slot directory publishes lock-free, and the caller
  /// (DetectionService) guarantees no per-event call races a tenant's
  /// own registration.
  void add_tenant(std::size_t index, const std::string& name,
                  std::uint64_t model_version);

  /// Marks the tenant removed: refresh() zeroes and then skips its
  /// gauges and tenants_json() omits it. The slot itself survives (a
  /// late scrape holding the index stays safe); view() still answers.
  void on_removed(std::size_t index);

  /// Tenants ever registered, including removed ones.
  std::size_t tenant_count() const {
    return count_.load(std::memory_order_relaxed);
  }

  // --- shard-worker-only, one writer per tenant ---
  void on_event(std::size_t index, double score);
  void on_alarm(std::size_t index, bool collective);
  /// The session adopted a published snapshot at an event boundary.
  void on_adopted(std::size_t index, std::uint64_t version);

  // --- any thread ---
  /// A new snapshot was published (possibly not yet adopted).
  void on_published(std::size_t index, std::uint64_t version);

  /// Point-in-time health view of one tenant (scrape side).
  struct TenantView {
    std::string name;
    std::uint64_t events_total = 0;
    double score_ewma = 0.0;
    // Rolling window.
    std::uint64_t window_events = 0;
    std::uint64_t window_alarms = 0;
    std::uint64_t window_collective = 0;
    double alarm_rate = 0.0;       // window_alarms / window_events
    double collective_rate = 0.0;  // window_collective / window_events
    std::array<std::uint64_t, kScoreBins> score_deciles{};
    // Snapshot provenance.
    std::uint64_t model_version = 0;
    std::uint64_t published_version = 0;
    std::uint64_t events_since_snapshot = 0;
    double snapshot_age_seconds = 0.0;
  };
  TenantView view(std::size_t index) const;

  /// Pushes every tenant's current view into the registry gauges —
  /// called on the scrape path so /metrics and JSONL snapshots carry
  /// fresh values without per-event gauge stores.
  void refresh() const;

  /// JSON array of per-tenant health objects (the /statusz payload's
  /// "tenants" field), windowed to [offset, offset + limit) over the
  /// live tenants in handle order so a 10k-home fleet can be paged.
  /// `live_total`, when given, receives the live-tenant count regardless
  /// of the window. Refreshes nothing; pair with refresh() if the
  /// registry must agree.
  std::string tenants_json(
      std::size_t offset = 0,
      std::size_t limit = std::numeric_limits<std::size_t>::max(),
      std::size_t* live_total = nullptr) const;

 private:
  struct WindowBucket {
    std::atomic<std::uint64_t> events{0};
    std::atomic<std::uint64_t> alarms{0};
    std::atomic<std::uint64_t> collective{0};
    std::array<std::atomic<std::uint64_t>, kScoreBins> score_bins{};
  };

  struct Tenant {
    std::string name;
    std::atomic<bool> removed{false};
    // Writer-side running state (relaxed atomics; single writer).
    std::atomic<std::uint64_t> events_total{0};
    std::atomic<double> ewma{0.0};
    std::array<WindowBucket, kWindowBuckets> buckets;
    std::atomic<std::size_t> active_bucket{0};
    // Snapshot provenance.
    std::atomic<std::uint64_t> adopted_version{0};
    std::atomic<std::uint64_t> adopted_at_ns{0};
    std::atomic<std::uint64_t> events_at_adoption{0};
    std::atomic<std::uint64_t> published_version{0};
    // Registry handles (resolved once at registration).
    obs::Gauge* score_ewma_ppm = nullptr;
    obs::Gauge* alarm_rate_ppm = nullptr;
    obs::Gauge* collective_rate_ppm = nullptr;
    obs::Gauge* events_since_snapshot = nullptr;
    obs::Gauge* snapshot_age_seconds = nullptr;
    obs::Gauge* model_version = nullptr;
  };

  Tenant& tenant(std::size_t index) const;

  obs::Registry& registry_;
  HealthConfig config_;
  std::size_t bucket_capacity_;
  /// Index == TenantHandle. Slots are filled under add_mutex_ and
  /// published lock-free; limit_ (release-stored after a slot is fully
  /// initialized) bounds scrape-side iteration, so a reader never sees
  /// a half-built tenant. Per-event calls are ordered after the
  /// tenant's registration by the service's shard-queue handoff.
  util::SlotArray<Tenant> tenants_;
  std::mutex add_mutex_;
  std::atomic<std::size_t> limit_{0};
  std::atomic<std::size_t> count_{0};
};

}  // namespace causaliot::serve
