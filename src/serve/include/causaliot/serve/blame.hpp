// Fleet-wide root-cause blame aggregation behind /rootcausez.
//
// Every alarm the service delivers carries a ranked RootCauseAttribution
// (detect/root_cause.hpp). The BlameLedger folds those attributions into
// the operator-facing surfaces: per-device fleet totals (how often a
// device was blamed at all, and at rank 1), a last-K ring of full
// attributions per tenant, and the registry counters
// `serve_root_cause_blame_total{tenant,device}` /
// `serve_root_cause_rank1_total{device}` plus the attribution-latency
// histogram — which therefore flow into /metrics, the --metrics-interval
// JSONL, and the TimeSeriesStore history (where the
// root_cause_blame_spike watchdog rule watches them).
//
// record() runs on shard worker threads but only on the alarm path; a
// plain mutex is fine there and keeps the scrape-side reads trivially
// consistent. The no-alarm event hot path never touches the ledger.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "causaliot/detect/root_cause.hpp"
#include "causaliot/obs/registry.hpp"
#include "causaliot/telemetry/device.hpp"

namespace causaliot::serve {

/// Renders an attribution's ranked list as a JSON array — the `root_causes`
/// field of the alarm JSONL and the per-attribution payload of
/// /rootcausez share this shape. `catalog` may be nullptr; devices then
/// render as "device-<id>".
std::string root_causes_json(const detect::RootCauseAttribution& attribution,
                             const telemetry::DeviceCatalog* catalog);

class BlameLedger {
 public:
  /// Registers the aggregate metrics on `registry` (per-tenant and
  /// per-device instances are resolved lazily as devices get blamed).
  /// `catalog` labels blamed devices by name and may be nullptr; it must
  /// outlive the ledger when given. `history_per_tenant` bounds the
  /// last-K attribution ring each tenant keeps for /rootcausez.
  BlameLedger(obs::Registry& registry, const telemetry::DeviceCatalog* catalog,
              std::size_t history_per_tenant);

  BlameLedger(const BlameLedger&) = delete;
  BlameLedger& operator=(const BlameLedger&) = delete;

  /// Folds one delivered alarm's attribution into the ledger. `timestamp`
  /// is the alarm head's stream timestamp, `latency_ns` the measured
  /// attribute_root_cause() cost.
  void record(const std::string& tenant,
              const detect::RootCauseAttribution& attribution,
              double timestamp, std::uint64_t model_version,
              std::uint64_t latency_ns);

  /// Attributions recorded so far.
  std::uint64_t attributions() const;

  /// The /rootcausez payloads: fleet-wide ranked blame table plus the
  /// last-K attributions per tenant. `tenant_filter` non-empty restricts
  /// the per-tenant section to that tenant (the fleet table is global
  /// either way).
  std::string to_json(std::string_view tenant_filter) const;
  std::string to_text(std::string_view tenant_filter) const;

 private:
  struct DeviceStats {
    std::uint64_t blamed = 0;  // appeared anywhere in a ranked list
    std::uint64_t rank1 = 0;   // topped a ranked list
    double score_sum = 0.0;    // over all appearances (avg = sum/blamed)
  };
  struct Record {
    double timestamp = 0.0;
    std::uint64_t model_version = 0;
    std::uint64_t latency_ns = 0;
    detect::RootCauseAttribution attribution;
  };

  std::string device_label(telemetry::DeviceId device) const;

  obs::Registry& registry_;
  const telemetry::DeviceCatalog* catalog_;
  std::size_t history_per_tenant_;
  obs::Counter* attributions_total_;
  obs::Histogram* latency_;

  mutable std::mutex mutex_;
  /// Device-id keys: iteration (and therefore exposition) order is the
  /// deterministic tie-break order.
  std::map<telemetry::DeviceId, DeviceStats> fleet_;
  std::map<std::string, std::deque<Record>> tenants_;
  /// Lazily resolved labeled counter handles, cached so the alarm path
  /// pays the registry lookup once per (tenant, device) / device.
  std::map<std::pair<std::string, telemetry::DeviceId>, obs::Counter*>
      blame_counters_;
  std::map<telemetry::DeviceId, obs::Counter*> rank1_counters_;
};

}  // namespace causaliot::serve
