// The ingestion plane's protocol core: one shared line handler behind
// stdin, raw-TCP JSONL, and HTTP `POST /ingest`.
//
// Every transport reduces to the same unit of work — "here is one JSONL
// line, route it" — so the parsing, tenant resolution, rejection
// accounting, and control verbs live here exactly once. A line is
// either an event:
//
//   {"tenant": "home-0", "device": "pe_kitchen", "value": 1,
//    "timestamp": 12.5}
//
// or a control verb on the running service:
//
//   {"op": "add_tenant", "tenant": "home-9"}
//   {"op": "add_tenant", "tenant": "home-9", "template": "default"}
//   {"op": "remove_tenant", "tenant": "home-9"}
//
// The scanner is a zero-allocation flat-JSON field walk (string_view
// slices into the line, std::from_chars for numbers) because the parse
// is the per-event cost floor of the whole plane: the detection path
// behind it is O(1), so a general-purpose parser would dominate the
// throughput budget.
//
// The protocol is quiet on success for events (response_line() returns
// nullopt) and explicit for everything else ("OK ..." / "ERR <reason>"),
// matching net::LineProtocolServer's batched-response model. Every
// rejected line increments serve_ingest_rejected_total{reason}, so a
// misbehaving producer is visible in /metrics no matter which transport
// it used.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "causaliot/serve/service.hpp"
#include "causaliot/telemetry/device.hpp"

namespace causaliot::obs {
class HttpServer;
}  // namespace causaliot::obs

namespace causaliot::serve {

/// Fields of one flat JSONL ingest line. String views alias the scanned
/// line and are valid only while it is.
struct IngestFields {
  std::string_view op;
  std::string_view tenant;
  std::string_view device;
  /// "template" on the wire (a C++ keyword): the model template an
  /// add_tenant verb instantiates from.
  std::string_view template_name;
  double value = 0.0;
  double timestamp = 0.0;
  bool has_op = false;
  bool has_tenant = false;
  bool has_device = false;
  bool has_template = false;
  bool has_value = false;
  bool has_timestamp = false;
};

/// Scans one `{"key": value, ...}` object — string and number values,
/// no nesting, unknown keys skipped. Returns false on malformed input.
/// Escapes inside strings are not processed (device/tenant names are
/// identifiers); a name containing `\"` simply fails to match anything.
bool scan_ingest_line(std::string_view line, IngestFields& out);

struct IngestConfig {
  /// Model snapshot given to tenants created via the add_tenant control
  /// verb / POST /tenants (a deployment would load per-tenant models;
  /// the plane's job is the lifecycle, not the model store).
  std::shared_ptr<const ModelSnapshot> model;
  /// Initial phantom state for dynamically added tenants.
  std::vector<std::uint8_t> initial_state;
  /// Tenant used for event lines without a "tenant" field ("" = such
  /// lines are rejected as unknown-tenant). Keeps the pre-existing
  /// single-tenant stdin contract working unchanged.
  std::string default_tenant;
  /// Template used by add_tenant verbs without a "template" field ("" =
  /// fall back to the static `model` snapshot above). Requires the
  /// service to be configured with a TemplateRegistry.
  std::string default_template;
};

/// Thread-safe line router shared by all ingestion transports.
class IngestRouter {
 public:
  enum class Outcome : std::uint8_t {
    kBlank,          // empty line; not counted
    kAccepted,       // event queued
    kParseError,     // malformed line or missing event field
    kUnknownTenant,  // tenant (or default) names no live tenant
    kUnknownDevice,  // device name not in the catalog
    kOverflow,       // shard queue full under kReject
    kClosed,         // service shut down
    kControlOk,      // control verb applied
    kControlFailed,  // control verb refused (see reason)
  };

  struct LineResult {
    Outcome outcome = Outcome::kBlank;
    /// Static reason token for ERR responses and rejection labels.
    const char* reason = nullptr;
  };

  /// Counters live on `service.registry()`. `catalog` must outlive the
  /// router (device names are indexed by reference).
  IngestRouter(DetectionService& service,
               const telemetry::DeviceCatalog& catalog, IngestConfig config);

  /// Parses and routes one line. Callable concurrently from any number
  /// of transport workers.
  LineResult handle_line(std::string_view line);

  /// Wire response for a result: nullopt for the quiet paths (blank,
  /// accepted event), "OK <op>" for controls, "ERR <reason>" otherwise.
  static std::optional<std::string> response_line(const LineResult& result);

  /// Control-verb implementations, shared with the HTTP tenant routes.
  /// An empty `template_name` falls back to config.default_template,
  /// then to the static config.model snapshot. On failure `reason`
  /// (when non-null) receives the rejection token ("tenant-exists" or
  /// "unknown-template").
  bool add_tenant(std::string_view name, std::string_view template_name = {},
                  const char** reason = nullptr);
  bool remove_tenant(std::string_view name);

  DetectionService& service() { return service_; }

  // Test/diagnostic visibility (counter values, relaxed).
  std::uint64_t lines_total() const;
  std::uint64_t accepted_total() const;
  std::uint64_t rejected_total() const;

 private:
  DetectionService& service_;
  const telemetry::DeviceCatalog& catalog_;
  IngestConfig config_;
  /// Device name -> id; keys alias catalog strings. Built once — the
  /// catalog's linear find() would be the hot path otherwise.
  std::unordered_map<std::string_view, telemetry::DeviceId> device_index_;
  obs::Counter* lines_ = nullptr;
  obs::Counter* accepted_ = nullptr;
  obs::Counter* rejected_parse_ = nullptr;
  obs::Counter* rejected_unknown_tenant_ = nullptr;
  obs::Counter* rejected_unknown_device_ = nullptr;
  obs::Counter* rejected_overflow_ = nullptr;
  obs::Counter* rejected_closed_ = nullptr;
  obs::Counter* control_add_ok_ = nullptr;
  obs::Counter* control_add_err_ = nullptr;
  obs::Counter* control_remove_ok_ = nullptr;
  obs::Counter* control_remove_err_ = nullptr;
};

/// Registers the ingestion routes on an HTTP plane:
///   POST   /ingest         JSONL batch body; 200 with a tally, or 503
///                          when any line hit backpressure/shutdown.
///   POST   /tenants        {"tenant": "name"}; 200, or 409 duplicate.
///   DELETE /tenants/{name} 200, or 404 unknown.
/// Call before http.start(); `router` must outlive the server.
void attach_ingest(obs::HttpServer& http, IngestRouter& router);

}  // namespace causaliot::serve
