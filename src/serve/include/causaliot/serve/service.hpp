// Streaming multi-tenant detection service.
//
// The missing layer between the miner and a deployment: many independent
// homes (tenant sessions), each an O(1)-per-event Event Monitor, sharded
// over N worker threads. Producers submit(), which routes the event to
// the owning shard's bounded queue; the shard worker is the single
// consumer and the only thread that touches its sessions, so the entire
// detection path is lock-free beyond the queue handoff.
//
//   serve::DetectionService service(config, [](const ServedAlarm& a) {...});
//   auto home = service.add_tenant("home-0", snapshot, initial_state);
//   service.start();
//   service.submit(home, event);            // any thread
//   service.swap_model(home, new_snapshot); // any thread, no pause
//   service.shutdown();                     // drain queues, flush windows
//
// Backpressure is explicit (util::BoundedQueue policy per shard) and
// counted; hot model swap is an atomic snapshot publication adopted at
// the session's next event boundary; shutdown() closes the queues,
// drains every queued event, then flushes each session's pending
// Algorithm 2 window — nothing accepted is ever silently discarded.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "causaliot/obs/registry.hpp"
#include "causaliot/preprocess/series.hpp"
#include "causaliot/serve/metrics.hpp"
#include "causaliot/serve/model_health.hpp"
#include "causaliot/serve/session.hpp"
#include "causaliot/util/bounded_queue.hpp"

namespace causaliot::serve {

struct ServiceConfig {
  /// Worker threads; tenants are spread round-robin over shards.
  std::size_t shard_count = 1;
  /// Bounded event-queue capacity per shard.
  std::size_t queue_capacity = 4096;
  /// What a full shard queue does to producers.
  util::OverflowPolicy overflow = util::OverflowPolicy::kBlock;
  /// Per-session Algorithm 2 / alarm-filter settings.
  SessionConfig session;
  /// Metric registry hosting this service's counters. nullptr gives the
  /// service a private registry (isolated: the right default for tests
  /// and embedded use); the CLI passes &obs::Registry::global().
  obs::Registry* registry = nullptr;
  /// Emit obs spans (enqueue wait, monitor step, alarm emit) for every
  /// Nth submitted event; 0 disables sampling — the hot path then pays
  /// one predictable branch per event.
  std::size_t trace_sample_every = 0;
  /// Per-tenant model-health telemetry (score EWMA smoothing, rolling
  /// alarm-rate window).
  HealthConfig health;
};

/// Opaque tenant identifier returned by add_tenant.
using TenantHandle = std::uint32_t;

/// An alarm leaving the service, decorated for delivery.
struct ServedAlarm {
  TenantHandle tenant = 0;
  std::string tenant_name;
  detect::AnomalyReport report;
  detect::AlarmSeverity severity = detect::AlarmSeverity::kNotice;
  std::size_t suppressed_duplicates = 0;
  /// Version of the ModelSnapshot that scored the anomaly.
  std::uint64_t model_version = 0;
  /// Score threshold c of that snapshot — provenance for "how far over
  /// the line was this?" (margin = score - threshold).
  double score_threshold = 0.0;
};

/// Invoked from shard worker threads (and from shutdown() for flushed
/// windows). Must be thread-safe; keep it fast — it runs on the
/// detection path.
using AlarmCallback = std::function<void(const ServedAlarm&)>;

class DetectionService {
 public:
  DetectionService(ServiceConfig config, AlarmCallback on_alarm);
  /// Calls shutdown() if the service is still running.
  ~DetectionService();

  DetectionService(const DetectionService&) = delete;
  DetectionService& operator=(const DetectionService&) = delete;

  /// Registers a home before start(). `initial_state` seeds the phantom
  /// state machine (size must match the model's device count).
  TenantHandle add_tenant(std::string name,
                          std::shared_ptr<const ModelSnapshot> model,
                          std::vector<std::uint8_t> initial_state);

  /// Handle lookup by registration name; kInvalidTenant when unknown.
  static constexpr TenantHandle kInvalidTenant = ~TenantHandle{0};
  TenantHandle find_tenant(std::string_view name) const;

  /// Spawns the shard workers. Events submitted before start() queue up
  /// (subject to the overflow policy) and are processed once it runs.
  void start();

  enum class SubmitResult : std::uint8_t {
    kAccepted,  // queued (under kDropOldest possibly at a victim's cost)
    kRejected,  // full queue under kReject; event not queued
    kClosed,    // service shutting down; event not queued
  };

  /// Routes `event` to the tenant's shard. Callable from any thread.
  /// Under kBlock this may wait for queue space (lossless backpressure).
  SubmitResult submit(TenantHandle tenant,
                      const preprocess::BinaryEvent& event);

  /// Publishes a new model for one tenant without pausing ingestion;
  /// adopted at that session's next event boundary. Any thread.
  void swap_model(TenantHandle tenant,
                  std::shared_ptr<const ModelSnapshot> model);

  /// Graceful drain: stops accepting events, processes everything queued,
  /// joins the workers, then flushes each session's pending anomaly
  /// window through the alarm callback. Idempotent.
  void shutdown();

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t tenant_count() const { return tenants_.size(); }
  const TenantSession& session(TenantHandle tenant) const;

  /// Readiness for the introspection plane: true from the moment start()
  /// has spawned every shard worker (each tenant holds a loaded model
  /// snapshot by construction) until shutdown() begins draining.
  bool ready() const { return ready_.load(std::memory_order_acquire); }

  /// Per-tenant model-health telemetry (score EWMA, rolling alarm rates,
  /// snapshot age) backing /statusz and the serve_tenant_* gauges.
  const ModelHealth& health() const { return health_; }

  /// One JSON object for /statusz: service summary (readiness, uptime,
  /// shard/tenant counts, throughput counters) + per-tenant model health.
  /// Refreshes the queue-depth and health gauges as a side effect, like
  /// every other scrape entry point.
  std::string status_json() const;

  /// Prometheus text of the service registry with queue-depth and
  /// model-health gauges refreshed first — the /metrics payload.
  std::string prometheus() const;

  /// Point-in-time counters + latency quantiles (see metrics.hpp).
  ServiceStats stats() const;
  std::string stats_json() const { return stats().to_json(); }

  /// The registry hosting this service's metrics (the config-supplied
  /// one, or the service-private default). Queue-depth gauges are
  /// refreshed on every stats()/registry_json() call.
  obs::Registry& registry() const { return *registry_; }
  /// Registry snapshot as one compact JSON object (JSONL-friendly).
  std::string registry_json() const;

 private:
  struct ShardItem {
    TenantSession* session = nullptr;
    TenantHandle handle = 0;
    preprocess::BinaryEvent event;
    std::uint64_t enqueue_ns = 0;
    /// Sampled for span tracing (see ServiceConfig::trace_sample_every).
    bool traced = false;
  };

  struct Shard {
    Shard(std::size_t capacity, util::OverflowPolicy policy)
        : queue(capacity, policy) {}
    util::BoundedQueue<ShardItem> queue;
    std::vector<std::unique_ptr<TenantSession>> sessions;
    std::thread worker;
    /// Per-shard labeled registry handles.
    obs::Counter* processed = nullptr;
    obs::Gauge* queue_depth = nullptr;
  };

  void worker_loop(Shard& shard);
  void process_item(Shard& shard, ShardItem& item);
  void deliver(TenantHandle handle, TenantSession& session,
               detect::AnomalyReport report);
  void refresh_queue_gauges() const;

  ServiceConfig config_;
  AlarmCallback on_alarm_;
  std::unique_ptr<obs::Registry> own_registry_;
  obs::Registry* registry_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// handle -> session (sessions are owned by their shard; the vector is
  /// immutable after start(), so workers read it without locking).
  std::vector<TenantSession*> tenants_;
  /// handle -> per-tenant alarm counter (same immutability argument).
  std::vector<obs::Counter*> tenant_alarms_;
  Metrics metrics_;
  ModelHealth health_;
  std::atomic<std::uint64_t> trace_counter_{0};
  std::atomic<bool> ready_{false};
  std::uint64_t started_at_ns_ = 0;
  bool started_ = false;
  bool stopped_ = false;
};

/// Replays a recorded (already discretized) trace into every listed
/// tenant, preserving per-tenant event order. speedup scales trace time
/// to wall time (2 = twice as fast as recorded); 0 replays as fast as
/// the backpressure policy allows.
struct ReplayOptions {
  double speedup = 0.0;
};

struct ReplayStats {
  std::size_t submitted = 0;
  std::size_t rejected = 0;
};

ReplayStats replay_trace(DetectionService& service,
                         std::span<const TenantHandle> tenants,
                         std::span<const preprocess::BinaryEvent> events,
                         const ReplayOptions& options = {});

}  // namespace causaliot::serve
