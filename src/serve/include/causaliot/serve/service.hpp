// Streaming multi-tenant detection service.
//
// The missing layer between the miner and a deployment: many independent
// homes (tenant sessions), each an O(1)-per-event Event Monitor, sharded
// over N worker threads. Producers submit(), which routes the event to
// the owning shard's bounded queue; the shard worker is the single
// consumer and the only thread that touches its sessions, so the entire
// detection path is lock-free beyond the queue handoff.
//
//   serve::DetectionService service(config, [](const ServedAlarm& a) {...});
//   auto home = service.add_tenant("home-0", snapshot, initial_state);
//   service.start();
//   service.submit(home, event);            // any thread
//   service.swap_model(home, new_snapshot); // any thread, no pause
//   auto late = service.add_tenant(...);    // any thread, live service
//   service.remove_tenant(home);            // any thread, live service
//   service.shutdown();                     // drain queues, flush windows
//
// Backpressure is explicit (util::BoundedQueue policy per shard) and
// counted; hot model swap is an atomic snapshot publication adopted at
// the session's next event boundary; shutdown() closes the queues,
// drains every queued event, then flushes each session's pending
// Algorithm 2 window — nothing accepted is ever silently discarded.
//
// Tenant churn on a running service preserves the single-writer worker
// invariant by riding the shard queues: add_tenant/remove_tenant/
// swap_model enqueue control messages (an unbounded side lane of the
// same FIFO, so kReject cannot lose one and kBlock cannot stall one),
// and only the owning shard worker ever touches a session. The
// submit-path directory is a lock-free util::SlotArray: routing an
// event is two acquire loads, no reference counting, no global pause.
// Removal tombstones the directory entry first, so events already
// queued behind the RemoveTenant control are counted as orphaned
// rather than touching a destroyed session.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "causaliot/obs/registry.hpp"
#include "causaliot/preprocess/series.hpp"
#include "causaliot/serve/blame.hpp"
#include "causaliot/serve/metrics.hpp"
#include "causaliot/serve/model_health.hpp"
#include "causaliot/serve/session.hpp"
#include "causaliot/serve/template_registry.hpp"
#include "causaliot/util/bounded_queue.hpp"
#include "causaliot/util/slot_array.hpp"

namespace causaliot::serve {

struct ServiceConfig {
  /// Worker threads; tenants are spread round-robin over shards.
  std::size_t shard_count = 1;
  /// Bounded event-queue capacity per shard.
  std::size_t queue_capacity = 4096;
  /// What a full shard queue does to producers.
  util::OverflowPolicy overflow = util::OverflowPolicy::kBlock;
  /// Per-session Algorithm 2 / alarm-filter settings.
  SessionConfig session;
  /// Metric registry hosting this service's counters. nullptr gives the
  /// service a private registry (isolated: the right default for tests
  /// and embedded use); the CLI passes &obs::Registry::global().
  obs::Registry* registry = nullptr;
  /// Emit obs spans (enqueue wait, monitor step, alarm emit) for every
  /// Nth submitted event; 0 disables sampling — the hot path then pays
  /// one predictable branch per event.
  std::size_t trace_sample_every = 0;
  /// Per-tenant model-health telemetry (score EWMA smoothing, rolling
  /// alarm-rate window).
  HealthConfig health;
  /// Artificial per-event processing delay in microseconds. 0 (the only
  /// sane production value) is a single predictable branch; anything
  /// else slows the workers down deterministically so ops drills and CI
  /// smokes can saturate a tiny queue and watch the watchdog/alert
  /// plane fire without racing the real detection speed.
  std::uint32_t debug_event_delay_us = 0;
  /// Device catalog labeling blamed devices in the root-cause plane
  /// (blame counters, /rootcausez). nullptr labels by numeric id
  /// ("device-7"); when given it must outlive the service.
  const telemetry::DeviceCatalog* catalog = nullptr;
  /// Last-K full attributions retained per tenant for /rootcausez.
  std::size_t root_cause_history = 8;
  /// Model-template store backing the by-name add_tenant overload and the
  /// ingest plane's {"op": "add_tenant", "template": ...} verb. nullptr
  /// disables template lookup (by-name adds fail); when given it must
  /// outlive the service.
  TemplateRegistry* templates = nullptr;
  /// When true (default), template-instantiated tenants share the
  /// template's skeleton and base CPT payload through copy-on-write
  /// deltas; false deep-copies every instantiation — the escape hatch
  /// behind `serve --share-templates 0`, and the baseline side of
  /// bench_fleet_memory. Alarms are bit-identical either way.
  bool share_templates = true;
};

/// Opaque tenant identifier returned by add_tenant.
using TenantHandle = std::uint32_t;

/// An alarm leaving the service, decorated for delivery.
struct ServedAlarm {
  TenantHandle tenant = 0;
  std::string tenant_name;
  detect::AnomalyReport report;
  detect::AlarmSeverity severity = detect::AlarmSeverity::kNotice;
  std::size_t suppressed_duplicates = 0;
  /// Version of the ModelSnapshot that scored the anomaly.
  std::uint64_t model_version = 0;
  /// Score threshold c of that snapshot — provenance for "how far over
  /// the line was this?" (margin = score - threshold).
  double score_threshold = 0.0;
  /// Ranked root-cause attribution computed under the same snapshot
  /// (non-empty whenever the report has at least one entry).
  detect::RootCauseAttribution root_causes;
};

/// Invoked from shard worker threads (and from shutdown() for flushed
/// windows). Must be thread-safe; keep it fast — it runs on the
/// detection path.
using AlarmCallback = std::function<void(const ServedAlarm&)>;

class DetectionService {
 public:
  DetectionService(ServiceConfig config, AlarmCallback on_alarm);
  /// Calls shutdown() if the service is still running.
  ~DetectionService();

  DetectionService(const DetectionService&) = delete;
  DetectionService& operator=(const DetectionService&) = delete;

  /// Registers a home — before start() or on a running service, from
  /// any thread. `initial_state` seeds the phantom state machine (size
  /// must match the model's device count). Returns kInvalidTenant when
  /// the name is already live or the service has shut down. On a
  /// running service the session reaches its shard as a control
  /// message; events submitted after add_tenant returns are guaranteed
  /// to land behind it in the shard FIFO.
  TenantHandle add_tenant(std::string name,
                          std::shared_ptr<const ModelSnapshot> model,
                          std::vector<std::uint8_t> initial_state);

  /// Registers a home from a named template in config.templates
  /// (structure-shared under share_templates, deep-copied otherwise).
  /// An empty `initial_state` defaults to all-zeros of the template's
  /// device count. kInvalidTenant when no registry is configured, the
  /// template is unknown, or the snapshot overload would refuse.
  TenantHandle add_tenant(std::string name, std::string_view template_name,
                          std::vector<std::uint8_t> initial_state = {});

  /// Unregisters a live tenant from any thread, with no pause: the
  /// directory entry is tombstoned (submit() answers kUnknownTenant
  /// from that instant), the name becomes reusable, and the owning
  /// shard worker flushes the session's pending anomaly window through
  /// the alarm callback before destroying it. Events still queued
  /// behind the removal are counted as orphaned. False when the handle
  /// never existed, was already removed, or the service has shut down.
  bool remove_tenant(TenantHandle tenant);

  /// Handle lookup by registration name; kInvalidTenant when unknown.
  static constexpr TenantHandle kInvalidTenant = ~TenantHandle{0};
  TenantHandle find_tenant(std::string_view name) const;

  /// Spawns the shard workers. Events submitted before start() queue up
  /// (subject to the overflow policy) and are processed once it runs.
  void start();

  enum class SubmitResult : std::uint8_t {
    kAccepted,       // queued (under kDropOldest possibly at a victim's cost)
    kRejected,       // full queue under kReject; event not queued
    kClosed,         // service shutting down; event not queued
    kUnknownTenant,  // handle names no live tenant; event not queued
  };

  /// Routes `event` to the tenant's shard. Callable from any thread.
  /// Under kBlock this may wait for queue space (lossless backpressure).
  SubmitResult submit(TenantHandle tenant,
                      const preprocess::BinaryEvent& event);

  /// Publishes a new model for one tenant without pausing ingestion;
  /// adopted at that session's next event boundary. Any thread.
  void swap_model(TenantHandle tenant,
                  std::shared_ptr<const ModelSnapshot> model);

  /// Graceful drain: stops accepting events, processes everything queued,
  /// joins the workers, then flushes each session's pending anomaly
  /// window through the alarm callback. Idempotent.
  void shutdown();

  std::size_t shard_count() const { return shards_.size(); }
  /// Live tenants (added minus removed).
  std::size_t tenant_count() const {
    return tenants_active_.load(std::memory_order_relaxed);
  }
  /// The live tenant's session. Only race-free while no shard worker is
  /// processing that tenant (pre-start, post-shutdown, or externally
  /// quiesced) — the test/diagnostic surface it has always been.
  const TenantSession& session(TenantHandle tenant) const;

  /// Readiness for the introspection plane: true from the moment start()
  /// has spawned every shard worker (each tenant holds a loaded model
  /// snapshot by construction) until shutdown() begins draining.
  bool ready() const { return ready_.load(std::memory_order_acquire); }

  /// Per-tenant model-health telemetry (score EWMA, rolling alarm rates,
  /// snapshot age) backing /statusz and the serve_tenant_* gauges.
  const ModelHealth& health() const { return health_; }

  /// Fleet-wide root-cause blame aggregation (the /rootcausez backing
  /// store and the serve_root_cause_* counters).
  const BlameLedger& blame() const { return blame_; }

  /// Liveness evidence one shard worker publishes as it runs: the
  /// heartbeat advances once per dequeued item (events and controls
  /// alike), last_item_ns is the completion timestamp of the newest
  /// processed event. A queue_depth > 0 paired with a frozen heartbeat
  /// is the watchdog's definition of a stalled worker — an empty queue
  /// with no heartbeat is merely idle.
  struct ShardProgress {
    std::uint64_t heartbeat = 0;
    std::uint64_t last_item_ns = 0;
    std::size_t queue_depth = 0;
  };
  ShardProgress shard_progress(std::size_t shard) const;
  std::size_t queue_capacity() const { return config_.queue_capacity; }

  /// Refreshes every scrape-derived gauge (queue depths + model health)
  /// without serializing anything — the TimeSeriesStore pre-sample hook,
  /// and what every scrape entry point calls first.
  void refresh_gauges() const {
    refresh_queue_gauges();
    refresh_model_gauges();
    health_.refresh();
  }

  /// Fleet model-memory accounting (the serve_model_* gauges).
  /// resident_bytes counts every distinct model component once —
  /// skeletons, base CPT payloads, and per-snapshot deltas are keyed by
  /// pointer identity, so N tenants of one template pay the skeleton and
  /// base a single time. private_equivalent_bytes is what the same fleet
  /// would cost with sharing off (every tenant's full footprint summed).
  /// Both are publication-time estimates: a delta that grows later via
  /// update_cpts is re-measured at its next swap_model.
  struct ModelStats {
    std::size_t resident_bytes = 0;
    std::size_t private_equivalent_bytes = 0;
    std::size_t templates = 0;
    double dedup_ratio = 1.0;  // private_equivalent / resident
  };
  ModelStats model_stats() const;

  /// Default per-tenant window in status_json — /statusz stays bounded
  /// on 10k-tenant fleets; page with ?offset=&limit=.
  static constexpr std::size_t kDefaultTenantWindow = 100;

  /// One JSON object for /statusz: service summary (readiness, uptime,
  /// shard/tenant counts, throughput counters), fleet model-memory
  /// stats, and a paginated per-tenant model-health window
  /// ([tenant_offset, tenant_offset + tenant_limit) over live tenants,
  /// with the window echoed in "tenant_window"). Refreshes the
  /// queue-depth and health gauges as a side effect, like every other
  /// scrape entry point.
  std::string status_json(std::size_t tenant_offset = 0,
                          std::size_t tenant_limit = kDefaultTenantWindow)
      const;

  /// Prometheus text of the service registry with queue-depth and
  /// model-health gauges refreshed first — the /metrics payload.
  std::string prometheus() const;

  /// Point-in-time counters + latency quantiles (see metrics.hpp).
  ServiceStats stats() const;
  std::string stats_json() const { return stats().to_json(); }

  /// The registry hosting this service's metrics (the config-supplied
  /// one, or the service-private default). Queue-depth gauges are
  /// refreshed on every stats()/registry_json() call.
  obs::Registry& registry() const { return *registry_; }
  /// Registry snapshot as one compact JSON object (JSONL-friendly).
  std::string registry_json() const;

 private:
  /// One queue entry: an event for a tenant, or an in-band control
  /// message. Controls enter through push_unbounded (never rejected,
  /// never blocking) and are shielded from kDropOldest eviction by the
  /// queue's evict filter, so lifecycle operations survive any
  /// backpressure policy.
  struct ShardItem {
    enum class Kind : std::uint8_t {
      kEvent,
      kAddTenant,     // session carries the new tenant's session
      kRemoveTenant,  // flush + destroy the session for `handle`
      kSwapModel,     // model carries the snapshot to publish
    };
    Kind kind = Kind::kEvent;
    TenantHandle handle = 0;
    preprocess::BinaryEvent event;
    std::uint64_t enqueue_ns = 0;
    /// Sampled for span tracing (see ServiceConfig::trace_sample_every).
    bool traced = false;
    std::unique_ptr<TenantSession> session;
    std::shared_ptr<const ModelSnapshot> model;
  };

  struct Shard {
    Shard(std::size_t capacity, util::OverflowPolicy policy)
        : queue(capacity, policy, [](const ShardItem& item) {
            return item.kind == ShardItem::Kind::kEvent;
          }) {}
    util::BoundedQueue<ShardItem> queue;
    /// handle -> session. Owned and touched exclusively by the shard
    /// worker once start() ran (the single-writer invariant); mutated
    /// directly only pre-start/post-join under directory_mutex_.
    std::unordered_map<TenantHandle, std::unique_ptr<TenantSession>> sessions;
    std::thread worker;
    /// Watchdog evidence (see ShardProgress). Written by the worker
    /// only; relaxed is enough — the watchdog compares successive
    /// samples, it never orders against other memory.
    std::atomic<std::uint64_t> heartbeat{0};
    std::atomic<std::uint64_t> last_item_ns{0};
    /// Per-shard labeled registry handles.
    obs::Counter* processed = nullptr;
    obs::Counter* orphaned = nullptr;
    obs::Gauge* queue_depth = nullptr;
  };

  /// Submit-path directory entry. Published to the SlotArray only after
  /// the session's AddTenant control is in the shard FIFO, so no event
  /// can ever be queued ahead of its session's creation. Removal flips
  /// `alive` before the RemoveTenant control is queued — the mirror
  /// guarantee: no event is queued behind the session's destruction.
  struct TenantMeta {
    TenantMeta(std::string name_in, std::size_t shard_in,
               obs::Counter* alarms_in, TenantSession* session_in)
        : name(std::move(name_in)), shard(shard_in), alarms(alarms_in),
          session(session_in) {}
    const std::string name;
    const std::size_t shard;
    obs::Counter* const alarms;
    /// Stable pointer into the owning shard's session map; dangles once
    /// `alive` is false (see session()).
    TenantSession* const session;
    std::atomic<bool> alive{true};
  };

  void worker_loop(Shard& shard);
  void process_item(Shard& shard, ShardItem& item);
  void process_event(Shard& shard, ShardItem& item);
  void deliver(TenantHandle handle, TenantSession& session,
               detect::AnomalyReport report);
  void refresh_queue_gauges() const;
  void refresh_model_gauges() const;
  /// Charges `tenant` for `model`'s footprint: shared components
  /// (skeleton, base payload, the snapshot's own delta) are refcounted
  /// by pointer identity so each distinct object bills resident bytes
  /// exactly once. Caller holds directory_mutex_.
  void account_model_locked(TenantHandle tenant,
                            const std::shared_ptr<const ModelSnapshot>& model);
  void unaccount_model_locked(TenantHandle tenant);

  ServiceConfig config_;
  AlarmCallback on_alarm_;
  std::unique_ptr<obs::Registry> own_registry_;
  obs::Registry* registry_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// handle -> meta. Lock-free on the submit path; slots are tombstoned
  /// on removal, never freed, so a stale handle reads as dead instead
  /// of dangling. Handles are assigned densely and never reused.
  util::SlotArray<TenantMeta> metas_;
  /// Serializes lifecycle (add/remove/start/shutdown) and guards
  /// by_name_; never taken on the event path.
  mutable std::mutex directory_mutex_;
  std::unordered_map<std::string, TenantHandle> by_name_;
  std::atomic<TenantHandle> tenant_limit_{0};
  std::atomic<std::size_t> tenants_active_{0};
  Metrics metrics_;
  ModelHealth health_;
  BlameLedger blame_;
  /// Model-memory accounting (guarded by directory_mutex_; totals are
  /// atomics so scrapes read without the lock). Components are keyed by
  /// object address — a skeleton shared by 10k tenants is one entry with
  /// refs == 10000 and its bytes counted once.
  struct ModelComponent {
    std::size_t bytes = 0;
    std::size_t refs = 0;
  };
  struct ModelAccount {
    std::vector<const void*> components;
    std::size_t equiv_bytes = 0;
  };
  std::unordered_map<const void*, ModelComponent> model_components_;
  std::unordered_map<TenantHandle, ModelAccount> model_accounts_;
  std::atomic<std::size_t> model_resident_bytes_{0};
  std::atomic<std::size_t> model_equiv_bytes_{0};
  obs::Gauge* model_resident_gauge_ = nullptr;
  obs::Gauge* model_equiv_gauge_ = nullptr;
  obs::Gauge* model_templates_gauge_ = nullptr;
  obs::Gauge* model_dedup_gauge_ = nullptr;
  std::atomic<std::uint64_t> trace_counter_{0};
  std::atomic<bool> ready_{false};
  std::uint64_t started_at_ns_ = 0;
  /// Guarded by directory_mutex_.
  bool started_ = false;
  bool stopped_ = false;
};

/// Replays a recorded (already discretized) trace into every listed
/// tenant, preserving per-tenant event order. speedup scales trace time
/// to wall time (2 = twice as fast as recorded); 0 replays as fast as
/// the backpressure policy allows.
struct ReplayOptions {
  double speedup = 0.0;
};

struct ReplayStats {
  std::size_t submitted = 0;
  std::size_t rejected = 0;
};

ReplayStats replay_trace(DetectionService& service,
                         std::span<const TenantHandle> tenants,
                         std::span<const preprocess::BinaryEvent> events,
                         const ReplayOptions& options = {});

}  // namespace causaliot::serve
