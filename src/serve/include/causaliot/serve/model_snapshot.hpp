// Immutable, atomically swappable detection models.
//
// A serving session must keep detecting while a retrained model (drift
// adaptation via `update_cpts`, or a full re-mine) is rolled out. The
// unit of rollout is a ModelSnapshot: the DIG plus its calibrated score
// threshold, frozen at publication. Sessions hold snapshots through a
// ModelSlot — an atomic shared_ptr — so a publisher thread can install a
// new snapshot without pausing ingestion, and a worker mid-event keeps
// the old snapshot alive through its own reference until it reaches the
// next event boundary.
//
// Memory-ordering argument (see DESIGN.md §3c): the publisher fully
// constructs the snapshot before ModelSlot::store (release); a worker's
// ModelSlot::load (acquire) that observes the new pointer therefore
// observes every write that built the model. The snapshot is never
// mutated after publication, so workers need no further synchronization,
// and the shared_ptr refcount retires the old model only after the last
// in-flight reader drops it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "causaliot/graph/dig.hpp"

namespace causaliot::serve {

struct ModelSnapshot {
  graph::InteractionGraph graph;
  /// Score threshold c calibrated for this graph (Definition 2).
  double score_threshold = 1.0;
  /// CPT Laplace smoothing used at detection time.
  double laplace_alpha = 0.0;
  /// Publisher-assigned monotonic version, carried on alarms for
  /// observability ("which model raised this?").
  std::uint64_t version = 0;
};

inline std::shared_ptr<const ModelSnapshot> make_snapshot(
    graph::InteractionGraph graph, double score_threshold,
    double laplace_alpha = 0.0, std::uint64_t version = 0) {
  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->graph = std::move(graph);
  snapshot->score_threshold = score_threshold;
  snapshot->laplace_alpha = laplace_alpha;
  snapshot->version = version;
  return snapshot;
}

/// One session's current model. store() may race with load() freely;
/// both are wait-free on libstdc++'s atomic<shared_ptr> fast path.
class ModelSlot {
 public:
  explicit ModelSlot(std::shared_ptr<const ModelSnapshot> initial)
      : current_(std::move(initial)) {}

  ModelSlot(const ModelSlot&) = delete;
  ModelSlot& operator=(const ModelSlot&) = delete;

  std::shared_ptr<const ModelSnapshot> load() const {
    return current_.load(std::memory_order_acquire);
  }

  void store(std::shared_ptr<const ModelSnapshot> next) {
    current_.store(std::move(next), std::memory_order_release);
  }

 private:
  std::atomic<std::shared_ptr<const ModelSnapshot>> current_;
};

}  // namespace causaliot::serve
