// One tenant's detection state: a home.
//
// A TenantSession bundles everything that is per-home at runtime — the
// active ModelSnapshot, the EventMonitor (phantom state machine +
// Algorithm 2 window) built over it, and the alarm post-filter. Sessions
// are pinned to exactly one shard of the DetectionService: all event
// processing happens on that shard's worker thread, so the session body
// needs no locking. The only cross-thread entry point is
// publish_model(), which stores into the session's ModelSlot; the worker
// adopts the new snapshot at the next event boundary, transplanting the
// monitor's runtime state (MonitorState) onto the new graph so no event
// and no tracked anomaly context is lost across the swap.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "causaliot/detect/alarm_sink.hpp"
#include "causaliot/detect/monitor.hpp"
#include "causaliot/detect/root_cause.hpp"
#include "causaliot/serve/model_snapshot.hpp"

namespace causaliot::serve {

struct SessionConfig {
  /// Algorithm 2 anomaly-list length k_max per session.
  std::size_t k_max = 1;
  /// Route reports through a per-session AlarmSink (signature dedup). Off
  /// by default: the raw stream then matches the batch monitor exactly.
  bool deduplicate_alarms = false;
  /// Severity grading (always applied) and dedup parameters.
  detect::SinkConfig sink;
  /// Root-cause walk parameters (attribute() — alarm path only).
  detect::RootCauseConfig root_cause;
};

class TenantSession {
 public:
  TenantSession(std::string name, std::shared_ptr<const ModelSnapshot> model,
                SessionConfig config, std::vector<std::uint8_t> initial_state);

  const std::string& name() const { return name_; }
  std::size_t device_count() const { return device_count_; }

  /// Thread-safe: publishes a new model for this session. The shard
  /// worker adopts it before processing its next event.
  void publish_model(std::shared_ptr<const ModelSnapshot> model);

  // --- shard-worker-only interface below ---

  /// Processes one event under the newest published model.
  std::optional<detect::AnomalyReport> process(
      const preprocess::BinaryEvent& event);

  /// Flushes a pending anomaly window at end of stream (drain path).
  std::optional<detect::AnomalyReport> finish();

  /// Grades (and, if configured, deduplicates) a report for delivery.
  /// Returns nullopt when the alarm was suppressed.
  std::optional<detect::SunkAlarm> filter(detect::AnomalyReport report);

  /// Ranked root-cause attribution of a report under the *active* model
  /// — the snapshot that scored it, so the ranking is bit-identical
  /// across hot swaps and tenant churn. Alarm path only; the no-alarm
  /// hot path never calls this.
  detect::RootCauseAttribution attribute(
      const detect::AnomalyReport& report) const {
    return detect::attribute_root_cause(report, &active_->graph,
                                        config_.root_cause);
  }

  /// The snapshot the monitor currently runs on.
  const ModelSnapshot& active_model() const { return *active_; }

  std::size_t events_processed() const {
    return monitor_->events_processed();
  }
  /// Anomaly score of the most recently processed event (model-health
  /// telemetry input). Shard-worker-only, like process().
  double last_score() const { return monitor_->last_score(); }
  std::uint64_t swaps_adopted() const { return swaps_adopted_; }

 private:
  detect::MonitorConfig monitor_config(const ModelSnapshot& model) const;
  void adopt(std::shared_ptr<const ModelSnapshot> next);

  std::string name_;
  SessionConfig config_;
  std::size_t device_count_ = 0;
  ModelSlot slot_;
  std::shared_ptr<const ModelSnapshot> active_;
  /// optional<> because EventMonitor holds a reference to the active
  /// graph and must be re-emplaced, not assigned, on adoption.
  std::optional<detect::EventMonitor> monitor_;
  detect::AlarmSink sink_;
  std::uint64_t swaps_adopted_ = 0;
};

}  // namespace causaliot::serve
