// Serving metrics, hosted on the obs metric registry.
//
// Every counter the event hot path touches is resolved once at service
// construction into a stable obs handle; recording is then one relaxed
// atomic RMW per counter, exactly the discipline the original one-off
// atomics struct had — but the values are now named, labeled, and
// exportable through obs::Registry::to_json() / to_prometheus()
// alongside the rest of the process (per-shard `shard` labels on the
// processed counters and queue-depth gauges, per-tenant `tenant` labels
// on the alarm counters).
//
// ServiceStats remains the plain-value, point-in-time view `stats()`
// returns — the registry is the streaming/exposition surface, the
// struct is the programmatic one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "causaliot/obs/metrics.hpp"
#include "causaliot/obs/registry.hpp"

namespace causaliot::serve {

/// The serving latency histogram is the shared obs primitive (power-of-
/// two nanosecond buckets, conservative quantiles, exact max).
using LatencyHistogram = obs::Histogram;

/// Aggregate registry handles owned by serve::DetectionService;
/// queue-level backpressure counters live in each shard's BoundedQueue
/// and per-shard/per-tenant handles on the shard/tenant records — all
/// merged into the ServiceStats snapshot at read time.
struct Metrics {
  explicit Metrics(obs::Registry& registry);

  obs::Counter* events_submitted;
  /// submit() calls refused because the handle named no live tenant
  /// (never registered, or removed before the call).
  obs::Counter* events_unroutable;
  /// Tenant lifecycle on a running service (control-message path).
  obs::Counter* tenants_added;
  obs::Counter* tenants_removed;
  obs::Counter* alarms_notice;
  obs::Counter* alarms_warning;
  obs::Counter* alarms_critical;
  /// Alarms whose report tracked a collective chain (> 1 entry).
  obs::Counter* alarms_collective;
  obs::Counter* alarms_suppressed;
  obs::Counter* model_swaps_published;
  obs::Counter* model_swaps_adopted;
  /// Enqueue-to-processed latency per event.
  obs::Histogram* latency;

  std::uint64_t alarms_total() const {
    return alarms_notice->value() + alarms_warning->value() +
           alarms_critical->value();
  }
};

/// Point-in-time, plain-value view of a running service, exported as the
/// final (or on-demand) metrics report.
struct ServiceStats {
  std::size_t shard_count = 0;
  /// Live tenants at snapshot time (added minus removed).
  std::size_t tenant_count = 0;
  std::uint64_t tenants_added = 0;
  std::uint64_t tenants_removed = 0;
  std::uint64_t events_submitted = 0;
  std::uint64_t events_processed = 0;
  /// submit() refusals for unknown/removed tenant handles.
  std::uint64_t events_unroutable = 0;
  /// Events dequeued after their tenant was removed (the in-flight tail
  /// behind a RemoveTenant control message; counted, never processed).
  std::uint64_t events_orphaned = 0;
  // Backpressure (summed over shard queues).
  std::uint64_t queue_accepted = 0;
  std::uint64_t queue_dropped_oldest = 0;
  std::uint64_t queue_rejected = 0;
  std::uint64_t queue_closed_rejects = 0;
  std::uint64_t queue_block_waits = 0;
  // Alarms.
  std::uint64_t alarms_total = 0;
  std::uint64_t alarms_notice = 0;
  std::uint64_t alarms_warning = 0;
  std::uint64_t alarms_critical = 0;
  std::uint64_t alarms_collective = 0;
  std::uint64_t alarms_suppressed = 0;
  // Hot swap.
  std::uint64_t model_swaps_published = 0;
  std::uint64_t model_swaps_adopted = 0;
  LatencyHistogram::Snapshot latency;

  std::string to_json() const;
};

}  // namespace causaliot::serve
