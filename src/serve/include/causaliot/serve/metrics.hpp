// Serving metrics: lock-free counters and fixed-bucket latency
// histograms, snapshotted into a JSON report.
//
// Everything on the event hot path is a relaxed atomic increment — the
// counters are monotone totals, so cross-counter skew during a snapshot
// is acceptable and no ordering is needed. The histogram uses
// power-of-two nanosecond buckets (index = bit_width of the sample):
// recording is one relaxed fetch_add, and quantiles are answered at
// snapshot time by walking the cumulative distribution, with each
// bucket's upper bound as the reported value (i.e. quantiles are
// conservative within a factor of two — the right trade for a counter
// that is hit a million times per second).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>

namespace causaliot::serve {

class LatencyHistogram {
 public:
  /// Doubling buckets from 1 ns; the last bucket absorbs everything from
  /// ~2.3 minutes up.
  static constexpr std::size_t kBucketCount = 48;

  void record(std::uint64_t nanos) {
    const std::size_t width = std::bit_width(nanos);  // 0 for nanos == 0
    const std::size_t index =
        width < kBucketCount ? width : kBucketCount - 1;
    buckets_[index].fetch_add(1, std::memory_order_relaxed);
    // Keep the true maximum exactly (CAS loop; contention is negligible
    // because the max changes rarely once warm).
    std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
    while (nanos > seen &&
           !max_ns_.compare_exchange_weak(seen, nanos,
                                          std::memory_order_relaxed)) {
    }
  }

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t p50_ns = 0;
    std::uint64_t p95_ns = 0;
    std::uint64_t p99_ns = 0;
    std::uint64_t max_ns = 0;
  };

  Snapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Counters owned by serve::DetectionService; queue-level backpressure
/// counters live in each shard's BoundedQueue and are merged into the
/// ServiceStats snapshot at read time.
struct Metrics {
  std::atomic<std::uint64_t> events_submitted{0};
  std::atomic<std::uint64_t> events_processed{0};
  std::atomic<std::uint64_t> alarms_total{0};
  std::atomic<std::uint64_t> alarms_notice{0};
  std::atomic<std::uint64_t> alarms_warning{0};
  std::atomic<std::uint64_t> alarms_critical{0};
  /// Alarms whose report tracked a collective chain (> 1 entry).
  std::atomic<std::uint64_t> alarms_collective{0};
  std::atomic<std::uint64_t> alarms_suppressed{0};
  std::atomic<std::uint64_t> model_swaps_published{0};
  std::atomic<std::uint64_t> model_swaps_adopted{0};
  /// Enqueue-to-processed latency per event.
  LatencyHistogram latency;
};

/// Point-in-time, plain-value view of a running service, exported as the
/// final (or on-demand) metrics report.
struct ServiceStats {
  std::size_t shard_count = 0;
  std::size_t tenant_count = 0;
  std::uint64_t events_submitted = 0;
  std::uint64_t events_processed = 0;
  // Backpressure (summed over shard queues).
  std::uint64_t queue_accepted = 0;
  std::uint64_t queue_dropped_oldest = 0;
  std::uint64_t queue_rejected = 0;
  std::uint64_t queue_closed_rejects = 0;
  std::uint64_t queue_block_waits = 0;
  // Alarms.
  std::uint64_t alarms_total = 0;
  std::uint64_t alarms_notice = 0;
  std::uint64_t alarms_warning = 0;
  std::uint64_t alarms_critical = 0;
  std::uint64_t alarms_collective = 0;
  std::uint64_t alarms_suppressed = 0;
  // Hot swap.
  std::uint64_t model_swaps_published = 0;
  std::uint64_t model_swaps_adopted = 0;
  LatencyHistogram::Snapshot latency;

  std::string to_json() const;
};

}  // namespace causaliot::serve
