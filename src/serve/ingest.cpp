#include "causaliot/serve/ingest.hpp"

#include <charconv>

#include "causaliot/obs/http_server.hpp"
#include "causaliot/util/strings.hpp"

namespace causaliot::serve {

namespace {

void skip_ws(std::string_view line, std::size_t& i) {
  while (i < line.size() &&
         (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) {
    ++i;
  }
}

/// Reads a quoted string starting at line[i] == '"'; the slice excludes
/// the quotes. Backslash escapes poison the parse (see header).
bool scan_string(std::string_view line, std::size_t& i,
                 std::string_view& out) {
  const std::size_t begin = ++i;
  while (i < line.size() && line[i] != '"') {
    if (line[i] == '\\') return false;
    ++i;
  }
  if (i >= line.size()) return false;
  out = line.substr(begin, i - begin);
  ++i;  // closing quote
  return true;
}

bool scan_number(std::string_view line, std::size_t& i, double& out) {
  const char* begin = line.data() + i;
  const char* end = line.data() + line.size();
  const auto parsed = std::from_chars(begin, end, out);
  if (parsed.ec != std::errc{}) return false;
  i += static_cast<std::size_t>(parsed.ptr - begin);
  return true;
}

/// Skips a value of any supported type (for unknown keys).
bool skip_value(std::string_view line, std::size_t& i) {
  if (i >= line.size()) return false;
  if (line[i] == '"') {
    std::string_view ignored;
    return scan_string(line, i, ignored);
  }
  for (std::string_view literal : {"true", "false", "null"}) {
    if (line.substr(i, literal.size()) == literal) {
      i += literal.size();
      return true;
    }
  }
  double ignored = 0.0;
  return scan_number(line, i, ignored);
}

}  // namespace

bool scan_ingest_line(std::string_view line, IngestFields& out) {
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skip_ws(line, i);
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      skip_ws(line, i);
      if (i >= line.size() || line[i] != '"') return false;
      std::string_view key;
      if (!scan_string(line, i, key)) return false;
      skip_ws(line, i);
      if (i >= line.size() || line[i] != ':') return false;
      ++i;
      skip_ws(line, i);
      if (key == "op") {
        if (i >= line.size() || line[i] != '"' ||
            !scan_string(line, i, out.op)) {
          return false;
        }
        out.has_op = true;
      } else if (key == "tenant") {
        if (i >= line.size() || line[i] != '"' ||
            !scan_string(line, i, out.tenant)) {
          return false;
        }
        out.has_tenant = true;
      } else if (key == "device") {
        if (i >= line.size() || line[i] != '"' ||
            !scan_string(line, i, out.device)) {
          return false;
        }
        out.has_device = true;
      } else if (key == "template") {
        if (i >= line.size() || line[i] != '"' ||
            !scan_string(line, i, out.template_name)) {
          return false;
        }
        out.has_template = true;
      } else if (key == "value") {
        if (!scan_number(line, i, out.value)) return false;
        out.has_value = true;
      } else if (key == "timestamp") {
        if (!scan_number(line, i, out.timestamp)) return false;
        out.has_timestamp = true;
      } else {
        if (!skip_value(line, i)) return false;
      }
      skip_ws(line, i);
      if (i >= line.size()) return false;
      if (line[i] == ',') {
        ++i;
        continue;
      }
      if (line[i] == '}') {
        ++i;
        break;
      }
      return false;
    }
  }
  skip_ws(line, i);
  return i == line.size() || line[i] == '\n';
}

IngestRouter::IngestRouter(DetectionService& service,
                           const telemetry::DeviceCatalog& catalog,
                           IngestConfig config)
    : service_(service), catalog_(catalog), config_(std::move(config)) {
  const auto& devices = catalog_.devices();
  device_index_.reserve(devices.size());
  for (std::size_t id = 0; id < devices.size(); ++id) {
    device_index_.emplace(devices[id].name,
                          static_cast<telemetry::DeviceId>(id));
  }
  obs::Registry& registry = service_.registry();
  lines_ = &registry.counter("serve_ingest_lines_total", {},
                             "Non-blank JSONL lines received, any transport");
  accepted_ = &registry.counter("serve_ingest_accepted_total", {},
                                "Ingest event lines queued to a shard");
  const char* rejected_help =
      "Ingest lines refused, by reason (parse | unknown-tenant | "
      "unknown-device | overflow | closed)";
  rejected_parse_ = &registry.counter("serve_ingest_rejected_total",
                                      {{"reason", "parse"}}, rejected_help);
  rejected_unknown_tenant_ = &registry.counter(
      "serve_ingest_rejected_total", {{"reason", "unknown-tenant"}});
  rejected_unknown_device_ = &registry.counter(
      "serve_ingest_rejected_total", {{"reason", "unknown-device"}});
  rejected_overflow_ = &registry.counter("serve_ingest_rejected_total",
                                         {{"reason", "overflow"}});
  rejected_closed_ = &registry.counter("serve_ingest_rejected_total",
                                       {{"reason", "closed"}});
  const char* control_help =
      "Control verbs (TCP op lines and HTTP tenant routes), by result";
  control_add_ok_ = &registry.counter(
      "serve_ingest_controls_total",
      {{"op", "add_tenant"}, {"result", "ok"}}, control_help);
  control_add_err_ = &registry.counter(
      "serve_ingest_controls_total",
      {{"op", "add_tenant"}, {"result", "error"}});
  control_remove_ok_ = &registry.counter(
      "serve_ingest_controls_total",
      {{"op", "remove_tenant"}, {"result", "ok"}});
  control_remove_err_ = &registry.counter(
      "serve_ingest_controls_total",
      {{"op", "remove_tenant"}, {"result", "error"}});
}

bool IngestRouter::add_tenant(std::string_view name,
                              std::string_view template_name,
                              const char** reason) {
  const std::string_view tpl =
      template_name.empty() ? std::string_view(config_.default_template)
                            : template_name;
  TenantHandle handle = DetectionService::kInvalidTenant;
  const char* why = "tenant-exists";
  if (!tpl.empty()) {
    handle = service_.add_tenant(std::string(name), tpl);
    if (handle == DetectionService::kInvalidTenant &&
        service_.find_tenant(name) == DetectionService::kInvalidTenant) {
      why = "unknown-template";
    }
  } else {
    handle = service_.add_tenant(std::string(name), config_.model,
                                 config_.initial_state);
  }
  const bool ok = handle != DetectionService::kInvalidTenant;
  (ok ? control_add_ok_ : control_add_err_)->increment();
  if (!ok && reason != nullptr) *reason = why;
  return ok;
}

bool IngestRouter::remove_tenant(std::string_view name) {
  const TenantHandle handle = service_.find_tenant(name);
  const bool ok = handle != DetectionService::kInvalidTenant &&
                  service_.remove_tenant(handle);
  (ok ? control_remove_ok_ : control_remove_err_)->increment();
  return ok;
}

IngestRouter::LineResult IngestRouter::handle_line(std::string_view line) {
  if (util::trim(line).empty()) return {Outcome::kBlank, nullptr};
  lines_->increment();

  IngestFields fields;
  if (!scan_ingest_line(line, fields)) {
    rejected_parse_->increment();
    return {Outcome::kParseError, "parse"};
  }

  if (fields.has_op) {
    if (!fields.has_tenant || fields.tenant.empty()) {
      (fields.op == "remove_tenant" ? control_remove_err_
                                    : control_add_err_)
          ->increment();
      return {Outcome::kControlFailed, "missing-tenant"};
    }
    if (fields.op == "add_tenant") {
      const char* reason = "tenant-exists";
      return add_tenant(fields.tenant,
                        fields.has_template ? fields.template_name
                                            : std::string_view{},
                        &reason)
                 ? LineResult{Outcome::kControlOk, "add_tenant"}
                 : LineResult{Outcome::kControlFailed, reason};
    }
    if (fields.op == "remove_tenant") {
      return remove_tenant(fields.tenant)
                 ? LineResult{Outcome::kControlOk, "remove_tenant"}
                 : LineResult{Outcome::kControlFailed, "unknown-tenant"};
    }
    control_add_err_->increment();
    return {Outcome::kControlFailed, "unknown-op"};
  }

  if (!fields.has_device || !fields.has_value || !fields.has_timestamp) {
    rejected_parse_->increment();
    return {Outcome::kParseError, "missing-field"};
  }

  const std::string_view tenant_name =
      fields.has_tenant ? fields.tenant
                        : std::string_view(config_.default_tenant);
  const TenantHandle tenant = service_.find_tenant(tenant_name);
  if (tenant == DetectionService::kInvalidTenant) {
    rejected_unknown_tenant_->increment();
    return {Outcome::kUnknownTenant, "unknown-tenant"};
  }

  const auto device = device_index_.find(fields.device);
  if (device == device_index_.end()) {
    rejected_unknown_device_->increment();
    return {Outcome::kUnknownDevice, "unknown-device"};
  }

  const preprocess::BinaryEvent event{
      device->second,
      static_cast<std::uint8_t>(fields.value != 0.0 ? 1 : 0),
      fields.timestamp};
  switch (service_.submit(tenant, event)) {
    case DetectionService::SubmitResult::kAccepted:
      accepted_->increment();
      return {Outcome::kAccepted, nullptr};
    case DetectionService::SubmitResult::kRejected:
      rejected_overflow_->increment();
      return {Outcome::kOverflow, "overflow"};
    case DetectionService::SubmitResult::kClosed:
      rejected_closed_->increment();
      return {Outcome::kClosed, "closed"};
    case DetectionService::SubmitResult::kUnknownTenant:
      // The tenant was removed between find_tenant and submit.
      rejected_unknown_tenant_->increment();
      return {Outcome::kUnknownTenant, "unknown-tenant"};
  }
  return {Outcome::kParseError, "parse"};  // unreachable
}

std::optional<std::string> IngestRouter::response_line(
    const LineResult& result) {
  switch (result.outcome) {
    case Outcome::kBlank:
    case Outcome::kAccepted:
      return std::nullopt;
    case Outcome::kControlOk:
      return "OK " + std::string(result.reason);
    default:
      return "ERR " + std::string(result.reason);
  }
}

std::uint64_t IngestRouter::lines_total() const { return lines_->value(); }
std::uint64_t IngestRouter::accepted_total() const {
  return accepted_->value();
}
std::uint64_t IngestRouter::rejected_total() const {
  return rejected_parse_->value() + rejected_unknown_tenant_->value() +
         rejected_unknown_device_->value() + rejected_overflow_->value() +
         rejected_closed_->value();
}

void attach_ingest(obs::HttpServer& http, IngestRouter& router) {
  http.handle("POST", "/ingest", [&router](const obs::HttpRequest& request) {
    std::size_t lines = 0, accepted = 0, rejected = 0, controls = 0;
    bool backpressured = false;
    std::string errors;  // first few rejections, as JSON objects
    std::size_t error_count = 0;
    std::string_view body = request.body;
    std::size_t line_number = 0;
    while (!body.empty()) {
      const std::size_t newline = body.find('\n');
      const std::string_view line = body.substr(0, newline);
      body = newline == std::string_view::npos
                 ? std::string_view{}
                 : body.substr(newline + 1);
      ++line_number;
      const IngestRouter::LineResult result = router.handle_line(line);
      switch (result.outcome) {
        case IngestRouter::Outcome::kBlank:
          continue;
        case IngestRouter::Outcome::kAccepted:
          ++lines, ++accepted;
          continue;
        case IngestRouter::Outcome::kControlOk:
          ++lines, ++controls;
          continue;
        case IngestRouter::Outcome::kOverflow:
        case IngestRouter::Outcome::kClosed:
          backpressured = true;
          [[fallthrough]];
        default:
          ++lines, ++rejected;
          if (++error_count <= 16) {
            if (!errors.empty()) errors += ", ";
            errors += util::format("{\"line\": %zu, \"reason\": \"%s\"}",
                                   line_number, result.reason);
          }
      }
    }
    obs::HttpResponse response = obs::HttpResponse::json(util::format(
        "{\"lines\": %zu, \"accepted\": %zu, \"controls\": %zu, "
        "\"rejected\": %zu, \"errors\": [%s]}",
        lines, accepted, controls, rejected, errors.c_str()));
    if (backpressured) response.status = 503;
    return response;
  });

  http.handle("POST", "/tenants", [&router](const obs::HttpRequest& request) {
    IngestFields fields;
    if (!scan_ingest_line(request.body, fields) || !fields.has_tenant ||
        fields.tenant.empty()) {
      obs::HttpResponse response =
          obs::HttpResponse::json("{\"error\": \"expected {\\\"tenant\\\": "
                                  "\\\"name\\\"}\"}");
      response.status = 400;
      return response;
    }
    const std::string name(fields.tenant);
    const char* reason = "tenant-exists";
    if (!router.add_tenant(name,
                           fields.has_template ? fields.template_name
                                               : std::string_view{},
                           &reason)) {
      obs::HttpResponse response = obs::HttpResponse::json(
          util::format("{\"error\": \"%s\", \"tenant\": \"%s\"}", reason,
                       util::json_escape(name).c_str()));
      response.status =
          std::string_view(reason) == "unknown-template" ? 404 : 409;
      return response;
    }
    return obs::HttpResponse::json(util::format(
        "{\"added\": \"%s\"}", util::json_escape(name).c_str()));
  });

  http.handle_prefix(
      "DELETE", "/tenants/", [&router](const obs::HttpRequest& request) {
        const std::string name =
            request.path.substr(std::string_view("/tenants/").size());
        if (name.empty()) {
          obs::HttpResponse response =
              obs::HttpResponse::json("{\"error\": \"missing tenant name\"}");
          response.status = 400;
          return response;
        }
        if (!router.remove_tenant(name)) {
          obs::HttpResponse response = obs::HttpResponse::json(util::format(
              "{\"error\": \"unknown-tenant\", \"tenant\": \"%s\"}",
              util::json_escape(name).c_str()));
          response.status = 404;
          return response;
        }
        return obs::HttpResponse::json(util::format(
            "{\"removed\": \"%s\"}", util::json_escape(name).c_str()));
      });
}

}  // namespace causaliot::serve
