#include "causaliot/serve/blame.hpp"

#include <algorithm>
#include <vector>

#include "causaliot/util/strings.hpp"

namespace causaliot::serve {

namespace {

std::string label_for(const telemetry::DeviceCatalog* catalog,
                      telemetry::DeviceId device) {
  if (catalog != nullptr && device < catalog->size()) {
    return catalog->info(device).name;
  }
  return util::format("device-%u", static_cast<unsigned>(device));
}

}  // namespace

std::string root_causes_json(const detect::RootCauseAttribution& attribution,
                             const telemetry::DeviceCatalog* catalog) {
  std::string out = "[";
  for (std::size_t i = 0; i < attribution.ranked.size(); ++i) {
    const detect::RootCauseCandidate& candidate = attribution.ranked[i];
    out += util::format(
        "%s{\"rank\": %zu, \"device\": \"%s\", \"score\": %.6f, "
        "\"flagged\": %s, \"path\": [",
        i == 0 ? "" : ", ", i + 1,
        util::json_escape(label_for(catalog, candidate.device)).c_str(),
        candidate.score, candidate.flagged ? "true" : "false");
    for (std::size_t s = 0; s < candidate.path.size(); ++s) {
      const detect::RootCauseStep& step = candidate.path[s];
      out += util::format(
          "%s{\"child\": \"%s\", \"cause\": \"%s\", \"lag\": %u}",
          s == 0 ? "" : ", ",
          util::json_escape(label_for(catalog, step.child)).c_str(),
          util::json_escape(label_for(catalog, step.cause)).c_str(),
          step.lag);
    }
    out += "]}";
  }
  out += "]";
  return out;
}

BlameLedger::BlameLedger(obs::Registry& registry,
                         const telemetry::DeviceCatalog* catalog,
                         std::size_t history_per_tenant)
    : registry_(registry),
      catalog_(catalog),
      history_per_tenant_(history_per_tenant),
      attributions_total_(&registry.counter(
          "serve_root_cause_attributions_total", {},
          "Alarms that received a ranked root-cause attribution")),
      latency_(&registry.histogram(
          "serve_root_cause_latency_ns", {},
          "attribute_root_cause() cost per delivered alarm")) {}

std::string BlameLedger::device_label(telemetry::DeviceId device) const {
  return label_for(catalog_, device);
}

void BlameLedger::record(const std::string& tenant,
                         const detect::RootCauseAttribution& attribution,
                         double timestamp, std::uint64_t model_version,
                         std::uint64_t latency_ns) {
  if (attribution.ranked.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  attributions_total_->increment();
  latency_->record(latency_ns);
  for (std::size_t i = 0; i < attribution.ranked.size(); ++i) {
    const detect::RootCauseCandidate& candidate = attribution.ranked[i];
    DeviceStats& stats = fleet_[candidate.device];
    ++stats.blamed;
    stats.score_sum += candidate.score;
    obs::Counter*& blame = blame_counters_[{tenant, candidate.device}];
    if (blame == nullptr) {
      blame = &registry_.counter(
          "serve_root_cause_blame_total",
          {{"tenant", tenant}, {"device", device_label(candidate.device)}},
          "Root-cause candidates attributed, by tenant and blamed device");
    }
    blame->increment();
    if (i == 0) {
      ++stats.rank1;
      obs::Counter*& rank1 = rank1_counters_[candidate.device];
      if (rank1 == nullptr) {
        rank1 = &registry_.counter(
            "serve_root_cause_rank1_total",
            {{"device", device_label(candidate.device)}},
            "Top-ranked root-cause attributions, by blamed device");
      }
      rank1->increment();
    }
  }
  std::deque<Record>& ring = tenants_[tenant];
  ring.push_back({timestamp, model_version, latency_ns, attribution});
  while (ring.size() > history_per_tenant_) ring.pop_front();
}

std::uint64_t BlameLedger::attributions() const {
  return attributions_total_->value();
}

std::string BlameLedger::to_json(std::string_view tenant_filter) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = util::format(
      "{\"attributions\": %llu, \"history_per_tenant\": %zu, \"fleet\": [",
      static_cast<unsigned long long>(attributions_total_->value()),
      history_per_tenant_);
  // Ranked blame table: most rank-1 blames first, then total blames,
  // then device id — same tie-break discipline as the attribution itself.
  std::vector<std::pair<telemetry::DeviceId, DeviceStats>> table(
      fleet_.begin(), fleet_.end());
  std::stable_sort(table.begin(), table.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second.rank1 != b.second.rank1) {
                       return a.second.rank1 > b.second.rank1;
                     }
                     return a.second.blamed > b.second.blamed;
                   });
  for (std::size_t i = 0; i < table.size(); ++i) {
    const DeviceStats& stats = table[i].second;
    out += util::format(
        "%s{\"device\": \"%s\", \"rank1\": %llu, \"blamed\": %llu, "
        "\"avg_score\": %.6f}",
        i == 0 ? "" : ", ",
        util::json_escape(device_label(table[i].first)).c_str(),
        static_cast<unsigned long long>(stats.rank1),
        static_cast<unsigned long long>(stats.blamed),
        stats.blamed != 0 ? stats.score_sum / static_cast<double>(stats.blamed)
                          : 0.0);
  }
  out += "], \"tenants\": [";
  bool first_tenant = true;
  for (const auto& [tenant, ring] : tenants_) {
    if (!tenant_filter.empty() && tenant != tenant_filter) continue;
    out += util::format("%s{\"tenant\": \"%s\", \"recent\": [",
                        first_tenant ? "" : ", ",
                        util::json_escape(tenant).c_str());
    first_tenant = false;
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const Record& record = ring[i];
      out += util::format(
          "%s{\"timestamp\": %.3f, \"model_version\": %llu, "
          "\"latency_ns\": %llu, \"root_causes\": ",
          i == 0 ? "" : ", ", record.timestamp,
          static_cast<unsigned long long>(record.model_version),
          static_cast<unsigned long long>(record.latency_ns));
      out += root_causes_json(record.attribution, catalog_);
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string BlameLedger::to_text(std::string_view tenant_filter) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = util::format(
      "root-cause blame: %llu attributions\n%-28s %8s %8s %10s\n",
      static_cast<unsigned long long>(attributions_total_->value()), "DEVICE",
      "RANK1", "BLAMED", "AVG_SCORE");
  std::vector<std::pair<telemetry::DeviceId, DeviceStats>> table(
      fleet_.begin(), fleet_.end());
  std::stable_sort(table.begin(), table.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second.rank1 != b.second.rank1) {
                       return a.second.rank1 > b.second.rank1;
                     }
                     return a.second.blamed > b.second.blamed;
                   });
  for (const auto& [device, stats] : table) {
    out += util::format(
        "%-28s %8llu %8llu %10.4f\n", device_label(device).c_str(),
        static_cast<unsigned long long>(stats.rank1),
        static_cast<unsigned long long>(stats.blamed),
        stats.blamed != 0 ? stats.score_sum / static_cast<double>(stats.blamed)
                          : 0.0);
  }
  for (const auto& [tenant, ring] : tenants_) {
    if (!tenant_filter.empty() && tenant != tenant_filter) continue;
    out += util::format("tenant %s: %zu recent attribution%s\n",
                        tenant.c_str(), ring.size(),
                        ring.size() == 1 ? "" : "s");
    for (const Record& record : ring) {
      out += util::format("  t=%.3f v%llu:", record.timestamp,
                          static_cast<unsigned long long>(
                              record.model_version));
      for (const detect::RootCauseCandidate& candidate :
           record.attribution.ranked) {
        out += util::format(" %s(%.3f%s)",
                            device_label(candidate.device).c_str(),
                            candidate.score,
                            candidate.flagged ? "*" : "");
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace causaliot::serve
