#include "causaliot/serve/metrics.hpp"

#include <cinttypes>
#include <cstdio>

namespace causaliot::serve {

namespace {

// Upper bound of histogram bucket `index` (samples with bit_width ==
// index, i.e. [2^(index-1), 2^index - 1]; bucket 0 holds only 0).
std::uint64_t bucket_upper_ns(std::size_t index) {
  if (index == 0) return 0;
  if (index >= 63) return ~std::uint64_t{0};
  return (std::uint64_t{1} << index) - 1;
}

}  // namespace

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  std::array<std::uint64_t, kBucketCount> counts;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  Snapshot out;
  out.count = total;
  out.max_ns = max_ns_.load(std::memory_order_relaxed);
  if (total == 0) return out;

  const auto quantile = [&](double q) -> std::uint64_t {
    const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      cumulative += counts[i];
      if (cumulative > rank) {
        const std::uint64_t upper = bucket_upper_ns(i);
        return upper < out.max_ns ? upper : out.max_ns;
      }
    }
    return out.max_ns;
  };
  out.p50_ns = quantile(0.50);
  out.p95_ns = quantile(0.95);
  out.p99_ns = quantile(0.99);
  return out;
}

std::string ServiceStats::to_json() const {
  char buffer[1024];
  const int written = std::snprintf(
      buffer, sizeof(buffer),
      "{\"shards\": %zu, \"tenants\": %zu, "
      "\"events\": {\"submitted\": %" PRIu64 ", \"processed\": %" PRIu64
      ", \"queued_accepted\": %" PRIu64 ", \"dropped_oldest\": %" PRIu64
      ", \"rejected\": %" PRIu64 ", \"rejected_after_close\": %" PRIu64
      ", \"block_waits\": %" PRIu64 "}, "
      "\"alarms\": {\"total\": %" PRIu64 ", \"notice\": %" PRIu64
      ", \"warning\": %" PRIu64 ", \"critical\": %" PRIu64
      ", \"collective\": %" PRIu64 ", \"suppressed\": %" PRIu64 "}, "
      "\"model_swaps\": {\"published\": %" PRIu64 ", \"adopted\": %" PRIu64
      "}, "
      "\"latency_ns\": {\"count\": %" PRIu64 ", \"p50\": %" PRIu64
      ", \"p95\": %" PRIu64 ", \"p99\": %" PRIu64 ", \"max\": %" PRIu64 "}}",
      shard_count, tenant_count, events_submitted, events_processed,
      queue_accepted, queue_dropped_oldest, queue_rejected,
      queue_closed_rejects, queue_block_waits, alarms_total, alarms_notice,
      alarms_warning, alarms_critical, alarms_collective, alarms_suppressed,
      model_swaps_published, model_swaps_adopted, latency.count,
      latency.p50_ns, latency.p95_ns, latency.p99_ns, latency.max_ns);
  return std::string(buffer,
                     written > 0 ? static_cast<std::size_t>(written) : 0);
}

}  // namespace causaliot::serve
