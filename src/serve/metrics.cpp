#include "causaliot/serve/metrics.hpp"

#include <cinttypes>
#include <cstdio>

namespace causaliot::serve {

Metrics::Metrics(obs::Registry& registry)
    : events_submitted(&registry.counter(
          "serve_events_submitted_total", {},
          "Events accepted by DetectionService::submit")),
      events_unroutable(&registry.counter(
          "serve_events_unroutable_total", {},
          "submit() calls refused: handle named no live tenant")),
      tenants_added(&registry.counter(
          "serve_tenants_added_total", {},
          "Tenants registered (including on a running service)")),
      tenants_removed(&registry.counter(
          "serve_tenants_removed_total", {},
          "Tenants removed from a running service")),
      alarms_notice(&registry.counter("serve_alarms_total",
                                      {{"severity", "notice"}},
                                      "Alarms delivered, by severity")),
      alarms_warning(&registry.counter("serve_alarms_total",
                                       {{"severity", "warning"}})),
      alarms_critical(&registry.counter("serve_alarms_total",
                                        {{"severity", "critical"}})),
      alarms_collective(&registry.counter(
          "serve_alarms_collective_total", {},
          "Alarms whose report tracked a collective chain")),
      alarms_suppressed(&registry.counter(
          "serve_alarms_suppressed_total", {},
          "Alarms suppressed by the per-session dedup filter")),
      model_swaps_published(&registry.counter(
          "serve_model_swaps_published_total", {},
          "Model snapshots published via swap_model")),
      model_swaps_adopted(&registry.counter(
          "serve_model_swaps_adopted_total", {},
          "Model snapshots adopted at session event boundaries")),
      latency(&registry.histogram(
          "serve_event_latency_ns", {},
          "Enqueue-to-processed latency per event, nanoseconds")) {}

std::string ServiceStats::to_json() const {
  char buffer[2048];
  const int written = std::snprintf(
      buffer, sizeof(buffer),
      "{\"shards\": %zu, \"tenants\": %zu, "
      "\"tenants_added\": %" PRIu64 ", \"tenants_removed\": %" PRIu64 ", "
      "\"events\": {\"submitted\": %" PRIu64 ", \"processed\": %" PRIu64
      ", \"unroutable\": %" PRIu64 ", \"orphaned\": %" PRIu64
      ", \"queued_accepted\": %" PRIu64 ", \"dropped_oldest\": %" PRIu64
      ", \"rejected\": %" PRIu64 ", \"rejected_after_close\": %" PRIu64
      ", \"block_waits\": %" PRIu64 "}, "
      "\"alarms\": {\"total\": %" PRIu64 ", \"notice\": %" PRIu64
      ", \"warning\": %" PRIu64 ", \"critical\": %" PRIu64
      ", \"collective\": %" PRIu64 ", \"suppressed\": %" PRIu64 "}, "
      "\"model_swaps\": {\"published\": %" PRIu64 ", \"adopted\": %" PRIu64
      "}, "
      "\"latency_ns\": {\"count\": %" PRIu64 ", \"p50\": %" PRIu64
      ", \"p95\": %" PRIu64 ", \"p99\": %" PRIu64 ", \"max\": %" PRIu64 "}}",
      shard_count, tenant_count, tenants_added, tenants_removed,
      events_submitted, events_processed, events_unroutable, events_orphaned,
      queue_accepted, queue_dropped_oldest, queue_rejected,
      queue_closed_rejects, queue_block_waits, alarms_total, alarms_notice,
      alarms_warning, alarms_critical, alarms_collective, alarms_suppressed,
      model_swaps_published, model_swaps_adopted, latency.count,
      latency.p50, latency.p95, latency.p99, latency.max);
  return std::string(buffer,
                     written > 0 ? static_cast<std::size_t>(written) : 0);
}

}  // namespace causaliot::serve
