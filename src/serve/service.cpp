#include "causaliot/serve/service.hpp"

#include <chrono>

#include "causaliot/obs/trace.hpp"
#include "causaliot/util/check.hpp"
#include "causaliot/util/strings.hpp"

namespace causaliot::serve {

namespace {

std::uint64_t now_ns() { return obs::Tracer::now_ns(); }

}  // namespace

DetectionService::DetectionService(ServiceConfig config, AlarmCallback on_alarm)
    : config_(config),
      on_alarm_(std::move(on_alarm)),
      own_registry_(config.registry == nullptr
                        ? std::make_unique<obs::Registry>()
                        : nullptr),
      registry_(config.registry != nullptr ? config.registry
                                           : own_registry_.get()),
      metrics_(*registry_),
      health_(*registry_, config.health) {
  CAUSALIOT_CHECK_MSG(config_.shard_count >= 1, "shard_count must be >= 1");
  shards_.reserve(config_.shard_count);
  for (std::size_t i = 0; i < config_.shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>(config_.queue_capacity,
                                              config_.overflow));
    const std::string shard_label = std::to_string(i);
    shards_.back()->processed = &registry_->counter(
        "serve_events_processed_total", {{"shard", shard_label}},
        "Events fully processed, by shard");
    shards_.back()->queue_depth = &registry_->gauge(
        "serve_queue_depth", {{"shard", shard_label}},
        "Shard queue occupancy at snapshot time");
  }
}

DetectionService::~DetectionService() { shutdown(); }

TenantHandle DetectionService::add_tenant(
    std::string name, std::shared_ptr<const ModelSnapshot> model,
    std::vector<std::uint8_t> initial_state) {
  CAUSALIOT_CHECK_MSG(!started_, "add_tenant must run before start()");
  CAUSALIOT_CHECK_MSG(find_tenant(name) == kInvalidTenant,
                      "duplicate tenant name");
  const auto handle = static_cast<TenantHandle>(tenants_.size());
  tenant_alarms_.push_back(&registry_->counter(
      "serve_tenant_alarms_total", {{"tenant", name}},
      "Alarms delivered, by tenant"));
  health_.add_tenant(handle, name, model != nullptr ? model->version : 0);
  Shard& shard = *shards_[handle % shards_.size()];
  shard.sessions.push_back(std::make_unique<TenantSession>(
      std::move(name), std::move(model), config_.session,
      std::move(initial_state)));
  tenants_.push_back(shard.sessions.back().get());
  return handle;
}

TenantHandle DetectionService::find_tenant(std::string_view name) const {
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i]->name() == name) {
      return static_cast<TenantHandle>(i);
    }
  }
  return kInvalidTenant;
}

void DetectionService::start() {
  CAUSALIOT_CHECK_MSG(!started_, "service already started");
  CAUSALIOT_CHECK_MSG(!stopped_, "service already shut down");
  started_ = true;
  started_at_ns_ = now_ns();
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, raw = shard.get()] {
      worker_loop(*raw);
    });
  }
  ready_.store(true, std::memory_order_release);
}

DetectionService::SubmitResult DetectionService::submit(
    TenantHandle tenant, const preprocess::BinaryEvent& event) {
  CAUSALIOT_CHECK_MSG(tenant < tenants_.size(), "unknown tenant handle");
  metrics_.events_submitted->increment();
  Shard& shard = *shards_[tenant % shards_.size()];
  ShardItem item;
  item.session = tenants_[tenant];
  item.handle = tenant;
  item.event = event;
  item.enqueue_ns = now_ns();
  // Gate sampling on the tracer being enabled: record() appends even when
  // disabled, so a sampled-but-disabled item would grow the per-thread
  // span buffers forever without anything ever exporting them.
  if (config_.trace_sample_every != 0 && obs::Tracer::global().enabled()) {
    item.traced = trace_counter_.fetch_add(1, std::memory_order_relaxed) %
                      config_.trace_sample_every ==
                  0;
  }
  switch (shard.queue.push(std::move(item))) {
    case util::PushResult::kAccepted:
    case util::PushResult::kDroppedOldest:
      return SubmitResult::kAccepted;
    case util::PushResult::kRejected:
      return SubmitResult::kRejected;
    case util::PushResult::kClosed:
      return SubmitResult::kClosed;
  }
  return SubmitResult::kClosed;  // unreachable
}

void DetectionService::swap_model(TenantHandle tenant,
                                  std::shared_ptr<const ModelSnapshot> model) {
  CAUSALIOT_CHECK_MSG(tenant < tenants_.size(), "unknown tenant handle");
  health_.on_published(tenant, model != nullptr ? model->version : 0);
  tenants_[tenant]->publish_model(std::move(model));
  metrics_.model_swaps_published->increment();
}

void DetectionService::deliver(TenantHandle handle, TenantSession& session,
                               detect::AnomalyReport report) {
  const bool collective = report.chain_length() > 1;
  std::optional<detect::SunkAlarm> sunk = session.filter(std::move(report));
  if (!sunk.has_value()) {
    metrics_.alarms_suppressed->increment();
    return;
  }
  tenant_alarms_[handle]->increment();
  health_.on_alarm(handle, collective);
  if (collective) metrics_.alarms_collective->increment();
  switch (sunk->severity) {
    case detect::AlarmSeverity::kNotice:
      metrics_.alarms_notice->increment();
      break;
    case detect::AlarmSeverity::kWarning:
      metrics_.alarms_warning->increment();
      break;
    case detect::AlarmSeverity::kCritical:
      metrics_.alarms_critical->increment();
      break;
  }
  if (!on_alarm_) return;
  ServedAlarm alarm;
  alarm.tenant = handle;
  alarm.tenant_name = session.name();
  alarm.report = std::move(sunk->report);
  alarm.severity = sunk->severity;
  alarm.suppressed_duplicates = sunk->suppressed_duplicates;
  alarm.model_version = session.active_model().version;
  alarm.score_threshold = session.active_model().score_threshold;
  on_alarm_(alarm);
}

void DetectionService::process_item(Shard& shard, ShardItem& item) {
  TenantSession& session = *item.session;
  const std::uint64_t before_swaps = session.swaps_adopted();

  std::optional<detect::AnomalyReport> report;
  if (item.traced) {
    // Sampled span path: reconstruct the enqueue->dequeue wait from the
    // submit-side timestamp, then time the monitor step on this worker.
    obs::Tracer& tracer = obs::Tracer::global();
    const std::string tenant_json = util::json_escape(session.name());
    const std::uint64_t dequeue_ns = now_ns();
    tracer.record("serve.queue_wait", "serve", item.enqueue_ns,
                  dequeue_ns - item.enqueue_ns,
                  util::format("\"tenant\": \"%s\"", tenant_json.c_str()));
    report = session.process(item.event);
    tracer.record("serve.step", "serve", dequeue_ns, now_ns() - dequeue_ns,
                  util::format("\"tenant\": \"%s\", \"device\": %u",
                               tenant_json.c_str(),
                               static_cast<unsigned>(item.event.device)));
  } else {
    report = session.process(item.event);
  }

  if (session.swaps_adopted() != before_swaps) {
    metrics_.model_swaps_adopted->add(session.swaps_adopted() - before_swaps);
    health_.on_adopted(item.handle, session.active_model().version);
  }
  health_.on_event(item.handle, session.last_score());
  shard.processed->increment();
  metrics_.latency->record(now_ns() - item.enqueue_ns);
  if (report.has_value()) {
    if (item.traced) {
      obs::Span emit("serve.alarm",
                     util::format("\"tenant\": \"%s\"",
                                  util::json_escape(session.name()).c_str()),
                     "serve");
      deliver(item.handle, session, std::move(*report));
    } else {
      deliver(item.handle, session, std::move(*report));
    }
  }
}

void DetectionService::worker_loop(Shard& shard) {
  while (std::optional<ShardItem> item = shard.queue.pop()) {
    process_item(shard, *item);
  }
}

void DetectionService::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  ready_.store(false, std::memory_order_release);
  for (auto& shard : shards_) shard->queue.close();
  if (started_) {
    for (auto& shard : shards_) {
      if (shard->worker.joinable()) shard->worker.join();
    }
  } else {
    // Never started: drain whatever was queued inline so accepted events
    // are still processed (the contract shutdown() promises).
    for (auto& shard : shards_) {
      Shard& s = *shard;
      while (std::optional<ShardItem> item = s.queue.try_pop()) {
        process_item(s, *item);
      }
    }
  }
  // Queues are drained and workers are gone: flush pending windows.
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (std::optional<detect::AnomalyReport> tail = tenants_[i]->finish()) {
      deliver(static_cast<TenantHandle>(i), *tenants_[i], std::move(*tail));
    }
  }
}

const TenantSession& DetectionService::session(TenantHandle tenant) const {
  CAUSALIOT_CHECK_MSG(tenant < tenants_.size(), "unknown tenant handle");
  return *tenants_[tenant];
}

void DetectionService::refresh_queue_gauges() const {
  for (const auto& shard : shards_) {
    shard->queue_depth->set(static_cast<std::int64_t>(shard->queue.size()));
  }
}

ServiceStats DetectionService::stats() const {
  refresh_queue_gauges();
  ServiceStats out;
  out.shard_count = shards_.size();
  out.tenant_count = tenants_.size();
  out.events_submitted = metrics_.events_submitted->value();
  for (const auto& shard : shards_) {
    out.events_processed += shard->processed->value();
    const auto counters = shard->queue.counters();
    out.queue_accepted += counters.accepted;
    out.queue_dropped_oldest += counters.dropped_oldest;
    out.queue_rejected += counters.rejected;
    out.queue_closed_rejects += counters.closed_rejects;
    out.queue_block_waits += counters.block_waits;
  }
  out.alarms_total = metrics_.alarms_total();
  out.alarms_notice = metrics_.alarms_notice->value();
  out.alarms_warning = metrics_.alarms_warning->value();
  out.alarms_critical = metrics_.alarms_critical->value();
  out.alarms_collective = metrics_.alarms_collective->value();
  out.alarms_suppressed = metrics_.alarms_suppressed->value();
  out.model_swaps_published = metrics_.model_swaps_published->value();
  out.model_swaps_adopted = metrics_.model_swaps_adopted->value();
  out.latency = metrics_.latency->snapshot();
  return out;
}

std::string DetectionService::registry_json() const {
  refresh_queue_gauges();
  health_.refresh();
  return registry_->to_json();
}

std::string DetectionService::prometheus() const {
  refresh_queue_gauges();
  health_.refresh();
  return registry_->to_prometheus();
}

std::string DetectionService::status_json() const {
  refresh_queue_gauges();
  health_.refresh();
  const ServiceStats snapshot = stats();
  const double uptime =
      started_at_ns_ != 0
          ? static_cast<double>(now_ns() - started_at_ns_) / 1e9
          : 0.0;
  std::string out = util::format(
      "{\"service\": {\"ready\": %s, \"uptime_seconds\": %.3f, "
      "\"shards\": %zu, \"tenant_count\": %zu, "
      "\"events_submitted\": %llu, \"events_processed\": %llu, "
      "\"alarms_total\": %llu, \"model_swaps_published\": %llu, "
      "\"model_swaps_adopted\": %llu}",
      ready() ? "true" : "false", uptime, snapshot.shard_count,
      snapshot.tenant_count,
      static_cast<unsigned long long>(snapshot.events_submitted),
      static_cast<unsigned long long>(snapshot.events_processed),
      static_cast<unsigned long long>(snapshot.alarms_total),
      static_cast<unsigned long long>(snapshot.model_swaps_published),
      static_cast<unsigned long long>(snapshot.model_swaps_adopted));
  out += ", \"tenants\": " + health_.tenants_json() + "}";
  return out;
}

ReplayStats replay_trace(DetectionService& service,
                         std::span<const TenantHandle> tenants,
                         std::span<const preprocess::BinaryEvent> events,
                         const ReplayOptions& options) {
  ReplayStats stats;
  if (events.empty() || tenants.empty()) return stats;
  const auto wall_start = std::chrono::steady_clock::now();
  const double trace_start = events.front().timestamp;
  for (const preprocess::BinaryEvent& event : events) {
    if (options.speedup > 0.0) {
      const double trace_elapsed = event.timestamp - trace_start;
      const auto due =
          wall_start + std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(
                               trace_elapsed / options.speedup));
      std::this_thread::sleep_until(due);
    }
    for (const TenantHandle tenant : tenants) {
      ++stats.submitted;
      if (service.submit(tenant, event) !=
          DetectionService::SubmitResult::kAccepted) {
        ++stats.rejected;
      }
    }
  }
  return stats;
}

}  // namespace causaliot::serve
