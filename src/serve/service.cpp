#include "causaliot/serve/service.hpp"

#include <chrono>

#include "causaliot/util/check.hpp"

namespace causaliot::serve {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

DetectionService::DetectionService(ServiceConfig config, AlarmCallback on_alarm)
    : config_(config), on_alarm_(std::move(on_alarm)) {
  CAUSALIOT_CHECK_MSG(config_.shard_count >= 1, "shard_count must be >= 1");
  shards_.reserve(config_.shard_count);
  for (std::size_t i = 0; i < config_.shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>(config_.queue_capacity,
                                              config_.overflow));
  }
}

DetectionService::~DetectionService() { shutdown(); }

TenantHandle DetectionService::add_tenant(
    std::string name, std::shared_ptr<const ModelSnapshot> model,
    std::vector<std::uint8_t> initial_state) {
  CAUSALIOT_CHECK_MSG(!started_, "add_tenant must run before start()");
  CAUSALIOT_CHECK_MSG(find_tenant(name) == kInvalidTenant,
                      "duplicate tenant name");
  const auto handle = static_cast<TenantHandle>(tenants_.size());
  Shard& shard = *shards_[handle % shards_.size()];
  shard.sessions.push_back(std::make_unique<TenantSession>(
      std::move(name), std::move(model), config_.session,
      std::move(initial_state)));
  tenants_.push_back(shard.sessions.back().get());
  return handle;
}

TenantHandle DetectionService::find_tenant(std::string_view name) const {
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i]->name() == name) {
      return static_cast<TenantHandle>(i);
    }
  }
  return kInvalidTenant;
}

void DetectionService::start() {
  CAUSALIOT_CHECK_MSG(!started_, "service already started");
  CAUSALIOT_CHECK_MSG(!stopped_, "service already shut down");
  started_ = true;
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, raw = shard.get()] {
      worker_loop(*raw);
    });
  }
}

DetectionService::SubmitResult DetectionService::submit(
    TenantHandle tenant, const preprocess::BinaryEvent& event) {
  CAUSALIOT_CHECK_MSG(tenant < tenants_.size(), "unknown tenant handle");
  metrics_.events_submitted.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = *shards_[tenant % shards_.size()];
  ShardItem item;
  item.session = tenants_[tenant];
  item.handle = tenant;
  item.event = event;
  item.enqueue_ns = now_ns();
  switch (shard.queue.push(std::move(item))) {
    case util::PushResult::kAccepted:
    case util::PushResult::kDroppedOldest:
      return SubmitResult::kAccepted;
    case util::PushResult::kRejected:
      return SubmitResult::kRejected;
    case util::PushResult::kClosed:
      return SubmitResult::kClosed;
  }
  return SubmitResult::kClosed;  // unreachable
}

void DetectionService::swap_model(TenantHandle tenant,
                                  std::shared_ptr<const ModelSnapshot> model) {
  CAUSALIOT_CHECK_MSG(tenant < tenants_.size(), "unknown tenant handle");
  tenants_[tenant]->publish_model(std::move(model));
  metrics_.model_swaps_published.fetch_add(1, std::memory_order_relaxed);
}

void DetectionService::deliver(TenantHandle handle, TenantSession& session,
                               detect::AnomalyReport report) {
  const bool collective = report.chain_length() > 1;
  std::optional<detect::SunkAlarm> sunk = session.filter(std::move(report));
  if (!sunk.has_value()) {
    metrics_.alarms_suppressed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  metrics_.alarms_total.fetch_add(1, std::memory_order_relaxed);
  if (collective) {
    metrics_.alarms_collective.fetch_add(1, std::memory_order_relaxed);
  }
  switch (sunk->severity) {
    case detect::AlarmSeverity::kNotice:
      metrics_.alarms_notice.fetch_add(1, std::memory_order_relaxed);
      break;
    case detect::AlarmSeverity::kWarning:
      metrics_.alarms_warning.fetch_add(1, std::memory_order_relaxed);
      break;
    case detect::AlarmSeverity::kCritical:
      metrics_.alarms_critical.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (!on_alarm_) return;
  ServedAlarm alarm;
  alarm.tenant = handle;
  alarm.tenant_name = session.name();
  alarm.report = std::move(sunk->report);
  alarm.severity = sunk->severity;
  alarm.suppressed_duplicates = sunk->suppressed_duplicates;
  alarm.model_version = session.active_model().version;
  on_alarm_(alarm);
}

void DetectionService::worker_loop(Shard& shard) {
  while (std::optional<ShardItem> item = shard.queue.pop()) {
    TenantSession& session = *item->session;
    const std::uint64_t before_swaps = session.swaps_adopted();
    std::optional<detect::AnomalyReport> report =
        session.process(item->event);
    if (session.swaps_adopted() != before_swaps) {
      metrics_.model_swaps_adopted.fetch_add(
          session.swaps_adopted() - before_swaps, std::memory_order_relaxed);
    }
    metrics_.events_processed.fetch_add(1, std::memory_order_relaxed);
    metrics_.latency.record(now_ns() - item->enqueue_ns);
    if (report.has_value()) {
      deliver(item->handle, session, std::move(*report));
    }
  }
}

void DetectionService::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& shard : shards_) shard->queue.close();
  if (started_) {
    for (auto& shard : shards_) {
      if (shard->worker.joinable()) shard->worker.join();
    }
  } else {
    // Never started: drain whatever was queued inline so accepted events
    // are still processed (the contract shutdown() promises).
    for (auto& shard : shards_) {
      Shard& s = *shard;
      while (std::optional<ShardItem> item = s.queue.try_pop()) {
        std::optional<detect::AnomalyReport> report =
            item->session->process(item->event);
        metrics_.events_processed.fetch_add(1, std::memory_order_relaxed);
        metrics_.latency.record(now_ns() - item->enqueue_ns);
        if (report.has_value()) {
          deliver(item->handle, *item->session, std::move(*report));
        }
      }
    }
  }
  // Queues are drained and workers are gone: flush pending windows.
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (std::optional<detect::AnomalyReport> tail = tenants_[i]->finish()) {
      deliver(static_cast<TenantHandle>(i), *tenants_[i], std::move(*tail));
    }
  }
}

const TenantSession& DetectionService::session(TenantHandle tenant) const {
  CAUSALIOT_CHECK_MSG(tenant < tenants_.size(), "unknown tenant handle");
  return *tenants_[tenant];
}

ServiceStats DetectionService::stats() const {
  ServiceStats out;
  out.shard_count = shards_.size();
  out.tenant_count = tenants_.size();
  out.events_submitted =
      metrics_.events_submitted.load(std::memory_order_relaxed);
  out.events_processed =
      metrics_.events_processed.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    const auto counters = shard->queue.counters();
    out.queue_accepted += counters.accepted;
    out.queue_dropped_oldest += counters.dropped_oldest;
    out.queue_rejected += counters.rejected;
    out.queue_closed_rejects += counters.closed_rejects;
    out.queue_block_waits += counters.block_waits;
  }
  out.alarms_total = metrics_.alarms_total.load(std::memory_order_relaxed);
  out.alarms_notice = metrics_.alarms_notice.load(std::memory_order_relaxed);
  out.alarms_warning =
      metrics_.alarms_warning.load(std::memory_order_relaxed);
  out.alarms_critical =
      metrics_.alarms_critical.load(std::memory_order_relaxed);
  out.alarms_collective =
      metrics_.alarms_collective.load(std::memory_order_relaxed);
  out.alarms_suppressed =
      metrics_.alarms_suppressed.load(std::memory_order_relaxed);
  out.model_swaps_published =
      metrics_.model_swaps_published.load(std::memory_order_relaxed);
  out.model_swaps_adopted =
      metrics_.model_swaps_adopted.load(std::memory_order_relaxed);
  out.latency = metrics_.latency.snapshot();
  return out;
}

ReplayStats replay_trace(DetectionService& service,
                         std::span<const TenantHandle> tenants,
                         std::span<const preprocess::BinaryEvent> events,
                         const ReplayOptions& options) {
  ReplayStats stats;
  if (events.empty() || tenants.empty()) return stats;
  const auto wall_start = std::chrono::steady_clock::now();
  const double trace_start = events.front().timestamp;
  for (const preprocess::BinaryEvent& event : events) {
    if (options.speedup > 0.0) {
      const double trace_elapsed = event.timestamp - trace_start;
      const auto due =
          wall_start + std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(
                               trace_elapsed / options.speedup));
      std::this_thread::sleep_until(due);
    }
    for (const TenantHandle tenant : tenants) {
      ++stats.submitted;
      if (service.submit(tenant, event) !=
          DetectionService::SubmitResult::kAccepted) {
        ++stats.rejected;
      }
    }
  }
  return stats;
}

}  // namespace causaliot::serve
