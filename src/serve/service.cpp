#include "causaliot/serve/service.hpp"

#include <chrono>

#include "causaliot/graph/analysis.hpp"
#include "causaliot/obs/trace.hpp"
#include "causaliot/util/check.hpp"
#include "causaliot/util/strings.hpp"

namespace causaliot::serve {

namespace {

std::uint64_t now_ns() { return obs::Tracer::now_ns(); }

}  // namespace

DetectionService::DetectionService(ServiceConfig config, AlarmCallback on_alarm)
    : config_(config),
      on_alarm_(std::move(on_alarm)),
      own_registry_(config.registry == nullptr
                        ? std::make_unique<obs::Registry>()
                        : nullptr),
      registry_(config.registry != nullptr ? config.registry
                                           : own_registry_.get()),
      metrics_(*registry_),
      health_(*registry_, config.health),
      blame_(*registry_, config.catalog, config.root_cause_history) {
  CAUSALIOT_CHECK_MSG(config_.shard_count >= 1, "shard_count must be >= 1");
  shards_.reserve(config_.shard_count);
  for (std::size_t i = 0; i < config_.shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>(config_.queue_capacity,
                                              config_.overflow));
    const std::string shard_label = std::to_string(i);
    shards_.back()->processed = &registry_->counter(
        "serve_events_processed_total", {{"shard", shard_label}},
        "Events fully processed, by shard");
    shards_.back()->orphaned = &registry_->counter(
        "serve_events_orphaned_total", {{"shard", shard_label}},
        "Events dequeued after their tenant was removed, by shard");
    shards_.back()->queue_depth = &registry_->gauge(
        "serve_queue_depth", {{"shard", shard_label}},
        "Shard queue occupancy at snapshot time");
  }
  model_resident_gauge_ = &registry_->gauge(
      "serve_model_resident_bytes", {},
      "Estimated bytes of model state actually resident (each shared "
      "skeleton/base payload counted once)");
  model_equiv_gauge_ = &registry_->gauge(
      "serve_model_private_equivalent_bytes", {},
      "Estimated bytes the same fleet would cost with one private model "
      "copy per tenant");
  model_templates_gauge_ = &registry_->gauge(
      "serve_model_templates", {},
      "Model templates registered in the service's TemplateRegistry");
  model_dedup_gauge_ = &registry_->gauge(
      "serve_model_dedup_ratio_ppm", {},
      "private_equivalent_bytes / resident_bytes in parts per million "
      "(1000000 = no sharing)");
}

DetectionService::~DetectionService() { shutdown(); }

TenantHandle DetectionService::add_tenant(
    std::string name, std::shared_ptr<const ModelSnapshot> model,
    std::vector<std::uint8_t> initial_state) {
  std::lock_guard<std::mutex> lock(directory_mutex_);
  if (stopped_ || by_name_.count(name) != 0) return kInvalidTenant;
  const TenantHandle handle = tenant_limit_.load(std::memory_order_relaxed);
  const std::size_t shard_index = handle % shards_.size();
  const std::uint64_t version = model != nullptr ? model->version : 0;
  account_model_locked(handle, model);
  auto session = std::make_unique<TenantSession>(
      name, std::move(model), config_.session, std::move(initial_state));
  TenantSession* raw_session = session.get();
  obs::Counter* alarms = &registry_->counter(
      "serve_tenant_alarms_total", {{"tenant", name}},
      "Alarms delivered, by tenant");
  health_.add_tenant(handle, name, version);
  Shard& shard = *shards_[shard_index];
  if (!started_) {
    shard.sessions.emplace(handle, std::move(session));
  } else {
    // The session travels to its shard as a control message; publishing
    // the directory entry only afterwards guarantees every event for
    // this handle lands behind the AddTenant in the shard FIFO.
    ShardItem item;
    item.kind = ShardItem::Kind::kAddTenant;
    item.handle = handle;
    item.session = std::move(session);
    shard.queue.push_unbounded(std::move(item));
  }
  metas_.emplace(handle, name, shard_index, alarms, raw_session);
  by_name_.emplace(std::move(name), handle);
  tenant_limit_.store(handle + 1, std::memory_order_relaxed);
  tenants_active_.fetch_add(1, std::memory_order_relaxed);
  metrics_.tenants_added->increment();
  return handle;
}

TenantHandle DetectionService::add_tenant(
    std::string name, std::string_view template_name,
    std::vector<std::uint8_t> initial_state) {
  if (config_.templates == nullptr) return kInvalidTenant;
  const std::shared_ptr<const ModelTemplate> tpl =
      config_.templates->find(template_name);
  if (tpl == nullptr) return kInvalidTenant;
  if (initial_state.empty()) {
    initial_state.assign(tpl->skeleton->device_count(), 0);
  }
  std::shared_ptr<const ModelSnapshot> snapshot =
      config_.share_templates ? instantiate(*tpl) : instantiate_private(*tpl);
  return add_tenant(std::move(name), std::move(snapshot),
                    std::move(initial_state));
}

bool DetectionService::remove_tenant(TenantHandle tenant) {
  std::lock_guard<std::mutex> lock(directory_mutex_);
  if (stopped_) return false;
  TenantMeta* meta = metas_.get(tenant);
  if (meta == nullptr || !meta->alive.load(std::memory_order_relaxed)) {
    return false;
  }
  // Tombstone before queueing the control: from here no new event can
  // enter the FIFO behind the RemoveTenant, so the worker destroys the
  // session knowing only orphan-countable stragglers remain.
  meta->alive.store(false, std::memory_order_release);
  by_name_.erase(meta->name);
  unaccount_model_locked(tenant);
  tenants_active_.fetch_sub(1, std::memory_order_relaxed);
  health_.on_removed(tenant);
  metrics_.tenants_removed->increment();
  ShardItem item;
  item.kind = ShardItem::Kind::kRemoveTenant;
  item.handle = tenant;
  shards_[meta->shard]->queue.push_unbounded(std::move(item));
  return true;
}

TenantHandle DetectionService::find_tenant(std::string_view name) const {
  std::lock_guard<std::mutex> lock(directory_mutex_);
  const auto it = by_name_.find(std::string(name));
  return it != by_name_.end() ? it->second : kInvalidTenant;
}

void DetectionService::start() {
  std::lock_guard<std::mutex> lock(directory_mutex_);
  CAUSALIOT_CHECK_MSG(!started_, "service already started");
  CAUSALIOT_CHECK_MSG(!stopped_, "service already shut down");
  started_ = true;
  started_at_ns_ = now_ns();
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, raw = shard.get()] {
      worker_loop(*raw);
    });
  }
  ready_.store(true, std::memory_order_release);
}

DetectionService::SubmitResult DetectionService::submit(
    TenantHandle tenant, const preprocess::BinaryEvent& event) {
  const TenantMeta* meta = metas_.get(tenant);
  if (meta == nullptr || !meta->alive.load(std::memory_order_acquire)) {
    metrics_.events_unroutable->increment();
    return SubmitResult::kUnknownTenant;
  }
  metrics_.events_submitted->increment();
  Shard& shard = *shards_[meta->shard];
  ShardItem item;
  item.handle = tenant;
  item.event = event;
  item.enqueue_ns = now_ns();
  // Gate sampling on the tracer being enabled: record() appends even when
  // disabled, so a sampled-but-disabled item would grow the per-thread
  // span buffers forever without anything ever exporting them.
  if (config_.trace_sample_every != 0 && obs::Tracer::global().enabled()) {
    item.traced = trace_counter_.fetch_add(1, std::memory_order_relaxed) %
                      config_.trace_sample_every ==
                  0;
  }
  switch (shard.queue.push(std::move(item))) {
    case util::PushResult::kAccepted:
    case util::PushResult::kDroppedOldest:
      return SubmitResult::kAccepted;
    case util::PushResult::kRejected:
      return SubmitResult::kRejected;
    case util::PushResult::kClosed:
      return SubmitResult::kClosed;
  }
  return SubmitResult::kClosed;  // unreachable
}

void DetectionService::swap_model(TenantHandle tenant,
                                  std::shared_ptr<const ModelSnapshot> model) {
  // Lifecycle lock, not the event path: re-bills the tenant's model
  // bytes against the new snapshot's components (same lock-then-enqueue
  // ordering as add_tenant).
  std::lock_guard<std::mutex> lock(directory_mutex_);
  TenantMeta* meta = metas_.get(tenant);
  CAUSALIOT_CHECK_MSG(meta != nullptr, "unknown tenant handle");
  if (!meta->alive.load(std::memory_order_acquire)) return;
  unaccount_model_locked(tenant);
  account_model_locked(tenant, model);
  health_.on_published(tenant, model != nullptr ? model->version : 0);
  metrics_.model_swaps_published->increment();
  // The publication rides the shard FIFO like any other control, so it
  // can never touch a session the worker has already destroyed; the
  // session still adopts at its next event boundary after the publish.
  ShardItem item;
  item.kind = ShardItem::Kind::kSwapModel;
  item.handle = tenant;
  item.model = std::move(model);
  shards_[meta->shard]->queue.push_unbounded(std::move(item));
}

void DetectionService::deliver(TenantHandle handle, TenantSession& session,
                               detect::AnomalyReport report) {
  const bool collective = report.chain_length() > 1;
  std::optional<detect::SunkAlarm> sunk = session.filter(std::move(report));
  if (!sunk.has_value()) {
    metrics_.alarms_suppressed->increment();
    return;
  }
  metas_.get(handle)->alarms->increment();
  health_.on_alarm(handle, collective);
  if (collective) metrics_.alarms_collective->increment();
  switch (sunk->severity) {
    case detect::AlarmSeverity::kNotice:
      metrics_.alarms_notice->increment();
      break;
    case detect::AlarmSeverity::kWarning:
      metrics_.alarms_warning->increment();
      break;
    case detect::AlarmSeverity::kCritical:
      metrics_.alarms_critical->increment();
      break;
  }
  // Root-cause localization runs on the alarm path only (suppressed
  // alarms and plain events never pay for it) and under the snapshot
  // that scored the report, so the ranking is reproducible bit-for-bit.
  const std::uint64_t attribute_start_ns = now_ns();
  detect::RootCauseAttribution attribution = session.attribute(sunk->report);
  const std::uint64_t attribute_ns = now_ns() - attribute_start_ns;
  blame_.record(session.name(), attribution,
                sunk->report.contextual().event.timestamp,
                session.active_model().version, attribute_ns);
  if (!on_alarm_) return;
  ServedAlarm alarm;
  alarm.tenant = handle;
  alarm.tenant_name = session.name();
  alarm.report = std::move(sunk->report);
  alarm.severity = sunk->severity;
  alarm.suppressed_duplicates = sunk->suppressed_duplicates;
  alarm.model_version = session.active_model().version;
  alarm.score_threshold = session.active_model().score_threshold;
  alarm.root_causes = std::move(attribution);
  on_alarm_(alarm);
}

void DetectionService::process_item(Shard& shard, ShardItem& item) {
  // Heartbeat first: a control that deadlocks downstream still proves
  // the worker dequeued it.
  shard.heartbeat.fetch_add(1, std::memory_order_relaxed);
  switch (item.kind) {
    case ShardItem::Kind::kAddTenant:
      shard.sessions.emplace(item.handle, std::move(item.session));
      return;
    case ShardItem::Kind::kRemoveTenant: {
      const auto it = shard.sessions.find(item.handle);
      if (it == shard.sessions.end()) return;
      // Clean removal: the pending Algorithm 2 window still fires.
      if (std::optional<detect::AnomalyReport> tail = it->second->finish()) {
        deliver(item.handle, *it->second, std::move(*tail));
      }
      shard.sessions.erase(it);
      return;
    }
    case ShardItem::Kind::kSwapModel: {
      const auto it = shard.sessions.find(item.handle);
      if (it != shard.sessions.end()) {
        it->second->publish_model(std::move(item.model));
      }
      return;
    }
    case ShardItem::Kind::kEvent:
      break;
  }
  process_event(shard, item);
}

void DetectionService::process_event(Shard& shard, ShardItem& item) {
  const auto found = shard.sessions.find(item.handle);
  if (found == shard.sessions.end()) {
    // Queued behind its tenant's RemoveTenant control: counted, never
    // processed (the conservation identity charges these to orphaned).
    shard.orphaned->increment();
    return;
  }
  TenantSession& session = *found->second;
  const std::uint64_t before_swaps = session.swaps_adopted();
  if (config_.debug_event_delay_us != 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(config_.debug_event_delay_us));
  }

  std::optional<detect::AnomalyReport> report;
  if (item.traced) {
    // Sampled span path: reconstruct the enqueue->dequeue wait from the
    // submit-side timestamp, then time the monitor step on this worker.
    obs::Tracer& tracer = obs::Tracer::global();
    const std::string tenant_json = util::json_escape(session.name());
    const std::uint64_t dequeue_ns = now_ns();
    tracer.record("serve.queue_wait", "serve", item.enqueue_ns,
                  dequeue_ns - item.enqueue_ns,
                  util::format("\"tenant\": \"%s\"", tenant_json.c_str()));
    report = session.process(item.event);
    tracer.record("serve.step", "serve", dequeue_ns, now_ns() - dequeue_ns,
                  util::format("\"tenant\": \"%s\", \"device\": %u",
                               tenant_json.c_str(),
                               static_cast<unsigned>(item.event.device)));
  } else {
    report = session.process(item.event);
  }

  if (session.swaps_adopted() != before_swaps) {
    metrics_.model_swaps_adopted->add(session.swaps_adopted() - before_swaps);
    health_.on_adopted(item.handle, session.active_model().version);
  }
  health_.on_event(item.handle, session.last_score());
  shard.processed->increment();
  const std::uint64_t done_ns = now_ns();
  shard.last_item_ns.store(done_ns, std::memory_order_relaxed);
  metrics_.latency->record(done_ns - item.enqueue_ns);
  if (report.has_value()) {
    if (item.traced) {
      obs::Span emit("serve.alarm",
                     util::format("\"tenant\": \"%s\"",
                                  util::json_escape(session.name()).c_str()),
                     "serve");
      deliver(item.handle, session, std::move(*report));
    } else {
      deliver(item.handle, session, std::move(*report));
    }
  }
}

void DetectionService::worker_loop(Shard& shard) {
  while (std::optional<ShardItem> item = shard.queue.pop()) {
    process_item(shard, *item);
  }
}

void DetectionService::shutdown() {
  bool was_started = false;
  {
    std::lock_guard<std::mutex> lock(directory_mutex_);
    if (stopped_) return;
    stopped_ = true;
    was_started = started_;
  }
  ready_.store(false, std::memory_order_release);
  for (auto& shard : shards_) shard->queue.close();
  if (was_started) {
    for (auto& shard : shards_) {
      if (shard->worker.joinable()) shard->worker.join();
    }
  } else {
    // Never started: drain whatever was queued inline so accepted events
    // are still processed (the contract shutdown() promises).
    for (auto& shard : shards_) {
      Shard& s = *shard;
      while (std::optional<ShardItem> item = s.queue.try_pop()) {
        process_item(s, *item);
      }
    }
  }
  // Queues are drained and workers are gone: flush pending windows of
  // every surviving session, in handle order for determinism.
  const TenantHandle limit = tenant_limit_.load(std::memory_order_relaxed);
  for (TenantHandle handle = 0; handle < limit; ++handle) {
    const TenantMeta* meta = metas_.get(handle);
    if (meta == nullptr) continue;
    auto& sessions = shards_[meta->shard]->sessions;
    const auto it = sessions.find(handle);
    if (it == sessions.end()) continue;
    if (std::optional<detect::AnomalyReport> tail = it->second->finish()) {
      deliver(handle, *it->second, std::move(*tail));
    }
  }
}

const TenantSession& DetectionService::session(TenantHandle tenant) const {
  const TenantMeta* meta = metas_.get(tenant);
  CAUSALIOT_CHECK_MSG(meta != nullptr &&
                          meta->alive.load(std::memory_order_acquire),
                      "unknown tenant handle");
  return *meta->session;
}

DetectionService::ShardProgress DetectionService::shard_progress(
    std::size_t shard) const {
  CAUSALIOT_CHECK_MSG(shard < shards_.size(), "shard index out of range");
  const Shard& s = *shards_[shard];
  ShardProgress out;
  out.heartbeat = s.heartbeat.load(std::memory_order_relaxed);
  out.last_item_ns = s.last_item_ns.load(std::memory_order_relaxed);
  out.queue_depth = s.queue.size();
  return out;
}

void DetectionService::refresh_queue_gauges() const {
  for (const auto& shard : shards_) {
    shard->queue_depth->set(static_cast<std::int64_t>(shard->queue.size()));
  }
}

void DetectionService::account_model_locked(
    TenantHandle tenant, const std::shared_ptr<const ModelSnapshot>& model) {
  ModelAccount account;
  if (model != nullptr) {
    const graph::MemoryFootprint footprint =
        graph::memory_footprint(model->graph);
    account.equiv_bytes = footprint.total_bytes();
    const auto add_component = [&](const void* key, std::size_t bytes) {
      ModelComponent& component = model_components_[key];
      if (component.refs++ == 0) {
        component.bytes = bytes;
        model_resident_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      }
      account.components.push_back(key);
    };
    if (footprint.shared) {
      add_component(model->graph.skeleton().get(), footprint.skeleton_bytes);
      add_component(model->graph.base().get(), footprint.base_cpt_bytes);
      // The delta is per-graph, but tenants handed the same snapshot
      // shared_ptr (the CLI boot path) literally share one graph object —
      // keying the unique part by snapshot address bills it once too.
      add_component(model.get(), footprint.delta_cpt_bytes);
    } else {
      add_component(model.get(), footprint.total_bytes());
    }
    model_equiv_bytes_.fetch_add(account.equiv_bytes,
                                 std::memory_order_relaxed);
  }
  model_accounts_[tenant] = std::move(account);
}

void DetectionService::unaccount_model_locked(TenantHandle tenant) {
  const auto it = model_accounts_.find(tenant);
  if (it == model_accounts_.end()) return;
  for (const void* key : it->second.components) {
    const auto found = model_components_.find(key);
    if (found == model_components_.end()) continue;
    if (--found->second.refs == 0) {
      model_resident_bytes_.fetch_sub(found->second.bytes,
                                      std::memory_order_relaxed);
      model_components_.erase(found);
    }
  }
  model_equiv_bytes_.fetch_sub(it->second.equiv_bytes,
                               std::memory_order_relaxed);
  model_accounts_.erase(it);
}

void DetectionService::refresh_model_gauges() const {
  const ModelStats stats = model_stats();
  model_resident_gauge_->set(static_cast<std::int64_t>(stats.resident_bytes));
  model_equiv_gauge_->set(
      static_cast<std::int64_t>(stats.private_equivalent_bytes));
  model_templates_gauge_->set(static_cast<std::int64_t>(stats.templates));
  model_dedup_gauge_->set(
      static_cast<std::int64_t>(stats.dedup_ratio * 1e6));
}

DetectionService::ModelStats DetectionService::model_stats() const {
  ModelStats out;
  out.resident_bytes = model_resident_bytes_.load(std::memory_order_relaxed);
  out.private_equivalent_bytes =
      model_equiv_bytes_.load(std::memory_order_relaxed);
  out.templates = config_.templates != nullptr
                      ? config_.templates->template_count()
                      : 0;
  out.dedup_ratio =
      out.resident_bytes == 0
          ? 1.0
          : static_cast<double>(out.private_equivalent_bytes) /
                static_cast<double>(out.resident_bytes);
  return out;
}

ServiceStats DetectionService::stats() const {
  refresh_queue_gauges();
  ServiceStats out;
  out.shard_count = shards_.size();
  out.tenant_count = tenant_count();
  out.tenants_added = metrics_.tenants_added->value();
  out.tenants_removed = metrics_.tenants_removed->value();
  out.events_submitted = metrics_.events_submitted->value();
  out.events_unroutable = metrics_.events_unroutable->value();
  for (const auto& shard : shards_) {
    out.events_processed += shard->processed->value();
    out.events_orphaned += shard->orphaned->value();
    const auto counters = shard->queue.counters();
    out.queue_accepted += counters.accepted;
    out.queue_dropped_oldest += counters.dropped_oldest;
    out.queue_rejected += counters.rejected;
    out.queue_closed_rejects += counters.closed_rejects;
    out.queue_block_waits += counters.block_waits;
  }
  out.alarms_total = metrics_.alarms_total();
  out.alarms_notice = metrics_.alarms_notice->value();
  out.alarms_warning = metrics_.alarms_warning->value();
  out.alarms_critical = metrics_.alarms_critical->value();
  out.alarms_collective = metrics_.alarms_collective->value();
  out.alarms_suppressed = metrics_.alarms_suppressed->value();
  out.model_swaps_published = metrics_.model_swaps_published->value();
  out.model_swaps_adopted = metrics_.model_swaps_adopted->value();
  out.latency = metrics_.latency->snapshot();
  return out;
}

std::string DetectionService::registry_json() const {
  refresh_gauges();
  return registry_->to_json();
}

std::string DetectionService::prometheus() const {
  refresh_gauges();
  return registry_->to_prometheus();
}

std::string DetectionService::status_json(std::size_t tenant_offset,
                                          std::size_t tenant_limit) const {
  refresh_gauges();
  const ServiceStats snapshot = stats();
  const double uptime =
      started_at_ns_ != 0
          ? static_cast<double>(now_ns() - started_at_ns_) / 1e9
          : 0.0;
  std::string out = util::format(
      "{\"service\": {\"ready\": %s, \"uptime_seconds\": %.3f, "
      "\"shards\": %zu, \"tenant_count\": %zu, "
      "\"tenants_added\": %llu, \"tenants_removed\": %llu, "
      "\"events_submitted\": %llu, \"events_processed\": %llu, "
      "\"events_unroutable\": %llu, \"events_orphaned\": %llu, "
      "\"alarms_total\": %llu, \"model_swaps_published\": %llu, "
      "\"model_swaps_adopted\": %llu}",
      ready() ? "true" : "false", uptime, snapshot.shard_count,
      snapshot.tenant_count,
      static_cast<unsigned long long>(snapshot.tenants_added),
      static_cast<unsigned long long>(snapshot.tenants_removed),
      static_cast<unsigned long long>(snapshot.events_submitted),
      static_cast<unsigned long long>(snapshot.events_processed),
      static_cast<unsigned long long>(snapshot.events_unroutable),
      static_cast<unsigned long long>(snapshot.events_orphaned),
      static_cast<unsigned long long>(snapshot.alarms_total),
      static_cast<unsigned long long>(snapshot.model_swaps_published),
      static_cast<unsigned long long>(snapshot.model_swaps_adopted));
  const ModelStats models = model_stats();
  out += util::format(
      ", \"models\": {\"templates\": %zu, \"resident_bytes\": %zu, "
      "\"private_equivalent_bytes\": %zu, \"dedup_ratio\": %.3f, "
      "\"share_templates\": %s}",
      models.templates, models.resident_bytes,
      models.private_equivalent_bytes, models.dedup_ratio,
      config_.share_templates ? "true" : "false");
  std::size_t live_total = 0;
  out += ", \"tenants\": " +
         health_.tenants_json(tenant_offset, tenant_limit, &live_total);
  out += util::format(
      ", \"tenant_window\": {\"offset\": %zu, \"limit\": %zu, "
      "\"total\": %zu}}",
      tenant_offset, tenant_limit, live_total);
  return out;
}

ReplayStats replay_trace(DetectionService& service,
                         std::span<const TenantHandle> tenants,
                         std::span<const preprocess::BinaryEvent> events,
                         const ReplayOptions& options) {
  ReplayStats stats;
  if (events.empty() || tenants.empty()) return stats;
  const auto wall_start = std::chrono::steady_clock::now();
  const double trace_start = events.front().timestamp;
  for (const preprocess::BinaryEvent& event : events) {
    if (options.speedup > 0.0) {
      const double trace_elapsed = event.timestamp - trace_start;
      const auto due =
          wall_start + std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(
                               trace_elapsed / options.speedup));
      std::this_thread::sleep_until(due);
    }
    for (const TenantHandle tenant : tenants) {
      ++stats.submitted;
      if (service.submit(tenant, event) !=
          DetectionService::SubmitResult::kAccepted) {
        ++stats.rejected;
      }
    }
  }
  return stats;
}

}  // namespace causaliot::serve
