#include "causaliot/serve/template_registry.hpp"

#include <algorithm>

#include "causaliot/util/check.hpp"

namespace causaliot::serve {

std::size_t ModelTemplate::approx_bytes() const {
  std::size_t bytes = skeleton != nullptr ? skeleton->approx_bytes() : 0;
  if (base_cpts != nullptr) {
    for (const graph::Cpt& cpt : *base_cpts) bytes += cpt.approx_bytes();
  }
  return bytes;
}

std::shared_ptr<const ModelSnapshot> instantiate(const ModelTemplate& tpl) {
  return make_snapshot(
      graph::InteractionGraph::from_template(tpl.skeleton, tpl.base_cpts),
      tpl.score_threshold, tpl.laplace_alpha, tpl.version);
}

std::shared_ptr<const ModelSnapshot> instantiate_private(
    const ModelTemplate& tpl) {
  return make_snapshot(
      graph::InteractionGraph::from_template(tpl.skeleton, tpl.base_cpts)
          .clone_private(),
      tpl.score_threshold, tpl.laplace_alpha, tpl.version);
}

std::shared_ptr<const ModelTemplate> TemplateRegistry::publish(
    std::string name, const graph::InteractionGraph& graph,
    double score_threshold, double laplace_alpha, std::uint64_t version) {
  auto tpl = std::make_shared<ModelTemplate>();
  tpl->name = name;
  // Freeze outside the lock: skeleton construction hashes the structure
  // and freeze_cpts copies every table — publication-path work that must
  // not serialize against find() from ingest transports.
  graph::SkeletonRef skeleton = graph.freeze_skeleton();
  tpl->base_cpts = graph.freeze_cpts();
  tpl->score_threshold = score_threshold;
  tpl->laplace_alpha = laplace_alpha;
  tpl->version = version;

  std::lock_guard<std::mutex> lock(mutex_);
  if (by_name_.count(name) != 0) return nullptr;
  tpl->skeleton = intern_locked(std::move(skeleton));
  std::shared_ptr<const ModelTemplate> published = std::move(tpl);
  by_name_.emplace(std::move(name), published);
  return published;
}

graph::SkeletonRef TemplateRegistry::intern_locked(
    graph::SkeletonRef skeleton) {
  CAUSALIOT_CHECK(skeleton != nullptr);
  auto& bucket = interned_[skeleton->content_hash()];
  // Sweep expired entries while scanning: the pool is weak, so a
  // skeleton whose last template and tenant are gone must not pin a
  // stale slot forever.
  for (auto it = bucket.begin(); it != bucket.end();) {
    if (graph::SkeletonRef existing = it->lock()) {
      if (*existing == *skeleton) return existing;
      ++it;
    } else {
      it = bucket.erase(it);
    }
  }
  bucket.push_back(skeleton);
  return skeleton;
}

std::shared_ptr<const ModelTemplate> TemplateRegistry::find(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(std::string(name));
  return it != by_name_.end() ? it->second : nullptr;
}

bool TemplateRegistry::evict(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return by_name_.erase(std::string(name)) != 0;
}

std::size_t TemplateRegistry::template_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return by_name_.size();
}

std::size_t TemplateRegistry::skeleton_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t live = 0;
  for (auto& [hash, bucket] : interned_) {
    bucket.erase(std::remove_if(bucket.begin(), bucket.end(),
                                [](const auto& weak) {
                                  return weak.expired();
                                }),
                 bucket.end());
    live += bucket.size();
  }
  return live;
}

std::size_t TemplateRegistry::shared_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t bytes = 0;
  std::vector<const graph::Skeleton*> counted;
  for (const auto& [name, tpl] : by_name_) {
    bytes += tpl->base_cpts != nullptr
                 ? tpl->approx_bytes() -
                       (tpl->skeleton != nullptr ? tpl->skeleton->approx_bytes()
                                                 : 0)
                 : 0;
    const graph::Skeleton* skeleton = tpl->skeleton.get();
    if (skeleton != nullptr &&
        std::find(counted.begin(), counted.end(), skeleton) ==
            counted.end()) {
      counted.push_back(skeleton);
      bytes += skeleton->approx_bytes();
    }
  }
  return bytes;
}

}  // namespace causaliot::serve
