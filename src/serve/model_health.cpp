#include "causaliot/serve/model_health.hpp"

#include <algorithm>
#include <cinttypes>

#include "causaliot/obs/trace.hpp"
#include "causaliot/util/check.hpp"
#include "causaliot/util/strings.hpp"

namespace causaliot::serve {

namespace {

std::uint64_t now_ns() { return obs::Tracer::now_ns(); }

std::int64_t to_ppm(double ratio) {
  return static_cast<std::int64_t>(ratio * 1e6);
}

}  // namespace

ModelHealth::ModelHealth(obs::Registry& registry, HealthConfig config)
    : registry_(registry), config_(config) {
  CAUSALIOT_CHECK_MSG(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
                      "ewma_alpha must be in (0, 1]");
  CAUSALIOT_CHECK_MSG(config_.window_events >= kWindowBuckets,
                      "window_events must cover at least one event per bucket");
  bucket_capacity_ = config_.window_events / kWindowBuckets;
}

void ModelHealth::add_tenant(std::size_t index, const std::string& name,
                             std::uint64_t model_version) {
  std::lock_guard<std::mutex> lock(add_mutex_);
  Tenant& tenant = tenants_.emplace(index);
  tenant.name = name;
  tenant.adopted_version.store(model_version, std::memory_order_relaxed);
  tenant.published_version.store(model_version, std::memory_order_relaxed);
  tenant.adopted_at_ns.store(now_ns(), std::memory_order_relaxed);
  const obs::Labels labels = {{"tenant", name}};
  tenant.score_ewma_ppm = &registry_.gauge(
      "serve_tenant_score_ewma_ppm", labels,
      "EWMA of the per-event anomaly score, in parts per million");
  tenant.alarm_rate_ppm = &registry_.gauge(
      "serve_tenant_alarm_rate_ppm", labels,
      "Delivered alarms per million events over the rolling window");
  tenant.collective_rate_ppm = &registry_.gauge(
      "serve_tenant_collective_alarm_rate_ppm", labels,
      "Collective-chain alarms per million events over the rolling window");
  tenant.events_since_snapshot = &registry_.gauge(
      "serve_tenant_events_since_snapshot", labels,
      "Events processed since the active model snapshot was adopted");
  tenant.snapshot_age_seconds = &registry_.gauge(
      "serve_tenant_snapshot_age_seconds", labels,
      "Age of the active model snapshot");
  tenant.model_version = &registry_.gauge(
      "serve_tenant_model_version", labels,
      "Version of the active model snapshot");
  // Release-publish the iteration bound only after the slot is whole:
  // a scraper iterating [0, limit_) can never see a half-built tenant.
  std::size_t limit = limit_.load(std::memory_order_relaxed);
  if (index + 1 > limit) {
    limit_.store(index + 1, std::memory_order_release);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
}

void ModelHealth::on_removed(std::size_t index) {
  Tenant& entry = tenant(index);
  entry.removed.store(true, std::memory_order_release);
  // Zero the exported gauges once so /metrics does not keep advertising
  // a live-looking health row for a tenant that is gone. (A tenant
  // re-added under the same name shares these handles and will simply
  // overwrite them on the next refresh().)
  entry.score_ewma_ppm->set(0);
  entry.alarm_rate_ppm->set(0);
  entry.collective_rate_ppm->set(0);
  entry.events_since_snapshot->set(0);
  entry.snapshot_age_seconds->set(0);
  entry.model_version->set(0);
}

ModelHealth::Tenant& ModelHealth::tenant(std::size_t index) const {
  Tenant* entry = tenants_.get(index);
  CAUSALIOT_CHECK_MSG(entry != nullptr, "unknown health tenant index");
  return *entry;
}

void ModelHealth::on_event(std::size_t index, double score) {
  Tenant& tenant = this->tenant(index);
  const std::uint64_t events =
      tenant.events_total.load(std::memory_order_relaxed);
  tenant.events_total.store(events + 1, std::memory_order_relaxed);
  // Single writer: plain load/modify/store is race-free; the atomic only
  // makes the concurrent scrape-side read well-defined.
  const double previous = tenant.ewma.load(std::memory_order_relaxed);
  const double next =
      events == 0 ? score
                  : previous + config_.ewma_alpha * (score - previous);
  tenant.ewma.store(next, std::memory_order_relaxed);

  std::size_t active = tenant.active_bucket.load(std::memory_order_relaxed);
  WindowBucket* bucket = &tenant.buckets[active];
  if (bucket->events.load(std::memory_order_relaxed) >= bucket_capacity_) {
    // Rotate: recycle the oldest bucket. Zero its fields before moving
    // the active index so a racing reader never sums a bucket that is
    // simultaneously new and stale.
    active = (active + 1) % kWindowBuckets;
    bucket = &tenant.buckets[active];
    bucket->events.store(0, std::memory_order_relaxed);
    bucket->alarms.store(0, std::memory_order_relaxed);
    bucket->collective.store(0, std::memory_order_relaxed);
    for (auto& bin : bucket->score_bins) {
      bin.store(0, std::memory_order_relaxed);
    }
    tenant.active_bucket.store(active, std::memory_order_relaxed);
  }
  bucket->events.fetch_add(1, std::memory_order_relaxed);
  const double clamped = std::clamp(score, 0.0, 1.0);
  const auto bin = std::min<std::size_t>(
      kScoreBins - 1,
      static_cast<std::size_t>(clamped * static_cast<double>(kScoreBins)));
  bucket->score_bins[bin].fetch_add(1, std::memory_order_relaxed);
}

void ModelHealth::on_alarm(std::size_t index, bool collective) {
  Tenant& tenant = this->tenant(index);
  WindowBucket& bucket =
      tenant.buckets[tenant.active_bucket.load(std::memory_order_relaxed)];
  bucket.alarms.fetch_add(1, std::memory_order_relaxed);
  if (collective) bucket.collective.fetch_add(1, std::memory_order_relaxed);
}

void ModelHealth::on_adopted(std::size_t index, std::uint64_t version) {
  Tenant& tenant = this->tenant(index);
  tenant.adopted_version.store(version, std::memory_order_relaxed);
  tenant.adopted_at_ns.store(now_ns(), std::memory_order_relaxed);
  tenant.events_at_adoption.store(
      tenant.events_total.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

void ModelHealth::on_published(std::size_t index, std::uint64_t version) {
  tenant(index).published_version.store(version, std::memory_order_relaxed);
}

ModelHealth::TenantView ModelHealth::view(std::size_t index) const {
  const Tenant& tenant = this->tenant(index);
  TenantView out;
  out.name = tenant.name;
  out.events_total = tenant.events_total.load(std::memory_order_relaxed);
  out.score_ewma = tenant.ewma.load(std::memory_order_relaxed);
  for (const WindowBucket& bucket : tenant.buckets) {
    out.window_events += bucket.events.load(std::memory_order_relaxed);
    out.window_alarms += bucket.alarms.load(std::memory_order_relaxed);
    out.window_collective +=
        bucket.collective.load(std::memory_order_relaxed);
    for (std::size_t bin = 0; bin < kScoreBins; ++bin) {
      out.score_deciles[bin] +=
          bucket.score_bins[bin].load(std::memory_order_relaxed);
    }
  }
  if (out.window_events > 0) {
    out.alarm_rate = static_cast<double>(out.window_alarms) /
                     static_cast<double>(out.window_events);
    out.collective_rate = static_cast<double>(out.window_collective) /
                          static_cast<double>(out.window_events);
  }
  out.model_version = tenant.adopted_version.load(std::memory_order_relaxed);
  out.published_version =
      tenant.published_version.load(std::memory_order_relaxed);
  const std::uint64_t at_adoption =
      tenant.events_at_adoption.load(std::memory_order_relaxed);
  out.events_since_snapshot =
      out.events_total > at_adoption ? out.events_total - at_adoption : 0;
  const std::uint64_t adopted_at =
      tenant.adopted_at_ns.load(std::memory_order_relaxed);
  const std::uint64_t now = now_ns();
  out.snapshot_age_seconds =
      now > adopted_at ? static_cast<double>(now - adopted_at) / 1e9 : 0.0;
  return out;
}

void ModelHealth::refresh() const {
  const std::size_t limit = limit_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < limit; ++i) {
    const Tenant* entry = tenants_.get(i);
    if (entry == nullptr || entry->removed.load(std::memory_order_acquire)) {
      continue;
    }
    const TenantView current = view(i);
    const Tenant& tenant = *entry;
    tenant.score_ewma_ppm->set(to_ppm(current.score_ewma));
    tenant.alarm_rate_ppm->set(to_ppm(current.alarm_rate));
    tenant.collective_rate_ppm->set(to_ppm(current.collective_rate));
    tenant.events_since_snapshot->set(
        static_cast<std::int64_t>(current.events_since_snapshot));
    tenant.snapshot_age_seconds->set(
        static_cast<std::int64_t>(current.snapshot_age_seconds));
    tenant.model_version->set(
        static_cast<std::int64_t>(current.model_version));
  }
}

std::string ModelHealth::tenants_json(std::size_t offset, std::size_t limit,
                                      std::size_t* live_total) const {
  std::string out = "[";
  const std::size_t slot_limit = limit_.load(std::memory_order_acquire);
  std::size_t live = 0;
  std::size_t included = 0;
  bool first = true;
  for (std::size_t i = 0; i < slot_limit; ++i) {
    const Tenant* entry = tenants_.get(i);
    if (entry == nullptr || entry->removed.load(std::memory_order_acquire)) {
      continue;
    }
    // Window over live tenants in handle order; keep scanning past the
    // window so live_total reports the full fleet size.
    const std::size_t position = live++;
    if (position < offset || included >= limit) continue;
    ++included;
    const TenantView t = view(i);
    if (!first) out += ", ";
    first = false;
    out += util::format(
        "{\"name\": \"%s\", \"model_version\": %" PRIu64
        ", \"published_version\": %" PRIu64 ", \"events\": %" PRIu64
        ", \"events_since_snapshot\": %" PRIu64
        ", \"snapshot_age_seconds\": %.3f, \"score_ewma\": %.6f",
        util::json_escape(t.name).c_str(), t.model_version,
        t.published_version, t.events_total, t.events_since_snapshot,
        t.snapshot_age_seconds, t.score_ewma);
    out += util::format(
        ", \"window\": {\"events\": %" PRIu64 ", \"alarms\": %" PRIu64
        ", \"collective\": %" PRIu64
        ", \"alarm_rate\": %.6f, \"collective_rate\": %.6f, "
        "\"score_deciles\": [",
        t.window_events, t.window_alarms, t.window_collective, t.alarm_rate,
        t.collective_rate);
    for (std::size_t bin = 0; bin < kScoreBins; ++bin) {
      if (bin > 0) out += ", ";
      out += util::format("%" PRIu64, t.score_deciles[bin]);
    }
    out += "]}}";
  }
  out += "]";
  if (live_total != nullptr) *live_total = live;
  return out;
}

}  // namespace causaliot::serve
