#include "causaliot/serve/watchdog.hpp"

#include <cinttypes>

#include "causaliot/util/strings.hpp"

namespace causaliot::serve {

Watchdog::Watchdog(DetectionService& service, WatchdogConfig config)
    : service_(service), config_(config) {
  obs::Registry& registry = service_.registry();
  const std::size_t shards = service_.shard_count();
  tracks_.resize(shards);
  heartbeat_gauges_.reserve(shards);
  stalled_gauges_.reserve(shards);
  saturation_gauges_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    const std::string label = std::to_string(i);
    heartbeat_gauges_.push_back(&registry.gauge(
        "serve_watchdog_shard_heartbeat", {{"shard", label}},
        "Items the shard worker has dequeued (events + controls)"));
    stalled_gauges_.push_back(&registry.gauge(
        "serve_watchdog_shard_stalled", {{"shard", label}},
        "1 while the shard has queued work but a frozen heartbeat"));
    saturation_gauges_.push_back(&registry.gauge(
        "serve_watchdog_queue_saturation_ppm", {{"shard", label}},
        "Shard queue occupancy in parts-per-million of capacity"));
  }
  stalled_total_ = &registry.gauge("serve_watchdog_stalled_shards", {},
                                   "Shards currently considered stalled");
}

void Watchdog::refresh(std::uint64_t now_ns) {
  const double capacity = static_cast<double>(service_.queue_capacity());
  const std::uint64_t stall_ns =
      static_cast<std::uint64_t>(config_.stall_seconds * 1e9);
  std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t stalled_total = 0;
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    const DetectionService::ShardProgress progress =
        service_.shard_progress(i);
    ShardTrack& track = tracks_[i];
    if (track.changed_ns == 0 || progress.heartbeat != track.heartbeat) {
      track.heartbeat = progress.heartbeat;
      track.changed_ns = now_ns;
      track.stalled = false;
    } else if (progress.queue_depth > 0 &&
               now_ns - track.changed_ns >= stall_ns) {
      track.stalled = true;
    } else if (progress.queue_depth == 0) {
      // Idle, not stuck: nothing to dequeue proves nothing about the
      // worker, so never hold a stall verdict against an empty queue.
      track.stalled = false;
    }
    track.queue_depth = progress.queue_depth;
    track.last_item_ns = progress.last_item_ns;
    if (track.stalled) ++stalled_total;

    heartbeat_gauges_[i]->set(
        static_cast<std::int64_t>(progress.heartbeat));
    stalled_gauges_[i]->set(track.stalled ? 1 : 0);
    const double saturation =
        capacity > 0.0
            ? static_cast<double>(progress.queue_depth) / capacity
            : 0.0;
    saturation_gauges_[i]->set(static_cast<std::int64_t>(saturation * 1e6));
  }
  stalled_total_->set(stalled_total);
}

std::size_t Watchdog::stalled_shards() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t out = 0;
  for (const ShardTrack& track : tracks_) {
    if (track.stalled) ++out;
  }
  return out;
}

std::string Watchdog::json(std::uint64_t now_ns) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t stalled_total = 0;
  for (const ShardTrack& track : tracks_) {
    if (track.stalled) ++stalled_total;
  }
  std::string out =
      util::format("{\"stalled_shards\": %zu, \"stall_seconds\": %.1f, "
                   "\"shards\": [",
                   stalled_total, config_.stall_seconds);
  const std::size_t capacity = service_.queue_capacity();
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    const ShardTrack& track = tracks_[i];
    if (i != 0) out += ", ";
    const double last_item_age_seconds =
        track.last_item_ns != 0 && now_ns > track.last_item_ns
            ? static_cast<double>(now_ns - track.last_item_ns) / 1e9
            : 0.0;
    out += util::format(
        "{\"shard\": %zu, \"heartbeat\": %" PRIu64
        ", \"queue_depth\": %" PRIu64 ", \"queue_capacity\": %zu, "
        "\"stalled\": %s, \"last_item_age_seconds\": %.3f}",
        i, track.heartbeat, track.queue_depth, capacity,
        track.stalled ? "true" : "false", last_item_age_seconds);
  }
  out += "]}";
  return out;
}

std::vector<obs::AlertRule> Watchdog::default_rules() const {
  std::vector<obs::AlertRule> rules;

  obs::AlertRule stalled;
  stalled.name = "shard_stalled";
  stalled.metric = "serve_watchdog_shard_stalled";
  stalled.kind = obs::AlertKind::kThreshold;
  stalled.op = obs::AlertOp::kGt;
  stalled.value = 0.5;
  // The hysteresis already lives in the stall detector (stall_seconds),
  // so the rule fires on the first tick that reports a stalled shard.
  stalled.for_seconds = 0.0;
  rules.push_back(std::move(stalled));

  obs::AlertRule watermark;
  watermark.name = "queue_high_watermark";
  watermark.metric = "serve_watchdog_queue_saturation_ppm";
  watermark.kind = obs::AlertKind::kThreshold;
  watermark.op = obs::AlertOp::kGe;
  watermark.value = config_.queue_saturation * 1e6;
  watermark.for_seconds = config_.saturation_for_seconds;
  rules.push_back(std::move(watermark));

  obs::AlertRule rejects;
  rejects.name = "ingest_reject_spike";
  rejects.metric = "serve_ingest_rejected_total";
  rejects.kind = obs::AlertKind::kRate;
  rejects.op = obs::AlertOp::kGt;
  rejects.value = config_.reject_rate_per_s;
  rejects.window_seconds = config_.reject_window_seconds;
  rejects.for_seconds = config_.reject_for_seconds;
  rules.push_back(std::move(rejects));

  obs::AlertRule stale;
  stale.name = "model_snapshot_stale";
  stale.metric = "serve_tenant_snapshot_age_seconds";
  stale.kind = obs::AlertKind::kThreshold;
  stale.op = obs::AlertOp::kGt;
  stale.value = config_.snapshot_age_seconds;
  stale.for_seconds = 0.0;
  rules.push_back(std::move(stale));

  // A single device repeatedly topping root-cause attributions across
  // the fleet is the localization plane's page-worthy signal: either
  // the device is genuinely misbehaving in many homes or its model is
  // systematically wrong. Empty labels make the rate rule watch every
  // per-device instance and alert on the worst offender.
  obs::AlertRule blame;
  blame.name = "root_cause_blame_spike";
  blame.metric = "serve_root_cause_rank1_total";
  blame.kind = obs::AlertKind::kRate;
  blame.op = obs::AlertOp::kGt;
  blame.value = config_.blame_rate_per_s;
  blame.window_seconds = config_.blame_window_seconds;
  blame.for_seconds = config_.blame_for_seconds;
  rules.push_back(std::move(blame));

  return rules;
}

}  // namespace causaliot::serve
