#include "causaliot/serve/alarm_json.hpp"

#include "causaliot/detect/explanation.hpp"
#include "causaliot/serve/blame.hpp"
#include "causaliot/util/strings.hpp"

namespace causaliot::serve {

const char* severity_label(detect::AlarmSeverity severity) {
  switch (severity) {
    case detect::AlarmSeverity::kNotice: return "notice";
    case detect::AlarmSeverity::kWarning: return "warning";
    case detect::AlarmSeverity::kCritical: return "critical";
  }
  return "notice";
}

std::string alarm_to_json(const ServedAlarm& alarm,
                          const telemetry::DeviceCatalog& catalog) {
  const detect::AnomalyEntry& head = alarm.report.contextual();
  const telemetry::DeviceInfo& info = catalog.info(head.event.device);

  std::string out = util::format(
      "{\"type\": \"alarm\", \"tenant\": \"%s\", \"severity\": \"%s\", "
      "\"device\": \"%s\", \"state\": \"%s\", \"score\": %.6f, "
      "\"threshold\": %.6f, \"margin\": %.6f, \"probability\": %.6f, "
      "\"stream_index\": %zu, \"timestamp\": %.3f, \"model_version\": %llu, "
      "\"suppressed_duplicates\": %zu, \"chain\": %zu, \"interrupted\": %s",
      util::json_escape(alarm.tenant_name).c_str(),
      severity_label(alarm.severity), util::json_escape(info.name).c_str(),
      detect::state_label(info, head.event.state).c_str(), head.score,
      alarm.score_threshold, head.score - alarm.score_threshold,
      1.0 - head.score, head.stream_index, head.event.timestamp,
      static_cast<unsigned long long>(alarm.model_version),
      alarm.suppressed_duplicates, alarm.report.chain_length(),
      alarm.report.ended_by_abrupt_event ? "true" : "false");

  out += ", \"context\": [";
  for (std::size_t c = 0; c < head.causes.size(); ++c) {
    const telemetry::DeviceInfo& cause_info =
        catalog.info(head.causes[c].device);
    out += util::format(
        "%s{\"cause\": \"%s\", \"lag\": %u, \"state\": \"%s\"}",
        c == 0 ? "" : ", ", util::json_escape(cause_info.name).c_str(),
        head.causes[c].lag,
        detect::state_label(cause_info, head.cause_values[c]).c_str());
  }
  out += "], \"entries\": [";
  for (std::size_t i = 0; i < alarm.report.entries.size(); ++i) {
    const detect::AnomalyEntry& entry = alarm.report.entries[i];
    const telemetry::DeviceInfo& entry_info = catalog.info(entry.event.device);
    out += util::format(
        "%s{\"position\": %zu, \"device\": \"%s\", \"state\": \"%s\", "
        "\"score\": %.6f, \"stream_index\": %zu, \"timestamp\": %.3f}",
        i == 0 ? "" : ", ", i, util::json_escape(entry_info.name).c_str(),
        detect::state_label(entry_info, entry.event.state).c_str(),
        entry.score, entry.stream_index, entry.event.timestamp);
  }
  out += "], \"root_causes\": ";
  out += root_causes_json(alarm.root_causes, &catalog);
  out += util::format(
      ", \"hint\": \"%s\"}",
      util::json_escape(
          detect::attribution_hint(alarm.report, alarm.root_causes, catalog))
          .c_str());
  return out;
}

}  // namespace causaliot::serve
