#include "causaliot/serve/session.hpp"

#include "causaliot/util/check.hpp"

namespace causaliot::serve {

TenantSession::TenantSession(std::string name,
                             std::shared_ptr<const ModelSnapshot> model,
                             SessionConfig config,
                             std::vector<std::uint8_t> initial_state)
    : name_(std::move(name)),
      config_(config),
      slot_(model),
      active_(std::move(model)),
      sink_(config.sink) {
  CAUSALIOT_CHECK_MSG(active_ != nullptr, "session needs an initial model");
  device_count_ = active_->graph.device_count();
  CAUSALIOT_CHECK_MSG(initial_state.size() == device_count_,
                      "initial state size mismatch");
  monitor_.emplace(active_->graph, monitor_config(*active_),
                   std::move(initial_state));
}

detect::MonitorConfig TenantSession::monitor_config(
    const ModelSnapshot& model) const {
  detect::MonitorConfig config;
  config.score_threshold = model.score_threshold;
  config.laplace_alpha = model.laplace_alpha;
  config.k_max = config_.k_max;
  return config;
}

void TenantSession::publish_model(std::shared_ptr<const ModelSnapshot> model) {
  CAUSALIOT_CHECK_MSG(model != nullptr, "cannot publish a null model");
  CAUSALIOT_CHECK_MSG(model->graph.device_count() == device_count_,
                      "published model device count mismatch");
  slot_.store(std::move(model));
}

void TenantSession::adopt(std::shared_ptr<const ModelSnapshot> next) {
  detect::MonitorState state = monitor_->export_state();
  active_ = std::move(next);
  monitor_.emplace(active_->graph, monitor_config(*active_),
                   std::move(state));
  ++swaps_adopted_;
}

std::optional<detect::AnomalyReport> TenantSession::process(
    const preprocess::BinaryEvent& event) {
  std::shared_ptr<const ModelSnapshot> latest = slot_.load();
  if (latest.get() != active_.get()) adopt(std::move(latest));
  return monitor_->process(event);
}

std::optional<detect::AnomalyReport> TenantSession::finish() {
  return monitor_->finish();
}

std::optional<detect::SunkAlarm> TenantSession::filter(
    detect::AnomalyReport report) {
  if (config_.deduplicate_alarms) return sink_.offer(std::move(report));
  detect::SunkAlarm out;
  out.severity = sink_.grade(report.contextual().score);
  out.report = std::move(report);
  return out;
}

}  // namespace causaliot::serve
