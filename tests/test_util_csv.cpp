#include "causaliot/util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace causaliot::util {
namespace {

TEST(CsvParse, PlainFields) {
  EXPECT_EQ(parse_csv_line("a,b,c").value(), (CsvRow{"a", "b", "c"}));
}

TEST(CsvParse, EmptyFields) {
  EXPECT_EQ(parse_csv_line(",,").value(), (CsvRow{"", "", ""}));
}

TEST(CsvParse, QuotedFieldWithDelimiter) {
  EXPECT_EQ(parse_csv_line("\"a,b\",c").value(), (CsvRow{"a,b", "c"}));
}

TEST(CsvParse, EscapedQuotes) {
  EXPECT_EQ(parse_csv_line("\"he said \"\"hi\"\"\"").value(),
            (CsvRow{"he said \"hi\""}));
}

TEST(CsvParse, RejectsUnterminatedQuote) {
  EXPECT_FALSE(parse_csv_line("\"abc").ok());
}

TEST(CsvParse, RejectsQuoteInsideUnquotedField) {
  EXPECT_FALSE(parse_csv_line("ab\"c").ok());
}

TEST(CsvParse, CustomDelimiter) {
  EXPECT_EQ(parse_csv_line("a;b;c", ';').value(), (CsvRow{"a", "b", "c"}));
}

TEST(CsvFormat, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(format_csv_line({"plain", "with,comma", "with\"quote"}),
            "plain,\"with,comma\",\"with\"\"quote\"");
}

TEST(CsvRoundTrip, FormatThenParse) {
  const CsvRow original{"a,b", "c\"d", "", "plain", "line\nbreak"};
  const auto parsed = parse_csv_line(format_csv_line(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), original);
}

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("causaliot_csv_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(CsvFileTest, WriteAndReadBack) {
  const std::vector<CsvRow> rows{{"1", "x"}, {"2", "y,z"}};
  ASSERT_TRUE(write_csv_file(path_.string(), rows, {"id", "value"}).ok());
  const auto back = read_csv_file(path_.string(), /*skip_header=*/true);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), rows);
}

TEST_F(CsvFileTest, HeaderIsFirstRowWhenNotSkipped) {
  ASSERT_TRUE(write_csv_file(path_.string(), {{"1"}}, {"id"}).ok());
  const auto all = read_csv_file(path_.string(), /*skip_header=*/false);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all.value().size(), 2u);
  EXPECT_EQ(all.value()[0], (CsvRow{"id"}));
}

TEST_F(CsvFileTest, SkipsBlankLinesAndCarriageReturns) {
  std::ofstream out(path_);
  out << "a,b\r\n\r\n" << "c,d\n";
  out.close();
  const auto rows = read_csv_file(path_.string(), /*skip_header=*/false);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0], (CsvRow{"a", "b"}));
  EXPECT_EQ(rows.value()[1], (CsvRow{"c", "d"}));
}

TEST(CsvFile, MissingFileIsIoError) {
  const auto result = read_csv_file("/nonexistent/path/file.csv", false);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kIoError);
}

}  // namespace
}  // namespace causaliot::util
