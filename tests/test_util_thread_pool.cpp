#include "causaliot/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace causaliot::util {
namespace {

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(resolve_thread_count(1), 1u);
  EXPECT_EQ(resolve_thread_count(7), 7u);
  EXPECT_GE(resolve_thread_count(0), 1u);  // hardware concurrency, >= 1
}

TEST(ThreadPool, SubmitReturnsFutureResult) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.enqueue([&executed] { ++executed; });
    }
  }  // ~ThreadPool joins after the queue drains
  EXPECT_EQ(executed.load(), 64);
}

TEST(ParallelFor, CoversExactlyTheRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(&pool, 5, 95, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), i >= 5 && i < 95 ? 1 : 0) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(&pool, 3, 3, [&](std::size_t) { ++calls; });
  parallel_for(&pool, 5, 3, [&](std::size_t) { ++calls; });
  parallel_for(nullptr, 0, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, NullPoolRunsSerially) {
  std::vector<int> order;
  parallel_for(nullptr, 0, 8, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  std::vector<int> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // serial fallback preserves iteration order
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      parallel_for(&pool, 0, 100,
                   [&](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                     ++completed;
                   }),
      std::runtime_error);
  // Everything that did run completed cleanly; nothing runs after the
  // range is abandoned (bounded by the full range minus the thrower).
  EXPECT_LT(completed.load(), 100);
}

TEST(ParallelFor, ExceptionPropagatesWithoutPool) {
  EXPECT_THROW(parallel_for(nullptr, 0, 4,
                            [](std::size_t) {
                              throw std::runtime_error("serial boom");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, NestedInvocationFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  // Outer loop occupies every worker; each iteration runs an inner
  // parallel_for on the same (fully busy) pool. The caller-participates
  // contract means the inner loops still finish.
  parallel_for(&pool, 0, 4, [&](std::size_t) {
    parallel_for(&pool, 0, 10, [&](std::size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 40);
}

TEST(ParallelFor, NestedSubmitFromWorkerCompletes) {
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([] { return 7; });
    return inner.get() + 1;  // waits on a task served by the other worker
  });
  EXPECT_EQ(outer.get(), 8);
}

TEST(ParallelFor, DynamicSchedulingBalancesSkewedWork) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  std::atomic<std::size_t> benchmark_sink{0};  // keeps the busy loop alive
  // Items with wildly different costs; just assert completion/correctness.
  parallel_for(&pool, 0, 32, [&](std::size_t i) {
    std::size_t sink = 0;
    for (std::size_t k = 0; k < (i % 8) * 10000; ++k) sink += k;
    benchmark_sink.store(sink, std::memory_order_relaxed);
    total += i;
  });
  EXPECT_EQ(total.load(), 32u * 31u / 2u);
}

}  // namespace
}  // namespace causaliot::util
