// Logger satellite: pinned line format (monotonic timestamp + thread
// ordinal + level) and the single-write guarantee — concurrent loggers
// may interleave lines, never bytes within one.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "causaliot/util/log.hpp"

namespace causaliot::util {
namespace {

TEST(UtilLog, FormatPinsTimestampThreadAndLevel) {
  EXPECT_EQ(format_log_line(LogLevel::kWarn, "hello", 1.5, 3),
            "[  1.500000] [t3] [WARN] hello\n");
  EXPECT_EQ(format_log_line(LogLevel::kError, "", 0.0, 0),
            "[  0.000000] [t0] [ERROR] \n");
  EXPECT_EQ(format_log_line(LogLevel::kDebug, "x", 12345.25, 17),
            "[12345.250000] [t17] [DEBUG] x\n");
}

bool parse_line(const std::string& line, std::string* message) {
  // [  1.234567] [tN] [LEVEL] message
  if (line.empty() || line.front() != '[') return false;
  const std::size_t ts_end = line.find("] [t");
  if (ts_end == std::string::npos) return false;
  const std::size_t level_open = line.find("] [", ts_end + 1);
  if (level_open == std::string::npos) return false;
  const std::size_t level_close = line.find("] ", level_open + 3);
  if (level_close == std::string::npos) return false;
  *message = line.substr(level_close + 2);
  return true;
}

TEST(UtilLog, ConcurrentLoggersNeverInterleaveWithinALine) {
  const LogLevel previous = log_level();
  set_log_level(LogLevel::kInfo);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;

  ::testing::internal::CaptureStderr();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        log_info("msg-" + std::to_string(t) + "-" + std::to_string(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const std::string captured = ::testing::internal::GetCapturedStderr();
  set_log_level(previous);

  // Every line must parse as exactly one well-formed record, and each
  // thread's messages must all arrive intact and in per-thread order.
  std::vector<std::vector<int>> seen(kThreads);
  std::size_t lines = 0;
  std::size_t begin = 0;
  while (begin < captured.size()) {
    std::size_t end = captured.find('\n', begin);
    ASSERT_NE(end, std::string::npos) << "unterminated line";
    const std::string line = captured.substr(begin, end - begin + 1);
    begin = end + 1;
    ++lines;
    std::string message;
    ASSERT_TRUE(parse_line(line, &message)) << "malformed: " << line;
    int thread = -1, index = -1;
    ASSERT_EQ(std::sscanf(message.c_str(), "msg-%d-%d\n", &thread, &index),
              2)
        << "mangled message: " << message;
    ASSERT_GE(thread, 0);
    ASSERT_LT(thread, kThreads);
    seen[thread].push_back(index);
  }
  EXPECT_EQ(lines, static_cast<std::size_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(seen[t].size(), static_cast<std::size_t>(kPerThread));
    for (int i = 0; i < kPerThread; ++i) {
      EXPECT_EQ(seen[t][i], i) << "thread " << t << " out of order";
    }
  }
}

TEST(UtilLog, LevelFilterStillApplies) {
  const LogLevel previous = log_level();
  set_log_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  log_warn("suppressed");
  log_error("emitted");
  const std::string captured = ::testing::internal::GetCapturedStderr();
  set_log_level(previous);
  EXPECT_EQ(captured.find("suppressed"), std::string::npos);
  EXPECT_NE(captured.find("emitted"), std::string::npos);
}

}  // namespace
}  // namespace causaliot::util
