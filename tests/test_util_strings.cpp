#include "causaliot/util/strings.hpp"

#include <gtest/gtest.h>

namespace causaliot::util {
namespace {

TEST(Split, BasicFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Split, PreservesEmptyFields) {
  EXPECT_EQ(split(",a,,b,", ','),
            (std::vector<std::string>{"", "a", "", "b", ""}));
}

TEST(Split, SingleFieldWithoutDelimiter) {
  EXPECT_EQ(split("hello", ','), (std::vector<std::string>{"hello"}));
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Trim, StripsWhitespaceBothEnds) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim("nochange"), "nochange");
}

TEST(Trim, AllWhitespaceBecomesEmpty) {
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ","), "solo");
  EXPECT_EQ(join({}, ","), "");
}

TEST(ParseDouble, ValidValues) {
  EXPECT_DOUBLE_EQ(parse_double("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(parse_double("-0.25").value(), -0.25);
  EXPECT_DOUBLE_EQ(parse_double("  42  ").value(), 42.0);
  EXPECT_DOUBLE_EQ(parse_double("1e3").value(), 1000.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_FALSE(parse_double("abc").ok());
  EXPECT_FALSE(parse_double("1.5x").ok());
  EXPECT_FALSE(parse_double("").ok());
  EXPECT_FALSE(parse_double("  ").ok());
}

TEST(ParseInt, ValidValues) {
  EXPECT_EQ(parse_int("17").value(), 17);
  EXPECT_EQ(parse_int("-4").value(), -4);
  EXPECT_EQ(parse_int(" 8 ").value(), 8);
}

TEST(ParseInt, RejectsNonIntegers) {
  EXPECT_FALSE(parse_int("3.5").ok());
  EXPECT_FALSE(parse_int("x").ok());
  EXPECT_FALSE(parse_int("").ok());
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_TRUE(starts_with("foo", ""));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_FALSE(starts_with("xfoo", "foo"));
}

TEST(Format, PrintfSemantics) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(format("plain"), "plain");
}

TEST(Format, LongOutput) {
  const std::string big(500, 'a');
  EXPECT_EQ(format("%s!", big.c_str()).size(), 501u);
}

}  // namespace
}  // namespace causaliot::util
