#include "causaliot/sim/simulator.hpp"

#include <gtest/gtest.h>

#include "causaliot/sim/physical.hpp"

namespace causaliot::sim {
namespace {

HomeProfile tiny_profile() {
  HomeProfile profile;
  profile.name = "tiny";
  profile.days = 2.0;
  profile.rooms = {"kitchen", "living"};
  profile.devices = {
      {"pe_kitchen", "kitchen", telemetry::AttributeType::kPresenceSensor,
       telemetry::ValueType::kBinary},
      {"pe_living", "living", telemetry::AttributeType::kPresenceSensor,
       telemetry::ValueType::kBinary},
      {"lamp", "kitchen", telemetry::AttributeType::kDimmer,
       telemetry::ValueType::kResponsiveNumeric},
      {"bright", "kitchen", telemetry::AttributeType::kBrightnessSensor,
       telemetry::ValueType::kAmbientNumeric},
  };
  profile.emitters = {{"lamp", "kitchen", 120.0}};
  profile.activities = {
      {"visit_kitchen",
       1.0,
       0.0,
       24.0,
       {{StepKind::kMoveTo, "kitchen", 0.0, 5.0, 10.0, 1.0},
        {StepKind::kSetDevice, "lamp", 80.0, 5.0, 10.0, 1.0},
        {StepKind::kSetDevice, "lamp", 0.0, 5.0, 10.0, 1.0},
        {StepKind::kMoveTo, "living", 0.0, 5.0, 10.0, 1.0}}},
  };
  profile.rules = {{"R1", "pe_kitchen", 1, "lamp", 60.0, 2.0}};
  profile.noise.periodic_report_s = 300.0;
  profile.noise.duplicate_report_probability = 0.0;
  profile.noise.extreme_probability = 0.0;
  profile.mean_activity_gap_s = 600.0;
  profile.min_pair_occurrences = 3;
  return profile;
}

TEST(ClearSkyDaylight, ZeroAtNightPeakAtNoon) {
  EXPECT_DOUBLE_EQ(clear_sky_daylight(0.0, 100.0), 0.0);          // midnight
  EXPECT_DOUBLE_EQ(clear_sky_daylight(3.0 * 3600, 100.0), 0.0);   // 3 am
  EXPECT_NEAR(clear_sky_daylight(13.0 * 3600, 100.0), 100.0, 1.0);  // solar noon
  EXPECT_GT(clear_sky_daylight(9.0 * 3600, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(clear_sky_daylight(23.0 * 3600, 100.0), 0.0);
  // Periodic across days.
  EXPECT_DOUBLE_EQ(clear_sky_daylight(13.0 * 3600, 100.0),
                   clear_sky_daylight(86400.0 + 13.0 * 3600, 100.0));
}

TEST(BrightnessModel, EmitterRaisesRoomLevel) {
  const HomeProfile profile = tiny_profile();
  SmartHomeSimulator simulator(profile, 1);
  const BrightnessModel model(profile, simulator.catalog());
  std::vector<double> raw(4, 0.0);
  const std::size_t kitchen = model.room_index("kitchen");
  const double dark = model.level(kitchen, 0.0, 1.0, raw);
  raw[2] = 80.0;  // lamp on
  const double lit = model.level(kitchen, 0.0, 1.0, raw);
  EXPECT_NEAR(lit - dark, 120.0, 1e-9);
}

TEST(BrightnessModel, SensorAndRoomLookup) {
  const HomeProfile profile = tiny_profile();
  SmartHomeSimulator simulator(profile, 1);
  const BrightnessModel model(profile, simulator.catalog());
  EXPECT_EQ(model.sensor_in_room(model.room_index("kitchen")).value(), 3u);
  EXPECT_FALSE(model.sensor_in_room(model.room_index("living")).has_value());
  EXPECT_EQ(model.affected_room(2).value(), model.room_index("kitchen"));
  EXPECT_FALSE(model.affected_room(0).has_value());
  EXPECT_EQ(model.physical_pairs().size(), 1u);
  EXPECT_EQ(model.physical_pairs()[0],
            (std::pair<telemetry::DeviceId, telemetry::DeviceId>{2, 3}));
}

TEST(Simulator, DeterministicGivenSeed) {
  SmartHomeSimulator a(tiny_profile(), 99);
  SmartHomeSimulator b(tiny_profile(), 99);
  const SimulationResult ra = a.run();
  const SimulationResult rb = b.run();
  ASSERT_EQ(ra.log.size(), rb.log.size());
  for (std::size_t i = 0; i < ra.log.size(); ++i) {
    EXPECT_EQ(ra.log.events()[i], rb.log.events()[i]);
  }
}

TEST(Simulator, DifferentSeedsDiffer) {
  SmartHomeSimulator a(tiny_profile(), 1);
  SmartHomeSimulator b(tiny_profile(), 2);
  EXPECT_NE(a.run().log.size(), b.run().log.size());
}

TEST(Simulator, LogIsTimeOrderedAndInHorizon) {
  SmartHomeSimulator simulator(tiny_profile(), 5);
  const SimulationResult result = simulator.run();
  EXPECT_TRUE(result.log.is_time_ordered());
  ASSERT_GT(result.log.size(), 0u);
  EXPECT_LE(result.log.events().back().timestamp, 2.0 * 86400.0);
}

TEST(Simulator, GroundTruthContainsRuleAndPhysicalPairs) {
  SmartHomeSimulator simulator(tiny_profile(), 7);
  const SimulationResult result = simulator.run();
  // R1: pe_kitchen -> lamp.
  EXPECT_TRUE(result.ground_truth.contains(0, 2));
  // Physical: lamp -> bright (both directions accepted).
  EXPECT_TRUE(result.ground_truth.contains(2, 3));
  EXPECT_TRUE(result.ground_truth.contains(3, 2));
  // Autocorrelation for every device.
  for (telemetry::DeviceId id = 0; id < 4; ++id) {
    EXPECT_TRUE(result.ground_truth.contains(id, id));
  }
}

TEST(Simulator, RulesActuallyFire) {
  SmartHomeSimulator simulator(tiny_profile(), 11);
  const SimulationResult result = simulator.run();
  ASSERT_EQ(result.rule_fire_counts.size(), 1u);
  EXPECT_GT(result.rule_fire_counts[0], 0u);
  EXPECT_GT(result.automation_events, 0u);
}

TEST(Simulator, PresenceTimesOutWhenIdle) {
  SmartHomeSimulator simulator(tiny_profile(), 13);
  const SimulationResult result = simulator.run();
  // Every presence-ON is eventually followed by a presence-OFF of the
  // same sensor (motion sensors auto-reset).
  int open_kitchen = 0;
  for (const telemetry::DeviceEvent& event : result.log.events()) {
    if (event.device != 0) continue;
    if (event.value > 0.5) {
      ++open_kitchen;
    } else {
      open_kitchen = 0;
    }
    // Never two ON reports without an intervening OFF (no duplicates in
    // this profile).
    EXPECT_LE(open_kitchen, 1);
  }
}

TEST(Simulator, RunTwiceIsAnError) {
  SmartHomeSimulator simulator(tiny_profile(), 17);
  simulator.run();
  EXPECT_DEATH(simulator.run(), "run\\(\\) may only be called once");
}

TEST(Profiles, ContextActMatchesTableI) {
  const HomeProfile profile = contextact_profile();
  EXPECT_EQ(profile.devices.size(), 22u);
  SmartHomeSimulator simulator(profile, 1);
  const auto& catalog = simulator.catalog();
  using telemetry::AttributeType;
  EXPECT_EQ(catalog.devices_of_type(AttributeType::kSwitch).size(), 2u);
  EXPECT_EQ(catalog.devices_of_type(AttributeType::kPresenceSensor).size(),
            5u);
  EXPECT_EQ(catalog.devices_of_type(AttributeType::kContactSensor).size(),
            2u);
  EXPECT_EQ(catalog.devices_of_type(AttributeType::kDimmer).size(), 2u);
  EXPECT_EQ(catalog.devices_of_type(AttributeType::kWaterMeter).size(), 1u);
  EXPECT_EQ(catalog.devices_of_type(AttributeType::kPowerSensor).size(), 6u);
  EXPECT_EQ(
      catalog.devices_of_type(AttributeType::kBrightnessSensor).size(), 4u);
  EXPECT_EQ(profile.rules.size(), 12u);
}

TEST(Profiles, CasasMatchesTableI) {
  const HomeProfile profile = casas_profile();
  EXPECT_EQ(profile.devices.size(), 8u);
  EXPECT_DOUBLE_EQ(profile.days, 30.0);
  EXPECT_TRUE(profile.rules.empty());
  SmartHomeSimulator simulator(profile, 1);
  using telemetry::AttributeType;
  EXPECT_EQ(simulator.catalog()
                .devices_of_type(AttributeType::kPresenceSensor)
                .size(),
            7u);
}

TEST(AutomationEngine, SkipsWhenActionAlreadySatisfied) {
  const HomeProfile profile = tiny_profile();
  SmartHomeSimulator simulator(profile, 1);
  AutomationEngine engine(simulator.catalog(), profile.rules, 100.0);
  std::vector<std::uint8_t> states(4, 0);
  states[2] = 1;  // lamp already on
  EXPECT_TRUE(engine.on_state_change(0, 1, 0.0, states).empty());
  states[2] = 0;
  const auto firings = engine.on_state_change(0, 1, 100.0, states);
  ASSERT_EQ(firings.size(), 1u);
  EXPECT_EQ(firings[0].action_device, 2u);
  EXPECT_DOUBLE_EQ(firings[0].action_value, 60.0);
}

TEST(AutomationEngine, CooldownSuppressesRapidRefires) {
  const HomeProfile profile = tiny_profile();
  SmartHomeSimulator simulator(profile, 1);
  AutomationEngine engine(simulator.catalog(), profile.rules, 100.0,
                          /*cooldown_s=*/60.0);
  std::vector<std::uint8_t> states(4, 0);
  EXPECT_EQ(engine.on_state_change(0, 1, 0.0, states).size(), 1u);
  EXPECT_TRUE(engine.on_state_change(0, 1, 10.0, states).empty());
  EXPECT_EQ(engine.on_state_change(0, 1, 120.0, states).size(), 1u);
  EXPECT_EQ(engine.fire_counts()[0], 2u);
}

TEST(AutomationEngine, BinaryStateSemantics) {
  const HomeProfile profile = tiny_profile();
  SmartHomeSimulator simulator(profile, 1);
  AutomationEngine engine(simulator.catalog(), profile.rules, 100.0);
  EXPECT_EQ(engine.binary_state(0, 1.0), 1);   // binary
  EXPECT_EQ(engine.binary_state(2, 40.0), 1);  // responsive > 0
  EXPECT_EQ(engine.binary_state(2, 0.0), 0);
  EXPECT_EQ(engine.binary_state(3, 150.0), 1);  // ambient above cut
  EXPECT_EQ(engine.binary_state(3, 50.0), 0);
}

TEST(GroundTruth, DedupAndQueries) {
  GroundTruth gt;
  EXPECT_TRUE(gt.add({0, 1, InteractionSource::kAutomation,
                      ActivityCategory::kNone}));
  EXPECT_FALSE(gt.add({0, 1, InteractionSource::kUserActivity,
                       ActivityCategory::kUseAfterUse}));
  EXPECT_EQ(gt.size(), 1u);
  EXPECT_EQ(gt.interactions()[0].source, InteractionSource::kAutomation);
  EXPECT_TRUE(gt.contains(0, 1));
  EXPECT_FALSE(gt.contains(1, 0));
  gt.add({0, 2, InteractionSource::kUserActivity,
          ActivityCategory::kMoveAfterMove});
  gt.add({0, 0, InteractionSource::kAutocorrelation,
          ActivityCategory::kNone});
  EXPECT_EQ(gt.children_of(0), (std::vector<telemetry::DeviceId>{1, 2}));
  EXPECT_EQ(gt.count_by_source(InteractionSource::kAutomation), 1u);
  EXPECT_EQ(gt.count_by_category(ActivityCategory::kMoveAfterMove), 1u);
}

}  // namespace
}  // namespace causaliot::sim
