// Fleet-scale model sharing: shared DIG skeletons + copy-on-write CPT
// deltas must be a pure memory optimization. The bars:
//
//   * alarm streams (scores, root-cause rankings, everything) are
//     bit-identical with template sharing on vs off, across every mined
//     model variant (plain / PC-stable skeleton x G-square / CMH) and
//     across a mid-stream hot model swap;
//   * update_cpts on a shared graph personalizes only that graph's
//     copy-on-write delta — concurrently updated siblings and the
//     shared base stay untouched, and the effective tables match a
//     private deep copy bit for bit;
//   * the TemplateRegistry interns skeletons by content (two templates
//     of one inventory share one Skeleton object) and eviction actually
//     frees: the weak intern pool drains once the last reference drops;
//   * the service's dedup accounting is exact — resident bytes equal
//     the component sum, private-equivalent bytes equal the per-tenant
//     sum, and both return to zero under churn;
//   * /statusz tenant pagination windows the fleet without losing the
//     total.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "causaliot/core/experiment.hpp"
#include "causaliot/graph/analysis.hpp"
#include "causaliot/mining/temporal_pc.hpp"
#include "causaliot/serve/service.hpp"
#include "causaliot/serve/template_registry.hpp"
#include "causaliot/util/thread_pool.hpp"

namespace causaliot::serve {
namespace {

struct AlarmLog {
  std::mutex mutex;
  std::map<std::string, std::vector<ServedAlarm>> by_tenant;

  AlarmCallback callback() {
    return [this](const ServedAlarm& alarm) {
      std::lock_guard<std::mutex> lock(mutex);
      by_tenant[alarm.tenant_name].push_back(alarm);
    };
  }
};

void expect_bit_identical(const std::vector<ServedAlarm>& got,
                          const std::vector<ServedAlarm>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].report.entries.size(), want[i].report.entries.size())
        << "alarm " << i;
    for (std::size_t e = 0; e < want[i].report.entries.size(); ++e) {
      EXPECT_EQ(got[i].report.entries[e].stream_index,
                want[i].report.entries[e].stream_index);
      EXPECT_EQ(got[i].report.entries[e].event,
                want[i].report.entries[e].event);
      // Same Cpt::probability code path over the same tables: the
      // doubles must match bitwise, not approximately.
      EXPECT_EQ(got[i].report.entries[e].score,
                want[i].report.entries[e].score);
    }
    EXPECT_EQ(got[i].model_version, want[i].model_version) << "alarm " << i;
    const auto& got_ranked = got[i].root_causes.ranked;
    const auto& want_ranked = want[i].root_causes.ranked;
    ASSERT_EQ(got_ranked.size(), want_ranked.size()) << "alarm " << i;
    for (std::size_t r = 0; r < want_ranked.size(); ++r) {
      EXPECT_EQ(got_ranked[r].device, want_ranked[r].device);
      EXPECT_EQ(got_ranked[r].score, want_ranked[r].score);  // bitwise
      EXPECT_EQ(got_ranked[r].flagged, want_ranked[r].flagged);
      EXPECT_EQ(got_ranked[r].path, want_ranked[r].path);
    }
  }
}

std::string saved_text(const graph::InteractionGraph& graph,
                       const std::string& path) {
  EXPECT_TRUE(graph.save(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void wait_processed(const DetectionService& service, std::uint64_t target) {
  while (service.stats().events_processed < target) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

/// A tiny hand-built private model for the registry/accounting/paging
/// tests (no simulation needed).
graph::InteractionGraph small_graph(std::uint64_t salt = 0) {
  graph::InteractionGraph graph(4, 2);
  graph.set_causes(1, {{0, 1}, {1, 1}});
  graph.set_causes(2, {{1, 2}});
  graph.cpt(1).observe(graph.cpt(1).pack({0, 0}), 1);
  graph.cpt(1).observe(graph.cpt(1).pack({1, 0}), 0);
  graph.cpt(2).observe(graph.cpt(2).pack({1}), salt % 2 == 0 ? 1 : 0);
  return graph;
}

// ---------------------------------------------------------------------
// Alarm equivalence: sharing on vs off, per mined-model variant, with a
// mid-stream hot swap to a personalized (update_cpts) v2 model.
// ---------------------------------------------------------------------

class TemplateAlarmEquivalence
    : public ::testing::TestWithParam<std::tuple<bool, mining::CiTest>> {};

TEST_P(TemplateAlarmEquivalence, SharedMatchesPrivateAcrossHotSwap) {
  const auto [stable, ci_test] = GetParam();
  sim::HomeProfile profile = sim::contextact_profile();
  profile.days = 6.0;
  core::ExperimentConfig config;
  config.seed = 77;  // same home as test_serve: known to alarm
  config.pipeline.pc_stable = stable;
  config.pipeline.use_cmh_test = ci_test == mining::CiTest::kCmh;
  const core::Experiment experiment =
      core::build_experiment(std::move(profile), config);
  const core::TrainedModel& model = experiment.model;
  const auto& events = experiment.test_runtime_events;
  const std::vector<std::uint8_t> initial_state =
      experiment.test_series.snapshot_state(0);

  // v2: drift-adapted tables over the test series (skeleton unchanged) —
  // the hot-swap payload, published as its own template.
  graph::InteractionGraph v2_graph = model.graph;
  mining::MinerConfig miner_config;
  miner_config.max_lag = 2;
  mining::InteractionMiner(miner_config)
      .update_cpts(experiment.test_series, v2_graph, /*forget_factor=*/0.5);

  TemplateRegistry registry;
  const auto v1 = registry.publish("v1", model.graph, model.score_threshold,
                                   model.laplace_alpha, /*version=*/1);
  const auto v2 = registry.publish("v2", v2_graph, model.score_threshold,
                                   model.laplace_alpha, /*version=*/2);
  ASSERT_NE(v1, nullptr);
  ASSERT_NE(v2, nullptr);
  // Same inventory, different tables: one interned skeleton.
  EXPECT_EQ(v1->skeleton.get(), v2->skeleton.get());

  const auto run = [&](bool share) {
    AlarmLog log;
    ServiceConfig service_config;
    service_config.shard_count = 2;
    service_config.queue_capacity = 256;
    service_config.session.k_max = 3;
    service_config.templates = &registry;
    service_config.share_templates = share;
    DetectionService service(service_config, log.callback());
    std::vector<TenantHandle> handles;
    handles.push_back(service.add_tenant("t0", "v1", initial_state));
    handles.push_back(service.add_tenant("t1", "v1", initial_state));
    EXPECT_NE(handles[0], DetectionService::kInvalidTenant);
    EXPECT_NE(handles[1], DetectionService::kInvalidTenant);
    service.start();

    // First half under v1, quiesce, hot-swap t0 to v2, rest of the
    // stream. The quiescence point makes the adoption boundary — and so
    // the alarm stream — deterministic and comparable across runs.
    const std::size_t half = events.size() / 2;
    for (std::size_t i = 0; i < half; ++i) {
      for (const TenantHandle handle : handles) {
        EXPECT_EQ(service.submit(handle, events[i]),
                  DetectionService::SubmitResult::kAccepted);
      }
    }
    wait_processed(service, 2 * half);
    // Both tenants still serve v1 here — the point of maximum sharing.
    const DetectionService::ModelStats mid_stats = service.model_stats();
    const auto tpl = registry.find("v2");
    EXPECT_NE(tpl, nullptr);
    service.swap_model(handles[0],
                       share ? instantiate(*tpl) : instantiate_private(*tpl));
    for (std::size_t i = half; i < events.size(); ++i) {
      for (const TenantHandle handle : handles) {
        EXPECT_EQ(service.submit(handle, events[i]),
                  DetectionService::SubmitResult::kAccepted);
      }
    }
    // After the swap the tenants sit on different templates, so only
    // the interned skeleton is still shared.
    const DetectionService::ModelStats end_stats = service.model_stats();
    service.shutdown();
    return std::make_tuple(std::move(log.by_tenant), mid_stats, end_stats);
  };

  auto [shared_alarms, shared_mid, shared_end] = run(/*share=*/true);
  auto [private_alarms, private_mid, private_end] = run(/*share=*/false);

  ASSERT_FALSE(private_alarms["t0"].empty());  // the bar is meaningful
  expect_bit_identical(shared_alarms["t0"], private_alarms["t0"]);
  expect_bit_identical(shared_alarms["t1"], private_alarms["t1"]);

  // Sharing showed up in the accounting: two tenants of one template
  // approach 2x dedup; after the swap splits them across templates only
  // the skeleton dedups, but resident stays strictly below equivalent.
  // Private mode pays full price per tenant throughout.
  EXPECT_GT(shared_mid.dedup_ratio, 1.5);
  EXPECT_LT(shared_end.resident_bytes, shared_end.private_equivalent_bytes);
  EXPECT_DOUBLE_EQ(private_mid.dedup_ratio, 1.0);
  EXPECT_EQ(private_end.resident_bytes, private_end.private_equivalent_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, TemplateAlarmEquivalence,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(mining::CiTest::kGSquare,
                                         mining::CiTest::kCmh)),
    [](const ::testing::TestParamInfo<std::tuple<bool, mining::CiTest>>&
           info) {
      return std::string(std::get<0>(info.param) ? "Stable" : "Plain") +
             (std::get<1>(info.param) == mining::CiTest::kCmh ? "Cmh"
                                                              : "GSquare");
    });

// ---------------------------------------------------------------------
// Copy-on-write isolation under concurrent update_cpts.
// ---------------------------------------------------------------------

TEST(TemplateCow, ConcurrentUpdateCptsIsolatesSiblingsAndBase) {
  sim::HomeProfile profile = sim::contextact_profile();
  profile.days = 4.0;
  core::ExperimentConfig config;
  config.seed = 77;
  const core::Experiment experiment =
      core::build_experiment(std::move(profile), config);
  const core::TrainedModel& model = experiment.model;

  TemplateRegistry registry;
  const auto tpl = registry.publish("t", model.graph, model.score_threshold,
                                    model.laplace_alpha, 1);
  ASSERT_NE(tpl, nullptr);
  const std::string base_text =
      saved_text(model.graph, ::testing::TempDir() + "tpl_base.dig");

  // Two tenants personalize concurrently with different forget factors;
  // each update_cpts also parallelizes internally, so copy-on-write
  // faults race across children within each graph.
  graph::InteractionGraph tenant_a =
      graph::InteractionGraph::from_template(tpl->skeleton, tpl->base_cpts);
  graph::InteractionGraph tenant_b =
      graph::InteractionGraph::from_template(tpl->skeleton, tpl->base_cpts);
  mining::MinerConfig miner_config;
  miner_config.max_lag = 2;
  const mining::InteractionMiner miner(miner_config);
  std::thread update_a([&] {
    util::ThreadPool pool(4);
    miner.update_cpts(experiment.test_series, tenant_a, 0.5, &pool);
  });
  std::thread update_b([&] {
    util::ThreadPool pool(4);
    miner.update_cpts(experiment.test_series, tenant_b, 0.9, &pool);
  });
  update_a.join();
  update_b.join();

  // Every device was personalized (update_cpts touches each child).
  EXPECT_EQ(tenant_a.delta_count(), tenant_a.device_count());
  EXPECT_EQ(tenant_b.delta_count(), tenant_b.device_count());

  // Effective tables match a serial private deep copy bit for bit.
  graph::InteractionGraph private_a = model.graph;
  miner.update_cpts(experiment.test_series, private_a, 0.5);
  graph::InteractionGraph private_b = model.graph;
  miner.update_cpts(experiment.test_series, private_b, 0.9);
  EXPECT_EQ(saved_text(tenant_a, ::testing::TempDir() + "tenant_a.dig"),
            saved_text(private_a, ::testing::TempDir() + "private_a.dig"));
  EXPECT_EQ(saved_text(tenant_b, ::testing::TempDir() + "tenant_b.dig"),
            saved_text(private_b, ::testing::TempDir() + "private_b.dig"));
  // Different forget factors diverged — the deltas are really separate.
  EXPECT_NE(saved_text(tenant_a, ::testing::TempDir() + "tenant_a2.dig"),
            saved_text(tenant_b, ::testing::TempDir() + "tenant_b2.dig"));

  // An untouched sibling still reads the pristine shared base.
  const graph::InteractionGraph untouched =
      graph::InteractionGraph::from_template(tpl->skeleton, tpl->base_cpts);
  EXPECT_EQ(untouched.delta_count(), 0u);
  EXPECT_EQ(saved_text(untouched, ::testing::TempDir() + "untouched.dig"),
            base_text);
}

// ---------------------------------------------------------------------
// Registry interning and eviction.
// ---------------------------------------------------------------------

TEST(TemplateRegistryTest, InternsByContentAndFreesOnEviction) {
  TemplateRegistry registry;
  auto a = registry.publish("a", small_graph(0), 0.9, 0.1, 1);
  auto b = registry.publish("b", small_graph(2), 0.8, 0.1, 2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Same inventory (counts differ, structure identical): one skeleton.
  EXPECT_EQ(a->skeleton.get(), b->skeleton.get());
  EXPECT_EQ(registry.template_count(), 2u);
  EXPECT_EQ(registry.skeleton_count(), 1u);

  // Name collisions are refused, not overwritten.
  EXPECT_EQ(registry.publish("a", small_graph(0), 0.5, 0.1, 9), nullptr);
  EXPECT_EQ(registry.template_count(), 2u);

  // A structurally different inventory interns separately.
  graph::InteractionGraph other(4, 2);
  other.set_causes(3, {{0, 1}});
  const auto c = registry.publish("c", other, 0.9, 0.1, 1);
  ASSERT_NE(c, nullptr);
  EXPECT_NE(c->skeleton.get(), a->skeleton.get());
  EXPECT_EQ(registry.skeleton_count(), 2u);

  // A live tenant keeps serving across eviction of its template...
  std::shared_ptr<const ModelSnapshot> survivor = instantiate(*a);
  EXPECT_TRUE(registry.evict("a"));
  EXPECT_FALSE(registry.evict("a"));  // already gone
  EXPECT_EQ(registry.find("a"), nullptr);
  EXPECT_EQ(registry.template_count(), 2u);  // b and c remain
  EXPECT_EQ(survivor->graph.skeleton().get(), b->skeleton.get());

  // ...and the skeleton frees only when the last reference drops: evict
  // b too, drop the published refs and the tenant, and the weak intern
  // pool drains.
  EXPECT_TRUE(registry.evict("b"));
  // (a and b are still pinned by this test's locals at this point.)
  EXPECT_EQ(registry.skeleton_count(), 2u);
  survivor.reset();
  a.reset();
  b.reset();
  EXPECT_EQ(registry.skeleton_count(), 1u);  // only c's survives
}

// ---------------------------------------------------------------------
// Dedup accounting: exact component math, conservation under churn.
// ---------------------------------------------------------------------

TEST(TemplateAccounting, ResidentBytesAreExactAndConserveUnderChurn) {
  TemplateRegistry registry;
  const auto tpl = registry.publish("t", small_graph(), 0.9, 0.1, 1);
  ASSERT_NE(tpl, nullptr);

  ServiceConfig config;
  config.templates = &registry;
  DetectionService service(config, nullptr);
  constexpr std::size_t kFleet = 8;
  std::vector<TenantHandle> handles;
  for (std::size_t i = 0; i < kFleet; ++i) {
    handles.push_back(
        service.add_tenant("home-" + std::to_string(i), "t"));
    ASSERT_NE(handles.back(), DetectionService::kInvalidTenant);
  }

  // Expected bytes from one instance's footprint: the fleet pays
  // skeleton + base once and the (empty) delta per tenant.
  const graph::MemoryFootprint one =
      graph::memory_footprint(instantiate(*tpl)->graph);
  ASSERT_TRUE(one.shared);
  const DetectionService::ModelStats stats = service.model_stats();
  EXPECT_EQ(stats.templates, 1u);
  EXPECT_EQ(stats.resident_bytes, one.skeleton_bytes + one.base_cpt_bytes +
                                      kFleet * one.delta_cpt_bytes);
  EXPECT_EQ(stats.private_equivalent_bytes, kFleet * one.total_bytes());
  EXPECT_GT(stats.dedup_ratio, 4.0);  // 8 tenants, near-8x in practice

  // Unknown template and duplicate name are both refused.
  EXPECT_EQ(service.add_tenant("home-x", "missing"),
            DetectionService::kInvalidTenant);
  EXPECT_EQ(service.add_tenant("home-0", "t"),
            DetectionService::kInvalidTenant);

  // Churn re-bills exactly: removing half halves the equivalent bytes
  // and releases only those tenants' deltas; removing all zeroes both.
  for (std::size_t i = 0; i < kFleet / 2; ++i) {
    ASSERT_TRUE(service.remove_tenant(handles[i]));
  }
  const DetectionService::ModelStats half = service.model_stats();
  EXPECT_EQ(half.resident_bytes, one.skeleton_bytes + one.base_cpt_bytes +
                                     (kFleet / 2) * one.delta_cpt_bytes);
  EXPECT_EQ(half.private_equivalent_bytes, (kFleet / 2) * one.total_bytes());
  for (std::size_t i = kFleet / 2; i < kFleet; ++i) {
    ASSERT_TRUE(service.remove_tenant(handles[i]));
  }
  const DetectionService::ModelStats empty = service.model_stats();
  EXPECT_EQ(empty.resident_bytes, 0u);
  EXPECT_EQ(empty.private_equivalent_bytes, 0u);
  EXPECT_DOUBLE_EQ(empty.dedup_ratio, 1.0);
  service.shutdown();
}

TEST(TemplateAccounting, SwapRebillsAndPrivateModeCountsFullCopies) {
  TemplateRegistry registry;
  const auto tpl = registry.publish("t", small_graph(), 0.9, 0.1, 1);

  ServiceConfig config;
  config.templates = &registry;
  config.share_templates = false;  // escape hatch: deep copies
  DetectionService service(config, nullptr);
  const TenantHandle t0 = service.add_tenant("a", "t");
  const TenantHandle t1 = service.add_tenant("b", "t");
  ASSERT_NE(t0, DetectionService::kInvalidTenant);
  ASSERT_NE(t1, DetectionService::kInvalidTenant);

  const DetectionService::ModelStats before = service.model_stats();
  EXPECT_EQ(before.resident_bytes, before.private_equivalent_bytes);
  EXPECT_DOUBLE_EQ(before.dedup_ratio, 1.0);

  // Swapping both tenants to shared snapshots re-bills them as shared
  // components: two instantiations, one skeleton + base.
  service.swap_model(t0, instantiate(*tpl));
  service.swap_model(t1, instantiate(*tpl));
  const DetectionService::ModelStats after = service.model_stats();
  EXPECT_LT(after.resident_bytes, after.private_equivalent_bytes);
  EXPECT_GT(after.dedup_ratio, 1.5);
  service.shutdown();
}

// ---------------------------------------------------------------------
// /statusz tenant pagination.
// ---------------------------------------------------------------------

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

TEST(StatusPagination, WindowsTenantsAndReportsTotal) {
  TemplateRegistry registry;
  ASSERT_NE(registry.publish("t", small_graph(), 0.9, 0.1, 1), nullptr);
  ServiceConfig config;
  config.templates = &registry;
  DetectionService service(config, nullptr);
  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_NE(service.add_tenant("home-" + std::to_string(i), "t"),
              DetectionService::kInvalidTenant);
  }

  // Default window covers a small fleet entirely.
  const std::string full = service.status_json();
  EXPECT_EQ(count_occurrences(full, "{\"name\": \"home-"), 5u);
  EXPECT_NE(full.find("\"tenant_window\": {\"offset\": 0, \"limit\": 100, "
                      "\"total\": 5}"),
            std::string::npos);
  EXPECT_NE(full.find("\"models\": {\"templates\": 1"), std::string::npos);

  // An interior window: exactly the requested slice, total unchanged.
  const std::string page = service.status_json(2, 2);
  EXPECT_EQ(count_occurrences(page, "{\"name\": \"home-"), 2u);
  EXPECT_NE(page.find("\"name\": \"home-2\""), std::string::npos);
  EXPECT_NE(page.find("\"name\": \"home-3\""), std::string::npos);
  EXPECT_NE(page.find("\"tenant_window\": {\"offset\": 2, \"limit\": 2, "
                      "\"total\": 5}"),
            std::string::npos);

  // Past the end: empty slice, total still reported.
  const std::string past = service.status_json(10, 5);
  EXPECT_EQ(count_occurrences(past, "{\"name\": \"home-"), 0u);
  EXPECT_NE(past.find("\"total\": 5"), std::string::npos);
  service.shutdown();
}

}  // namespace
}  // namespace causaliot::serve
