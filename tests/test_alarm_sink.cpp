#include "causaliot/detect/alarm_sink.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace causaliot::detect {
namespace {

AnomalyReport report_for(telemetry::DeviceId device, std::uint8_t state,
                         double timestamp, double score) {
  AnomalyEntry entry;
  entry.event = {device, state, timestamp};
  entry.score = score;
  AnomalyReport report;
  report.entries.push_back(entry);
  return report;
}

TEST(AlarmSink, DeliversFirstAlarm) {
  AlarmSink sink;
  const auto delivered = sink.offer(report_for(3, 1, 100.0, 0.999));
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(delivered->suppressed_duplicates, 0u);
  EXPECT_EQ(sink.delivered(), 1u);
  EXPECT_EQ(sink.suppressed(), 0u);
}

TEST(AlarmSink, DeduplicatesWithinWindow) {
  SinkConfig config;
  config.dedup_window_s = 600.0;
  AlarmSink sink(config);
  ASSERT_TRUE(sink.offer(report_for(3, 1, 100.0, 0.999)).has_value());
  EXPECT_FALSE(sink.offer(report_for(3, 1, 200.0, 0.999)).has_value());
  EXPECT_FALSE(sink.offer(report_for(3, 1, 650.0, 0.999)).has_value());
  EXPECT_EQ(sink.suppressed(), 2u);

  // Outside the window the alarm flows again and reports what was eaten.
  const auto later = sink.offer(report_for(3, 1, 800.0, 0.999));
  ASSERT_TRUE(later.has_value());
  EXPECT_EQ(later->suppressed_duplicates, 2u);
  EXPECT_EQ(sink.delivered(), 2u);
}

TEST(AlarmSink, DifferentSignaturesDoNotInterfere) {
  AlarmSink sink;
  ASSERT_TRUE(sink.offer(report_for(3, 1, 100.0, 0.999)).has_value());
  // Same device, opposite state: distinct signature.
  ASSERT_TRUE(sink.offer(report_for(3, 0, 110.0, 0.999)).has_value());
  // Different device.
  ASSERT_TRUE(sink.offer(report_for(4, 1, 120.0, 0.999)).has_value());
  EXPECT_EQ(sink.delivered(), 3u);
  EXPECT_EQ(sink.suppressed(), 0u);
}

TEST(AlarmSink, SeverityGrading) {
  SinkConfig config;
  config.warning_score = 0.995;
  config.critical_score = 0.9999;
  AlarmSink sink(config);
  EXPECT_EQ(sink.grade(0.991), AlarmSeverity::kNotice);
  EXPECT_EQ(sink.grade(0.997), AlarmSeverity::kWarning);
  EXPECT_EQ(sink.grade(1.0), AlarmSeverity::kCritical);
  const auto delivered = sink.offer(report_for(1, 1, 50.0, 1.0));
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(delivered->severity, AlarmSeverity::kCritical);
}

TEST(AlarmSink, PerDeviceCounters) {
  AlarmSink sink;
  sink.offer(report_for(2, 1, 10.0, 0.999));
  sink.offer(report_for(2, 0, 20.0, 0.999));
  sink.offer(report_for(5, 1, 30.0, 0.999));
  EXPECT_EQ(sink.delivered_by_device().at(2), 2u);
  EXPECT_EQ(sink.delivered_by_device().at(5), 1u);
}

// The sink is shared mutable state on the serving path (shard workers
// plus the shutdown flush can all offer). Under concurrent emission every
// offer must be counted exactly once: delivered + suppressed == offers.
TEST(AlarmSink, ConcurrentEmissionConservesCounts) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kOffersPerThread = 1000;
  SinkConfig config;
  config.dedup_window_s = 600.0;
  AlarmSink sink(config);

  std::vector<std::thread> emitters;
  for (std::size_t t = 0; t < kThreads; ++t) {
    emitters.emplace_back([&sink, t] {
      for (std::size_t i = 0; i < kOffersPerThread; ++i) {
        // A handful of signatures (device, state) contended across
        // threads, with timestamps that roll past the dedup window so
        // both the suppress and the deliver paths run concurrently.
        const auto device = static_cast<telemetry::DeviceId>((t + i) % 3);
        const auto state = static_cast<std::uint8_t>(i % 2);
        sink.offer(report_for(device, state, static_cast<double>(i), 0.999));
      }
    });
  }
  for (auto& emitter : emitters) emitter.join();

  EXPECT_EQ(sink.delivered() + sink.suppressed(), kThreads * kOffersPerThread);
  EXPECT_GT(sink.delivered(), 0u);
  EXPECT_GT(sink.suppressed(), 0u);
  std::size_t by_device = 0;
  for (const auto& [device, count] : sink.delivered_by_device()) {
    by_device += count;
  }
  EXPECT_EQ(by_device, sink.delivered());
}

TEST(AlarmSink, ZeroWindowDisablesDeduplication) {
  SinkConfig config;
  config.dedup_window_s = 0.0;
  AlarmSink sink(config);
  EXPECT_TRUE(sink.offer(report_for(1, 1, 5.0, 0.999)).has_value());
  EXPECT_TRUE(sink.offer(report_for(1, 1, 5.0, 0.999)).has_value());
  EXPECT_EQ(sink.suppressed(), 0u);
}

}  // namespace
}  // namespace causaliot::detect
