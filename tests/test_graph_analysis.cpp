#include "causaliot/graph/analysis.hpp"

#include <gtest/gtest.h>

namespace causaliot::graph {
namespace {

InteractionGraph base_graph() {
  InteractionGraph graph(4, 2);
  graph.set_causes(1, {{0, 1}, {1, 1}});
  graph.set_causes(2, {{1, 2}});
  graph.set_causes(3, {});
  return graph;
}

TEST(Summarize, CountsStructure) {
  InteractionGraph graph = base_graph();
  graph.cpt(1).observe(graph.cpt(1).pack({0, 0}), 1);
  graph.cpt(1).observe(graph.cpt(1).pack({1, 0}), 0);
  const GraphSummary summary = summarize(graph);
  EXPECT_EQ(summary.device_count, 4u);
  EXPECT_EQ(summary.edge_count, 3u);
  EXPECT_EQ(summary.interaction_count, 3u);
  EXPECT_EQ(summary.self_loop_count, 1u);  // 1 -> 1
  EXPECT_EQ(summary.max_in_degree, 2u);
  EXPECT_DOUBLE_EQ(summary.mean_in_degree, 3.0 / 4.0);
  EXPECT_EQ(summary.orphan_count, 2u);  // devices 0 and 3
  EXPECT_EQ(summary.cpt_assignment_count, 2u);
}

TEST(Summarize, EmptyGraph) {
  const GraphSummary summary = summarize(InteractionGraph(3, 1));
  EXPECT_EQ(summary.edge_count, 0u);
  EXPECT_EQ(summary.orphan_count, 3u);
  EXPECT_EQ(summary.max_in_degree, 0u);
}

TEST(Diff, IdenticalGraphs) {
  const GraphDiff result = diff(base_graph(), base_graph());
  EXPECT_TRUE(result.identical());
  EXPECT_DOUBLE_EQ(result.edge_jaccard, 1.0);
  EXPECT_EQ(describe_diff(result), "no structural drift");
}

TEST(Diff, DetectsAddedAndRemovedEdges) {
  const InteractionGraph before = base_graph();
  InteractionGraph after(4, 2);
  after.set_causes(1, {{0, 1}});           // dropped the self loop
  after.set_causes(2, {{1, 2}, {3, 1}});   // added 3 -> 2
  after.set_causes(3, {});
  const GraphDiff result = diff(before, after);
  ASSERT_EQ(result.added.size(), 1u);
  EXPECT_EQ(result.added[0].cause, (LaggedNode{3, 1}));
  EXPECT_EQ(result.added[0].child, 2u);
  ASSERT_EQ(result.removed.size(), 1u);
  EXPECT_EQ(result.removed[0].cause, (LaggedNode{1, 1}));
  EXPECT_EQ(result.removed[0].child, 1u);
  // shared = 2 edges, union = 4.
  EXPECT_DOUBLE_EQ(result.edge_jaccard, 0.5);
  EXPECT_EQ(describe_diff(result), "drift: +1 edges, -1 edges, jaccard 0.50");
}

TEST(Diff, LagMattersInEdgeIdentity) {
  const InteractionGraph before = base_graph();
  InteractionGraph after(4, 2);
  after.set_causes(1, {{0, 2}, {1, 1}});  // 0 -> 1 moved from lag 1 to 2
  after.set_causes(2, {{1, 2}});
  const GraphDiff result = diff(before, after);
  EXPECT_EQ(result.added.size(), 1u);
  EXPECT_EQ(result.removed.size(), 1u);
}

TEST(Diff, EmptyGraphsAreIdentical) {
  const GraphDiff result =
      diff(InteractionGraph(2, 1), InteractionGraph(2, 1));
  EXPECT_TRUE(result.identical());
  EXPECT_DOUBLE_EQ(result.edge_jaccard, 1.0);
}

}  // namespace
}  // namespace causaliot::graph
