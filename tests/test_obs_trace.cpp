// Tracer contract: inert when disabled, Chrome trace-event schema on
// export (ph/ts/dur/pid/tid fields Perfetto requires), per-thread tid
// attribution, stage aggregation, and chunked-buffer growth.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "causaliot/obs/trace.hpp"

namespace causaliot::obs {
namespace {

TEST(ObsTrace, DisabledTracerIgnoresSpans) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  {
    Span span("noop", "test", &tracer);
  }
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(ObsTrace, SpanRecordsWhenEnabled) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Span outer("outer", "test", &tracer);
    Span inner("inner", "\"k\": 1", "test", &tracer);
  }
  EXPECT_EQ(tracer.event_count(), 2u);
  const auto totals = tracer.stage_totals();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals.at("outer").count, 1u);
  EXPECT_EQ(totals.at("inner").count, 1u);
  // The outer span encloses the inner one.
  EXPECT_GE(totals.at("outer").total_ns, totals.at("inner").total_ns);
}

TEST(ObsTrace, ExportMatchesChromeTraceEventSchema) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.record("stage.a", "test", 1000, 500, "\"child\": 3");
  tracer.record("stage.b", "test", 2000, 250);

  const std::string json = tracer.export_chrome_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  // Thread-name metadata record (ph "M") for the recording thread.
  EXPECT_NE(json.find("\"name\": \"thread_name\", \"ph\": \"M\", "
                      "\"pid\": 1, \"tid\": 0"),
            std::string::npos);
  // Complete events: ph "X" with µs-denominated ts/dur relative to the
  // earliest span (1000 ns -> 0, 2000 ns -> 1 µs).
  EXPECT_NE(json.find("\"name\": \"stage.a\", \"cat\": \"test\", "
                      "\"ph\": \"X\", \"ts\": 0.000, \"dur\": 0.500, "
                      "\"pid\": 1, \"tid\": 0, \"args\": {\"child\": 3}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\": \"stage.b\", \"cat\": \"test\", "
                      "\"ph\": \"X\", \"ts\": 1.000, \"dur\": 0.250, "
                      "\"pid\": 1, \"tid\": 0"),
            std::string::npos)
      << json;
}

TEST(ObsTrace, ThreadsGetDistinctTids) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.record("main", "test", 0, 1);
  std::thread worker([&] { tracer.record("worker", "test", 10, 1); });
  worker.join();
  EXPECT_EQ(tracer.event_count(), 2u);
  const std::string json = tracer.export_chrome_json();
  // Two thread_name metadata records, and the worker's span carries its
  // own tid.
  EXPECT_NE(json.find("\"args\": {\"name\": \"thread-0\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"name\": \"thread-1\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"worker\", \"cat\": \"test\", "
                      "\"ph\": \"X\", \"ts\": 0.010, \"dur\": 0.001, "
                      "\"pid\": 1, \"tid\": 1"),
            std::string::npos)
      << json;
}

TEST(ObsTrace, StageTotalsAggregateAcrossThreads) {
  Tracer tracer;
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.record("work", "test", 0, 7);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(tracer.event_count(),
            static_cast<std::size_t>(kThreads * kPerThread));
  const auto totals = tracer.stage_totals();
  EXPECT_EQ(totals.at("work").count,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(totals.at("work").total_ns,
            static_cast<std::uint64_t>(kThreads * kPerThread) * 7);
}

TEST(ObsTrace, GrowsAcrossChunkBoundariesAndResets) {
  Tracer tracer;
  tracer.set_enabled(true);
  // More than two 1024-event chunks from a single thread.
  for (int i = 0; i < 2500; ++i) tracer.record("tick", "test", i, 1);
  EXPECT_EQ(tracer.event_count(), 2500u);
  tracer.reset();
  EXPECT_EQ(tracer.event_count(), 0u);
  // The thread's buffer registration survives a reset.
  tracer.record("tick", "test", 0, 1);
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(ObsTrace, GlobalTracerIsAProcessSingleton) {
  EXPECT_EQ(&Tracer::global(), &Tracer::global());
}

}  // namespace
}  // namespace causaliot::obs
