// Cross-module property and failure-injection tests: invariants that must
// hold for arbitrary (seeded-random) inputs, not just curated examples.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "causaliot/detect/monitor.hpp"
#include "causaliot/mining/temporal_pc.hpp"
#include "causaliot/preprocess/preprocessor.hpp"
#include "causaliot/util/rng.hpp"

namespace causaliot {
namespace {

using preprocess::BinaryEvent;
using preprocess::StateSeries;

StateSeries random_series(std::size_t devices, std::size_t events,
                          std::uint64_t seed) {
  util::Rng rng(seed);
  StateSeries series(devices, std::vector<std::uint8_t>(devices, 0));
  double t = 0.0;
  for (std::size_t i = 0; i < events; ++i) {
    const auto device =
        static_cast<telemetry::DeviceId>(rng.uniform(devices));
    series.apply({device, static_cast<std::uint8_t>(rng.uniform(2)),
                  t += rng.uniform_real(1.0, 100.0)});
  }
  return series;
}

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

// --- StateSeries invariants ------------------------------------------------

TEST_P(SeededProperty, SeriesSplitRecomposesExactly) {
  const StateSeries series = random_series(6, 300, GetParam());
  for (std::size_t split : {1ul, 100ul, 299ul, 300ul}) {
    const auto [head, tail] = series.split(split);
    EXPECT_EQ(head.event_count() + tail.event_count(),
              series.event_count());
    // Every snapshot of the original is reachable from one of the parts.
    for (std::size_t j = 0; j <= series.event_count(); ++j) {
      const auto expected = series.snapshot_state(j);
      const auto actual = j <= split
                              ? head.snapshot_state(j)
                              : tail.snapshot_state(j - split);
      EXPECT_EQ(actual, expected) << "split " << split << " time " << j;
    }
  }
}

TEST_P(SeededProperty, SnapshotMatchesEventFold) {
  const StateSeries series = random_series(5, 200, GetParam() + 1);
  // Independently fold the events and compare each snapshot.
  std::vector<std::uint8_t> state(5, 0);
  EXPECT_EQ(series.snapshot_state(0), state);
  for (std::size_t j = 1; j <= series.event_count(); ++j) {
    const BinaryEvent& event = series.event_at(j);
    state[event.device] = event.state;
    EXPECT_EQ(series.snapshot_state(j), state);
  }
}

// --- Monitor invariants ------------------------------------------------------

TEST_P(SeededProperty, MonitorScoresAlwaysInUnitInterval) {
  const StateSeries series = random_series(6, 600, GetParam() + 2);
  mining::MinerConfig config;
  config.max_lag = 2;
  const graph::InteractionGraph graph =
      mining::InteractionMiner(config).mine(series);
  detect::MonitorConfig monitor_config;
  monitor_config.laplace_alpha = 0.0;
  detect::EventMonitor monitor(graph, monitor_config,
                               series.snapshot_state(0));
  util::Rng rng(GetParam() + 3);
  for (int i = 0; i < 500; ++i) {
    const BinaryEvent event{
        static_cast<telemetry::DeviceId>(rng.uniform(6)),
        static_cast<std::uint8_t>(rng.uniform(2)), static_cast<double>(i)};
    const double score = monitor.score_event(event);
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST_P(SeededProperty, AlgorithmTwoPartitionInvariants) {
  // Whatever the stream, Algorithm 2's reports satisfy:
  //  * the head (entries[0]) scores >= threshold,
  //  * every later entry scores < threshold,
  //  * reports never exceed k_max entries,
  //  * stream indices inside a report are strictly increasing.
  const StateSeries series = random_series(5, 800, GetParam() + 4);
  mining::MinerConfig config;
  config.max_lag = 2;
  const graph::InteractionGraph graph =
      mining::InteractionMiner(config).mine(series);
  detect::MonitorConfig monitor_config;
  monitor_config.score_threshold = 0.8;
  monitor_config.k_max = 3;
  detect::EventMonitor monitor(graph, monitor_config,
                               series.snapshot_state(0));
  util::Rng rng(GetParam() + 5);
  std::vector<detect::AnomalyReport> reports;
  for (int i = 0; i < 2000; ++i) {
    const BinaryEvent event{
        static_cast<telemetry::DeviceId>(rng.uniform(5)),
        static_cast<std::uint8_t>(rng.uniform(2)), static_cast<double>(i)};
    if (auto report = monitor.process(event)) {
      reports.push_back(std::move(*report));
    }
  }
  if (auto tail = monitor.finish()) reports.push_back(std::move(*tail));
  ASSERT_FALSE(reports.empty());
  for (const detect::AnomalyReport& report : reports) {
    ASSERT_GE(report.chain_length(), 1u);
    EXPECT_LE(report.chain_length(), 3u);
    EXPECT_GE(report.entries[0].score, 0.8);
    for (std::size_t e = 1; e < report.entries.size(); ++e) {
      EXPECT_LT(report.entries[e].score, 0.8);
      EXPECT_GT(report.entries[e].stream_index,
                report.entries[e - 1].stream_index);
    }
  }
}

// --- Mining invariants -------------------------------------------------------

TEST_P(SeededProperty, MiningIsPermutationStableUnderPcStable) {
  // PC-stable skeletons must not depend on device numbering. Relabel the
  // devices with a permutation and compare the device-level edge sets.
  const std::size_t n = 5;
  const StateSeries series = random_series(n, 700, GetParam() + 6);
  util::Rng rng(GetParam() + 7);
  std::vector<telemetry::DeviceId> perm(n);
  for (std::size_t i = 0; i < n; ++i) {
    perm[i] = static_cast<telemetry::DeviceId>(i);
  }
  rng.shuffle(perm);

  StateSeries permuted(n, std::vector<std::uint8_t>(n, 0));
  for (std::size_t j = 1; j <= series.event_count(); ++j) {
    BinaryEvent event = series.event_at(j);
    event.device = perm[event.device];
    permuted.apply(event);
  }

  mining::MinerConfig config;
  config.max_lag = 1;
  config.stable = true;
  const graph::InteractionGraph original =
      mining::InteractionMiner(config).mine(series);
  const graph::InteractionGraph relabelled =
      mining::InteractionMiner(config).mine(permuted);

  std::set<std::pair<telemetry::DeviceId, telemetry::DeviceId>> a;
  std::set<std::pair<telemetry::DeviceId, telemetry::DeviceId>> b;
  for (const graph::Edge& edge : original.edges()) {
    a.insert({perm[edge.cause.device], perm[edge.child]});
  }
  for (const graph::Edge& edge : relabelled.edges()) {
    b.insert({edge.cause.device, edge.child});
  }
  EXPECT_EQ(a, b);
}

// --- Preprocessor invariants --------------------------------------------------

TEST_P(SeededProperty, SanitizedStreamHasNoConsecutiveDuplicates) {
  util::Rng rng(GetParam() + 8);
  telemetry::DeviceCatalog catalog;
  ASSERT_TRUE(catalog
                  .add({"a", "r", telemetry::AttributeType::kSwitch,
                        telemetry::ValueType::kBinary})
                  .ok());
  ASSERT_TRUE(catalog
                  .add({"b", "r", telemetry::AttributeType::kWaterMeter,
                        telemetry::ValueType::kResponsiveNumeric})
                  .ok());
  telemetry::EventLog log(catalog);
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    log.append({t += 1.0, static_cast<telemetry::DeviceId>(rng.uniform(2)),
                rng.uniform_real(0.0, 2.0)});
  }
  const preprocess::PreprocessResult result =
      preprocess::Preprocessor().run(log);
  std::vector<std::uint8_t> state(2, 0);
  for (const BinaryEvent& event : result.sanitized_events) {
    EXPECT_NE(state[event.device], event.state);
    state[event.device] = event.state;
  }
  EXPECT_EQ(result.raw_event_count,
            result.sanitized_events.size() + result.dropped_duplicates +
                result.dropped_extremes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(101ULL, 202ULL, 303ULL, 404ULL,
                                           505ULL));

}  // namespace
}  // namespace causaliot
