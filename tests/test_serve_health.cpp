// Per-tenant model-health telemetry (serve::ModelHealth) and the
// introspection plane wired onto a live DetectionService: EWMA/window
// semantics, snapshot provenance, gauge publication, and the /readyz
// 503 -> 200 -> 503 lifecycle observed through real loopback sockets.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "causaliot/obs/http_server.hpp"
#include "causaliot/obs/registry.hpp"
#include "causaliot/serve/introspection.hpp"
#include "causaliot/serve/model_health.hpp"
#include "causaliot/serve/service.hpp"

namespace causaliot::serve {
namespace {

// --- ModelHealth unit tests (private registry, no service) ---

TEST(ModelHealth, EwmaSeedsFromFirstEventThenSmooths) {
  obs::Registry registry;
  HealthConfig config;
  config.ewma_alpha = 0.5;
  config.window_events = 8;
  ModelHealth health(registry, config);
  health.add_tenant(0, "home-a", 1);

  health.on_event(0, 0.5);  // first event seeds, no decay toward 0
  EXPECT_DOUBLE_EQ(health.view(0).score_ewma, 0.5);
  health.on_event(0, 1.0);  // 0.5 + 0.5 * (1.0 - 0.5)
  EXPECT_DOUBLE_EQ(health.view(0).score_ewma, 0.75);
  EXPECT_EQ(health.view(0).events_total, 2u);
}

TEST(ModelHealth, WindowRatesAndScoreDeciles) {
  obs::Registry registry;
  HealthConfig config;
  config.window_events = 64;
  ModelHealth health(registry, config);
  health.add_tenant(0, "home-a", 1);

  health.on_event(0, 0.05);  // decile 0
  health.on_event(0, 0.55);  // decile 5
  health.on_event(0, 1.0);   // clamped into the top decile
  health.on_event(0, -0.5);  // clamped into the bottom decile
  health.on_alarm(0, /*collective=*/false);
  health.on_alarm(0, /*collective=*/true);

  const ModelHealth::TenantView view = health.view(0);
  EXPECT_EQ(view.window_events, 4u);
  EXPECT_EQ(view.window_alarms, 2u);
  EXPECT_EQ(view.window_collective, 1u);
  EXPECT_DOUBLE_EQ(view.alarm_rate, 0.5);
  EXPECT_DOUBLE_EQ(view.collective_rate, 0.25);
  EXPECT_EQ(view.score_deciles[0], 2u);
  EXPECT_EQ(view.score_deciles[5], 1u);
  EXPECT_EQ(view.score_deciles[9], 1u);
}

TEST(ModelHealth, RollingWindowIsBoundedByBucketRotation) {
  obs::Registry registry;
  HealthConfig config;
  config.window_events = 8;  // bucket capacity 1: rotates every event
  ModelHealth health(registry, config);
  health.add_tenant(0, "home-a", 1);

  for (int i = 0; i < 100; ++i) {
    health.on_event(0, 0.9);
    health.on_alarm(0, false);
  }
  const ModelHealth::TenantView view = health.view(0);
  EXPECT_EQ(view.events_total, 100u);
  // The window forgot the early events; rates stay rates, not totals.
  EXPECT_EQ(view.window_events, 8u);
  EXPECT_EQ(view.window_alarms, 8u);
  EXPECT_DOUBLE_EQ(view.alarm_rate, 1.0);
  EXPECT_EQ(view.score_deciles[9], 8u);
}

TEST(ModelHealth, SnapshotProvenanceTracksPublishAndAdopt) {
  obs::Registry registry;
  ModelHealth health(registry, HealthConfig{});
  health.add_tenant(0, "home-a", 1);

  health.on_event(0, 0.1);
  health.on_event(0, 0.1);
  ModelHealth::TenantView view = health.view(0);
  EXPECT_EQ(view.model_version, 1u);
  EXPECT_EQ(view.published_version, 1u);
  EXPECT_EQ(view.events_since_snapshot, 2u);
  EXPECT_GE(view.snapshot_age_seconds, 0.0);

  health.on_published(0, 2);  // published but not yet adopted
  view = health.view(0);
  EXPECT_EQ(view.model_version, 1u);
  EXPECT_EQ(view.published_version, 2u);

  health.on_adopted(0, 2);  // adoption resets the per-snapshot clock
  health.on_event(0, 0.1);
  view = health.view(0);
  EXPECT_EQ(view.model_version, 2u);
  EXPECT_EQ(view.events_since_snapshot, 1u);
}

TEST(ModelHealth, RefreshPublishesLabeledGauges) {
  obs::Registry registry;
  HealthConfig config;
  config.ewma_alpha = 1.0;  // EWMA == latest score: exact gauge values
  ModelHealth health(registry, config);
  health.add_tenant(0, "home-a", 7);
  health.add_tenant(1, "home-b", 9);

  health.on_event(0, 0.25);
  health.on_alarm(0, false);
  health.refresh();

  const obs::Labels a = {{"tenant", "home-a"}};
  const obs::Labels b = {{"tenant", "home-b"}};
  EXPECT_EQ(registry.gauge("serve_tenant_score_ewma_ppm", a).value(), 250000);
  EXPECT_EQ(registry.gauge("serve_tenant_alarm_rate_ppm", a).value(),
            1000000);
  EXPECT_EQ(registry.gauge("serve_tenant_model_version", a).value(), 7);
  EXPECT_EQ(registry.gauge("serve_tenant_model_version", b).value(), 9);
  EXPECT_EQ(registry.gauge("serve_tenant_events_since_snapshot", a).value(),
            1);
  // And the same families appear in the exposition text.
  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("serve_tenant_score_ewma_ppm{tenant=\"home-a\"}"),
            std::string::npos);
  EXPECT_NE(text.find("serve_tenant_model_version{tenant=\"home-b\"}"),
            std::string::npos);
}

TEST(ModelHealth, TenantsJsonCarriesWindowAndProvenance) {
  obs::Registry registry;
  ModelHealth health(registry, HealthConfig{});
  health.add_tenant(0, "home-a", 3);
  health.on_event(0, 0.95);

  const std::string json = health.tenants_json();
  EXPECT_NE(json.find("\"name\": \"home-a\""), std::string::npos);
  EXPECT_NE(json.find("\"model_version\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"events\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"score_deciles\": [0, 0, 0, 0, 0, 0, 0, 0, 0, 1]"),
            std::string::npos);
}

// --- DetectionService integration over loopback sockets ---

// Same 2-device model the detect suite uses: device 1's only cause is
// device 0 at lag 1, P(1 on | 0 was on) = 1, P(1 on | 0 was off) = 0,
// device 0's marginal is 50/50.
graph::InteractionGraph copy_graph() {
  graph::InteractionGraph graph(2, 2);
  graph.set_causes(0, {});
  graph.set_causes(1, {{0, 1}});
  graph::Cpt& cpt0 = graph.cpt(0);
  for (int i = 0; i < 50; ++i) {
    cpt0.observe(cpt0.pack({}), 0);
    cpt0.observe(cpt0.pack({}), 1);
  }
  graph::Cpt& cpt1 = graph.cpt(1);
  for (int i = 0; i < 100; ++i) {
    cpt1.observe(cpt1.pack({1}), 1);
    cpt1.observe(cpt1.pack({0}), 0);
  }
  return graph;
}

std::shared_ptr<const ModelSnapshot> tiny_snapshot(std::uint64_t version) {
  return make_snapshot(copy_graph(), /*score_threshold=*/0.9,
                       /*laplace_alpha=*/0.0, version);
}

// Waits until the tenant's processed-event total reaches `target` (the
// submit path is asynchronous: events land via the shard worker).
void wait_for_events(const DetectionService& service, std::size_t tenant,
                     std::uint64_t target) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.health().view(tenant).events_total < target) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "tenant " << tenant << " never reached " << target << " events";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

struct HttpReply {
  int status = 0;
  std::string content_type;
  std::string body;
};

// Minimal blocking GET against 127.0.0.1:port.
HttpReply http_get(std::uint16_t port, const std::string& target) {
  HttpReply out;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return out;
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    ::close(fd);
    return out;
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string wire;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    wire.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t head_end = wire.find("\r\n\r\n");
  if (head_end == std::string::npos) return out;
  out.body = wire.substr(head_end + 4);
  out.status = std::atoi(wire.c_str() + wire.find(' ') + 1);
  const std::size_t type_at = wire.find("Content-Type: ");
  if (type_at != std::string::npos && type_at < head_end) {
    const std::size_t type_end = wire.find('\r', type_at);
    out.content_type =
        wire.substr(type_at + 14, type_end - type_at - 14);
  }
  return out;
}

TEST(Introspection, ReadyzFlipsAcrossServiceLifecycleOverLoopback) {
  ServiceConfig config;
  config.shard_count = 1;
  config.session.k_max = 1;
  DetectionService service(config, [](const ServedAlarm&) {});
  const TenantHandle home =
      service.add_tenant("home-a", tiny_snapshot(1), {0, 0});

  obs::HttpServer server;
  attach_introspection(server, service);
  ASSERT_TRUE(server.start().ok());
  const std::uint16_t port = server.port();

  // Liveness is up as soon as the server answers; readiness is not.
  EXPECT_EQ(http_get(port, "/healthz").status, 200);
  EXPECT_EQ(http_get(port, "/readyz").status, 503);

  service.start();
  EXPECT_EQ(http_get(port, "/readyz").status, 200);
  EXPECT_EQ(http_get(port, "/readyz").body, "ready\n");

  // Feed a deterministic stream: device 0 on (score 0.5, quiet), then
  // device 1 stays-off-given-0-on (score 1.0 -> contextual alarm).
  ASSERT_EQ(service.submit(home, {0, 1, 1.0}),
            DetectionService::SubmitResult::kAccepted);
  ASSERT_EQ(service.submit(home, {1, 0, 2.0}),
            DetectionService::SubmitResult::kAccepted);
  wait_for_events(service, home, 2);

  // /statusz: service summary + per-tenant health as JSON.
  const HttpReply statusz = http_get(port, "/statusz");
  EXPECT_EQ(statusz.status, 200);
  EXPECT_EQ(statusz.content_type, "application/json");
  EXPECT_NE(statusz.body.find("\"ready\": true"), std::string::npos);
  EXPECT_NE(statusz.body.find("\"name\": \"home-a\""), std::string::npos);
  EXPECT_NE(statusz.body.find("\"events\": 2"), std::string::npos);
  EXPECT_NE(statusz.body.find("\"alarms\": 1"), std::string::npos);

  // /metrics: the same per-tenant gauges in Prometheus text.
  const HttpReply metrics = http_get(port, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, std::string(obs::kContentTypePrometheus));
  EXPECT_NE(
      metrics.body.find("serve_tenant_score_ewma_ppm{tenant=\"home-a\"}"),
      std::string::npos);
  EXPECT_NE(
      metrics.body.find("serve_tenant_alarm_rate_ppm{tenant=\"home-a\"}"),
      std::string::npos);
  EXPECT_NE(metrics.body.find("serve_events_processed_total"),
            std::string::npos);

  // /tracez answers JSON even when tracing is idle.
  const HttpReply tracez = http_get(port, "/tracez");
  EXPECT_EQ(tracez.status, 200);
  EXPECT_NE(tracez.body.find("\"stages\""), std::string::npos);

  // Shutdown drains and readiness drops before the scrape plane does.
  service.shutdown();
  EXPECT_EQ(http_get(port, "/readyz").status, 503);
  EXPECT_EQ(http_get(port, "/healthz").status, 200);
  server.stop();
}

TEST(Introspection, ModelSwapUpdatesHealthProvenance) {
  ServiceConfig config;
  config.shard_count = 1;
  DetectionService service(config, [](const ServedAlarm&) {});
  const TenantHandle home =
      service.add_tenant("home-a", tiny_snapshot(1), {0, 0});
  service.start();

  ASSERT_EQ(service.submit(home, {0, 1, 1.0}),
            DetectionService::SubmitResult::kAccepted);
  wait_for_events(service, home, 1);

  service.swap_model(home, tiny_snapshot(2));
  // Published immediately; adopted only at the next event boundary.
  EXPECT_EQ(service.health().view(home).published_version, 2u);

  ASSERT_EQ(service.submit(home, {0, 0, 2.0}),
            DetectionService::SubmitResult::kAccepted);
  wait_for_events(service, home, 2);
  const ModelHealth::TenantView view = service.health().view(home);
  EXPECT_EQ(view.model_version, 2u);
  EXPECT_EQ(view.events_since_snapshot, 1u);
  service.shutdown();
}

TEST(Introspection, GlobalRegistryHostsServiceHealthAfterReset) {
  // The CLI runs against Registry::global(); reset_for_test() isolates
  // this suite from whatever earlier tests recorded there.
  obs::Registry& global = obs::Registry::global();
  global.reset_for_test();
  ASSERT_EQ(global.family_count(), 0u);

  ServiceConfig config;
  config.registry = &global;
  DetectionService service(config, [](const ServedAlarm&) {});
  service.add_tenant("home-g", tiny_snapshot(4), {0, 0});
  EXPECT_NE(
      service.prometheus().find(
          "serve_tenant_model_version{tenant=\"home-g\"} 4"),
      std::string::npos);

  // Leave the global registry clean for later suites in this binary.
  // shutdown() first: after it, the (idempotent) destructor never touches
  // the service's cached registry handles again, so resetting here is
  // safe even though the service object is still in scope.
  service.shutdown();
  global.reset_for_test();
}

}  // namespace
}  // namespace causaliot::serve
