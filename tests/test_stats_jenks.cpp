#include "causaliot/stats/jenks.hpp"

#include <gtest/gtest.h>

#include "causaliot/util/rng.hpp"

namespace causaliot::stats {
namespace {

TEST(Jenks, TwoClearClusters) {
  const std::vector<double> values{1, 2, 1.5, 2.5, 100, 101, 99, 102};
  const auto result = jenks_natural_breaks(values, 2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().breaks.size(), 1u);
  EXPECT_GE(result.value().breaks[0], 2.5);
  EXPECT_LT(result.value().breaks[0], 99.0);
  EXPECT_GT(result.value().goodness_of_fit, 0.99);
}

TEST(Jenks, ThreeClusters) {
  std::vector<double> values;
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) values.push_back(rng.normal(0.0, 0.5));
  for (int i = 0; i < 50; ++i) values.push_back(rng.normal(50.0, 0.5));
  for (int i = 0; i < 50; ++i) values.push_back(rng.normal(100.0, 0.5));
  const auto result = jenks_natural_breaks(values, 3);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().breaks.size(), 2u);
  // Convention: a break is the last value of its class, so breaks sit at
  // the upper edge of each cluster.
  EXPECT_GT(result.value().breaks[0], -5.0);
  EXPECT_LT(result.value().breaks[0], 45.0);
  EXPECT_GT(result.value().breaks[1], 45.0);
  EXPECT_LT(result.value().breaks[1], 95.0);
}

TEST(Jenks, DuplicatesAreWeighted) {
  // The heavy cluster at 10 should not shift the break toward sparse
  // outliers.
  std::vector<double> values(100, 10.0);
  values.insert(values.end(), {200.0, 201.0, 202.0});
  const auto result = jenks_natural_breaks(values, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.value().breaks[0], 10.0);
  EXPECT_LT(result.value().breaks[0], 200.0);
}

TEST(Jenks, BreaksAreSorted) {
  util::Rng rng(2);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.uniform_real(0, 1000));
  const auto result = jenks_natural_breaks(values, 4);
  ASSERT_TRUE(result.ok());
  const auto& breaks = result.value().breaks;
  EXPECT_TRUE(std::is_sorted(breaks.begin(), breaks.end()));
}

TEST(Jenks, ErrorOnTooFewDistinctValues) {
  EXPECT_FALSE(jenks_natural_breaks(std::vector<double>{5, 5, 5}, 2).ok());
}

TEST(Jenks, ErrorOnEmptyInput) {
  EXPECT_FALSE(jenks_natural_breaks(std::vector<double>{}, 2).ok());
}

TEST(Jenks, ErrorOnOneClass) {
  EXPECT_FALSE(jenks_natural_breaks(std::vector<double>{1, 2, 3}, 1).ok());
}

TEST(Jenks, ExactlyTwoDistinctValues) {
  const auto result =
      jenks_natural_breaks(std::vector<double>{0, 0, 0, 7, 7}, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().breaks[0], 0.0);
  EXPECT_DOUBLE_EQ(result.value().goodness_of_fit, 1.0);
}

TEST(JenksBinaryThreshold, SplitsBimodalData) {
  util::Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 300; ++i) values.push_back(rng.normal(5.0, 1.0));
  for (int i = 0; i < 300; ++i) values.push_back(rng.normal(120.0, 10.0));
  const auto threshold = jenks_binary_threshold(values);
  ASSERT_TRUE(threshold.ok());
  EXPECT_GT(threshold.value(), 2.0);
  EXPECT_LT(threshold.value(), 100.0);
}

// Property: for 2 classes, every value below the break is closer to the
// low-class mean and most values above are closer to the high-class mean.
class JenksSeparation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JenksSeparation, BreakSeparatesBimodalMass) {
  util::Rng rng(GetParam());
  std::vector<double> values;
  const double low_center = rng.uniform_real(0, 20);
  const double high_center = low_center + rng.uniform_real(60, 200);
  for (int i = 0; i < 200; ++i) values.push_back(rng.normal(low_center, 3));
  for (int i = 0; i < 200; ++i) values.push_back(rng.normal(high_center, 3));
  const auto threshold = jenks_binary_threshold(values);
  ASSERT_TRUE(threshold.ok());
  std::size_t misassigned = 0;
  for (double v : values) {
    const bool below = v <= threshold.value();
    const bool from_low_cluster =
        std::abs(v - low_center) < std::abs(v - high_center);
    misassigned += below != from_low_cluster;
  }
  EXPECT_LE(misassigned, values.size() / 100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JenksSeparation,
                         ::testing::Values(10ULL, 20ULL, 30ULL, 40ULL,
                                           50ULL));

}  // namespace
}  // namespace causaliot::stats
