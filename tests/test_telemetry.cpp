#include <gtest/gtest.h>

#include <filesystem>

#include "causaliot/telemetry/device.hpp"
#include "causaliot/telemetry/event.hpp"

namespace causaliot::telemetry {
namespace {

DeviceCatalog small_catalog() {
  DeviceCatalog catalog;
  EXPECT_TRUE(catalog
                  .add({"switch_a", "living", AttributeType::kSwitch,
                        ValueType::kBinary})
                  .ok());
  EXPECT_TRUE(catalog
                  .add({"bright_a", "living",
                        AttributeType::kBrightnessSensor,
                        ValueType::kAmbientNumeric})
                  .ok());
  return catalog;
}

TEST(DeviceCatalog, AssignsDenseIds) {
  DeviceCatalog catalog = small_catalog();
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog.find("switch_a").value(), 0u);
  EXPECT_EQ(catalog.find("bright_a").value(), 1u);
}

TEST(DeviceCatalog, RejectsDuplicateNames) {
  DeviceCatalog catalog = small_catalog();
  EXPECT_FALSE(catalog.add({"switch_a", "kitchen", AttributeType::kSwitch,
                            ValueType::kBinary})
                   .ok());
}

TEST(DeviceCatalog, RejectsEmptyName) {
  DeviceCatalog catalog;
  EXPECT_FALSE(
      catalog.add({"", "x", AttributeType::kSwitch, ValueType::kBinary})
          .ok());
}

TEST(DeviceCatalog, FindMissingIsNotFound) {
  DeviceCatalog catalog = small_catalog();
  const auto result = catalog.find("ghost");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, util::ErrorCode::kNotFound);
  EXPECT_FALSE(catalog.contains("ghost"));
}

TEST(DeviceCatalog, DevicesOfTypeFilters) {
  DeviceCatalog catalog = small_catalog();
  EXPECT_EQ(catalog.devices_of_type(AttributeType::kSwitch),
            std::vector<DeviceId>{0});
  EXPECT_TRUE(catalog.devices_of_type(AttributeType::kDimmer).empty());
}

TEST(Attributes, AbbreviationsMatchTableI) {
  EXPECT_EQ(attribute_abbreviation(AttributeType::kSwitch), "S");
  EXPECT_EQ(attribute_abbreviation(AttributeType::kPresenceSensor), "PE");
  EXPECT_EQ(attribute_abbreviation(AttributeType::kContactSensor), "C");
  EXPECT_EQ(attribute_abbreviation(AttributeType::kDimmer), "D");
  EXPECT_EQ(attribute_abbreviation(AttributeType::kWaterMeter), "W");
  EXPECT_EQ(attribute_abbreviation(AttributeType::kPowerSensor), "P");
  EXPECT_EQ(attribute_abbreviation(AttributeType::kBrightnessSensor), "B");
}

TEST(Attributes, DefaultValueTypesMatchTableI) {
  EXPECT_EQ(default_value_type(AttributeType::kSwitch), ValueType::kBinary);
  EXPECT_EQ(default_value_type(AttributeType::kPresenceSensor),
            ValueType::kBinary);
  EXPECT_EQ(default_value_type(AttributeType::kDimmer),
            ValueType::kResponsiveNumeric);
  EXPECT_EQ(default_value_type(AttributeType::kWaterMeter),
            ValueType::kResponsiveNumeric);
  EXPECT_EQ(default_value_type(AttributeType::kPowerSensor),
            ValueType::kResponsiveNumeric);
  EXPECT_EQ(default_value_type(AttributeType::kBrightnessSensor),
            ValueType::kAmbientNumeric);
}

TEST(Attributes, ActuatorEligibility) {
  // §VI-A: brightness and presence sensors cannot be action devices.
  EXPECT_TRUE(is_actuator(AttributeType::kSwitch));
  EXPECT_TRUE(is_actuator(AttributeType::kDimmer));
  EXPECT_FALSE(is_actuator(AttributeType::kBrightnessSensor));
  EXPECT_FALSE(is_actuator(AttributeType::kPresenceSensor));
  EXPECT_FALSE(is_actuator(AttributeType::kContactSensor));
}

TEST(EventLog, AppendAndInterEventGap) {
  EventLog log(small_catalog());
  log.append({0.0, 0, 1.0});
  log.append({10.0, 1, 55.0});
  log.append({20.0, 0, 0.0});
  EXPECT_EQ(log.size(), 3u);
  EXPECT_DOUBLE_EQ(log.mean_inter_event_seconds(), 10.0);
}

TEST(EventLog, GapUndefinedBelowTwoEvents) {
  EventLog log(small_catalog());
  EXPECT_DOUBLE_EQ(log.mean_inter_event_seconds(), 0.0);
  log.append({5.0, 0, 1.0});
  EXPECT_DOUBLE_EQ(log.mean_inter_event_seconds(), 0.0);
}

TEST(EventLog, SortByTimeIsStable) {
  EventLog log(small_catalog());
  log.append({5.0, 0, 1.0});
  log.append({1.0, 1, 2.0});
  log.append({5.0, 1, 3.0});  // ties keep insertion order
  EXPECT_FALSE(log.is_time_ordered());
  log.sort_by_time();
  EXPECT_TRUE(log.is_time_ordered());
  EXPECT_EQ(log.events()[0].device, 1u);
  EXPECT_EQ(log.events()[1].device, 0u);
  EXPECT_DOUBLE_EQ(log.events()[2].value, 3.0);
}

class EventLogFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() / "causaliot_events.csv";
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(EventLogFileTest, SaveLoadRoundTrip) {
  EventLog log(small_catalog());
  log.append({0.5, 0, 1.0});
  log.append({2.25, 1, 73.5});
  ASSERT_TRUE(log.save_csv(path_.string()).ok());

  const auto loaded = EventLog::load_csv(path_.string(), small_catalog());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value().events()[0].device, 0u);
  EXPECT_DOUBLE_EQ(loaded.value().events()[0].value, 1.0);
  EXPECT_DOUBLE_EQ(loaded.value().events()[1].value, 73.5);
  EXPECT_NEAR(loaded.value().events()[1].timestamp, 2.25, 1e-3);
}

TEST_F(EventLogFileTest, LoadRejectsUnknownDevice) {
  EventLog log(small_catalog());
  log.append({1.0, 0, 1.0});
  ASSERT_TRUE(log.save_csv(path_.string()).ok());
  DeviceCatalog other;
  ASSERT_TRUE(other
                  .add({"different", "x", AttributeType::kSwitch,
                        ValueType::kBinary})
                  .ok());
  EXPECT_FALSE(EventLog::load_csv(path_.string(), other).ok());
}

}  // namespace
}  // namespace causaliot::telemetry
