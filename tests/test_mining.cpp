#include "causaliot/mining/temporal_pc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "causaliot/mining/cause_set.hpp"
#include "causaliot/stats/simd_backend.hpp"
#include "causaliot/util/rng.hpp"

namespace causaliot::mining {
namespace {

using preprocess::BinaryEvent;
using preprocess::StateSeries;

bool has_cause(const std::vector<graph::LaggedNode>& causes,
               telemetry::DeviceId device) {
  return std::any_of(causes.begin(), causes.end(),
                     [&](const graph::LaggedNode& c) {
                       return c.device == device;
                     });
}

// A driver chain: device 0 flips spontaneously; device 1 copies device 0's
// previous state one event later; device 2 copies device 1 likewise.
// Events alternate 0, 1, 2, 0, 1, 2, ... so the causal lag is exactly 1.
StateSeries chain_series(std::size_t events_per_device, double noise,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  StateSeries series(3, {0, 0, 0});
  std::uint8_t driver = 0;
  double t = 0.0;
  auto flip_noise = [&](std::uint8_t v) {
    return rng.bernoulli(noise) ? static_cast<std::uint8_t>(1 - v) : v;
  };
  for (std::size_t i = 0; i < events_per_device; ++i) {
    driver = static_cast<std::uint8_t>(rng.uniform(2));
    series.apply({0, driver, t += 1});
    series.apply({1, flip_noise(series.state(0, series.length() - 1)),
                  t += 1});
    series.apply({2, flip_noise(series.state(1, series.length() - 1)),
                  t += 1});
  }
  return series;
}

TEST(TemporalPC, RecoversDirectCauseInChain) {
  const StateSeries series = chain_series(2000, 0.05, 1);
  MinerConfig config;
  config.max_lag = 2;
  config.alpha = 0.001;
  const InteractionMiner miner(config);
  const auto causes_of_1 = miner.discover_causes(series, 1);
  EXPECT_TRUE(has_cause(causes_of_1, 0));
  const auto causes_of_2 = miner.discover_causes(series, 2);
  EXPECT_TRUE(has_cause(causes_of_2, 1));
}

TEST(TemporalPC, RemovesIndirectCauseGivenMediator) {
  // 0 -> 1 -> 2: device 0 must not be a direct cause of device 2.
  const StateSeries series = chain_series(4000, 0.05, 2);
  MinerConfig config;
  config.max_lag = 2;
  config.alpha = 0.001;
  MiningDiagnostics diagnostics;
  const InteractionMiner miner(config);
  const auto causes_of_2 =
      miner.discover_causes(series, 2, &diagnostics);
  EXPECT_FALSE(has_cause(causes_of_2, 0));
  // The removal should be conditional (spurious via the mediator), not
  // marginal — 0 and 2 are strongly associated.
  bool removed_conditionally = false;
  for (const RemovalRecord& record : diagnostics.removals) {
    if (record.cause.device == 0 && record.child == 2 &&
        record.condition_size > 0) {
      removed_conditionally = true;
    }
  }
  EXPECT_TRUE(removed_conditionally);
}

TEST(TemporalPC, IndependentDeviceHasNoCrossEdges) {
  util::Rng rng(3);
  StateSeries series(2, {0, 0});
  double t = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const auto device = static_cast<telemetry::DeviceId>(rng.uniform(2));
    series.apply({device, static_cast<std::uint8_t>(rng.uniform(2)),
                  t += 1});
  }
  MinerConfig config;
  config.max_lag = 2;
  const InteractionMiner miner(config);
  EXPECT_FALSE(has_cause(miner.discover_causes(series, 1), 0));
  EXPECT_FALSE(has_cause(miner.discover_causes(series, 0), 1));
}

TEST(TemporalPC, FindsAutocorrelationOfPersistentDevice) {
  // Device 1 holds its state over long stretches while device 0 churns.
  util::Rng rng(4);
  StateSeries series(2, {0, 0});
  double t = 0.0;
  std::uint8_t persistent = 0;
  for (int i = 0; i < 3000; ++i) {
    if (rng.bernoulli(0.1)) {
      persistent ^= 1;
      series.apply({1, persistent, t += 1});
    } else {
      series.apply({0, static_cast<std::uint8_t>(rng.uniform(2)), t += 1});
    }
  }
  MinerConfig config;
  config.max_lag = 2;
  const InteractionMiner miner(config);
  EXPECT_TRUE(has_cause(miner.discover_causes(series, 1), 1));
}

TEST(TemporalPC, EdgesAlwaysPointLaggedToPresent) {
  const StateSeries series = chain_series(500, 0.1, 5);
  MinerConfig config;
  config.max_lag = 2;
  const InteractionMiner miner(config);
  const graph::InteractionGraph graph = miner.mine(series);
  for (const graph::Edge& edge : graph.edges()) {
    EXPECT_GE(edge.cause.lag, 1u);
    EXPECT_LE(edge.cause.lag, 2u);
  }
}

TEST(TemporalPC, DiagnosticsCountCandidatesAndTests) {
  const StateSeries series = chain_series(300, 0.1, 6);
  MinerConfig config;
  config.max_lag = 2;
  MiningDiagnostics diagnostics;
  const InteractionMiner miner(config);
  miner.mine(series, &diagnostics);
  // 3 devices * 2 lags candidates per child, 3 children.
  EXPECT_EQ(diagnostics.candidate_edges, 18u);
  EXPECT_GT(diagnostics.tests_run, 18u);
  EXPECT_EQ(diagnostics.removals.size(),
            diagnostics.removed_marginal() +
                diagnostics.removed_conditional());
}

TEST(TemporalPC, MaxConditionSizeCapsSearch) {
  const StateSeries series = chain_series(500, 0.1, 7);
  MinerConfig config;
  config.max_lag = 2;
  config.max_condition_size = 0;  // only marginal tests
  MiningDiagnostics diagnostics;
  const InteractionMiner miner(config);
  miner.mine(series, &diagnostics);
  for (const RemovalRecord& record : diagnostics.removals) {
    EXPECT_EQ(record.condition_size, 0u);
  }
}

TEST(TemporalPC, CptEstimationMatchesCounts) {
  // Deterministic copy: device 1 mirrors device 0's previous state.
  const StateSeries series = chain_series(1000, 0.0, 8);
  MinerConfig config;
  config.max_lag = 2;
  const InteractionMiner miner(config);
  graph::InteractionGraph graph = miner.mine(series);
  ASSERT_TRUE(graph.has_interaction(0, 1));
  const graph::Cpt& cpt = graph.cpt(1);

  // Manually recount one assignment and compare with the CPT.
  std::vector<std::uint8_t> cause_values(cpt.cause_count());
  std::size_t manual[2] = {0, 0};
  util::BitKey target_key;
  bool have_key = false;
  for (std::size_t j = 2; j < series.length(); ++j) {
    for (std::size_t c = 0; c < cpt.causes().size(); ++c) {
      cause_values[c] =
          series.state(cpt.causes()[c].device, j - cpt.causes()[c].lag);
    }
    const util::BitKey key = cpt.pack(cause_values);
    if (!have_key) {
      target_key = key;
      have_key = true;
    }
    if (key == target_key) ++manual[series.state(1, j)];
  }
  ASSERT_TRUE(have_key);
  const double total = static_cast<double>(manual[0] + manual[1]);
  EXPECT_DOUBLE_EQ(cpt.probability(target_key, 1),
                   static_cast<double>(manual[1]) / total);
  EXPECT_DOUBLE_EQ(cpt.support(target_key), total);
}

TEST(TemporalPC, SkippedGuardTestsDoNotRemoveEdges) {
  // With an aggressive guard everything is skipped, so all candidate
  // edges survive.
  const StateSeries series = chain_series(100, 0.1, 9);
  MinerConfig config;
  config.max_lag = 1;
  config.min_samples_per_dof = 1e9;
  const InteractionMiner miner(config);
  const auto causes = miner.discover_causes(series, 1);
  EXPECT_EQ(causes.size(), 3u);  // every device at lag 1
}

TEST(TemporalPC, DeterministicAcrossRuns) {
  const StateSeries series = chain_series(500, 0.1, 10);
  MinerConfig config;
  config.max_lag = 2;
  const InteractionMiner miner(config);
  const graph::InteractionGraph a = miner.mine(series);
  const graph::InteractionGraph b = miner.mine(series);
  EXPECT_EQ(a.edges(), b.edges());
}

// Property sweep: mining honours the configured lag bound.
class TemporalPCLagSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TemporalPCLagSweep, CauseLagsWithinTau) {
  const std::size_t tau = GetParam();
  const StateSeries series = chain_series(800, 0.1, 11);
  MinerConfig config;
  config.max_lag = tau;
  const InteractionMiner miner(config);
  const graph::InteractionGraph graph = miner.mine(series);
  EXPECT_EQ(graph.max_lag(), tau);
  for (const graph::Edge& edge : graph.edges()) {
    EXPECT_LE(edge.cause.lag, tau);
  }
}

INSTANTIATE_TEST_SUITE_P(Lags, TemporalPCLagSweep,
                         ::testing::Values(1, 2, 3));

TEST(TemporalPC, MetricsLandInInjectedRegistry) {
  const StateSeries series = chain_series(500, 0.05, 9);
  obs::Registry registry;
  MinerConfig config;
  config.max_lag = 1;
  config.metrics_registry = &registry;
  const InteractionMiner miner(config);
  MiningDiagnostics diagnostics;
  const graph::InteractionGraph graph = miner.mine(series, &diagnostics);
  ASSERT_GT(diagnostics.tests_run, 0u);

  // CI tests per level sum to the diagnostics total, and every test at
  // these small conditioning sizes dispatched to the batched kernel (the
  // default since ci_batching landed).
  std::uint64_t per_level = 0;
  for (std::size_t l = 0; l < series.device_count() * config.max_lag; ++l) {
    per_level += registry
                     .counter("mining_ci_tests_total",
                              {{"level", std::to_string(l)}})
                     .value();
  }
  EXPECT_EQ(per_level, diagnostics.tests_run);
  // Kernel-hit counters carry the active SIMD backend as a second label.
  const std::string backend(
      stats::simd::backend_name(stats::simd::chosen()));
  EXPECT_EQ(registry.counter("mining_ci_kernel_hits_total",
                             {{"kernel", "batched"}, {"backend", backend}})
                .value(),
            diagnostics.tests_run);
  EXPECT_EQ(registry.counter("mining_ci_kernel_hits_total",
                             {{"kernel", "packed"}, {"backend", backend}})
                .value(),
            0u);
  EXPECT_EQ(registry.counter("mining_ci_kernel_hits_total",
                             {{"kernel", "byte"}, {"backend", backend}})
                .value(),
            0u);
  // The batched kernel reports its sweep activity.
  EXPECT_GT(registry.counter("mining_ci_batch_passes_total").value(), 0u);
  // One CPT observation per device per snapshot.
  EXPECT_EQ(registry.counter("mining_cpt_updates_total").value(),
            graph.device_count() * (series.length() - config.max_lag));
}

TEST(TemporalPC, CiBatchingOffDispatchesToPackedKernel) {
  const StateSeries series = chain_series(500, 0.05, 9);
  obs::Registry registry;
  MinerConfig config;
  config.max_lag = 1;
  config.ci_batching = false;
  config.metrics_registry = &registry;
  const InteractionMiner miner(config);
  MiningDiagnostics diagnostics;
  miner.mine(series, &diagnostics);
  ASSERT_GT(diagnostics.tests_run, 0u);
  const std::string backend(
      stats::simd::backend_name(stats::simd::chosen()));
  EXPECT_EQ(registry.counter("mining_ci_kernel_hits_total",
                             {{"kernel", "packed"}, {"backend", backend}})
                .value(),
            diagnostics.tests_run);
  EXPECT_EQ(registry.counter("mining_ci_kernel_hits_total",
                             {{"kernel", "batched"}, {"backend", backend}})
                .value(),
            0u);
  EXPECT_EQ(registry.counter("mining_ci_batch_passes_total").value(), 0u);
}

TEST(CauseSet, StartsFullInCanonicalOrder) {
  const CauseSet set(3, 2);
  EXPECT_EQ(set.size(), 6u);
  EXPECT_FALSE(set.empty());
  const std::vector<graph::LaggedNode> expected = {
      {0, 1}, {1, 1}, {2, 1}, {0, 2}, {1, 2}, {2, 2}};
  EXPECT_EQ(set.to_vector(), expected);
  for (const graph::LaggedNode& node : expected) {
    EXPECT_TRUE(set.contains(node));
  }
}

TEST(CauseSet, RemovePreservesOrderOfSurvivors) {
  CauseSet set(3, 2);
  set.remove({1, 1});
  set.remove({0, 2});
  EXPECT_EQ(set.size(), 4u);
  EXPECT_FALSE(set.contains({1, 1}));
  EXPECT_FALSE(set.contains({0, 2}));
  const std::vector<graph::LaggedNode> expected = {
      {0, 1}, {2, 1}, {1, 2}, {2, 2}};
  EXPECT_EQ(set.to_vector(), expected);

  std::vector<graph::LaggedNode> visited;
  set.for_each([&](graph::LaggedNode node) { visited.push_back(node); });
  EXPECT_EQ(visited, expected);
}

TEST(CauseSet, CanDrainCompletely) {
  CauseSet set(2, 1);
  set.remove({0, 1});
  set.remove({1, 1});
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.to_vector().empty());
}

TEST(CauseSet, CanonicalOrderMatchesLaggedNodeSort) {
  // The set's iteration order must equal LaggedNode's operator<=> order,
  // so discover_causes' final sort is a no-op rather than a reshuffle.
  const CauseSet set(4, 3);
  std::vector<graph::LaggedNode> sorted = set.to_vector();
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, set.to_vector());
}

}  // namespace
}  // namespace causaliot::mining
