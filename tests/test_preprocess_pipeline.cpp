#include <gtest/gtest.h>

#include "causaliot/preprocess/discretize.hpp"
#include "causaliot/preprocess/preprocessor.hpp"
#include "causaliot/util/rng.hpp"

namespace causaliot::preprocess {
namespace {

using telemetry::AttributeType;
using telemetry::DeviceCatalog;
using telemetry::EventLog;
using telemetry::ValueType;

DeviceCatalog mixed_catalog() {
  DeviceCatalog catalog;
  EXPECT_TRUE(catalog
                  .add({"switch", "a", AttributeType::kSwitch,
                        ValueType::kBinary})
                  .ok());
  EXPECT_TRUE(catalog
                  .add({"meter", "a", AttributeType::kWaterMeter,
                        ValueType::kResponsiveNumeric})
                  .ok());
  EXPECT_TRUE(catalog
                  .add({"bright", "a", AttributeType::kBrightnessSensor,
                        ValueType::kAmbientNumeric})
                  .ok());
  return catalog;
}

EventLog bimodal_log() {
  EventLog log(mixed_catalog());
  util::Rng rng(1);
  double t = 0.0;
  for (int i = 0; i < 400; ++i) {
    t += 10.0;
    log.append({t, 2, rng.normal(i % 2 == 0 ? 10.0 : 150.0, 4.0)});
    if (i % 5 == 0) log.append({t + 1, 0, static_cast<double>(i % 2)});
    if (i % 7 == 0) log.append({t + 2, 1, i % 2 == 0 ? 5.0 : 0.0});
  }
  return log;
}

TEST(DiscretizationModel, FitLearnsJenksCutForAmbient) {
  const DiscretizationModel model = DiscretizationModel::fit(bimodal_log());
  const auto& bright = model.device_model(2);
  ASSERT_TRUE(bright.jenks_threshold.has_value());
  EXPECT_GT(*bright.jenks_threshold, 20.0);
  EXPECT_LT(*bright.jenks_threshold, 140.0);
}

TEST(DiscretizationModel, GlitchesDoNotCorruptJenksCut) {
  // Extreme outliers must be excluded before the natural-breaks split,
  // otherwise the far cluster absorbs one class (§V-A order: sanitation
  // before type unification).
  EventLog log = bimodal_log();
  for (int i = 0; i < 5; ++i) {
    log.append({10000.0 + i, 2, 5000.0});
  }
  const DiscretizationModel model = DiscretizationModel::fit(log);
  const auto& bright = model.device_model(2);
  ASSERT_TRUE(bright.jenks_threshold.has_value());
  EXPECT_LT(*bright.jenks_threshold, 140.0);
}

TEST(DiscretizationModel, DiscretizeByType) {
  const DiscretizationModel model = DiscretizationModel::fit(bimodal_log());
  EXPECT_EQ(model.discretize(0, 1.0), 1);
  EXPECT_EQ(model.discretize(0, 0.0), 0);
  EXPECT_EQ(model.discretize(1, 3.5), 1);  // responsive: > 0 is Working
  EXPECT_EQ(model.discretize(1, 0.0), 0);
  EXPECT_EQ(model.discretize(2, 150.0), 1);  // above the Jenks cut
  EXPECT_EQ(model.discretize(2, 10.0), 0);
}

TEST(DiscretizationModel, HysteresisHoldsStateNearCut) {
  const DiscretizationModel model = DiscretizationModel::fit(bimodal_log());
  const auto& dm = model.device_model(2);
  const double cut = *dm.jenks_threshold;
  ASSERT_GT(dm.hysteresis_margin, 0.0);
  // Inside the dead band: without hysteresis this flips to High, with
  // hysteresis from Low it must stay Low.
  const double nudge = cut + 0.5 * dm.hysteresis_margin;
  EXPECT_EQ(model.discretize(2, nudge), 1);
  EXPECT_EQ(model.discretize(2, nudge, /*previous_state=*/0), 0);
  // From High, the same value also stays High.
  EXPECT_EQ(model.discretize(2, nudge, /*previous_state=*/1), 1);
  // A decisive value flips regardless of the previous state.
  EXPECT_EQ(model.discretize(2, 150.0, 0), 1);
  EXPECT_EQ(model.discretize(2, 10.0, 1), 0);
  // The band never bridges the class separation.
  EXPECT_LT(dm.hysteresis_margin, 35.0);
}

TEST(DiscretizationModel, HysteresisIgnoredForBinary) {
  const DiscretizationModel model = DiscretizationModel::fit(bimodal_log());
  EXPECT_EQ(model.discretize(0, 1.0, 0), 1);
  EXPECT_EQ(model.discretize(0, 0.0, 1), 0);
}

TEST(DiscretizationModel, ExtremeDetectionOnlyForAmbient) {
  const DiscretizationModel model = DiscretizationModel::fit(bimodal_log());
  EXPECT_TRUE(model.is_extreme(2, 1e6, 3.0));
  EXPECT_FALSE(model.is_extreme(2, 80.0, 3.0));
  EXPECT_FALSE(model.is_extreme(0, 1e6, 3.0));  // binary never extreme
  EXPECT_FALSE(model.is_extreme(1, 1e6, 3.0));  // responsive never extreme
}

TEST(Preprocessor, FiltersDuplicateStates) {
  EventLog log(mixed_catalog());
  log.append({1.0, 0, 1.0});
  log.append({2.0, 0, 1.0});  // duplicate ON report
  log.append({3.0, 0, 0.0});
  log.append({4.0, 0, 0.0});  // duplicate OFF report
  const Preprocessor preprocessor;
  const PreprocessResult result = preprocessor.run(log);
  EXPECT_EQ(result.sanitized_events.size(), 2u);
  EXPECT_EQ(result.dropped_duplicates, 2u);
}

TEST(Preprocessor, DuplicateFilterCanBeDisabled) {
  EventLog log(mixed_catalog());
  log.append({1.0, 0, 1.0});
  log.append({2.0, 0, 1.0});
  PreprocessorConfig config;
  config.filter_duplicate_states = false;
  const PreprocessResult result = Preprocessor(config).run(log);
  EXPECT_EQ(result.sanitized_events.size(), 2u);
}

TEST(Preprocessor, FiltersExtremeAmbientReadings) {
  EventLog log = bimodal_log();
  log.append({99999.0, 2, 50000.0});
  const PreprocessResult result = Preprocessor().run(log);
  EXPECT_GE(result.dropped_extremes, 1u);
  for (const BinaryEvent& event : result.sanitized_events) {
    EXPECT_LT(event.timestamp, 99999.0);
  }
}

TEST(Preprocessor, LagSelection) {
  PreprocessorConfig config;
  config.max_feedback_seconds = 60.0;
  config.min_lag = 1;
  config.max_lag = 4;
  const Preprocessor preprocessor(config);
  EXPECT_EQ(preprocessor.select_lag(30.0), 2u);  // 60/30
  EXPECT_EQ(preprocessor.select_lag(20.0), 3u);
  EXPECT_EQ(preprocessor.select_lag(200.0), 1u);  // rounds to 0 -> clamp
  EXPECT_EQ(preprocessor.select_lag(1.0), 4u);    // clamped at max
  EXPECT_EQ(preprocessor.select_lag(0.0), 1u);    // unknown -> min
}

TEST(Preprocessor, RunBuildsConsistentSeries) {
  const PreprocessResult result = Preprocessor().run(bimodal_log());
  EXPECT_EQ(result.series.event_count(), result.sanitized_events.size());
  EXPECT_EQ(result.series.device_count(), 3u);
  // Every sanitized event is a real transition in the series.
  for (std::size_t j = 1; j < result.series.length(); ++j) {
    const BinaryEvent& event = result.series.event_at(j);
    EXPECT_NE(event.state, result.series.state(event.device, j - 1));
  }
}

TEST(Preprocessor, RuntimeDiscretizationKeepsDuplicates) {
  EventLog log(mixed_catalog());
  log.append({1.0, 0, 1.0});
  log.append({2.0, 0, 1.0});
  log.append({3.0, 2, 150.0});
  const Preprocessor preprocessor;
  const DiscretizationModel model = DiscretizationModel::fit(bimodal_log());
  const auto runtime = preprocessor.discretize_runtime(log, model, 0.0);
  EXPECT_EQ(runtime.size(), 3u);  // duplicate retained
  EXPECT_EQ(runtime[0].state, runtime[1].state);
}

TEST(Preprocessor, RuntimeDiscretizationHonorsFromTimestamp) {
  EventLog log(mixed_catalog());
  log.append({1.0, 0, 1.0});
  log.append({5.0, 0, 0.0});
  const DiscretizationModel model = DiscretizationModel::fit(log);
  const auto runtime = Preprocessor().discretize_runtime(log, model, 2.0);
  ASSERT_EQ(runtime.size(), 1u);
  EXPECT_DOUBLE_EQ(runtime[0].timestamp, 5.0);
}

}  // namespace
}  // namespace causaliot::preprocess
