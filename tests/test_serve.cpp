// DetectionService integration tests: the acceptance bar for the serving
// subsystem. A replayed trace through >= 4 concurrent tenant sessions
// must produce, per tenant, the exact same alarm sequence as the batch
// EventMonitor on the same trace; a hot model swap mid-stream must lose
// no events; backpressure counters must be exact under each policy.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "causaliot/core/experiment.hpp"
#include "causaliot/detect/explanation.hpp"
#include "causaliot/detect/root_cause.hpp"
#include "causaliot/serve/alarm_json.hpp"
#include "causaliot/serve/blame.hpp"
#include "causaliot/serve/service.hpp"
#include "causaliot/util/strings.hpp"

namespace causaliot::serve {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::HomeProfile profile = sim::contextact_profile();
    profile.days = 6.0;
    core::ExperimentConfig config;
    config.seed = 77;
    experiment_ =
        new core::Experiment(core::build_experiment(std::move(profile), config));
  }
  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
  }

  /// The reference: the batch monitor path over the same runtime stream,
  /// including the end-of-stream window flush (mirrored by shutdown()).
  static std::vector<detect::AnomalyReport> batch_alarms(std::size_t k_max) {
    detect::EventMonitor monitor = experiment_->model.make_monitor(
        k_max, experiment_->test_series.snapshot_state(0));
    std::vector<detect::AnomalyReport> alarms;
    for (const auto& event : experiment_->test_runtime_events) {
      if (auto report = monitor.process(event)) {
        alarms.push_back(std::move(*report));
      }
    }
    if (auto tail = monitor.finish()) alarms.push_back(std::move(*tail));
    return alarms;
  }

  static std::shared_ptr<const ModelSnapshot> snapshot(std::uint64_t version) {
    const core::TrainedModel& model = experiment_->model;
    return make_snapshot(model.graph, model.score_threshold,
                         model.laplace_alpha, version);
  }

  static core::Experiment* experiment_;
};

core::Experiment* ServeTest::experiment_ = nullptr;

/// Thread-safe per-tenant alarm collector. Per-tenant order is total:
/// a tenant's alarms all come from its single shard worker (and then,
/// after the workers joined, from the shutdown flush).
struct AlarmLog {
  std::mutex mutex;
  std::map<std::string, std::vector<ServedAlarm>> by_tenant;

  AlarmCallback callback() {
    return [this](const ServedAlarm& alarm) {
      std::lock_guard<std::mutex> lock(mutex);
      by_tenant[alarm.tenant_name].push_back(alarm);
    };
  }
};

void expect_matches_batch(const std::vector<ServedAlarm>& served,
                          const std::vector<detect::AnomalyReport>& batch) {
  ASSERT_EQ(served.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const detect::AnomalyReport& got = served[i].report;
    const detect::AnomalyReport& want = batch[i];
    ASSERT_EQ(got.entries.size(), want.entries.size()) << "alarm " << i;
    EXPECT_EQ(got.ended_by_abrupt_event, want.ended_by_abrupt_event)
        << "alarm " << i;
    for (std::size_t e = 0; e < want.entries.size(); ++e) {
      EXPECT_EQ(got.entries[e].stream_index, want.entries[e].stream_index);
      EXPECT_EQ(got.entries[e].event, want.entries[e].event);
      // Same code path, same doubles: bit-identical, not approximately.
      EXPECT_EQ(got.entries[e].score, want.entries[e].score);
    }
  }
}

/// Attribution is a pure function of (report, graph, config): a served
/// alarm's ranked blame must equal a recomputation under the training
/// graph bit-for-bit, score doubles included.
void expect_same_attribution(const detect::RootCauseAttribution& got,
                             const detect::RootCauseAttribution& want) {
  EXPECT_EQ(got.edges_walked, want.edges_walked);
  ASSERT_EQ(got.ranked.size(), want.ranked.size());
  for (std::size_t i = 0; i < want.ranked.size(); ++i) {
    EXPECT_EQ(got.ranked[i].device, want.ranked[i].device);
    EXPECT_EQ(got.ranked[i].score, want.ranked[i].score);  // bitwise
    EXPECT_EQ(got.ranked[i].flagged, want.ranked[i].flagged);
    EXPECT_EQ(got.ranked[i].path, want.ranked[i].path);
  }
}

TEST_F(ServeTest, MultiTenantReplayMatchesBatchMonitor) {
  constexpr std::size_t kTenants = 5;
  const std::vector<detect::AnomalyReport> batch = batch_alarms(3);
  ASSERT_FALSE(batch.empty());  // the bar is meaningless on a silent trace

  ServiceConfig config;
  config.shard_count = 2;
  config.queue_capacity = 256;
  config.overflow = util::OverflowPolicy::kBlock;  // lossless
  config.session.k_max = 3;
  AlarmLog log;
  DetectionService service(config, log.callback());

  std::vector<TenantHandle> handles;
  for (std::size_t i = 0; i < kTenants; ++i) {
    handles.push_back(service.add_tenant("home-" + std::to_string(i),
                                         snapshot(1),
                                         experiment_->test_series.snapshot_state(0)));
  }
  service.start();
  const ReplayStats replay = replay_trace(service, handles,
                                          experiment_->test_runtime_events);
  service.shutdown();

  const std::size_t events = experiment_->test_runtime_events.size();
  EXPECT_EQ(replay.submitted, events * kTenants);
  EXPECT_EQ(replay.rejected, 0u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.events_submitted, events * kTenants);
  EXPECT_EQ(stats.events_processed, events * kTenants);
  EXPECT_EQ(stats.queue_dropped_oldest, 0u);
  EXPECT_EQ(stats.queue_rejected, 0u);
  EXPECT_EQ(stats.latency.count, events * kTenants);
  EXPECT_LE(stats.latency.p50, stats.latency.p99);
  EXPECT_LE(stats.latency.p99, stats.latency.max);

  // Every tenant independently reproduces the batch alarm sequence.
  for (const TenantHandle handle : handles) {
    const std::string& name = service.session(handle).name();
    ASSERT_TRUE(log.by_tenant.count(name)) << name;
    expect_matches_batch(log.by_tenant[name], batch);
    EXPECT_EQ(service.session(handle).events_processed(), events);
  }
  EXPECT_EQ(stats.alarms_total, batch.size() * kTenants);
}

TEST_F(ServeTest, HotSwapMidStreamLosesNoEvents) {
  constexpr std::size_t kTenants = 4;
  const std::vector<detect::AnomalyReport> batch = batch_alarms(2);
  ASSERT_FALSE(batch.empty());

  ServiceConfig config;
  config.shard_count = 2;
  config.session.k_max = 2;
  AlarmLog log;
  DetectionService service(config, log.callback());
  std::vector<TenantHandle> handles;
  for (std::size_t i = 0; i < kTenants; ++i) {
    handles.push_back(service.add_tenant("home-" + std::to_string(i),
                                         snapshot(1),
                                         experiment_->test_series.snapshot_state(0)));
  }
  service.start();

  // First half under model v1, then publish an equivalent v2 snapshot for
  // every tenant while its worker is mid-stream, then the second half.
  // The swap transplants the monitor state, so the alarm sequence must be
  // indistinguishable from an uninterrupted run.
  const auto& events = experiment_->test_runtime_events;
  const std::size_t half = events.size() / 2;
  for (std::size_t j = 0; j < half; ++j) {
    for (const TenantHandle handle : handles) {
      ASSERT_EQ(service.submit(handle, events[j]),
                DetectionService::SubmitResult::kAccepted);
    }
  }
  for (const TenantHandle handle : handles) {
    service.swap_model(handle, snapshot(2));
  }
  for (std::size_t j = half; j < events.size(); ++j) {
    for (const TenantHandle handle : handles) {
      ASSERT_EQ(service.submit(handle, events[j]),
                DetectionService::SubmitResult::kAccepted);
    }
  }
  service.shutdown();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.events_submitted, events.size() * kTenants);
  EXPECT_EQ(stats.events_processed, events.size() * kTenants);
  EXPECT_EQ(stats.model_swaps_published, kTenants);
  EXPECT_EQ(stats.model_swaps_adopted, kTenants);
  for (const TenantHandle handle : handles) {
    const TenantSession& session = service.session(handle);
    EXPECT_EQ(session.events_processed(), events.size());
    EXPECT_EQ(session.swaps_adopted(), 1u);
    EXPECT_EQ(session.active_model().version, 2u);
    expect_matches_batch(log.by_tenant[session.name()], batch);
    // The swap must not perturb the ranked blame either: every served
    // alarm is non-empty and bit-identical to the batch attribution.
    const std::vector<ServedAlarm>& served = log.by_tenant[session.name()];
    for (std::size_t i = 0; i < served.size(); ++i) {
      ASSERT_FALSE(served[i].root_causes.ranked.empty()) << "alarm " << i;
      expect_same_attribution(
          served[i].root_causes,
          detect::attribute_root_cause(batch[i], &experiment_->model.graph));
    }
  }
  EXPECT_EQ(service.blame().attributions(), batch.size() * kTenants);
}

TEST_F(ServeTest, SessionAdoptsPublishedModelAtEventBoundary) {
  // Deterministic single-threaded view of the swap: after publishing a
  // snapshot with threshold 1.0 (scores are <= 1, and alarms need a score
  // strictly above the threshold), the session must fall silent — proof
  // the new model actually took over.
  const auto& events = experiment_->test_runtime_events;
  SessionConfig config;
  config.k_max = 1;
  TenantSession session("solo", snapshot(1), config,
                        experiment_->test_series.snapshot_state(0));

  std::size_t alarms_before = 0;
  const std::size_t half = events.size() / 2;
  for (std::size_t j = 0; j < half; ++j) {
    alarms_before += session.process(events[j]).has_value();
  }
  ASSERT_GT(alarms_before, 0u);
  session.publish_model(make_snapshot(experiment_->model.graph,
                                      /*score_threshold=*/1.0,
                                      experiment_->model.laplace_alpha, 2));
  std::size_t alarms_after = 0;
  for (std::size_t j = half; j < events.size(); ++j) {
    alarms_after += session.process(events[j]).has_value();
  }
  EXPECT_EQ(alarms_after, 0u);
  EXPECT_EQ(session.swaps_adopted(), 1u);
  EXPECT_EQ(session.active_model().version, 2u);
  EXPECT_EQ(session.events_processed(), events.size());
}

TEST_F(ServeTest, RejectPolicyCountsExactly) {
  // Submitting before start() makes the overflow deterministic: the queue
  // fills with no consumer, so with capacity 4 the 5th and 6th submissions
  // must be rejected — and shutdown() still processes the accepted 4.
  ServiceConfig config;
  config.shard_count = 1;
  config.queue_capacity = 4;
  config.overflow = util::OverflowPolicy::kReject;
  DetectionService service(config, nullptr);
  const TenantHandle home = service.add_tenant(
      "home", snapshot(1), experiment_->test_series.snapshot_state(0));

  const auto& events = experiment_->test_runtime_events;
  ASSERT_GE(events.size(), 6u);
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (std::size_t j = 0; j < 6; ++j) {
    switch (service.submit(home, events[j])) {
      case DetectionService::SubmitResult::kAccepted: ++accepted; break;
      case DetectionService::SubmitResult::kRejected: ++rejected; break;
      case DetectionService::SubmitResult::kClosed: FAIL(); break;
      case DetectionService::SubmitResult::kUnknownTenant: FAIL(); break;
    }
  }
  EXPECT_EQ(accepted, 4u);
  EXPECT_EQ(rejected, 2u);
  service.shutdown();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.events_submitted, 6u);
  EXPECT_EQ(stats.queue_rejected, 2u);
  EXPECT_EQ(stats.events_processed, 4u);
  EXPECT_EQ(service.session(home).events_processed(), 4u);
  // Once shut down, further submissions report kClosed.
  EXPECT_EQ(service.submit(home, events[0]),
            DetectionService::SubmitResult::kClosed);
}

TEST_F(ServeTest, DropOldestPolicyEvictsAndCounts) {
  ServiceConfig config;
  config.shard_count = 1;
  config.queue_capacity = 4;
  config.overflow = util::OverflowPolicy::kDropOldest;
  DetectionService service(config, nullptr);
  const TenantHandle home = service.add_tenant(
      "home", snapshot(1), experiment_->test_series.snapshot_state(0));

  const auto& events = experiment_->test_runtime_events;
  for (std::size_t j = 0; j < 6; ++j) {
    // DropOldest never refuses the new event; it evicts the front.
    EXPECT_EQ(service.submit(home, events[j]),
              DetectionService::SubmitResult::kAccepted);
  }
  service.shutdown();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.events_submitted, 6u);
  EXPECT_EQ(stats.queue_dropped_oldest, 2u);
  EXPECT_EQ(stats.queue_rejected, 0u);
  EXPECT_EQ(stats.events_processed, 4u);
}

TEST_F(ServeTest, FindTenantRoundTripsHandles) {
  ServiceConfig config;
  config.shard_count = 3;
  DetectionService service(config, nullptr);
  std::vector<TenantHandle> handles;
  for (std::size_t i = 0; i < 4; ++i) {
    handles.push_back(service.add_tenant("home-" + std::to_string(i),
                                         snapshot(1),
                                         experiment_->test_series.snapshot_state(0)));
  }
  EXPECT_EQ(service.tenant_count(), 4u);
  EXPECT_EQ(service.shard_count(), 3u);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    EXPECT_EQ(service.find_tenant("home-" + std::to_string(i)), handles[i]);
    EXPECT_EQ(service.session(handles[i]).name(),
              "home-" + std::to_string(i));
  }
  EXPECT_EQ(service.find_tenant("no-such-home"),
            DetectionService::kInvalidTenant);
}

// Minimal JSON field extractors for the flat renderer output (keys are
// unique at top level; nested objects live inside arrays we skip past).
std::string json_string_field(const std::string& json,
                              const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return "<missing " + key + ">";
  const std::size_t begin = at + needle.size();
  const std::size_t end = json.find('"', begin);
  return json.substr(begin, end - begin);
}

double json_number_field(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + at + needle.size(), nullptr);
}

std::size_t json_array_size(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": [";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return static_cast<std::size_t>(-1);
  const std::size_t begin = at + needle.size();
  const std::size_t end = json.find(']', begin);
  std::size_t objects = 0;
  for (std::size_t i = begin; i < end; ++i) {
    objects += json[i] == '{';
  }
  return objects;
}

TEST_F(ServeTest, AlarmJsonCarriesProvenanceFieldByField) {
  const std::vector<detect::AnomalyReport> batch = batch_alarms(2);
  ASSERT_FALSE(batch.empty());

  ServiceConfig config;
  config.shard_count = 1;
  config.overflow = util::OverflowPolicy::kBlock;
  config.session.k_max = 2;
  AlarmLog log;
  DetectionService service(config, log.callback());
  const TenantHandle home = service.add_tenant(
      "home-0", snapshot(7), experiment_->test_series.snapshot_state(0));
  service.start();
  replay_trace(service, {&home, 1}, experiment_->test_runtime_events);
  service.shutdown();

  const std::vector<ServedAlarm>& served = log.by_tenant["home-0"];
  ASSERT_EQ(served.size(), batch.size());
  const telemetry::DeviceCatalog& catalog = experiment_->catalog();
  const double threshold = experiment_->model.score_threshold;
  for (const ServedAlarm& alarm : served) {
    const std::string json = alarm_to_json(alarm, catalog);
    const detect::AnomalyEntry& head = alarm.report.contextual();
    const telemetry::DeviceInfo& info = catalog.info(head.event.device);

    EXPECT_EQ(json_string_field(json, "type"), "alarm");
    EXPECT_EQ(json_string_field(json, "tenant"), "home-0");
    EXPECT_EQ(json_string_field(json, "severity"),
              severity_label(alarm.severity));
    EXPECT_EQ(json_string_field(json, "device"), info.name);
    EXPECT_EQ(json_string_field(json, "state"),
              detect::state_label(info, head.event.state));
    EXPECT_NEAR(json_number_field(json, "score"), head.score, 1e-6);
    EXPECT_NEAR(json_number_field(json, "threshold"), threshold, 1e-6);
    EXPECT_NEAR(json_number_field(json, "margin"), head.score - threshold,
                1e-6);
    EXPECT_NEAR(json_number_field(json, "probability"), 1.0 - head.score,
                1e-6);
    EXPECT_EQ(json_number_field(json, "stream_index"),
              static_cast<double>(head.stream_index));
    EXPECT_NEAR(json_number_field(json, "timestamp"), head.event.timestamp,
                1e-3);
    EXPECT_EQ(json_number_field(json, "model_version"), 7.0);
    EXPECT_EQ(json_number_field(json, "suppressed_duplicates"),
              static_cast<double>(alarm.suppressed_duplicates));
    EXPECT_EQ(json_number_field(json, "chain"),
              static_cast<double>(alarm.report.chain_length()));
    EXPECT_EQ(json_array_size(json, "context"), head.causes.size());
    EXPECT_EQ(json_array_size(json, "entries"), alarm.report.entries.size());
    // The hint derives from the ranked attribution (rank-1 fallback for
    // single-entry reports), and the full ranked list rides along as the
    // exact renderer output.
    EXPECT_EQ(json_string_field(json, "hint"),
              detect::attribution_hint(alarm.report, alarm.root_causes,
                                       catalog));
    ASSERT_FALSE(alarm.root_causes.ranked.empty());
    EXPECT_NE(json.find("\"root_causes\": " +
                        root_causes_json(alarm.root_causes, &catalog)),
              std::string::npos)
        << json;
    if (alarm.report.chain_length() <= 1) {
      EXPECT_EQ(json_string_field(json, "hint"),
                detect::root_cause_hint(head, catalog));
    }
    // The threshold provenance matches the snapshot that scored it.
    EXPECT_EQ(alarm.score_threshold, threshold);
  }
}

TEST_F(ServeTest, RegistrySnapshotExposesServeMetrics) {
  constexpr std::size_t kTenants = 2;
  const std::vector<detect::AnomalyReport> batch = batch_alarms(1);
  ASSERT_FALSE(batch.empty());

  obs::Registry registry;
  ServiceConfig config;
  config.shard_count = 2;
  config.overflow = util::OverflowPolicy::kBlock;
  config.registry = &registry;
  AlarmLog log;
  DetectionService service(config, log.callback());
  std::vector<TenantHandle> handles;
  for (std::size_t i = 0; i < kTenants; ++i) {
    handles.push_back(service.add_tenant(
        "home-" + std::to_string(i), snapshot(1),
        experiment_->test_series.snapshot_state(0)));
  }
  service.start();
  replay_trace(service, handles, experiment_->test_runtime_events);
  service.shutdown();

  // The injected registry is the one the service reports through.
  EXPECT_EQ(&service.registry(), &registry);
  const std::size_t events = experiment_->test_runtime_events.size();
  const std::string json = service.registry_json();
  EXPECT_NE(json.find(util::format(
                "{\"name\": \"serve_events_submitted_total\", \"labels\": "
                "{}, \"kind\": \"counter\", \"value\": %llu}",
                static_cast<unsigned long long>(events * kTenants))),
            std::string::npos)
      << json;

  const std::string prom = registry.to_prometheus();
  EXPECT_NE(prom.find("# TYPE serve_events_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find(util::format("serve_events_submitted_total %llu",
                                   static_cast<unsigned long long>(
                                       events * kTenants))),
            std::string::npos);
  // Per-tenant alarm attribution and per-shard processed counters.
  for (std::size_t i = 0; i < kTenants; ++i) {
    EXPECT_NE(
        prom.find(util::format(
            "serve_tenant_alarms_total{tenant=\"home-%zu\"} %llu", i,
            static_cast<unsigned long long>(batch.size()))),
        std::string::npos)
        << prom;
  }
  EXPECT_NE(prom.find("serve_events_processed_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("serve_events_processed_total{shard=\"1\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("serve_event_latency_ns{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("serve_queue_depth{shard=\"0\"} 0"),
            std::string::npos);
}

TEST_F(ServeTest, StatsJsonIsWellFormedAndNonEmpty) {
  ServiceConfig config;
  DetectionService service(config, nullptr);
  const std::string json = service.stats_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_ns\""), std::string::npos);
}

}  // namespace
}  // namespace causaliot::serve
